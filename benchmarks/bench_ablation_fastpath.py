"""A6 — Extension: fast-path printers vs the exact algorithms.

Quantifies the follow-on-work trade-off: Grisu3/counted 64-bit fast
paths handle ~99% of inputs at much lower cost, with the paper's exact
algorithm as the safety net for the remainder — the architecture every
modern run-time adopted.
"""

import pytest

from repro.baselines.naive_fixed import exact_fixed_digits
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.fastpath import STATS, fixed_fast, shortest_fast


@pytest.mark.benchmark(group="fastpath-shortest")
def test_bench_exact_shortest(benchmark, schryer_small):
    def run():
        acc = 0
        for v in schryer_small:
            acc ^= shortest_digits(v, mode=ReaderMode.NEAREST_UNKNOWN).k
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="fastpath-shortest")
def test_bench_grisu_with_fallback(benchmark, schryer_small):
    def run():
        acc = 0
        for v in schryer_small:
            acc ^= shortest_fast(v).k
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="fastpath-fixed")
def test_bench_exact_fixed(benchmark, schryer_small):
    def run():
        acc = 0
        for v in schryer_small:
            acc ^= exact_fixed_digits(v, ndigits=15).k
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="fastpath-shortest")
def test_bench_printf_strtod_probing(benchmark, schryer_floats):
    """The folk baseline: probe %.0e..%.16e until strtod round-trips.
    Host-compiled primitives, yet up to 17 round trips per value — and
    not even minimal (see tests/baselines/test_probe.py)."""
    from repro.baselines.probe import probe_shortest

    def run():
        acc = 0
        for x in schryer_floats:
            acc ^= len(probe_shortest(abs(x)))
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="fastpath-fixed")
def test_bench_counted_with_fallback(benchmark, schryer_small):
    def run():
        acc = 0
        for v in schryer_small:
            acc ^= fixed_fast(v, 15).k
        return acc

    benchmark(run)


def test_fastpath_hit_rates(schryer_small, capsys):
    STATS.reset()
    for v in schryer_small:
        shortest_fast(v)
        fixed_fast(v, 15)
    n = len(schryer_small)
    with capsys.disabled():
        print(f"\nFast-path hit rates (n={n}):")
        print(f"  grisu3 shortest: {STATS.shortest_hits / n:6.1%}  "
              f"(misses -> exact Burger-Dybvig)")
        print(f"  counted fixed:   {STATS.fixed_hits / n:6.1%}  "
              f"(misses -> exact conversion)")
    assert STATS.shortest_hits / n > 0.95
