"""A4 — Ablation: output-base sweep.

The algorithm is parameterised over the output base B (2..36); the paper
only evaluates B = 10.  Cost drivers per base: the number of digits
produced (∝ 1/log2 B) and the per-digit big-integer work.  Binary output
is also the identity-ish case (b == B == 2) the paper notes needs no
conversion algorithm at all.
"""

import pytest

from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode

BASES = [2, 8, 10, 16, 36]


@pytest.mark.parametrize("base", BASES)
@pytest.mark.benchmark(group="ablation-bases")
def test_bench_base(benchmark, schryer_small, base):
    subset = schryer_small[:: max(1, len(schryer_small) // 150)]

    def run():
        acc = 0
        for v in subset:
            acc ^= shortest_digits(v, base=base,
                                   mode=ReaderMode.NEAREST_EVEN).k
        return acc

    benchmark(run)


def test_digit_counts_scale_with_base(schryer_small):
    """Sanity for the sweep: higher bases need fewer digits on average."""
    subset = schryer_small[:: max(1, len(schryer_small) // 100)]
    means = {}
    for base in BASES:
        total = sum(
            len(shortest_digits(v, base=base).digits) for v in subset)
        means[base] = total / len(subset)
    assert means[2] > means[10] > means[36]
