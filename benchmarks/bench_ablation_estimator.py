"""A1 — Ablation: estimator accuracy vs cost (Sections 3.2 and 5).

Three estimators for the scale factor k:

* the paper's 2-flop estimate from the binary exponent (off by one
  ~30-40% of the time, fixup free);
* the host-logarithm estimate of Figure 2 (almost always exact);
* Gay's 5-flop Taylor estimate (more accurate than the paper's, less
  than the logarithm's).

The paper's argument: once the fixup is free, accuracy above
"never-overshoot, within one" buys nothing — so the cheapest estimator
wins.  ``test_estimator_accuracy`` regenerates the accuracy counts;
the ``ablation-estimator`` group regenerates the cost comparison.
"""

import pytest

from repro.baselines.gay_estimator import gay_estimate_k
from repro.core.boundaries import adjust_for_mode, initial_scaled_value
from repro.core.rounding import ReaderMode
from repro.core.scaling import (
    estimate_k_fast,
    estimate_k_float_log,
    scale_iterative,
)

_ESTIMATORS = {
    "fast-2flop(paper)": lambda v: estimate_k_fast(v, 10),
    "float-log(fig2)": lambda v: estimate_k_float_log(v, 10),
    "gay-taylor-5flop": gay_estimate_k,
}


def _true_k(v):
    r, s, mp, mm = initial_scaled_value(v)
    sv = adjust_for_mode(v, r, s, mp, mm, ReaderMode.NEAREST_UNKNOWN)
    return scale_iterative(sv, 10, v)[0]


@pytest.mark.parametrize("name", list(_ESTIMATORS))
@pytest.mark.benchmark(group="ablation-estimator")
def test_bench_estimator_cost(benchmark, schryer_small, name):
    est = _ESTIMATORS[name]

    def run():
        acc = 0
        for v in schryer_small:
            acc ^= est(v)
        return acc

    benchmark(run)


def test_estimator_accuracy(schryer_small, capsys):
    """Fraction of estimates equal to the true k (the rest are k-1)."""
    truths = [_true_k(v) for v in schryer_small]
    rows = []
    for name, est in _ESTIMATORS.items():
        exact = off_by_one = 0
        for v, k in zip(schryer_small, truths):
            e = est(v)
            assert e <= k, (name, v)
            assert k - e <= 1, (name, v)
            exact += e == k
            off_by_one += e == k - 1
        rows.append((name, exact, off_by_one))
    with capsys.disabled():
        n = len(schryer_small)
        print(f"\nEstimator accuracy over {n} Schryer values:")
        for name, exact, off in rows:
            print(f"  {name:22s} exact {exact / n:6.1%}   k-1 {off / n:6.1%}")
    by_name = {name: exact for name, exact, _ in rows}
    # Paper ordering: float-log most accurate, Gay next, ours least.
    assert by_name["float-log(fig2)"] >= by_name["gay-taylor-5flop"]
    assert by_name["gay-taylor-5flop"] >= by_name["fast-2flop(paper)"]


def test_fixup_never_needed_twice(schryer_small):
    """The free-fixup claim: the estimate is k or k-1, never worse."""
    from repro.core.scaling import STATS, scale_estimate

    STATS.reset()
    for v in schryer_small:
        r, s, mp, mm = initial_scaled_value(v)
        sv = adjust_for_mode(v, r, s, mp, mm, ReaderMode.NEAREST_EVEN)
        scale_estimate(sv, 10, v)
    assert STATS.overshoot_drops == 0
    assert STATS.fixup_bumps <= STATS.calls
