"""A3 — Ablation: native-int backend vs the limb-based BigNat substrate.

Quantifies what the paper gets "for free" from Scheme's native bignums:
the same conversion run on our portable 30-bit-limb arithmetic.  The gap
is the cost a run-time system without native big integers would pay (or
the speedup a tuned bignum kernel buys).
"""

import pytest

from repro.core.backends import shortest_digits_bignat
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode


@pytest.mark.benchmark(group="ablation-bignum")
def test_bench_native_int(benchmark, schryer_small):
    subset = schryer_small[:: max(1, len(schryer_small) // 100)]

    def run():
        acc = 0
        for v in subset:
            acc ^= shortest_digits(v, mode=ReaderMode.NEAREST_EVEN).k
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="ablation-bignum")
def test_bench_bignat_limbs(benchmark, schryer_small):
    subset = schryer_small[:: max(1, len(schryer_small) // 100)]

    def run():
        acc = 0
        for v in subset:
            acc ^= shortest_digits_bignat(v, mode=ReaderMode.NEAREST_EVEN).k
        return acc

    benchmark(run)


def test_backends_agree_on_bench_corpus(schryer_small):
    subset = schryer_small[:: max(1, len(schryer_small) // 50)]
    for v in subset:
        a = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
        b = shortest_digits_bignat(v, mode=ReaderMode.NEAREST_EVEN)
        assert (a.k, a.digits) == (b.k, b.digits)
