"""T1 — Table 1: initial values of r, s, m+ and m-.

Table 1 is definitional rather than a measurement; this bench (a) checks
each printed row symbolically against the implementation and (b) times
the initialization, which the paper's design keeps to a handful of
machine multiplications.

Run ``pytest benchmarks/bench_table1_boundaries.py --benchmark-only -s``
to see the regenerated table.
"""

from fractions import Fraction

from repro.core.boundaries import initial_scaled_value
from repro.floats.formats import BINARY64
from repro.floats.model import Flonum
from repro.floats.ulp import gap_high, gap_low

#: (label, f, e) — one representative per Table 1 column.
_CASES = [
    ("e >= 0, f != b**(p-1)", (1 << 52) + 123, 10),
    ("e >= 0, f == b**(p-1)", 1 << 52, 10),
    ("e < 0, f != b**(p-1) (or e == min exp)", (1 << 52) + 123, -400),
    ("e < 0, f == b**(p-1), e > min exp", 1 << 52, -400),
]


def _symbolic_row(f, e):
    b = 2
    p = 53
    if e >= 0:
        be = b**e
        if f != b ** (p - 1):
            return (f * be * 2, 2, be, be)
        return (f * be * b * 2, b * 2, be * b, be)
    if f != b ** (p - 1) or e == BINARY64.min_e:
        return (f * 2, b**-e * 2, 1, 1)
    return (f * b * 2, b ** (1 - e) * 2, b, 1)


def test_table1_rows_match_paper(capsys):
    """Regenerate Table 1 and verify each row against the symbolic form."""
    rows = []
    for label, f, e in _CASES:
        v = Flonum.finite(0, f, e, BINARY64)
        got = initial_scaled_value(v)
        want = _symbolic_row(f, e)
        assert got == want, label
        r, s, mp, mm = got
        assert Fraction(r, s) == v.to_fraction()
        assert Fraction(mp, s) == gap_high(v) / 2
        assert Fraction(mm, s) == gap_low(v) / 2
        rows.append((label, f, e))
    with capsys.disabled():
        print("\nTable 1 (regenerated): initial values of r, s, m+, m-")
        print(f"{'case':45s} {'r':>12s} {'s':>8s} {'m+':>8s} {'m-':>8s}")
        for label, f, e in rows:
            r, s, mp, mm = _symbolic_row(f, e)
            fmt = lambda n: f"2^{n.bit_length() - 1}" if n and not (
                n & (n - 1)) else str(n)[:12]
            print(f"{label:45s} {fmt(r):>12s} {fmt(s):>8s} "
                  f"{fmt(mp):>8s} {fmt(mm):>8s}")


def test_bench_initialization(benchmark, schryer_small):
    """Time Table-1 setup across the corpus (should be trivially cheap)."""
    def run():
        acc = 0
        for v in schryer_small:
            r, s, mp, mm = initial_scaled_value(v)
            acc ^= s
        return acc

    benchmark(run)
