"""T3 — Table 3: free format vs fixed format vs printf.

Three columns in the paper:

1. free-format CPU time / straightforward 17-digit fixed-format CPU time
   (geometric mean 1.66 across the 1996 systems);
2. fixed-format / system printf time (hardware- and libc-dependent);
3. the count of Schryer inputs printf rounds incorrectly (0–6,280 of
   250,680 depending on the system).

Benchmarks 1 and 2 share the ``table3-conversion`` group; the incorrect
count is reproduced by ``test_printf_incorrect_counts`` against the
soft-float model of the era's printf implementations at three
intermediate precisions (run with ``-s`` to see the counts).
"""

import pytest

from repro.baselines.naive_fixed import fixed_digits_loop, naive_fixed_17
from repro.baselines.naive_printf import audit_naive_printf
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode


def _free_format_all(values):
    acc = 0
    for v in values:
        acc ^= shortest_digits(v, mode=ReaderMode.NEAREST_EVEN).k
    return acc


def _fixed_17_all(values):
    acc = 0
    for v in values:
        acc ^= fixed_digits_loop(v, 17).k
    return acc


def _fixed_17_one_division_all(values):
    acc = 0
    for v in values:
        acc ^= naive_fixed_17(v).k
    return acc


def _host_printf_all(floats):
    acc = 0
    for x in floats:
        acc ^= len(f"{x:.16e}")
    return acc


@pytest.mark.benchmark(group="table3-conversion")
def test_bench_free_format(benchmark, schryer_small):
    """Row 1 numerator: shortest, correctly rounded, reader-aware."""
    benchmark(_free_format_all, schryer_small)


@pytest.mark.benchmark(group="table3-conversion")
def test_bench_fixed_17(benchmark, schryer_small):
    """Row 1 denominator: the straightforward 17-significant-digit digit
    loop (same scaled-integer machinery as free format, no termination
    tests).  Table 3's 1.66x geometric mean is free/this."""
    benchmark(_fixed_17_all, schryer_small)


@pytest.mark.benchmark(group="table3-conversion")
def test_bench_fixed_17_one_division(benchmark, schryer_small):
    """Alternative straightforward implementation: one big divmod plus
    decimal digit extraction (how a host with fast bignum division would
    do it; slower in pure Python at extreme exponents)."""
    benchmark(_fixed_17_one_division_all, schryer_small)


@pytest.mark.benchmark(group="table3-conversion")
def test_bench_host_printf(benchmark, schryer_floats):
    """Row 2 denominator analogue: the host C library via CPython
    formatting (modern, exact — and compiled, hence far faster than our
    pure-Python conversions; the paper's printf column had the same
    compiled-vs-measured caveat in reverse)."""
    benchmark(_host_printf_all, schryer_floats)


def test_printf_incorrect_counts(schryer_small, capsys):
    """Column 3: incorrectly rounded printf outputs on the corpus.

    1996 systems span exact (0 wrong) through extended-intermediate
    (hundreds wrong) implementations; the soft-float model reproduces the
    spectrum, and the modern host libc reproduces the all-exact row.
    """
    n = len(schryer_small)
    rows = []
    for precision in (53, 64, 113):
        audit = audit_naive_printf(schryer_small, precision=precision)
        rows.append((f"softfloat-{precision}bit chain", audit.incorrect))
    # The host printf (modern, exact): count disagreements with our exact
    # 17-digit conversion.
    host_wrong = 0
    for v in schryer_small:
        want = naive_fixed_17(v)
        got = f"{v.to_float():.16e}"
        mantissa = got.split("e")[0].replace(".", "").lstrip("-")
        if mantissa != "".join(map(str, want.digits)):
            host_wrong += 1
    rows.append(("host libc (modern)", host_wrong))
    with capsys.disabled():
        print(f"\nTable 3, incorrect-count column (n={n}):")
        for name, wrong in rows:
            print(f"  {name:28s} {wrong:6d} incorrect")
    assert rows[-1][1] == 0, "modern libc must be exact"
    assert rows[0][1] >= rows[1][1] >= rows[2][1]
