"""A5 — Ablation: the reader substrate's three strategies.

The round-trip guarantee is stated against an accurate reader (Clinger,
the paper's reference [1]); we ship three and compare them: the one-shot
exact divmod, AlgorithmR's refinement loop, and the Bellerophon host-
float fast path with exact fallback — plus the tiered read engine
(single-call and batch), which routes through all of the above.  Also
reports the fast-path hit rates on shortest-output strings.
"""

import pytest

from repro.core.api import format_shortest
from repro.engine import ReadEngine
from repro.reader.algorithm_r import read_decimal_r
from repro.reader.bellerophon import read_decimal_fast
from repro.reader.exact import read_decimal


@pytest.fixture(scope="module")
def shortest_strings(schryer_small):
    return [format_shortest(v) for v in schryer_small]


@pytest.mark.benchmark(group="ablation-reader")
def test_bench_exact_reader(benchmark, shortest_strings):
    def run():
        acc = 0
        for s in shortest_strings:
            acc ^= read_decimal(s).f & 1
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="ablation-reader")
def test_bench_algorithm_r(benchmark, shortest_strings):
    def run():
        acc = 0
        for s in shortest_strings:
            acc ^= read_decimal_r(s).f & 1
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="ablation-reader")
def test_bench_bellerophon(benchmark, shortest_strings):
    def run():
        acc = 0
        for s in shortest_strings:
            acc ^= read_decimal_fast(s).value.f & 1
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="ablation-reader")
def test_bench_read_engine(benchmark, shortest_strings):
    eng = ReadEngine(cache_size=0)  # memo off: measure the tiers

    def run():
        acc = 0
        for s in shortest_strings:
            acc ^= eng.read(s).f & 1
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="ablation-reader")
def test_bench_read_engine_batch(benchmark, shortest_strings):
    eng = ReadEngine(cache_size=0)

    def run():
        acc = 0
        for v in eng.read_many(shortest_strings):
            acc ^= v.f & 1
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="ablation-reader")
def test_bench_read_engine_memo_hot(benchmark, shortest_strings):
    eng = ReadEngine()
    eng.read_many(shortest_strings)  # warm the memo

    def run():
        acc = 0
        for v in eng.read_many(shortest_strings):
            acc ^= v.f & 1
        return acc

    benchmark(run)


def test_fast_path_hit_rate(shortest_strings, capsys):
    hits = sum(read_decimal_fast(s).fast_path for s in shortest_strings)
    rate = hits / len(shortest_strings)
    with capsys.disabled():
        print(f"\nBellerophon fast-path hit rate on shortest strings: "
              f"{rate:.1%} ({hits}/{len(shortest_strings)})")
    # Schryer values span the full exponent range, so most need the exact
    # fallback; human-scale literals mostly take the fast path (see the
    # reader tests).
    assert 0.0 <= rate <= 1.0
