"""T2 — Table 2: relative CPU time of the three scaling algorithms.

The paper times the full free-format conversion of the Schryer corpus
with Steele & White's iterative scaling, the floating-point-logarithm
scaler, and the paper's fast estimator; Table 2 reports *relative* CPU
time (iterative ≈ 86× in the original, the estimator fastest).

The three benchmarks share the ``table2-scaling`` group, so the
pytest-benchmark output table is the reproduction of Table 2.  The shape
that must hold: ``iterative ≫ float-log >= estimator``.
"""

import pytest

from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.core.scaling import scale_estimate, scale_float_log, scale_iterative

_SCALERS = {
    "estimator(paper)": scale_estimate,
    "float-log": scale_float_log,
    "iterative(S&W)": scale_iterative,
}


def _convert_all(values, scaler):
    acc = 0
    for v in values:
        r = shortest_digits(v, base=10, mode=ReaderMode.NEAREST_EVEN,
                            scaler=scaler)
        acc ^= r.k
    return acc


@pytest.mark.parametrize("name", list(_SCALERS))
@pytest.mark.benchmark(group="table2-scaling")
def test_bench_scaler(benchmark, schryer_small, name):
    benchmark(_convert_all, schryer_small, _SCALERS[name])


@pytest.mark.benchmark(group="table2-scaling-extreme")
@pytest.mark.parametrize("name", list(_SCALERS))
def test_bench_scaler_extreme_exponents(benchmark, schryer_small, name):
    """The paper's motivation case: very large/small magnitudes, where
    the iterative search performs O(|log v|) big-integer products."""
    extreme = [v for v in schryer_small if abs(v.e) > 700]
    if not extreme:
        pytest.skip("corpus too small for the extreme-exponent slice")
    benchmark(_convert_all, extreme, _SCALERS[name])


def test_scaling_cost_vs_exponent(capsys):
    """The asymptotic shape behind Table 2: iterative scaling is linear
    in |log v| while the estimator is flat.

    Absolute ratios on an interpreter undersell the paper's 86x (constant
    per-conversion interpreter costs compress them), so we reproduce the
    *growth law* directly: time per conversion in exponent bands.
    """
    import time

    from repro.floats.formats import BINARY64
    from repro.floats.model import Flonum

    # One busy mantissa at increasing binary exponents, so every band
    # does identical digit-loop work and only the scaling cost varies.
    f = BINARY64.hidden_limit | (0x5DEECE66D5DEECE
                                 & (BINARY64.hidden_limit - 1))
    bands = [0, 240, 480, 720, 960]
    rows = []
    for e2 in bands:
        v = Flonum.finite(0, f, e2, BINARY64)
        timings = {}
        for name, scaler in _SCALERS.items():
            reps = 80
            shortest_digits(v, scaler=scaler)  # warm caches
            t0 = time.perf_counter()
            for _ in range(reps):
                shortest_digits(v, scaler=scaler)
            timings[name] = (time.perf_counter() - t0) / reps * 1e6
        rows.append((e2, timings))
    with capsys.disabled():
        print("\nScaling cost vs binary exponent (us/conversion):")
        names = list(_SCALERS)
        print(f"{'2^e':>6s} " + " ".join(f"{n:>18s}" for n in names))
        for e2, timings in rows:
            print(f"{e2:6d} " + " ".join(f"{timings[n]:18.1f}"
                                          for n in names))
    # Shape assertions: iterative grows with the exponent; the estimator
    # stays within a small factor of its small-exponent cost.
    it = [t["iterative(S&W)"] for _, t in rows]
    est = [t["estimator(paper)"] for _, t in rows]
    assert it[-1] > it[0] * 4, "iterative cost must grow with |log v|"
    assert est[-1] < est[0] * 4, "estimator cost must stay near-flat"
