"""Shared corpora for the benchmark suite.

The paper's measurements use 250,680 Schryer-form doubles; pure-Python
big-integer arithmetic is ~10³ slower than 1996 compiled Scheme, so the
benches default to deterministic subsets of the same construction (the
ratios, which are what Tables 2 and 3 report, are scale-invariant).  Set
``REPRO_BENCH_N`` to raise the corpus size toward the paper's.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))

from repro.workloads.schryer import corpus

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "400"))


@pytest.fixture(scope="session")
def schryer_small():
    """A few hundred Schryer-form values (full exponent spread)."""
    return corpus(BENCH_N)


@pytest.fixture(scope="session")
def schryer_floats(schryer_small):
    return [v.to_float() for v in schryer_small]


@pytest.fixture(scope="session")
def moderate_values():
    """Human-scale magnitudes (the common case for printing)."""
    return corpus(BENCH_N // 2, seed=7)[: BENCH_N // 2]
