"""Extension — the tiered conversion engine vs the exact algorithm.

Where ``bench_ablation_fastpath.py`` compares the readable Grisu
reference against exact digit generation, this file measures the
production-shaped stack: the :class:`repro.engine.Engine` router
(memo -> exact-decimal tier -> raw-integer Grisu -> exact fallback)
through its string-level APIs, on the uniform-random corpus the
fast-path literature reports on.

Also runnable standalone for a quick smoke check::

    PYTHONPATH=src python benchmarks/bench_engine_tiers.py --quick
"""

import os

import pytest

from repro.baselines.naive_fixed import exact_fixed_digits
from repro.core.api import format_shortest
from repro.engine import Engine
from repro.engine.bench import FIXED_BENCH_NDIGITS, engine_corpus
from repro.workloads.corpus import torture_floats, uniform_random

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "400"))


@pytest.fixture(scope="module")
def uniform_floats():
    return engine_corpus(BENCH_N)


@pytest.fixture(scope="module")
def uniform_flonums():
    return uniform_random(BENCH_N)


@pytest.fixture(scope="module")
def warm_engine(uniform_floats):
    eng = Engine()
    eng.format_many(uniform_floats[:32])  # build the per-format tables
    return eng


@pytest.mark.benchmark(group="engine-strings")
def test_bench_exact_only_strings(benchmark, uniform_floats):
    benchmark(lambda: [format_shortest(x, engine=None)
                       for x in uniform_floats])


@pytest.mark.benchmark(group="engine-strings")
def test_bench_engine_format(benchmark, uniform_floats, warm_engine):
    fmt_one = warm_engine.format

    def run():
        warm_engine.clear_cache()  # measure conversion, not memoization
        return [fmt_one(x) for x in uniform_floats]

    benchmark(run)


@pytest.mark.benchmark(group="engine-strings")
def test_bench_engine_format_many(benchmark, uniform_floats, warm_engine):
    def run():
        warm_engine.clear_cache()
        return warm_engine.format_many(uniform_floats)

    benchmark(run)


@pytest.mark.benchmark(group="engine-strings")
def test_bench_engine_memo_hot(benchmark, uniform_floats, warm_engine):
    """The repeated-values regime every memo entry hits."""
    warm_engine.format_many(uniform_floats)  # populate
    benchmark(lambda: warm_engine.format_many(uniform_floats))


@pytest.mark.benchmark(group="engine-tiers")
def test_bench_tier2_only(benchmark, uniform_floats):
    eng = Engine(tier0=False, tier1=False, cache_size=0)
    eng.format_many(uniform_floats[:8])
    benchmark(lambda: eng.format_many(uniform_floats))


@pytest.mark.benchmark(group="engine-tiers")
def test_bench_no_tier0(benchmark, uniform_floats):
    eng = Engine(tier0=False, cache_size=0)
    eng.format_many(uniform_floats[:8])
    benchmark(lambda: eng.format_many(uniform_floats))


@pytest.mark.benchmark(group="engine-fixed")
def test_bench_fixed_exact_only(benchmark, uniform_flonums):
    benchmark(lambda: [exact_fixed_digits(v, ndigits=FIXED_BENCH_NDIGITS)
                       for v in uniform_flonums])


@pytest.mark.benchmark(group="engine-fixed")
def test_bench_fixed_engine_counted(benchmark, uniform_flonums):
    eng = Engine()
    for v in uniform_flonums[:32]:  # build the per-format tables
        eng.counted_digits(v, ndigits=FIXED_BENCH_NDIGITS)

    def run():
        eng.clear_cache()  # measure conversion, not memoization
        counted = eng.counted_digits
        return [counted(v, ndigits=FIXED_BENCH_NDIGITS)
                for v in uniform_flonums]

    benchmark(run)


@pytest.mark.benchmark(group="engine-fixed")
def test_bench_fixed_engine_memo_hot(benchmark, uniform_flonums):
    """The repeated-values regime every fixed memo entry hits."""
    eng = Engine()
    counted = eng.counted_digits
    for v in uniform_flonums:  # populate
        counted(v, ndigits=FIXED_BENCH_NDIGITS)
    benchmark(lambda: [counted(v, ndigits=FIXED_BENCH_NDIGITS)
                       for v in uniform_flonums])


def test_engine_fixed_tier_profile(uniform_flonums, capsys):
    """Not a timing: print the fixed-format resolution profile."""
    eng = Engine()
    for nd in (3, 7, 13):
        for v in uniform_flonums:
            eng.counted_digits(v, ndigits=nd)
        for v in uniform_flonums:
            eng.fixed_digits(v, ndigits=nd)
    s = eng.stats()
    fast = s["fixed_tier1_hits"] + s["cache_hits"]
    with capsys.disabled():
        print(f"\n[engine-fixed] {s['conversions']} conversions: "
              f"tier1={s['fixed_tier1_hits']} "
              f"bailouts={s['fixed_tier1_bailouts']} "
              f"tier2={s['fixed_tier2_calls']} memo={s['cache_hits']} "
              f"fast-resolved={fast / s['conversions']:.4f}")
    assert fast / s["conversions"] >= 0.95


def test_engine_tier_profile(uniform_floats, capsys):
    """Not a timing: print the resolution profile for the report."""
    eng = Engine()
    eng.format_many(uniform_floats)
    eng.format_many([f.to_float() for f in torture_floats()])
    s = eng.stats()
    with capsys.disabled():
        fast = s["tier0_hits"] + s["tier1_hits"] + s["cache_hits"]
        print(f"\n[engine] {s['conversions']} conversions: "
              f"tier0={s['tier0_hits']} tier1={s['tier1_hits']} "
              f"bailouts={s['tier1_bailouts']} tier2={s['tier2_calls']} "
              f"memo={s['cache_hits']} "
              f"fast-resolved={fast / s['conversions']:.4f}")
    assert fast / s["conversions"] >= 0.99


if __name__ == "__main__":
    import argparse
    import json

    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("-n", type=int, default=20000)
    args = parser.parse_args()

    from repro.engine.bench import run_engine_bench

    result = run_engine_bench(n=2000 if args.quick else args.n,
                              repeats=1 if args.quick else 3)
    print(json.dumps(result, indent=2, sort_keys=True))
    assert result["mismatches"] == 0, "engine output diverged from exact"
    assert result["fast_resolved"] >= 0.99
    assert result["fixed"]["mismatches"] == 0, \
        "fixed-format engine output diverged from exact"
    assert result["fixed"]["fast_resolved"] >= 0.90
