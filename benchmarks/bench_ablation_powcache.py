"""A2 — Ablation: the cached power table (Figure 2's ``exptt``).

Scaling multiplies by ``10**|k|`` with ``|k|`` up to 325 for binary64;
the paper keeps those powers in a table.  This bench compares conversion
throughput with the table against recomputing every power, and times the
power lookup itself.
"""

import pytest

from repro.bignum import pow_cache
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode


@pytest.mark.benchmark(group="ablation-powcache-lookup")
def test_bench_power_cached(benchmark):
    ks = list(range(0, 326, 5))

    def run():
        acc = 0
        for k in ks:
            acc ^= pow_cache.power(10, k) & 1
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="ablation-powcache-lookup")
def test_bench_power_uncached(benchmark):
    ks = list(range(0, 326, 5))

    def run():
        acc = 0
        for k in ks:
            acc ^= pow_cache.power_uncached(10, k) & 1
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="ablation-powcache-conversion")
def test_bench_conversion_with_table(benchmark, schryer_small):
    def run():
        acc = 0
        for v in schryer_small:
            acc ^= shortest_digits(v, mode=ReaderMode.NEAREST_EVEN).k
        return acc

    benchmark(run)


@pytest.mark.benchmark(group="ablation-powcache-conversion")
def test_bench_conversion_without_table(benchmark, schryer_small,
                                        monkeypatch):
    # Disable both the paper's table and the dynamic memo.
    from repro.core import scaling

    monkeypatch.setattr(scaling, "power", pow_cache.power_uncached)

    def run():
        acc = 0
        for v in schryer_small:
            acc ^= shortest_digits(v, mode=ReaderMode.NEAREST_EVEN).k
        return acc

    benchmark(run)
