"""Smoke tests for the report generator and the bench JSON schema."""

import json
import os
import subprocess
import sys


def _load_bench_tool(name="bench_engine"):
    """Import a tools/*.py bench module (not on the path)."""
    import importlib.util

    path = os.path.join(os.path.dirname(__file__), "..", "tools",
                        f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"{name}_tool", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestBenchSchema:
    """Satellite: BENCH_engine.json's shape is a tested contract."""

    def test_generated_output_conforms(self):
        tool = _load_bench_tool()
        from repro.engine.bench import run_engine_bench

        result = run_engine_bench(n=200, repeats=1)
        assert tool.validate_bench_schema(result) == []
        assert result["fixed"]["mismatches"] == 0
        assert result["mismatches"] == 0
        assert result["reader"]["mismatches"] == 0
        assert result["reader"]["fast_resolved"] >= 0.95
        assert result["bulk"]["mismatches"] == 0
        assert result["buffer"]["mismatches"] == 0
        assert result["binary32"]["mismatches"] == 0
        assert result["binary32"]["fast_resolved"] >= 0.98
        assert result["warm"]["mismatches"] == 0
        assert result["warm"]["stats"].get("snapshot_faults", 0) == 0
        cont = result["contenders"]
        assert cont["mismatches"] == 0
        for mix in ("flat", "zipf", "specials"):
            assert cont["bail_rate"][mix]["schubfach_only"] == 0.0
            assert cont["bail_rate"][mix]["schubfach_first"] == 0.0
        assert cont["read_tier2_calls"]["lemire_only"] == 0
        assert cont["read_tier2_calls"]["lemire_first"] == 0
        for mix in ("flat", "zipf", "specials", "read_certified"):
            assert cont["winners"][mix] in (
                list(cont["orderings"]) + list(cont["read_orderings"]))
        # Every section records the corpus composition.
        for section in (result, result["fixed"], result["reader"],
                        result["bulk"], result["buffer"],
                        result["binary32"], result["warm"],
                        result["contenders"]):
            assert "mix" in section["corpus"]

    def test_committed_json_conforms(self):
        path = os.path.join(os.path.dirname(__file__), "..",
                            "BENCH_engine.json")
        if not os.path.exists(path):
            import pytest

            pytest.skip("BENCH_engine.json not generated yet")
        with open(path) as fh:
            stored = json.load(fh)
        tool = _load_bench_tool()
        assert tool.validate_bench_schema(stored) == []

    def test_validator_reports_missing_keys(self):
        tool = _load_bench_tool()
        problems = tool.validate_bench_schema({"corpus": {}})
        assert any(p.startswith("missing key: corpus.") for p in problems)
        assert "missing key: fixed" in problems
        assert "missing key: reader" in problems
        assert "missing key: bulk" in problems
        assert "missing key: buffer" in problems
        assert "missing key: binary32" in problems
        assert "missing key: warm" in problems
        assert "missing key: contenders" in problems

    def test_reader_gates(self):
        tool = _load_bench_tool()
        good = {"mismatches": 0, "fast_resolved": 0.99,
                "speedup": {"read_many": 2.5}}
        assert tool._check_reader_gates(good, quick=False) == 0
        assert tool._check_reader_gates(
            dict(good, mismatches=1), quick=False) == 1
        assert tool._check_reader_gates(
            dict(good, fast_resolved=0.5), quick=True) == 1
        # The timing gate is correctness-only on --quick runs.
        slow = dict(good, speedup={"read_many": 1.1})
        assert tool._check_reader_gates(slow, quick=True) == 0
        assert tool._check_reader_gates(slow, quick=False) == 1

    def test_bulk_gates(self):
        tool = _load_bench_tool()
        good = {"mismatches": 0,
                "speedup": {"uniform": 2.3, "zipf": 2.6}}
        assert tool._check_bulk_gates(good, quick=False) == 0
        assert tool._check_bulk_gates(
            dict(good, mismatches=2), quick=True) == 1
        # Timing gates only bind on full runs.
        slow = dict(good, speedup={"uniform": 1.4, "zipf": 1.6})
        assert tool._check_bulk_gates(slow, quick=True) == 0
        assert tool._check_bulk_gates(slow, quick=False) == 1
        inverted = dict(good, speedup={"uniform": 2.4, "zipf": 2.1})
        assert tool._check_bulk_gates(inverted, quick=False) == 1

    def test_buffer_gates(self):
        tool = _load_bench_tool()
        good = {"mismatches": 0,
                "speedup": {"parse_flat": 6.0, "pipeline_flat": 4.0,
                            "pipeline_zipf": 4.5}}
        assert tool._check_buffer_gates(good, quick=False) == 0
        assert tool._check_buffer_gates(
            dict(good, mismatches=1), quick=True) == 1
        # Timing gates only bind on full runs.
        slow = dict(good, speedup={"parse_flat": 1.1, "pipeline_flat": 1.0,
                                   "pipeline_zipf": 1.0})
        assert tool._check_buffer_gates(slow, quick=True) == 0
        assert tool._check_buffer_gates(slow, quick=False) == 1

    def test_binary32_gates(self):
        tool = _load_bench_tool()
        good = {"mismatches": 0, "fast_resolved": 0.99,
                "speedup": {"format": 1.8}}
        assert tool._check_binary32_gates(good, quick=False) == 0
        assert tool._check_binary32_gates(
            dict(good, mismatches=1), quick=True) == 1
        assert tool._check_binary32_gates(
            dict(good, fast_resolved=0.9), quick=True) == 1
        slow = dict(good, speedup={"format": 1.1})
        assert tool._check_binary32_gates(slow, quick=True) == 0
        assert tool._check_binary32_gates(slow, quick=False) == 1

    def test_contenders_gates(self):
        tool = _load_bench_tool()
        good = {
            "mismatches": 0,
            "bail_rate": {
                mix: {"grisu3_first": 0.01, "schubfach_first": 0.0,
                      "schubfach_only": 0.0}
                for mix in ("flat", "zipf", "specials")},
            "read_tier2_calls": {"window_first": 3, "lemire_first": 0,
                                 "lemire_only": 0},
        }
        assert tool._check_contenders_gates(good, quick=False) == 0
        # All contender gates are correctness gates: they bind on
        # --quick runs too.
        assert tool._check_contenders_gates(
            dict(good, mismatches=1), quick=True) == 1
        bailed = dict(good, bail_rate=dict(
            good["bail_rate"],
            zipf={"grisu3_first": 0.01, "schubfach_first": 0.0,
                  "schubfach_only": 0.002}))
        assert tool._check_contenders_gates(bailed, quick=True) == 1
        fell_back = dict(good, read_tier2_calls={
            "window_first": 3, "lemire_first": 0, "lemire_only": 2})
        assert tool._check_contenders_gates(fell_back, quick=True) == 1
        # grisu3's bail rate and window's tier-2 entries are informative,
        # never gated — those lanes are allowed their exact fallback.
        assert tool._check_contenders_gates(good, quick=True) == 0

    def test_warm_gates(self):
        tool = _load_bench_tool()
        good = {"mismatches": 0, "stats": {"snapshot_faults": 0},
                "speedup": {"startup": 1.3, "first_10k": 1.25}}
        assert tool._check_warm_gates(good, quick=False) == 0
        # Identity and clean-restore gates bind on every run.
        assert tool._check_warm_gates(
            dict(good, mismatches=1), quick=True) == 1
        assert tool._check_warm_gates(
            dict(good, stats={"snapshot_faults": 1}), quick=True) == 1
        # The timing gate only binds on full runs.
        slow = dict(good, speedup={"startup": 1.0, "first_10k": 0.97})
        assert tool._check_warm_gates(slow, quick=True) == 0
        assert tool._check_warm_gates(slow, quick=False) == 1


class TestServeBenchSchema:
    """Satellite: BENCH_serve.json's shape is a tested contract too."""

    GOOD_LEG = {
        "requests": 100, "responses": 100, "errors": 0, "mismatches": 0,
        "latency_ms": {"p50": 5.0, "p95": 20.0, "p99": 40.0,
                       "mean": 8.0, "max": 60.0},
        "throughput": {"requests_per_s": 400.0, "mb_per_s": 1.0},
        "stats": {}, "pool_stats": {},
    }

    def test_committed_json_conforms(self):
        path = os.path.join(os.path.dirname(__file__), "..",
                            "BENCH_serve.json")
        if not os.path.exists(path):
            import pytest

            pytest.skip("BENCH_serve.json not generated yet")
        with open(path) as fh:
            stored = json.load(fh)
        tool = _load_bench_tool("bench_serve")
        assert tool.validate_bench_schema(stored) == []
        assert stored["baseline"]["mismatches"] == 0
        assert stored["chaos"]["mismatches"] == 0
        assert stored["chaos"]["faults_fired"] >= 1
        assert stored["chaos"]["recovered"] \
            >= stored["chaos"]["faults_fired"]
        # The controlled leg: byte-identical under the same plan, and
        # the committed full run must show the control plane beating
        # the uncontrolled chaos tail.
        ctl = stored["controlled"]
        assert ctl["mismatches"] == 0
        assert ctl["p99_vs_chaos"] <= stored["gates"]["controlled_p99_bound"]
        assert ctl["errors"] <= ctl["requests"] \
            * stored["gates"]["controlled_shed_bound"]

    def test_validator_reports_missing_keys(self):
        tool = _load_bench_tool("bench_serve")
        problems = tool.validate_bench_schema({"baseline": {}})
        assert "missing key: config" in problems
        assert "missing key: chaos" in problems
        assert "missing key: controlled" in problems
        assert any(p.startswith("missing key: baseline.")
                   for p in problems)

    def test_validator_reports_missing_control_counters(self):
        tool = _load_bench_tool("bench_serve")
        bad = {"controlled": dict(self.GOOD_LEG, faults_fired=1,
                                  p99_vs_chaos=0.9, control={})}
        problems = tool.validate_bench_schema(bad)
        assert any(p.startswith("missing key: controlled.control.")
                   for p in problems)

    def test_baseline_gates(self):
        tool = _load_bench_tool("bench_serve")
        good = dict(self.GOOD_LEG)
        assert tool._check_baseline_gates(good, quick=False) == 0
        assert tool._check_baseline_gates(
            dict(good, mismatches=1), quick=True) == 1
        assert tool._check_baseline_gates(
            dict(good, errors=1, responses=99), quick=True) == 1
        # The latency gate is timing-only: skipped on --quick.
        slow = dict(good, latency_ms=dict(good["latency_ms"], p99=900.0))
        assert tool._check_baseline_gates(slow, quick=True) == 0
        assert tool._check_baseline_gates(slow, quick=False) == 1

    def test_chaos_gates(self):
        tool = _load_bench_tool("bench_serve")
        base = dict(self.GOOD_LEG)
        good = dict(self.GOOD_LEG, faults_fired=3, recovered=4,
                    p99_ratio=2.0)
        assert tool._check_chaos_gates(good, base, quick=False) == 0
        assert tool._check_chaos_gates(
            dict(good, mismatches=1), base, quick=True) == 1
        assert tool._check_chaos_gates(
            dict(good, faults_fired=0), base, quick=True) == 1
        assert tool._check_chaos_gates(
            dict(good, recovered=1), base, quick=True) == 1
        # Degradation bound: timing-only, full runs, vs the documented
        # max(ratio x baseline p99, absolute floor).
        bound = max(tool.P99_RATIO_BOUND * base["latency_ms"]["p99"],
                    tool.P99_ABS_FLOOR_MS)
        degraded = dict(good, latency_ms=dict(good["latency_ms"],
                                              p99=bound + 1.0))
        assert tool._check_chaos_gates(degraded, base, quick=True) == 0
        assert tool._check_chaos_gates(degraded, base, quick=False) == 1

    def test_controlled_gates(self):
        tool = _load_bench_tool("bench_serve")
        chaos = dict(self.GOOD_LEG, faults_fired=3, recovered=4,
                     p99_ratio=2.0)
        good = dict(self.GOOD_LEG, faults_fired=3, p99_vs_chaos=0.9,
                    latency_ms=dict(self.GOOD_LEG["latency_ms"],
                                    p99=36.0),
                    control={"breaker_trips": 0, "breaker_sheds": 0,
                             "admission_sheds": 0,
                             "admission_increases": 1,
                             "admission_decreases": 0,
                             "hedges": 1, "hedge_wins": 1})
        assert tool._check_controlled_gates(good, chaos,
                                            quick=False) == 0
        # Identity and accounting bind on every run.
        assert tool._check_controlled_gates(
            dict(good, mismatches=1), chaos, quick=True) == 1
        # Bounded shedding is fine; losing track of a response is not.
        assert tool._check_controlled_gates(
            dict(good, errors=1, responses=99), chaos, quick=True) == 0
        assert tool._check_controlled_gates(
            dict(good, responses=98), chaos, quick=True) == 1
        # Unbounded shedding is a failure even when p99 looks great.
        shedding = dict(good, errors=50, responses=50)
        assert tool._check_controlled_gates(shedding, chaos,
                                            quick=True) == 1
        # The improvement gate is timing-only: skipped on --quick,
        # binding on full runs — controlled p99 must beat chaos p99.
        worse = dict(good, latency_ms=dict(good["latency_ms"],
                                           p99=41.0))
        assert tool._check_controlled_gates(worse, chaos,
                                            quick=True) == 0
        assert tool._check_controlled_gates(worse, chaos,
                                            quick=False) == 1

    def test_percentile_nearest_rank(self):
        tool = _load_bench_tool("bench_serve")
        xs = sorted(float(i) for i in range(1, 101))
        assert tool.percentile(xs, 50) == 50.0
        assert tool.percentile(xs, 99) == 99.0
        assert tool.percentile([], 99) == 0.0


def test_regenerate_reports_runs():
    out = subprocess.run(
        [sys.executable, "tools/regenerate_reports.py", "120"],
        capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr
    text = out.stdout
    assert "Table 2" in text
    assert "Table 3" in text
    assert "free / fixed-17" in text
    assert "grisu3 hit rate" in text
    # The modern/exact rows must report zero incorrect.
    assert "(113-bit chain):     0/120" in text
