"""Smoke test for the consolidated report generator."""

import subprocess
import sys


def test_regenerate_reports_runs():
    out = subprocess.run(
        [sys.executable, "tools/regenerate_reports.py", "120"],
        capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr
    text = out.stdout
    assert "Table 2" in text
    assert "Table 3" in text
    assert "free / fixed-17" in text
    assert "grisu3 hit rate" in text
    # The modern/exact rows must report zero incorrect.
    assert "(113-bit chain):     0/120" in text
