"""py_repr must equal CPython's repr — an independent shortest oracle."""

import math

import pytest
from hypothesis import given, settings

from helpers import double_from_bits, finite_doubles
from repro.format.repr_shortest import py_repr
from repro.workloads.corpus import decimal_ties, torture_floats


class TestAgainstCPython:
    @given(finite_doubles())
    @settings(max_examples=500)
    def test_random_doubles(self, x):
        assert py_repr(x) == repr(x)

    @pytest.mark.parametrize("x", [
        0.0, -0.0, 1.0, -1.0, 0.1, 0.2, 0.3, 1 / 3, 2 / 3,
        1e23, 9.999999999999999e22, 1.0000000000000002e23,
        5e-324, 1.7976931348623157e308, 2.2250738585072014e-308,
        math.pi, math.e, 2**53 + 2.0, 1e16, 1e15, 1e-4, 1e-5,
        9007199254740992.0, 9007199254740994.0,
    ])
    def test_curated(self, x):
        assert py_repr(x) == repr(x)

    def test_specials(self):
        assert py_repr(float("nan")) == "nan"
        assert py_repr(float("inf")) == "inf"
        assert py_repr(float("-inf")) == "-inf"

    def test_signed_zero(self):
        assert py_repr(0.0) == "0.0"
        assert py_repr(-0.0) == "-0.0"

    def test_boundary_patterns(self):
        for bits in (0x0010000000000000, 0x000FFFFFFFFFFFFF, 0x0000000000000001,
                     0x7FEFFFFFFFFFFFFF, 0x3FF0000000000001, 0x4340000000000000):
            x = double_from_bits(bits)
            assert py_repr(x) == repr(x)

    def test_decimal_tie_corpus(self):
        for v in decimal_ties():
            x = v.to_float()
            assert py_repr(x) == repr(x)

    def test_torture_corpus(self):
        for v in torture_floats():
            x = v.to_float()
            assert py_repr(x) == repr(x)
            assert py_repr(-x) == repr(-x)

    def test_flonum_argument(self):
        from repro.floats.model import Flonum

        assert py_repr(Flonum.from_float(0.3)) == "0.3"
