"""printf emulation vs the host C library (via Python's % operator)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import finite_doubles
from repro.errors import ParseError
from repro.format.printf import fmt_e, fmt_f, fmt_g, format_printf

SPECS = ["%e", "%.0e", "%.3e", "%.17e", "%E",
         "%f", "%.0f", "%.2f", "%.10f",
         "%g", "%.1g", "%.12g", "%.17g", "%G",
         "%+e", "% e", "%15.3e", "%-15.3e", "%015.3e", "%#.0f", "%#g"]


class TestAgainstLibc:
    @given(finite_doubles(), st.sampled_from(SPECS))
    @settings(max_examples=600)
    def test_matches_host(self, x, spec):
        assert format_printf(spec, x) == spec % x

    @pytest.mark.parametrize("x", [
        0.0, -0.0, 1.0, -1.0, 0.5, 2.5, 9.995, 1e-7, 5e-324,
        1.7976931348623157e308, 1e23, 123456789.123, 0.1,
    ])
    @pytest.mark.parametrize("spec", SPECS)
    def test_curated_values(self, x, spec):
        assert format_printf(spec, x) == spec % x

    def test_specials(self):
        assert format_printf("%e", float("nan")) == "nan"
        assert format_printf("%E", float("nan")) == "NAN"
        assert format_printf("%f", float("inf")) == "inf"
        assert format_printf("%+f", float("inf")) == "+inf"
        assert format_printf("%f", float("-inf")) == "-inf"
        assert format_printf("%10e", float("inf")) == "       inf"


class TestDirectFunctions:
    def test_fmt_e_carry(self):
        assert fmt_e(9.9999, 2) == "1.00e+01"

    def test_fmt_f_carry(self):
        assert fmt_f(9.99, 1) == "10.0"

    def test_fmt_f_zero_precision(self):
        assert fmt_f(2.5, 0) == "2"  # ties-to-even like glibc under IEEE
        assert fmt_f(3.5, 0) == "4"

    def test_fmt_g_strips_zeros(self):
        assert fmt_g(1.5, 6) == "1.5"
        assert fmt_g(100.0, 6) == "100"

    def test_fmt_g_scientific_switch(self):
        assert fmt_g(1e-5, 6) == "1e-05"
        assert fmt_g(1234567.0, 6) == "1.23457e+06"

    def test_fmt_g_alternate_keeps_zeros(self):
        assert fmt_g(1.5, 6, flags="#") == "1.50000"

    def test_width_and_flags(self):
        assert fmt_e(1.5, 2, flags="+", width=12) == "   +1.50e+00"
        assert fmt_e(1.5, 2, flags="0", width=12) == "00001.50e+00"
        assert fmt_e(1.5, 2, flags="-", width=12) == "1.50e+00    "


class TestSpecParsing:
    def test_rejects_bad_specs(self):
        for bad in ("e", "%q", "%.2x", "%1.2.3f", "%", "%.2"):
            with pytest.raises(ParseError):
                format_printf(bad, 1.0)

    def test_default_precision_six(self):
        assert format_printf("%e", 1.5) == "%.6e" % 1.5


class TestExtremeMagnitudes:
    def test_huge_value_full_expansion(self):
        # %f of 1e308 prints the exact 309-digit integer part.
        assert format_printf("%.2f", 1e308) == "%.2f" % 1e308
        assert len(format_printf("%.0f", 1.7976931348623157e308)) == 309

    def test_tiny_value_long_fraction(self):
        assert format_printf("%.330f", 5e-324) == "%.330f" % 5e-324

    def test_denormal_e(self):
        assert format_printf("%.17e", 5e-324) == "%.17e" % 5e-324

    def test_g_large_precision(self):
        for x in (1/3, 1e-300, 9.99999999999999e15):
            assert format_printf("%.30g", x) == "%.30g" % x
