"""Satellite: differential fuzz of engine %e/%f/%g against CPython.

CPython's ``%``-formatting of floats follows C99 with correct rounding
(ties-to-even), which is exactly the contract of our ``format_printf``
— so the host is a free, independently implemented oracle for binary64.
The quick class runs on every PR; the 10k-value sweep is marked
``slow`` and runs in the nightly CI job (and locally via
``pytest -m slow``).
"""

import random
import struct

import pytest

from repro.engine import Engine
from repro.format.printf import format_printf

SPECS = ("%e", "%.17e", "%.2e", "%.0e", "%f", "%.3f", "%.0f", "%.12f",
         "%g", "%.12g", "%.1g", "%.17g", "%E", "%G",
         "%+e", "% e", "%#g", "%#.0f", "%015.6e", "%-12.3f", "%08.2f")


def random_doubles(n, seed):
    """Finite doubles from uniform bit patterns (all regimes, denormals
    and exact decimals included)."""
    rng = random.Random(seed)
    out = []
    while len(out) < n:
        x = struct.unpack("<d", struct.pack("<Q", rng.getrandbits(64)))[0]
        if x != x or x in (float("inf"), float("-inf")):
            continue
        out.append(x)
        if len(out) % 7 == 0:  # mix in round decimals (tie territory)
            out.append(round(x % 1000, rng.randrange(6)))
    return out[:n]


class TestQuickDifferential:
    """PR-sized slice of the sweep: every spec, a few hundred values."""

    def test_uniform_bits(self):
        for x in random_doubles(300, seed=101):
            for spec in SPECS:
                assert format_printf(spec, x) == spec % x, (spec, x)

    def test_regime_boundaries(self):
        xs = [0.0, -0.0, 1.0, -1.0, 0.1, 0.5, 2.5, 1e-5, 1e23,
              5e-324, 2.2250738585072014e-308, 1.7976931348623157e308,
              9.999999999999999e22, 123456.789, float("inf"),
              float("-inf"), float("nan")]
        for x in xs:
            nonfinite = x != x or abs(x) == float("inf")
            for spec in SPECS:
                flags = ""
                for c in spec[1:]:
                    if c not in "+-# 0":
                        break
                    flags += c
                if nonfinite and "0" in flags:
                    # C99 7.21.6.1: the 0 flag is ignored for infinities
                    # and NaNs; CPython zero-pads them.  We follow C99.
                    continue
                mine, host = format_printf(spec, x), spec % x
                assert mine == host, (spec, x, mine, host)

    def test_explicit_engine_matches_exact(self):
        eng = Engine()
        for x in random_doubles(100, seed=7):
            for spec in ("%.6e", "%.4f", "%.9g"):
                assert (format_printf(spec, x, engine=eng)
                        == format_printf(spec, x, engine=None)), (spec, x)


@pytest.mark.slow
class TestFullDifferential:
    """The 10k-value sweep (nightly): engine route vs host formatting."""

    N = 10_000

    def test_ten_thousand_values_all_specs(self):
        mismatches = []
        for x in random_doubles(self.N, seed=20240806):
            for spec in SPECS:
                mine, host = format_printf(spec, x), spec % x
                if mine != host:
                    mismatches.append((spec, x, mine, host))
        assert not mismatches, mismatches[:10]

    def test_precision_sweep(self):
        # Every precision 0..20 for a narrower value set: exercises the
        # fast tier's full acceptance range and the 17-digit bailout.
        for x in random_doubles(300, seed=77):
            for p in range(21):
                for conv in ("e", "f", "g"):
                    spec = f"%.{p}{conv}"
                    assert format_printf(spec, x) == spec % x, (spec, x)
