"""Notation assembly: positional/scientific strings, # rendering."""

import pytest

from repro.core.digits import DigitResult
from repro.core.fixed import FixedResult
from repro.errors import RangeError
from repro.format.notation import (
    NotationOptions,
    positional_string,
    render_fixed,
    render_shortest,
    scientific_string,
)

OPTS = NotationOptions()


class TestScientific:
    def test_multi_digit(self):
        assert scientific_string((3, 1, 4), 1, OPTS) == "3.14e0"

    def test_single_digit(self):
        assert scientific_string((5,), -323, OPTS) == "5e-324"

    def test_hashes(self):
        assert scientific_string((5,), -323, OPTS, hashes=3) == "5.###e-324"

    def test_python_exponent_form(self):
        opts = NotationOptions(python_repr=True)
        assert scientific_string((1,), 24, opts) == "1e+23"
        assert scientific_string((1,), -4, opts) == "1e-05"

    def test_letters_above_nine(self):
        assert scientific_string((15, 15), 2, OPTS) == "f.fe1"


class TestPositional:
    def test_fraction_only(self):
        assert positional_string((3,), 0, OPTS) == "0.3"

    def test_leading_zeros(self):
        # 0.12 * 10**-2
        assert positional_string((1, 2), -2, OPTS) == "0.0012"

    def test_split(self):
        assert positional_string((1, 2, 3, 4), 2, OPTS) == "12.34"

    def test_integer_fill(self):
        assert positional_string((1, 2), 5, OPTS) == "12000"

    def test_integer_fill_hashes(self):
        assert positional_string((1, 2), 5, OPTS, hashes=1) == "12###"

    def test_fixed_fraction_with_position(self):
        assert positional_string((1, 0, 0), 3, OPTS,
                                 min_position=-2) == "100.00"


class TestRenderShortest:
    def _r(self, digits, k):
        return DigitResult(k=k, digits=tuple(digits))

    def test_auto_positional_window(self):
        assert render_shortest(self._r([3], 0)) == "0.3"
        assert render_shortest(self._r([1], -3)) == "0.0001"
        assert render_shortest(self._r([1], 16)) == "1000000000000000"

    def test_auto_scientific_outside_window(self):
        assert render_shortest(self._r([1], -4)) == "1e-5"
        assert render_shortest(self._r([1], 17)) == "1e16"

    def test_forced_styles(self):
        opts = NotationOptions(style="scientific")
        assert render_shortest(self._r([3], 0), opts) == "3e-1"
        opts = NotationOptions(style="positional")
        assert render_shortest(self._r([1], 17), opts) == "1" + "0" * 16

    def test_python_repr_trailing_point(self):
        opts = NotationOptions(python_repr=True)
        assert render_shortest(self._r([3], 1), opts) == "3.0"
        assert render_shortest(self._r([1, 5], 1), opts) == "1.5"

    def test_rejects_unknown_style(self):
        with pytest.raises(RangeError):
            NotationOptions(style="roman")


class TestRenderFixed:
    def test_fraction_with_hashes(self):
        r = FixedResult(k=3, digits=(1, 0, 0) + (0,) * 15, hashes=5,
                        position=-20)
        assert render_fixed(r) == "100." + "0" * 15 + "#" * 5

    def test_zero_result_decimals(self):
        r = FixedResult(k=-2, digits=(), hashes=0, position=-2)
        assert render_fixed(r) == "0.00"

    def test_zero_result_integral(self):
        r = FixedResult(k=0, digits=(), hashes=0, position=0)
        assert render_fixed(r) == "0"

    def test_zero_result_scientific(self):
        r = FixedResult(k=-2, digits=(), hashes=0, position=-2)
        opts = NotationOptions(style="scientific")
        assert render_fixed(r, opts) == "0e-2"

    def test_scientific_fixed(self):
        r = FixedResult(k=-323, digits=(5,), hashes=4, position=-328)
        opts = NotationOptions(style="scientific")
        assert render_fixed(r, opts) == "5.####e-324"

    def test_integral_rounding_position(self):
        r = FixedResult(k=5, digits=(1, 2, 3), hashes=0, position=2)
        assert render_fixed(r) == "12300"

    def test_custom_hash_char(self):
        opts = NotationOptions(hash_char="?")
        r = FixedResult(k=1, digits=(5,), hashes=2, position=-2)
        assert render_fixed(r, opts) == "5.??"


class TestGrouping:
    def test_shortest_grouping(self):
        from repro.core.api import format_shortest

        opts = NotationOptions(style="positional", group_char=",")
        assert format_shortest(1234567.89, options=opts) == "1,234,567.89"
        assert format_shortest(123.0, options=opts) == "123"
        assert format_shortest(1234.0, options=opts) == "1,234"

    def test_fixed_grouping(self):
        from repro.core.api import format_fixed

        opts = NotationOptions(group_char="_")
        assert format_fixed(1234567.891, decimals=2,
                            options=opts) == "1_234_567.89"

    def test_group_size(self):
        opts = NotationOptions(style="positional", group_char=" ",
                               group_size=4)
        assert positional_string((1, 2, 3, 4, 5, 6), 6, opts) == "12 3456"

    def test_fraction_not_grouped(self):
        opts = NotationOptions(style="positional", group_char=",")
        assert positional_string((1, 2, 3, 4), 0, opts) == "0.1234"

    def test_rejects_bad_group_size(self):
        with pytest.raises(RangeError):
            NotationOptions(group_char=",", group_size=0)


class TestEngineering:
    def _r(self, digits, k):
        return DigitResult(k=k, digits=tuple(digits))

    def test_exponent_multiple_of_three(self):
        from repro.format.notation import engineering_string

        opts = NotationOptions(style="engineering")
        assert engineering_string((6, 0, 2), 24, opts) == "602e21"
        assert engineering_string((4, 7), -4, opts) == "47e-6"
        assert engineering_string((1,), 1, opts) == "1e0"
        assert engineering_string((1, 2, 3, 4, 5), 4, opts) == "1.2345e3"

    def test_pads_integral_zeros(self):
        from repro.format.notation import engineering_string

        # 0.1 x 10^3 = 100: needs two padding zeros before the point.
        assert engineering_string((1,), 3, NotationOptions()) == "100e0"

    def test_render_shortest_engineering(self):
        opts = NotationOptions(style="engineering")
        assert render_shortest(self._r([5], -323), opts) == "5e-324"
        assert render_shortest(self._r([9, 9, 9, 9], 3), opts) == "999.9e0"

    def test_render_fixed_engineering(self):
        opts = NotationOptions(style="engineering")
        # 0.5## x 10^-3: the # marks land inside the integral part of
        # the engineering mantissa (5xx e-6).
        r = FixedResult(k=-3, digits=(5,), hashes=2, position=-6)
        assert render_fixed(r, opts) == "5##e-6"

    def test_value_preserved(self):
        from fractions import Fraction

        from repro.format.notation import engineering_string
        from repro.reader.parse import parse_decimal

        for digits, k in (((6, 0, 2, 2), 24), ((4, 7), -4), ((1,), 1),
                          ((9, 9), 2), ((1, 2, 3), 6)):
            s = engineering_string(digits, k, NotationOptions())
            want = DigitResult(k=k, digits=digits).to_fraction()
            assert parse_decimal(s).to_fraction() == want
