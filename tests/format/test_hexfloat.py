"""Hex-float formatting and parsing vs the float.hex/fromhex oracles."""

import pytest
from hypothesis import given, settings

from helpers import finite_doubles
from repro.core.rounding import ReaderMode
from repro.errors import FormatError, ParseError
from repro.floats.formats import BINARY16, BINARY32, BINARY64
from repro.floats.model import Flonum
from repro.format.hexfloat import format_hex, parse_hex, python_hex


class TestPythonHexOracle:
    @given(finite_doubles())
    @settings(max_examples=400)
    def test_matches_float_hex(self, x):
        assert python_hex(x) == x.hex()

    @pytest.mark.parametrize("x", [
        0.0, -0.0, 1.0, 1.5, 0.1, 5e-324, 2.2250738585072014e-308,
        1.7976931348623157e308, -3.14159,
    ])
    def test_curated(self, x):
        assert python_hex(x) == x.hex()

    def test_specials(self):
        assert python_hex(float("nan")) == "nan"
        assert python_hex(float("inf")) == "inf"
        assert python_hex(float("-inf")) == "-inf"


class TestFormatHex:
    def test_trims_trailing_zeros(self):
        assert format_hex(1.5) == "0x1.8p+0"
        assert format_hex(1.0) == "0x1p+0"
        assert format_hex(2.0) == "0x1p+1"

    @given(finite_doubles())
    @settings(max_examples=300)
    def test_fromhex_roundtrip(self, x):
        assert float.fromhex(format_hex(x)) == x

    def test_precision_rounds_nearest_even(self):
        assert format_hex(1.9375, precision=0) == "0x2p+0"
        # 0x1.08p+0: exactly halfway at one hexit, even stays.
        assert format_hex(float.fromhex("0x1.08p+0"), precision=1) == (
            "0x1.0p+0")
        assert format_hex(float.fromhex("0x1.18p+0"), precision=1) == (
            "0x1.2p+0")

    def test_precision_pads(self):
        assert format_hex(1.5, precision=4) == "0x1.8000p+0"

    def test_upper(self):
        assert format_hex(1.5, upper=True) == "0X1.8P+0"

    def test_plus_flag(self):
        assert format_hex(1.5, flags="+") == "+0x1.8p+0"

    def test_zero_forms(self):
        assert format_hex(0.0) == "0x0p+0"
        assert format_hex(-0.0) == "-0x0p+0"
        assert format_hex(0.0, precision=2) == "0x0.00p+0"

    def test_specials(self):
        assert format_hex(float("nan")) == "nan"
        assert format_hex(float("inf"), upper=True) == "INF"
        assert format_hex(float("-inf")) == "-inf"

    def test_denormal(self):
        assert format_hex(5e-324) == "0x0.0000000000001p-1022"


class TestParseHex:
    @given(finite_doubles())
    @settings(max_examples=300)
    def test_parses_float_hex(self, x):
        assert parse_hex(x.hex()) == Flonum.from_float(x)

    @pytest.mark.parametrize("text,x", [
        ("0x1p0", 1.0),
        ("0x1.8p+1", 3.0),
        ("-0x.8p0", -0.5),
        ("0X1.FP4", 31.0),
        ("0x10p-4", 1.0),
        ("0x0p0", 0.0),
    ])
    def test_literal_forms(self, text, x):
        assert parse_hex(text) == Flonum.from_float(x)

    def test_rounding_to_narrow_format(self):
        # 0x1.ffffffp0 needs 25 bits: rounds to 2.0 in binary16.
        v = parse_hex("0x1.ffffffp0", BINARY16)
        assert v.to_fraction() == 2

    def test_rounding_modes(self):
        lo = parse_hex("0x1.00000000000008p0", BINARY64,
                       ReaderMode.TOWARD_ZERO)
        hi = parse_hex("0x1.00000000000008p0", BINARY64,
                       ReaderMode.TOWARD_POSITIVE)
        assert lo < hi

    def test_specials(self):
        assert parse_hex("inf").is_infinite
        assert parse_hex("-Infinity").sign == 1
        assert parse_hex("nan").is_nan

    def test_negative_zero(self):
        v = parse_hex("-0x0.0p0")
        assert v.is_zero and v.is_negative

    @pytest.mark.parametrize("bad", ["", "0x", "0xp3", "1.5", "0x1.8",
                                     "0x1.8pq", "0x1..8p0"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_hex(bad)

    def test_rejects_non_binary_format(self):
        from repro.floats.formats import FloatFormat

        dec = FloatFormat.toy(precision=4, emin=-4, emax=4, radix=10)
        with pytest.raises(FormatError):
            parse_hex("0x1p0", dec)

    def test_overflow_underflow(self):
        assert parse_hex("0x1p100000").is_infinite
        assert parse_hex("0x1p-100000").is_zero

    def test_binary32(self):
        import struct

        x = struct.unpack(">f", struct.pack(">f", 0.1))[0]
        assert parse_hex(x.hex(), BINARY32).to_fraction() == x
