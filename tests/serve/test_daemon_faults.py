"""Wire-level chaos: fault plans armed under live loopback traffic.

The daemon's conversions run through :class:`~repro.serve.BulkPool`,
so PR 5's deterministic fault machinery applies on the wire.  The
contracts under test: the degradation ladder keeps the daemon serving,
recovery counters account for every fired fault, responses stay
byte-identical to the fault-free oracle, and unrecoverable failures
come back as the documented typed error response — the connection is
never hung or crashed by an injected fault.
"""

import pytest

from repro import faults
from repro.engine import Engine
from repro.engine.bulk import format_bulk, ingest_bits, pack_bits, read_bulk
from repro.errors import ReproError, ShardError
from repro.floats.formats import BINARY64
from repro.serve.client import ServeClient
from repro.serve.daemon import serving
from repro.workloads.corpus import uniform_random

VALUES = [v.to_float() for v in uniform_random(300, seed=23, signed=True)] \
    + [0.0, -0.0, float("inf"), float("-inf"), float("nan"), 5e-324]
PACKED = pack_bits(ingest_bits(VALUES, BINARY64), BINARY64)
PLANE = format_bulk(PACKED, BINARY64, engine=Engine())
WANT_BITS = pack_bits(read_bulk(PLANE, BINARY64, engine=Engine()), BINARY64)


@pytest.fixture(autouse=True)
def _disarmed():
    """No test may leak an armed plan into the rest of the suite."""
    yield
    faults.disarm()


def fired_pool_faults(plan):
    with plan._lock:
        return sum(plan.fired.get(s, 0) for s in faults.POOL_SITES)


class TestHealing:
    def test_crashed_shard_heals_byte_identically(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "crash", shard=0)])
        with serving(jobs=2, kind="process", batch_window=0.0) as d:
            with ServeClient(d.host, d.port) as c:
                with faults.armed(plan):
                    got = c.format(PACKED)
                assert got == PLANE
                # And again, fault-free, on the same connection.
                assert c.format(PACKED) == PLANE
            stats = d.pool_stats()
        assert plan.fired["pool.format_shard"] == 1
        assert stats["shard_failures"] >= 1
        assert stats["pool_rebuilds"] >= 1

    def test_corrupt_shard_caught_and_retried(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "corrupt", shard=0)])
        with serving(jobs=2, kind="process", batch_window=0.0) as d:
            with ServeClient(d.host, d.port) as c:
                with faults.armed(plan):
                    assert c.format(PACKED) == PLANE
            stats = d.pool_stats()
        assert stats["corrupt_shards"] >= 1

    def test_stalled_read_shard_misses_deadline_then_heals(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.read_shard", "stall", shard=0,
                             stall=0.6)])
        with serving(jobs=2, kind="process", batch_window=0.0,
                     deadline=0.2) as d:
            with ServeClient(d.host, d.port) as c:
                with faults.armed(plan):
                    assert c.read(PLANE) == WANT_BITS
            stats = d.pool_stats()
        assert stats["deadline_hits"] >= 1

    def test_tier_raises_heal_in_thread_workers(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("engine.tier0", at=(0, 3, 7)),
            faults.FaultSpec("engine.tier1", at=(1, 4)),
        ])
        with serving(jobs=2, kind="thread", batch_window=0.0) as d:
            with ServeClient(d.host, d.port) as c:
                with faults.armed(plan):
                    assert c.format(PACKED) == PLANE
            stats = d.pool_stats()
        assert stats.get("tier_faults", 0) >= 1

    def test_mixed_plan_under_sustained_traffic(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "crash", rate=0.2,
                             attempt=0, limit=3),
            faults.FaultSpec("pool.read_shard", "corrupt", rate=0.2,
                             attempt=0, limit=3),
        ], seed=5)
        with serving(jobs=2, kind="process", batch_window=0.0) as d:
            with ServeClient(d.host, d.port) as c:
                with faults.armed(plan):
                    for _ in range(12):
                        assert c.format(PACKED) == PLANE
                        assert c.read(PLANE) == WANT_BITS
            stats = d.pool_stats()
            serve_stats = d.stats()
        fired = fired_pool_faults(plan)
        assert fired >= 1, "dead chaos leg: the plan never fired"
        recovered = (stats["shard_failures"] + stats["corrupt_shards"]
                     + stats["deadline_hits"])
        assert recovered >= fired
        assert serve_stats["error_responses"] == 0


class TestDegradation:
    def test_ladder_keeps_daemon_serving(self):
        # Crash every process-level attempt: the pool must walk down
        # the ladder and the daemon must keep answering, bytes intact.
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "crash", attempt=None,
                             level="process", limit=None)])
        with serving(jobs=2, kind="process", batch_window=0.0) as d:
            with ServeClient(d.host, d.port) as c:
                with faults.armed(plan):
                    assert c.format(PACKED) == PLANE
                    assert c.format(PACKED) == PLANE  # sticky level
            stats = d.pool_stats()
        assert stats["degradations"] >= 1

    def test_unrecoverable_fault_is_typed_response_not_hang(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "raise", attempt=None,
                             limit=None)])
        with serving(jobs=2, kind="thread", on_error="raise",
                     retries=1, batch_window=0.0) as d:
            with ServeClient(d.host, d.port) as c:
                with faults.armed(plan):
                    with pytest.raises(ReproError, match="ShardError"):
                        c.format(PACKED)
                # The connection survives the typed failure...
                assert c.ping()
                # ...and the daemon serves fault-free afterwards.
                assert c.format(PACKED) == PLANE
            assert d.stats()["error_responses"] == 1

    def test_shard_error_type_travels_by_name(self):
        # ShardError has a structured __init__, so the client degrades
        # it to the ReproError base — but the name must survive.
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.read_shard", "raise", attempt=None,
                             limit=None)])
        with serving(jobs=2, kind="thread", on_error="raise",
                     retries=1, batch_window=0.0) as d:
            with ServeClient(d.host, d.port) as c:
                with faults.armed(plan):
                    try:
                        c.read(PLANE)
                        raised = None
                    except ReproError as exc:
                        raised = exc
        assert raised is not None
        assert not isinstance(raised, ShardError)  # degraded, by design
        assert "ShardError" in str(raised)


class TestAccounting:
    def test_every_fired_fault_is_counted(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "crash", shard=1),
            faults.FaultSpec("pool.format_shard", "corrupt", shard=0,
                             attempt=0, limit=1),
        ])
        with serving(jobs=2, kind="process", batch_window=0.0) as d:
            with ServeClient(d.host, d.port) as c:
                with faults.armed(plan):
                    assert c.format(PACKED) == PLANE
            stats = d.pool_stats()
        fired = fired_pool_faults(plan)
        assert fired >= 2
        recovered = (stats["shard_failures"] + stats["corrupt_shards"]
                     + stats["deadline_hits"])
        assert recovered >= fired

    def test_smoke_plan_over_the_wire(self):
        plan = faults.smoke_plan(seed=11)
        with serving(jobs=2, kind="process", batch_window=0.0) as d:
            with ServeClient(d.host, d.port) as c:
                with faults.armed(plan):
                    assert c.format(PACKED) == PLANE
                    assert c.read(PLANE) == WANT_BITS
            serve_stats = d.stats()
        assert serve_stats["error_responses"] == 0
