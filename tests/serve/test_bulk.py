"""The bulk serving API: column formatting, payload emit, bulk read."""

import pytest

from repro.engine import Engine
from repro.engine.bulk import (
    format_bulk,
    format_column,
    ingest_bits,
    pack_bits,
    read_bulk,
    read_column,
)
from repro.errors import RangeError
from repro.floats.formats import BINARY16, BINARY32, BINARY64
from repro.floats.model import Flonum
from repro.serve import DelimitedWriter
from repro.workloads.corpus import uniform_random, zipf_random

SPECIALS = [0.0, -0.0, float("inf"), float("-inf"), float("nan"),
            5e-324, 1e308, 0.1, 2.0 ** -1022]


def scalar_texts(eng, xs, fmt=BINARY64):
    return [eng.format(Flonum.from_bits(b, fmt), fmt=fmt)
            for b in ingest_bits(xs, fmt)]


class TestFormatColumn:
    def test_matches_scalar_engine_with_and_without_dedup(self):
        eng = Engine()
        xs = SPECIALS + [v.to_float() for v in uniform_random(200, seed=9)] \
            + SPECIALS
        want = scalar_texts(eng, xs)
        assert format_column(xs, engine=eng) == want
        assert format_column(xs, engine=eng, dedup=False) == want

    def test_duplicates_hit_the_kernel_once(self):
        eng = Engine(cache_size=0)  # memo off: conversions == kernel runs
        xs = [0.1] * 50 + [0.2] * 50
        eng.reset_stats()
        out = format_column(xs, engine=eng)
        assert out == ["0.1"] * 50 + ["0.2"] * 50
        assert eng.stats()["conversions"] == 2

    def test_dedup_keys_on_bits_not_float_equality(self):
        eng = Engine()
        out = format_column([0.0, -0.0, float("nan"), float("nan")],
                            engine=eng)
        assert out[0] != out[1]          # signed zeros stay distinct
        assert out[2] == out[3] == "nan"

    @pytest.mark.parametrize("fmt", [BINARY16, BINARY32],
                             ids=lambda f: f.name)
    def test_narrow_formats_go_through_the_generic_path(self, fmt):
        eng = Engine()
        bits = ingest_bits(pack_bits(list(range(40)), fmt), fmt)
        assert format_column(bits, fmt, engine=eng) \
               == scalar_texts(eng, bits, fmt)

    def test_empty_column(self):
        assert format_column([], engine=Engine()) == []


class TestFormatBulk:
    def test_payload_is_newline_terminated_rows(self):
        eng = Engine()
        xs = [1.5, 2.5, 0.1]
        payload = format_bulk(xs, engine=eng)
        assert payload == b"1.5\n2.5\n0.1\n"

    def test_custom_delimiter_and_writer_reuse(self):
        eng = Engine()
        w = DelimitedWriter(b"\x00")
        first = format_bulk([1.0], engine=eng, writer=w)
        assert first == b"1\x00"
        again = format_bulk([2.0], engine=eng, writer=w)
        assert again == b"1\x002\x00"  # appended into the same buffer
        w.clear()
        assert format_bulk([3.0], engine=eng, writer=w) == b"3\x00"

    def test_empty_column_empty_payload(self):
        assert format_bulk([], engine=Engine()) == b""


class TestReadBulk:
    def test_round_trips_the_payload_bit_exactly(self):
        eng = Engine()
        xs = SPECIALS + [v.to_float()
                         for v in uniform_random(100, seed=4, signed=True)]
        bits = ingest_bits(xs, BINARY64)
        payload = format_bulk(xs, engine=eng)
        assert read_bulk(payload, engine=eng) == bits
        flonums = read_bulk(payload, engine=eng, out="flonums")
        assert [v.to_bits() for v in flonums] == bits

    def test_accepts_literal_sequences_too(self):
        eng = Engine()
        texts = ["0.1", "-0", "1e300", "0.1"]
        vals = read_column(texts, engine=eng)
        assert [v.to_bits() for v in vals] == read_bulk(texts, engine=eng)
        assert vals[0] == vals[3]

    def test_dedup_reads_each_distinct_literal_once(self):
        eng = Engine(cache_size=0)
        eng.reset_stats()
        read_bulk(["0.25"] * 30, engine=eng)
        assert eng.stats()["read_conversions"] == 1

    def test_bad_out_kind_raises(self):
        with pytest.raises(RangeError):
            read_bulk(b"1\n", out="strings")

    def test_empty_payload(self):
        assert read_bulk(b"", engine=Engine()) == []


class TestZipfianThroughputShape:
    def test_interning_shrinks_kernel_work_on_skewed_corpora(self):
        eng = Engine(cache_size=0)
        xs = zipf_random(2000, 150, s=1.3, seed=8)
        eng.reset_stats()
        format_column(xs, engine=eng)
        assert eng.stats()["conversions"] == len(set(
            ingest_bits(xs, BINARY64)))


class TestDelimitedWriter:
    def test_terminates_every_row(self):
        w = DelimitedWriter(",")
        w.write("a").extend(["b", "c"]).write_bytes(b"d,")
        assert bytes(w) == b"a,b,c,d,"
        assert len(w) == 8
        assert w.view().tobytes() == w.getvalue()

    def test_empty_delimiter_rejected(self):
        with pytest.raises(RangeError):
            DelimitedWriter("")
