"""The self-healing control plane: circuit breakers, AIMD admission,
traffic observation, hedged dispatch, client reconnect and the HEALTH
opcode.

Breaker and controller state machines are driven on injected fake
clocks — no sleeps, every transition deterministic.  The invariant
under test throughout: the control plane may *shed or reroute, never
change a byte*.
"""

import pytest

from repro import faults
from repro.engine import Engine
from repro.engine.bulk import format_bulk, ingest_bits, pack_bits
from repro.errors import (
    DeadlineExceededError,
    DecodeError,
    ParseError,
    PoolBrokenError,
    ProtocolError,
    ReproError,
    ServeOverloadError,
    ShardError,
)
from repro.floats.formats import BINARY64
from repro.serve import BulkPool
from repro.serve.client import ServeClient
from repro.serve.control import (
    ADMIT,
    CANARY,
    SHED,
    AdmissionController,
    CircuitBreaker,
    TrafficObserver,
)
from repro.serve.daemon import serving

VALUES = [1.5, 2.5, 3.0, -0.0, 5e-324, 1e308]
PACKED = pack_bits(ingest_bits(VALUES, BINARY64), BINARY64)
PLANE = format_bulk(PACKED, BINARY64, engine=Engine())


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture(autouse=True)
def _disarmed():
    """No test may leak an armed plan into the rest of the suite."""
    yield
    faults.disarm()


# ----------------------------------------------------------------------
# Circuit breaker state machine (clock-injected, no sleeps)
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def _breaker(self, **kw):
        clock = FakeClock()
        kw.setdefault("threshold", 3)
        kw.setdefault("reset_timeout", 1.0)
        return CircuitBreaker(clock=clock, **kw), clock

    def test_trips_after_threshold_consecutive_failures(self):
        brk, _ = self._breaker()
        for _ in range(2):
            assert brk.admit() == ADMIT
            brk.record(False)
        assert brk.state == "closed"
        brk.record(False)
        assert brk.state == "open"
        assert brk.trips == 1

    def test_success_resets_the_consecutive_counter(self):
        brk, _ = self._breaker()
        for _ in range(5):  # fail, fail, success — never 3 in a row
            brk.record(False)
            brk.record(False)
            brk.record(True)
        assert brk.state == "closed"
        assert brk.trips == 0

    def test_open_sheds_until_reset_timeout(self):
        brk, clock = self._breaker()
        for _ in range(3):
            brk.record(False)
        assert brk.admit() == SHED
        clock.advance(0.99)
        assert brk.admit() == SHED
        clock.advance(0.01)
        assert brk.admit() == CANARY

    def test_half_open_admits_single_canary_concurrents_shed(self):
        brk, clock = self._breaker()
        for _ in range(3):
            brk.record(False)
        clock.advance(1.0)
        assert brk.admit() == CANARY
        # Concurrent arrivals while the canary is outstanding are shed
        # immediately — never queued behind the probe.
        assert brk.admit() == SHED
        assert brk.admit() == SHED
        assert brk.sheds >= 2
        assert brk.canaries == 1

    def test_canary_success_closes_and_resets_backoff(self):
        brk, clock = self._breaker()
        for _ in range(3):
            brk.record(False)
        clock.advance(1.0)
        assert brk.admit() == CANARY
        brk.record(True, canary=True)
        assert brk.state == "closed"
        assert brk.closes == 1
        # The backoff reset: a later trip waits reset_timeout again,
        # not a remembered multiple.
        for _ in range(3):
            brk.record(False)
        clock.advance(1.0)
        assert brk.admit() == CANARY

    def test_canary_failure_reopens_with_full_doubled_backoff(self):
        brk, clock = self._breaker()
        for _ in range(3):
            brk.record(False)
        clock.advance(1.0)
        assert brk.admit() == CANARY
        brk.record(False, canary=True)
        assert brk.state == "open"
        assert brk.reopens == 1
        # The next probe waits the whole doubled window from *now* —
        # not the remainder of the old one.
        clock.advance(1.99)
        assert brk.admit() == SHED
        clock.advance(0.01)
        assert brk.admit() == CANARY

    def test_backoff_caps_at_max_reset_timeout(self):
        brk, clock = self._breaker(max_reset_timeout=3.0)
        for _ in range(3):
            brk.record(False)
        for _ in range(5):  # 1 -> 2 -> 3 -> 3 -> 3
            clock.advance(100.0)
            assert brk.admit() == CANARY
            brk.record(False, canary=True)
        assert brk.snapshot()["reset_timeout"] == 3.0

    def test_late_results_do_not_perturb_the_open_machine(self):
        # A request admitted before the trip, finishing after it, must
        # not close or re-trip the breaker — only the canary decides.
        brk, clock = self._breaker()
        for _ in range(3):
            brk.record(False)
        brk.record(True)
        assert brk.state == "open"
        brk.record(False)
        assert brk.trips == 1

    def test_data_errors_are_not_infrastructure_failures(self):
        assert CircuitBreaker.is_failure(ShardError(0, 1, ValueError()))
        assert CircuitBreaker.is_failure(PoolBrokenError("gone"))
        assert CircuitBreaker.is_failure(
            DeadlineExceededError("late", shard=0))
        assert not CircuitBreaker.is_failure(ParseError("bad literal"))
        assert not CircuitBreaker.is_failure(DecodeError("bad payload"))
        assert not CircuitBreaker.is_failure(None)

    def test_shed_error_is_typed_overload(self):
        brk, _ = self._breaker()
        err = brk.shed_error("binary64")
        assert isinstance(err, ServeOverloadError)
        assert "binary64" in str(err)

    def test_snapshot_accounts_every_transition(self):
        brk, clock = self._breaker()
        for _ in range(3):
            brk.record(False)
        brk.admit()  # shed
        clock.advance(1.0)
        brk.admit()  # canary
        brk.record(False, canary=True)
        clock.advance(2.0)
        brk.admit()  # canary again
        brk.record(True, canary=True)
        snap = brk.snapshot()
        assert snap["state"] == "closed"
        assert snap["trips"] == 1
        assert snap["reopens"] == 1
        assert snap["closes"] == 1
        assert snap["sheds"] == 1
        assert snap["canaries"] == 2


# ----------------------------------------------------------------------
# AIMD admission controller
# ----------------------------------------------------------------------

class TestAdmissionController:
    def test_decreases_to_floor_then_recovers_to_ceiling(self):
        ctl = AdmissionController(target_p99_ms=10.0,
                                  ceiling_bytes=1 << 20,
                                  floor_bytes=1 << 16,
                                  step_bytes=1 << 18,
                                  window=64, adjust_every=16)
        for _ in range(16 * 8):
            ctl.observe(0.050)  # 50ms >> 10ms target
        assert ctl.limit_bytes == ctl.floor_bytes
        assert ctl.decreases >= 1
        for _ in range(16 * 16):
            ctl.observe(0.001)  # 1ms << target
        assert ctl.limit_bytes == ctl.ceiling_bytes
        assert ctl.increases >= 1

    def test_limit_never_leaves_the_bounds(self):
        ctl = AdmissionController(target_p99_ms=10.0,
                                  ceiling_bytes=1 << 18,
                                  floor_bytes=1 << 16,
                                  adjust_every=4, window=8)
        for _ in range(200):
            ctl.observe(0.050)
            assert ctl.floor_bytes <= ctl.limit_bytes \
                <= ctl.ceiling_bytes
        for _ in range(200):
            ctl.observe(0.0001)
            assert ctl.floor_bytes <= ctl.limit_bytes \
                <= ctl.ceiling_bytes

    def test_shed_error_is_typed(self):
        ctl = AdmissionController(target_p99_ms=1.0)
        err = ctl.shed_error(100, 200)
        assert isinstance(err, ServeOverloadError)
        assert "adaptive limit" in str(err)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(target_p99_ms=0.0)
        with pytest.raises(ValueError):
            AdmissionController(target_p99_ms=1.0, floor_bytes=2,
                                ceiling_bytes=1)


# ----------------------------------------------------------------------
# Traffic observation and tier selection
# ----------------------------------------------------------------------

class TestTrafficObserver:
    def test_flat_until_min_rows_sampled(self):
        obs = TrafficObserver(min_rows=256)
        obs.observe_format("binary64", BINARY64, PACKED)
        assert obs.classify() == "flat"

    def test_zipf_corpus_detected_by_dup_factor(self):
        obs = TrafficObserver(sample_rows=64, min_rows=64)
        hot = pack_bits(ingest_bits([1.5] * 64, BINARY64), BINARY64)
        obs.observe_format("binary64", BINARY64, hot)
        obs.observe_format("binary64", BINARY64, hot)
        assert obs.classify() == "zipf"
        write, read = obs.tier_orders()
        assert write == ("tier0", "grisu3")
        assert read == ("tier0", "lemire")

    def test_specials_corpus_detected_by_fraction(self):
        obs = TrafficObserver(sample_rows=64, min_rows=64)
        mixed = [float(i) for i in range(1, 60)] \
            + [float("inf"), float("-inf"), float("nan")] * 2
        payload = pack_bits(ingest_bits(mixed, BINARY64), BINARY64)
        obs.observe_format("binary64", BINARY64, payload)
        obs.observe_format("binary64", BINARY64, payload)
        assert obs.classify() == "specials"
        write, read = obs.tier_orders()
        assert write == ("tier0", "schubfach")

    def test_flat_corpus_keeps_contender_winners(self):
        obs = TrafficObserver(sample_rows=256, min_rows=64)
        distinct = [1.0 + i / 7.0 for i in range(300)]
        payload = pack_bits(ingest_bits(distinct, BINARY64), BINARY64)
        obs.observe_format("binary64", BINARY64, payload)
        assert obs.classify() == "flat"
        write, read = obs.tier_orders()
        assert write == ("schubfach",)
        assert read == ("lemire",)

    def test_hot_values_ranked_finite_nonzero(self):
        obs = TrafficObserver(sample_rows=128)
        vals = [1.5] * 10 + [2.5] * 3 + [0.0, float("inf"),
                                         float("nan")]
        payload = pack_bits(ingest_bits(vals, BINARY64), BINARY64)
        obs.observe_format("binary64", BINARY64, payload)
        hot = obs.hot_values()
        assert hot[0].to_float() == 1.5
        assert all(v.is_finite and not v.is_zero for v in hot)

    def test_read_plane_digit_histogram(self):
        obs = TrafficObserver()
        obs.observe_read(b"1.5\n22.25\n1e308\n", b"\n")
        summary = obs.summary()
        assert summary["rows"] == 3
        assert summary["digit_len_hist"][3] == 1  # "1.5"

    def test_rotation_counter_resets(self):
        obs = TrafficObserver(sample_rows=64)
        obs.observe_format("binary64", BINARY64, PACKED)
        assert obs.rows_since_rotation == len(VALUES)
        obs.rotation_done()
        assert obs.rows_since_rotation == 0


# ----------------------------------------------------------------------
# Hedged shard dispatch
# ----------------------------------------------------------------------

class TestHedgedDispatch:
    def test_hedge_beats_a_stalled_shard_byte_identically(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "stall", shard=0,
                             attempt=0, stall=0.4)])
        with BulkPool(jobs=2, kind="thread", hedge=True,
                      hedge_min=0.05, hedge_with_faults=True) as pool:
            with faults.armed(plan):
                got = pool.format_bulk(PACKED)
            stats = pool.stats()
        assert got == PLANE
        assert stats["hedges"] >= 1
        assert stats["hedge_wins"] >= 1

    def test_hedging_suppressed_under_armed_plans_by_default(self):
        # Determinism contract: unless a chaos leg opts in, hedge legs
        # never race a scripted fault plan — the retry path heals.
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "raise", shard=1)])
        with BulkPool(jobs=2, kind="thread", hedge=True,
                      hedge_min=0.01) as pool:
            with faults.armed(plan):
                got = pool.format_bulk(PACKED)
            stats = pool.stats()
        assert got == PLANE
        assert stats["hedges"] == 0
        assert stats["shard_retries"] == 1

    def test_bad_hedge_min_rejected(self):
        from repro.errors import RangeError
        with pytest.raises(RangeError, match="hedge_min"):
            BulkPool(jobs=2, kind="thread", hedge=True, hedge_min=0.0)


# ----------------------------------------------------------------------
# The daemon's control plane on the wire
# ----------------------------------------------------------------------

class TestDaemonControl:
    def test_breaker_trips_sheds_and_heals_on_fake_clock(self):
        clock = FakeClock()
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "raise",
                             attempt=None, limit=None)])
        with serving(jobs=1, kind="thread", batch_window=0.0,
                     on_error="raise", retries=0, breaker_threshold=2,
                     breaker_reset=1.0, clock=clock) as d:
            with ServeClient(d.host, d.port) as c:
                with faults.armed(plan):
                    for _ in range(2):
                        # ShardError's structured signature degrades
                        # to the base class on the wire; the name
                        # travels in the message.
                        with pytest.raises(ReproError,
                                           match="ShardError"):
                            c.format(PACKED)
                    with pytest.raises(ServeOverloadError,
                                       match="circuit breaker open"):
                        c.format(PACKED)
                # Plan disarmed, clock past the backoff: the canary
                # request heals the key byte-identically.
                clock.advance(1.5)
                assert c.format(PACKED) == PLANE
            stats = d.stats()
        assert stats["breaker_trips"] == 1
        assert stats["breaker_sheds"] >= 1
        assert stats["breaker_canaries"] == 1
        assert stats["breaker_closes"] == 1

    def test_health_opcode_returns_control_summary(self):
        with serving(breaker_threshold=3, slo_target_ms=100.0,
                     observe_stride=1) as d:
            with ServeClient(d.host, d.port) as c:
                assert c.format(PACKED) == PLANE
                health = c.health()
            stats = d.stats()
        assert isinstance(health["breakers"], dict)
        assert health["admission"]["target_p99_ms"] == 100.0
        assert health["observer"]["requests"] >= 1
        assert stats["health_requests"] == 1

    def test_adaptive_tiers_stay_byte_identical(self):
        with serving(adaptive_tiers=True, observe_stride=1) as d:
            with ServeClient(d.host, d.port) as c:
                # First request builds the pool from the (cold)
                # observer's ordering; repeats keep matching the
                # scalar oracle whatever the observer decides.
                for _ in range(4):
                    assert c.format(PACKED) == PLANE

    def test_observer_counted_in_stats(self):
        with serving(observe_stride=1) as d:
            with ServeClient(d.host, d.port) as c:
                c.format(PACKED)
                c.format(PACKED)
            assert d.stats()["observed_requests"] >= 1


# ----------------------------------------------------------------------
# Client reconnect-and-retry (idempotent ops only)
# ----------------------------------------------------------------------

class TestClientReconnect:
    def test_reconnects_once_across_daemon_restart(self):
        with serving() as d1:
            client = ServeClient(d1.host, d1.port)
            assert client.format(PACKED) == PLANE
            port = d1.port
        try:
            # The daemon restarted on the same port: the next
            # idempotent request reconnects transparently, once.
            with serving(port=port) as d2:
                assert client.format(PACKED) == PLANE
                assert client.reconnects == 1
                assert client.ping()
                assert client.reconnects == 1  # live socket reused
        finally:
            client.close()

    def test_reconnect_failure_surfaces_typed(self):
        with serving() as d:
            client = ServeClient(d.host, d.port)
            assert client.format(PACKED) == PLANE
        try:
            with pytest.raises(ProtocolError,
                               match="reconnect failed"):
                client.format(PACKED)
            assert client.reconnects == 0  # no half-counted retry
        finally:
            client.close()
