"""Wire-protocol conformance and framing fuzz.

Two layers: pure codec tests on :mod:`repro.serve.protocol` (no
sockets), then a live loopback daemon fed hostile byte streams —
truncated frames, oversized length prefixes, garbage headers,
zero-length payloads, pipelined bursts and mid-frame disconnects.  The
contract under attack: every malformed input yields a typed
:class:`~repro.errors.ReproError` *response* (never a hung or crashed
connection), and every well-formed response is byte-identical to the
in-process ``format_bulk``/``read_bulk`` oracles.
"""

import socket
import struct

import pytest

from repro.engine import Engine
from repro.engine.bulk import format_bulk, ingest_bits, pack_bits, read_bulk
from repro.errors import (
    DecodeError,
    ParseError,
    ProtocolError,
    ReproError,
    ServeOverloadError,
)
from repro.floats.formats import BINARY16, BINARY64, STANDARD_FORMATS
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.daemon import serving
from repro.workloads.corpus import uniform_random

VALUES = [v.to_float() for v in uniform_random(200, seed=3, signed=True)] \
    + [0.0, -0.0, float("inf"), float("-inf"), float("nan"), 5e-324]
BITS = ingest_bits(VALUES, BINARY64)
PACKED = pack_bits(BITS, BINARY64)
PLANE = format_bulk(PACKED, BINARY64, engine=Engine())
WANT_BITS = pack_bits(read_bulk(PLANE, BINARY64, engine=Engine()), BINARY64)


@pytest.fixture(scope="module")
def daemon():
    with serving(jobs=1, kind="thread", batch_window=0.0) as d:
        yield d


@pytest.fixture()
def client(daemon):
    with ServeClient(daemon.host, daemon.port, timeout=30) as c:
        yield c


# ----------------------------------------------------------------------
# Codec (no sockets)
# ----------------------------------------------------------------------

class TestCodec:
    def test_request_roundtrip(self):
        frame = protocol.encode_request(
            protocol.OP_READ, b"1.5\n", "binary32", b";")
        body, consumed = protocol.frame_and_body(frame)
        assert consumed == len(frame)
        req = protocol.parse_request(body)
        assert req.op == protocol.OP_READ
        assert req.fmt_name == "binary32"
        assert req.delimiter == b";"
        assert req.payload == b"1.5\n"
        assert req.fmt is STANDARD_FORMATS["binary32"]

    def test_ping_frame_has_empty_header(self):
        frame = protocol.encode_request(protocol.OP_PING)
        body, _ = protocol.frame_and_body(frame)
        req = protocol.parse_request(body)
        assert req.op == protocol.OP_PING
        assert req.payload == b""

    def test_response_roundtrip(self):
        frame = protocol.encode_response(b"payload")
        body, _ = protocol.frame_and_body(frame)
        assert protocol.parse_response(body) == (protocol.STATUS_OK,
                                                 b"payload")

    def test_error_roundtrip_preserves_type(self):
        frame = protocol.encode_error(ParseError("bad literal 'x'"))
        body, _ = protocol.frame_and_body(frame)
        status, payload = protocol.parse_response(body)
        assert status == protocol.STATUS_ERROR
        with pytest.raises(ParseError, match="bad literal"):
            protocol.raise_error_payload(payload)

    def test_error_with_structured_init_degrades_to_base(self):
        from repro.errors import ShardError

        frame = protocol.encode_error(
            ShardError(1, 3, ValueError("boom")))
        body, _ = protocol.frame_and_body(frame)
        _, payload = protocol.parse_response(body)
        with pytest.raises(ReproError, match="ShardError"):
            protocol.raise_error_payload(payload)

    def test_unknown_error_name_degrades_to_base(self):
        payload = bytes((7,)) + b"Unknown" + b"msg"
        with pytest.raises(ReproError):
            protocol.raise_error_payload(payload)

    def test_non_repro_exception_encodes_as_base(self):
        frame = protocol.encode_error(ValueError("not ours"))
        body, _ = protocol.frame_and_body(frame)
        _, payload = protocol.parse_response(body)
        assert payload[1:1 + payload[0]] == b"ReproError"

    def test_delimiter_length_enforced_on_encode(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(protocol.OP_READ, b"", "binary64",
                                    b"123456789")
        with pytest.raises(ProtocolError):
            protocol.encode_request(protocol.OP_READ, b"", "binary64", b"")

    @pytest.mark.parametrize("body,recoverable", [
        (b"", True),                                   # short body
        (b"\xb5", True),
        (bytes((protocol.MAGIC, 99, 0, 0)), True),     # unknown opcode
        (bytes((protocol.MAGIC, 1, 250)) + b"x", True),  # name overrun
        (bytes((protocol.MAGIC, 1, 2)) + b"zz" + bytes((1,)) + b"\n",
         True),                                        # unknown format
        (bytes((protocol.MAGIC, 1, 8)) + b"binary64" + bytes((0,)),
         True),                                        # delimiter len 0
        (bytes((protocol.MAGIC, 1, 8)) + b"binary64" + bytes((8,)) + b";",
         True),                                        # delim overrun
        (bytes((0x00, 1, 0, 0)), False),               # bad magic
    ])
    def test_malformed_request_bodies(self, body, recoverable):
        with pytest.raises(ProtocolError) as exc:
            protocol.parse_request(body)
        assert exc.value.recoverable is recoverable

    def test_frame_and_body_incremental(self):
        frame = protocol.encode_request(protocol.OP_PING)
        for cut in range(len(frame)):
            assert protocol.frame_and_body(frame[:cut]) is None or cut >= 4
        body, consumed = protocol.frame_and_body(frame + b"extra")
        assert consumed == len(frame)

    def test_frame_and_body_rejects_bad_lengths(self):
        with pytest.raises(ProtocolError):
            protocol.frame_and_body(struct.pack(">I", 0) + b"x")
        with pytest.raises(ProtocolError):
            protocol.frame_and_body(struct.pack(">I", 2**31))


# ----------------------------------------------------------------------
# Live conformance: byte identity vs the in-process oracles
# ----------------------------------------------------------------------

class TestConformance:
    def test_format_matches_oracle(self, client):
        assert client.format(PACKED, "binary64") == PLANE

    def test_read_matches_oracle(self, client):
        assert client.read(PLANE, "binary64") == WANT_BITS == PACKED

    def test_ping(self, client):
        assert client.ping()

    def test_custom_delimiter(self, client):
        want = format_bulk(PACKED, BINARY64, delimiter=b";",
                           engine=Engine())
        assert client.format(PACKED, "binary64", b";") == want
        assert client.read(want, "binary64", b";") == PACKED

    def test_empty_payloads(self, client):
        assert client.format(b"", "binary64") == b""
        assert client.read(b"", "binary64") == b""

    def test_unterminated_read_plane(self, client):
        want = pack_bits(read_bulk(b"1.5\n2.5", BINARY64,
                                   engine=Engine()), BINARY64)
        assert client.read(b"1.5\n2.5", "binary64") == want

    def test_binary16_leg(self, client):
        packed16 = pack_bits([0x3C00, 0x0001, 0x7BFF, 0xFC00], BINARY16)
        want = format_bulk(packed16, BINARY16, engine=Engine())
        assert client.format(packed16, "binary16") == want

    def test_pipelined_requests_fifo(self, client):
        frames, want = [], []
        for i in range(16):
            if i % 2:
                frames.append(protocol.encode_request(
                    protocol.OP_FORMAT, PACKED, "binary64", b"\n"))
                want.append((protocol.STATUS_OK, PLANE))
            else:
                frames.append(protocol.encode_request(
                    protocol.OP_READ, PLANE, "binary64", b"\n"))
                want.append((protocol.STATUS_OK, PACKED))
        assert client.pipeline(frames) == want


# ----------------------------------------------------------------------
# Framing fuzz against the live daemon
# ----------------------------------------------------------------------

class TestFuzz:
    def test_garbage_header_yields_typed_error(self, client):
        client.send_raw(struct.pack(">I", 4) + b"\x00\x01\x02\x03")
        with pytest.raises(ProtocolError, match="magic"):
            client._response()

    def test_unknown_opcode_keeps_connection(self, client):
        client.send_raw(struct.pack(">I", 4)
                        + bytes((protocol.MAGIC, 77, 0, 0)))
        with pytest.raises(ProtocolError, match="opcode"):
            client._response()
        # Recoverable: the same connection still serves.
        assert client.format(PACKED, "binary64") == PLANE

    def test_unknown_format_keeps_connection(self, client):
        client.send_raw(protocol.encode_request(
            protocol.OP_FORMAT, b"", "no_such_fmt", b"\n"))
        with pytest.raises(ProtocolError, match="unknown format"):
            client._response()
        assert client.ping()

    def test_zero_length_frame_closes_with_typed_error(self, daemon):
        with ServeClient(daemon.host, daemon.port) as c:
            c.send_raw(struct.pack(">I", 0))
            with pytest.raises(ProtocolError, match="length"):
                c._response()
            assert c.recv_body() is None  # then EOF, not a hang

    def test_oversized_length_prefix_closes_with_typed_error(self, daemon):
        with ServeClient(daemon.host, daemon.port) as c:
            c.send_raw(struct.pack(">I", 0xFFFFFFFF))
            with pytest.raises(ProtocolError, match="length"):
                c._response()
            assert c.recv_body() is None

    def test_misaligned_format_payload_typed_error(self, client):
        with pytest.raises(DecodeError, match="multiple"):
            client.format(b"\x00" * 9, "binary64")
        assert client.ping()

    def test_garbage_literal_typed_error(self, client):
        with pytest.raises(ParseError):
            client.read(b"1.5\nnot a number\n2.5\n", "binary64")
        assert client.read(b"2.5\n", "binary64") == pack_bits(
            [ingest_bits([2.5], BINARY64)[0]], BINARY64)

    def test_decimal_format_has_no_bit_encoding(self, client):
        with pytest.raises(DecodeError):
            client.format(b"\x00" * 4, "decimal32")

    def test_mid_frame_disconnect_leaves_daemon_serving(self, daemon):
        before = daemon.stats()["connections"]
        sock = socket.create_connection((daemon.host, daemon.port))
        frame = protocol.encode_request(protocol.OP_FORMAT, PACKED,
                                        "binary64", b"\n")
        sock.sendall(frame[:len(frame) // 2])
        sock.close()
        with ServeClient(daemon.host, daemon.port) as c:
            assert c.format(PACKED, "binary64") == PLANE
        assert daemon.stats()["connections"] >= before + 2

    def test_mixed_garbage_then_valid_pipelined(self, client):
        bad = struct.pack(">I", 4) + bytes((protocol.MAGIC, 66, 0, 0))
        good = protocol.encode_request(protocol.OP_FORMAT, PACKED,
                                       "binary64", b"\n")
        client.send_raw(bad + good)
        responses = [client.recv_body() for _ in range(2)]
        status0, payload0 = protocol.parse_response(responses[0])
        assert status0 == protocol.STATUS_ERROR
        with pytest.raises(ProtocolError):
            protocol.raise_error_payload(payload0)
        assert protocol.parse_response(responses[1]) \
            == (protocol.STATUS_OK, PLANE)

    def test_random_garbage_streams_never_hang(self, daemon):
        import random

        rng = random.Random(0xF022)
        for _ in range(20):
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 64)))
            with ServeClient(daemon.host, daemon.port, timeout=10) as c:
                c.send_raw(blob)
                c._sock.shutdown(socket.SHUT_WR)
                # The daemon must close (possibly after a typed error
                # response) — never hang the connection.
                try:
                    while c.recv_body() is not None:
                        pass
                except ProtocolError:
                    pass
        # And it still serves.
        with ServeClient(daemon.host, daemon.port) as c:
            assert c.format(PACKED, "binary64") == PLANE
