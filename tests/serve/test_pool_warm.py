"""Warm-started :class:`BulkPool`: snapshot transport to workers, the
shared-memory hot plane, and every degradation path.

Invariant throughout: a warm pool's payload is byte-identical to a cold
pool's, whatever happens to the snapshot or the shared-memory segment
on the way — defects cost warmth (and count ``snapshot_faults``), never
correctness.
"""

import pytest

from repro.engine import Engine, build_snapshot, hot_entries, save_snapshot
from repro.engine.bulk import format_bulk, read_bulk
from repro.floats.model import Flonum
from repro.serve import BulkPool
from repro.serve.pool import (
    _attach_shm,
    _build_warm_engine,
    _consume_warm_faults,
)
from repro.workloads.corpus import zipf_random

CORPUS = [v.to_float() for v in zipf_random(600, 80, seed=21, signed=True)] \
    + [0.0, -0.0, float("nan"), float("inf"), float("-inf"), 5e-324]

WANT = format_bulk(CORPUS, engine=Engine())


def _snapshot():
    donor = Engine()
    texts = donor.format_many(CORPUS)
    donor.read_many([t for t in texts if t not in ("nan", "inf", "-inf")])
    hot = hot_entries(
        [Flonum.from_float(x) for x in CORPUS
         if x == x and abs(x) not in (0.0, float("inf"))],
        engine=donor)
    return build_snapshot(["binary64"], engine=donor, hot=hot)


@pytest.fixture(scope="module")
def snap_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("warm") / "warm.snap"
    save_snapshot(_snapshot(), path)
    return path


class TestWarmIdentity:
    @pytest.mark.parametrize("kind", ["process", "thread"])
    def test_pool_format_bytes_identical(self, snap_path, kind):
        with BulkPool(jobs=2, kind=kind, snapshot=snap_path) as pool:
            got = pool.format_bulk(CORPUS)
            stats = pool.stats()
        assert got == WANT
        assert stats["snapshot_faults"] == 0

    @pytest.mark.parametrize("kind", ["process", "thread"])
    def test_pool_read_bits_identical(self, snap_path, kind):
        with BulkPool(jobs=2, kind=kind) as cold:
            want_bits = cold.read_bulk(WANT)
        with BulkPool(jobs=2, kind=kind, snapshot=snap_path) as pool:
            got = pool.read_bulk(WANT)
            stats = pool.stats()
        assert got == want_bits
        assert stats["snapshot_faults"] == 0

    def test_serial_path_through_module_function(self, snap_path):
        assert format_bulk(CORPUS, jobs=1, snapshot=snap_path) == WANT
        assert read_bulk(WANT, jobs=1, snapshot=snap_path) \
            == read_bulk(WANT, jobs=1)

    def test_jobs2_module_function(self, snap_path):
        assert format_bulk(CORPUS, jobs=2, snapshot=snap_path) == WANT


class TestDegradation:
    def test_corrupt_snapshot_counts_parent_fault(self, snap_path,
                                                  tmp_path):
        blob = bytearray(snap_path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        bad = tmp_path / "bad.snap"
        bad.write_bytes(bytes(blob))
        with BulkPool(jobs=2, snapshot=bad) as pool:
            got = pool.format_bulk(CORPUS)
            stats = pool.stats()
        assert got == WANT
        assert stats["snapshot_faults"] >= 1

    def test_mid_rewrite_truncation_counts_parent_fault(self, snap_path,
                                                        tmp_path):
        blob = snap_path.read_bytes()
        torn = tmp_path / "torn.snap"
        torn.write_bytes(blob[:len(blob) // 3])
        with BulkPool(jobs=2, snapshot=torn) as pool:
            assert pool.format_bulk(CORPUS) == WANT
            assert pool.stats()["snapshot_faults"] >= 1

    def test_no_shared_memory_falls_back_to_plane_bytes(self, snap_path):
        # A host without POSIX shared memory still warms every worker
        # through the serialized plane copy in the initargs.
        import multiprocessing.shared_memory as shm_mod

        def _unavailable(*a, **kw):
            raise OSError("shared memory disabled for test")

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(shm_mod, "SharedMemory", _unavailable)
            pool = BulkPool(jobs=2, snapshot=snap_path)
        try:
            assert pool._shm is None
            assert pool._warm is not None
            assert pool._warm["plane_shm"] is None
            assert pool._warm["plane_bytes"] is not None
            assert pool.format_bulk(CORPUS) == WANT
            assert pool.stats()["snapshot_faults"] == 0
        finally:
            pool.close()

    def test_vanished_segment_degrades_silently(self, snap_path):
        # Workers that cannot attach the named segment fall back to
        # their private plane copy: warm, correct, no fault (losing a
        # shared mapping is not a data defect).
        pool = BulkPool(jobs=2, snapshot=snap_path)
        try:
            assert pool._warm is not None
            if pool._shm is not None:
                pool._warm["plane_shm"] = "repro-gone-" + pool._shm.name
            assert pool.format_bulk(CORPUS) == WANT
            assert pool.stats()["snapshot_faults"] == 0
        finally:
            pool.close()

    def test_worker_side_corrupt_snapshot_reports_once(self, snap_path,
                                                       tmp_path):
        # Chaos: the file is replaced with garbage between parent
        # validation and worker start (the parent already restored its
        # tables, so only the workers see the defect).  Each worker
        # counts exactly one fault, folded into pool stats.
        bad = tmp_path / "swapped.snap"
        blob = bytearray(snap_path.read_bytes())
        blob[-1] ^= 0xFF
        bad.write_bytes(bytes(blob))
        pool = BulkPool(jobs=2, snapshot=snap_path)
        try:
            assert pool._warm is not None
            pool._warm["snapshot"] = bad
            got = pool.format_bulk(CORPUS)
            stats = pool.stats()
        finally:
            pool.close()
        assert got == WANT
        assert 1 <= stats["snapshot_faults"] <= 2  # once per worker

    def test_close_releases_segment_but_keeps_serving(self, snap_path):
        pool = BulkPool(jobs=2, snapshot=snap_path)
        try:
            assert pool.format_bulk(CORPUS) == WANT
            pool.close()
            # Rebuilt workers warm from the plane-bytes copy.
            assert pool._shm is None
            assert pool.format_bulk(CORPUS) == WANT
            assert pool.stats()["snapshot_faults"] == 0
        finally:
            pool.close()


class TestWorkerWarmup:
    """The worker-side warm-up helpers, exercised in-process."""

    def test_build_warm_engine_serves_hot(self, snap_path):
        from repro.engine.snapshot import HotPlane, load_snapshot

        _consume_warm_faults()  # isolate the module tally
        plane_bytes = HotPlane.from_snapshot(load_snapshot(snap_path),
                                             "binary64")
        eng = _build_warm_engine({"snapshot": snap_path,
                                  "plane_shm": None,
                                  "plane_bytes": plane_bytes})
        assert _consume_warm_faults() == 0
        assert eng.format_many(CORPUS) == Engine().format_many(CORPUS)
        stats = eng.stats()
        assert stats["snapshot_faults"] == 0
        assert stats["cache_hits"] + stats["hot_hits"] > 0

    def test_build_warm_engine_tallies_faults(self, tmp_path):
        _consume_warm_faults()
        eng = _build_warm_engine({"snapshot": tmp_path / "absent.snap",
                                  "plane_shm": None,
                                  "plane_bytes": b"garbage plane"})
        # One fault for the missing snapshot, one for the bad plane —
        # tallied for the next shard delta, zeroed on the engine.
        assert _consume_warm_faults() == 2
        assert _consume_warm_faults() == 0
        assert eng.stats()["snapshot_faults"] == 0
        assert eng.format_many(CORPUS) == Engine().format_many(CORPUS)

    def test_attach_shm_does_not_own_the_segment(self):
        from multiprocessing import shared_memory

        owner = shared_memory.SharedMemory(create=True, size=64)
        try:
            owner.buf[:4] = b"warm"
            seen = _attach_shm(owner.name)
            assert bytes(seen.buf[:4]) == b"warm"
            seen.close()
            # The attachment never unlinks: the owner's mapping (and a
            # fresh attach) still works after the reader goes away.
            again = _attach_shm(owner.name)
            assert bytes(again.buf[:4]) == b"warm"
            again.close()
        finally:
            owner.close()
            owner.unlink()
