"""The byte-plane pipeline: split/classify/parse/format over whole
delimited buffers, byte- and bit-compared against the row-at-a-time
path."""

import math

import pytest

from repro.engine import Engine, ReadEngine
from repro.engine.buffer import (
    classify_tokens,
    format_buffer,
    parse_buffer,
    split_plane,
    split_rows,
)
from repro.engine.bulk import format_column, ingest_bits, pack_bits
from repro.errors import DecodeError, ParseError, RangeError
from repro.floats.formats import BINARY16, BINARY32, BINARY64, BINARY128
from repro.serve import BulkPool, DelimitedWriter
from repro.workloads.corpus import duplicated_random, uniform_random

CORPUS = [v.to_float() for v in duplicated_random(800, 60, seed=11)] + [
    0.0, -0.0, float("nan"), float("inf"), float("-inf"),
    5e-324, -5e-324, 2.2250738585072014e-308,
]


def row_payload(xs, fmt=BINARY64):
    texts = format_column(ingest_bits(xs, fmt), fmt, engine=Engine())
    return DelimitedWriter().extend(texts).getvalue(), texts


class TestSplitPlane:
    def test_offsets_and_lengths_reconstruct_rows(self):
        plane, starts, lengths = split_plane(b"1.5\n-2e3\nnan\n")
        assert plane == b"1.5\n-2e3\nnan\n"
        rows = [plane[s:s + n] for s, n in zip(starts, lengths)]
        assert rows == [b"1.5", b"-2e3", b"nan"]

    def test_trailing_delimiter_no_phantom_row(self):
        _, starts, _ = split_plane(b"1\n2\n")
        assert len(starts) == 2

    def test_unterminated_tail_is_a_row(self):
        plane, starts, lengths = split_plane(b"1\n2")
        assert [plane[s:s + n] for s, n in zip(starts, lengths)] \
            == [b"1", b"2"]

    def test_crlf_and_multibyte_delimiters(self):
        for delim in (b"\r\n", b"||", "::"):
            d = delim.encode() if isinstance(delim, str) else delim
            data = d.join([b"1", b"2", b"3"]) + d
            plane, starts, lengths = split_plane(data, delim)
            assert [plane[s:s + n] for s, n in zip(starts, lengths)] \
                == [b"1", b"2", b"3"]

    def test_numpy_leg_agrees_with_find_walk(self):
        # 1-byte delimiter over >= 64 bytes takes the vector leg when
        # numpy is present; the result must match the C-find walk that
        # multi-byte delimiters always use.
        rows = [str(i).encode("ascii") for i in range(64)]
        data = b"\n".join(rows) + b"\n"
        plane, starts, lengths = split_plane(data)
        assert [plane[s:s + n] for s, n in zip(starts, lengths)] == rows
        wide = b"--".join(rows) + b"--"
        plane2, starts2, lengths2 = split_plane(wide, b"--")
        assert [plane2[s:s + n]
                for s, n in zip(starts2, lengths2)] == rows

    def test_empty_and_only_delimiter_planes(self):
        assert split_plane(b"")[1:] == (split_plane(b"")[1],
                                        split_plane(b"")[2])
        _, starts, _ = split_plane(b"")
        assert len(starts) == 0
        plane, starts, lengths = split_plane(b"\n\n\n")
        assert [plane[s:s + n] for s, n in zip(starts, lengths)] \
            == [b"", b"", b""]

    def test_split_rows_decodes_ascii(self):
        assert split_rows(b"1.5\n2.5\n") == ["1.5", "2.5"]
        assert split_rows(memoryview(b"1\n2")) == ["1", "2"]

    def test_non_bytes_input_raises_decode_error_not_type_error(self):
        with pytest.raises(DecodeError):
            split_rows(object())
        with pytest.raises(DecodeError):
            parse_buffer(12.5)

    def test_empty_delimiter_rejected(self):
        with pytest.raises(RangeError):
            split_plane(b"1\n2\n", b"")


class TestParseBuffer:
    def test_bits_match_row_path(self):
        payload, texts = row_payload(CORPUS)
        oracle = ReadEngine(cache_size=0)
        want = [oracle.read_result(t, BINARY64).value.to_bits()
                for t in texts]
        assert parse_buffer(payload) == want

    def test_empty_buffer(self):
        assert parse_buffer(b"") == []
        assert parse_buffer(b"", out="flonums") == []

    def test_only_delimiters_is_a_parse_error(self):
        # Empty rows are malformed literals on the row path too.
        with pytest.raises(ParseError):
            parse_buffer(b"\n\n")

    def test_truncated_trailing_token(self):
        # An unterminated final row parses like a terminated one.
        assert parse_buffer(b"1.5\n2.5") == parse_buffer(b"1.5\n2.5\n")

    def test_specials_and_denormals(self):
        bits = parse_buffer(b"nan\ninf\n-inf\n-0.0\n0\n5e-324\n")
        assert bits[0] == 0x7FF8000000000000
        assert bits[1] == 0x7FF0000000000000
        assert bits[2] == 0xFFF0000000000000
        assert bits[3] == 0x8000000000000000
        assert bits[4] == 0
        assert bits[5] == 1  # smallest subnormal

    def test_flonums_out(self):
        flos = parse_buffer(b"1.5\n-2.25\n", out="flonums")
        assert [v.to_float() for v in flos] == [1.5, -2.25]

    def test_dedup_off_matches_dedup_on(self):
        payload, _ = row_payload(CORPUS)
        assert parse_buffer(payload, dedup=False) == parse_buffer(payload)

    def test_crlf_delimiter(self):
        assert parse_buffer(b"1.5\r\n2.5\r\n", delimiter=b"\r\n") \
            == parse_buffer(b"1.5\n2.5\n")

    def test_whitespace_padding_matches_scalar_strip(self):
        assert parse_buffer(b" 1.5 \n\t2.5\n") == parse_buffer(b"1.5\n2.5\n")

    @pytest.mark.parametrize("fmt", [BINARY16, BINARY32, BINARY64,
                                     BINARY128])
    def test_formats_round_trip(self, fmt):
        flos = uniform_random(120, fmt, seed=5, signed=True)
        bits = [v.to_bits() for v in flos]
        payload, _ = row_payload(bits, fmt)
        assert parse_buffer(payload, fmt) == bits

    def test_stats_flushed_to_reader(self):
        reader = ReadEngine()
        parse_buffer(b"1.5\nnan\n1e300\n", engine=reader)
        stats = reader.stats()
        assert stats["read_specials"] == 1
        assert stats["read_conversions"] == 3  # specials count too


class TestClassify:
    def test_partitions_by_host_window(self):
        toks = [b"1.5", b"1e300", b"nan", b"123456789012345678901e2"]
        scans, tiers = classify_tokens(toks)
        assert scans[2] is None          # special: no scan
        assert tiers[0] == 0             # in the host-float window
        assert tiers[1] != 0             # exponent outside the window


class TestFormatBuffer:
    @pytest.mark.parametrize("fmt", [BINARY16, BINARY32, BINARY64,
                                     BINARY128])
    def test_payload_matches_row_path(self, fmt):
        flos = uniform_random(150, fmt, seed=9, signed=True)
        bits = [v.to_bits() for v in flos]
        want, _ = row_payload(bits, fmt)
        assert format_buffer(bits, fmt) == want
        # The packed-bytes ingestion leg (numpy dedup when available
        # for 2/4/8-byte items, pure-python interning for binary128).
        assert format_buffer(pack_bits(bits, fmt), fmt) == want

    def test_dedup_off_and_writer_reuse(self):
        bits = ingest_bits(CORPUS)
        want, _ = row_payload(CORPUS)
        assert format_buffer(bits, dedup=False) == want
        w = DelimitedWriter(b"\n")
        w.write("0")
        assert format_buffer(bits, writer=w) == b"0\n" + want

    def test_custom_delimiter(self):
        bits = ingest_bits([1.5, -2.5])
        assert format_buffer(bits, delimiter=b"\r\n") == b"1.5\r\n-2.5\r\n"

    def test_empty_column(self):
        assert format_buffer([]) == b""

    def test_round_trip_through_both_directions(self):
        bits = ingest_bits(CORPUS)
        assert parse_buffer(format_buffer(bits)) == [
            b if not math.isnan(f) else parse_buffer(b"nan\n")[0]
            for b, f in zip(bits, CORPUS)]


class TestWriterExtendFastPath:
    def test_extend_matches_per_item_write(self):
        texts = [str(i / 7) for i in range(500)]
        w1 = DelimitedWriter(b"\n")
        for t in texts:
            w1.write(t)
        assert DelimitedWriter(b"\n").extend(texts).getvalue() \
            == w1.getvalue()
        assert DelimitedWriter(b"\n").extend([]).getvalue() == b""


class TestPoolBytePlanes:
    def test_pool_read_slices_plane_on_token_boundaries(self):
        payload, texts = row_payload(CORPUS)
        want = parse_buffer(payload)
        for kind in ("thread", "process"):
            with BulkPool(jobs=2, shards_per_job=2, kind=kind) as pool:
                assert pool.read_bulk(payload) == want

    def test_pool_format_byte_identical(self):
        want, _ = row_payload(CORPUS)
        with BulkPool(jobs=2, shards_per_job=2) as pool:
            assert pool.format_bulk(CORPUS) == want
