"""Fault tolerance of :class:`BulkPool`: injected crashes, stalls,
corruption and raises must heal byte-identically or surface as typed
errors — never as silent partial results."""

import threading

import pytest

from repro import faults
from repro.engine import Engine
from repro.engine.bulk import format_bulk
from repro.errors import (
    DeadlineExceededError,
    ParseError,
    PoolBrokenError,
    ReproError,
    ShardError,
)
from repro.serve import BulkPool
from repro.serve.pool import FAULT_STAT_KEYS
from repro.workloads.corpus import uniform_random

CORPUS = [v.to_float() for v in uniform_random(400, seed=11, signed=True)] \
    + [0.0, -0.0, float("nan"), float("inf"), float("-inf"), 5e-324]

WANT = format_bulk(CORPUS, engine=Engine())


@pytest.fixture(autouse=True)
def _disarmed():
    """No test may leak an armed plan into the rest of the suite."""
    yield
    faults.disarm()


class TestHealing:
    def test_killed_worker_heals_byte_identically(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "crash", shard=1)])
        with BulkPool(jobs=2, shards_per_job=2) as pool:
            with faults.armed(plan):
                got = pool.format_bulk(CORPUS)
            stats = pool.stats()
        assert got == WANT
        assert plan.fired["pool.format_shard"] == 1
        assert stats["pool_rebuilds"] >= 1
        assert stats["shard_failures"] >= 1

    def test_corrupt_shard_caught_and_retried(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "corrupt", shard=0)])
        with BulkPool(jobs=2, shards_per_job=2) as pool:
            with faults.armed(plan):
                got = pool.format_bulk(CORPUS)
            stats = pool.stats()
        assert got == WANT
        assert stats["corrupt_shards"] == 1

    def test_stalled_shard_misses_deadline_then_heals(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "stall", shard=0,
                             stall=0.8)])
        with BulkPool(jobs=2, shards_per_job=1, deadline=0.25) as pool:
            with faults.armed(plan):
                got = pool.format_bulk(CORPUS)
            stats = pool.stats()
        assert got == WANT
        assert stats["deadline_hits"] >= 1

    def test_read_side_crash_heals(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.read_shard", "crash", shard=0)])
        with BulkPool(jobs=2, shards_per_job=2) as pool:
            want_bits = pool.read_bulk(WANT)
        with BulkPool(jobs=2, shards_per_job=2) as pool:
            with faults.armed(plan):
                assert pool.read_bulk(WANT) == want_bits
        assert plan.fired["pool.read_shard"] == 1

    def test_thread_pool_injected_raise_heals(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "raise", shard=1)])
        with BulkPool(jobs=2, kind="thread") as pool:
            with faults.armed(plan):
                assert pool.format_bulk(CORPUS) == WANT
            assert pool.stats()["shard_retries"] == 1


class TestDegradationLadder:
    def test_persistent_crash_degrades_to_working_level(self):
        # Crash every process-level attempt of shard 0: retries
        # exhaust, the ladder steps down, output is still identical.
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "crash", shard=0,
                             attempt=None, level="process", limit=None)])
        with BulkPool(jobs=2, shards_per_job=1, retries=1,
                      max_rebuilds=1) as pool:
            with faults.armed(plan):
                got = pool.format_bulk(CORPUS)
            assert got == WANT
            assert pool.level in ("thread", "serial")
            assert pool.stats()["degradations"] >= 1
            # The degraded pool keeps serving.
            assert pool.format_bulk(CORPUS) == WANT

    def test_degraded_level_is_sticky(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "crash", shard=0,
                             attempt=None, level="process", limit=None)])
        pool = BulkPool(jobs=2, shards_per_job=1, retries=0,
                        max_rebuilds=0)
        try:
            with faults.armed(plan):
                pool.format_bulk(CORPUS)
            level = pool.level
            pool.format_bulk(CORPUS)
            assert pool.level == level
        finally:
            pool.close()

    def test_on_error_raise_disables_ladder(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "raise", shard=1,
                             attempt=None, limit=None)])
        with BulkPool(jobs=2, kind="thread", on_error="raise",
                      retries=1) as pool:
            with faults.armed(plan):
                with pytest.raises(ShardError) as info:
                    pool.format_bulk(CORPUS)
        assert info.value.shard == 1
        assert info.value.attempts == 2
        assert isinstance(info.value.cause, faults.InjectedFault)
        assert isinstance(info.value.__cause__, faults.InjectedFault)

    def test_serial_rung_failure_raises_typed(self):
        # jobs=1 starts serial; a persistent fault there has nowhere
        # left to degrade and must surface as ShardError even under
        # the default on_error="degrade".
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "raise", shard=0,
                             attempt=None, limit=None)])
        with BulkPool(jobs=1, retries=1) as pool:
            with faults.armed(plan):
                with pytest.raises(ShardError):
                    pool.format_bulk(CORPUS)


class TestTypedErrors:
    def test_deadline_error_carries_shard_attribution(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "stall", shard=1,
                             attempt=None, stall=0.6, limit=None)])
        with BulkPool(jobs=2, shards_per_job=1, kind="thread",
                      deadline=0.15, retries=0, on_error="raise") as pool:
            with faults.armed(plan):
                with pytest.raises(DeadlineExceededError) as info:
                    pool.format_bulk(CORPUS)
        assert info.value.shard == 1
        assert info.value.limit == 0.15
        assert info.value.elapsed >= 0.15

    def test_budget_exhaustion_raises(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "stall", attempt=None,
                             stall=0.4, limit=None)])
        with BulkPool(jobs=2, kind="thread", budget=0.5) as pool:
            with faults.armed(plan):
                with pytest.raises(DeadlineExceededError) as info:
                    pool.format_bulk(CORPUS)
        assert info.value.limit == 0.5

    def test_repro_error_propagates_without_retry(self):
        # A malformed literal is a deterministic data error, not a
        # fault: no retries are burned on it.
        with BulkPool(jobs=2, kind="thread", retries=2) as pool:
            with pytest.raises(ParseError):
                pool.read_bulk(["1.5", "not-a-number", "2.5"])
            assert pool.stats()["shard_retries"] == 0

    def test_all_fault_errors_are_repro_errors(self):
        assert issubclass(ShardError, ReproError)
        assert issubclass(DeadlineExceededError, ReproError)
        assert issubclass(PoolBrokenError, ReproError)


class TestLifecycle:
    def test_close_is_idempotent(self):
        pool = BulkPool(jobs=2, kind="thread")
        pool.format_bulk([1.5, 2.5])
        pool.close()
        pool.close()
        pool.close()

    def test_pool_serves_after_close(self):
        pool = BulkPool(jobs=2, kind="thread")
        pool.close()
        assert pool.format_bulk(CORPUS) == WANT
        pool.close()

    def test_exit_shuts_down_on_error_path(self):
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "raise", shard=0,
                             attempt=None, limit=None)])
        with pytest.raises(ShardError):
            with BulkPool(jobs=2, kind="thread", on_error="raise",
                          retries=0) as pool:
                with faults.armed(plan):
                    pool.format_bulk(CORPUS)
        assert pool._executor is None

    def test_run_shards_failure_does_not_leak_executor(self):
        pool = BulkPool(jobs=2, kind="thread", on_error="raise",
                        retries=0)
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "raise", shard=0,
                             attempt=None, limit=None)])
        try:
            with faults.armed(plan):
                with pytest.raises(ShardError):
                    pool.format_bulk(CORPUS)
            # Healthy again once the plan is gone.
            assert pool.format_bulk(CORPUS) == WANT
        finally:
            pool.close()
        assert pool._executor is None


class TestStats:
    def test_fault_stat_keys_always_present(self):
        with BulkPool(jobs=1) as pool:
            stats = pool.stats()
        for key in FAULT_STAT_KEYS:
            assert stats[key] == 0

    def test_fault_stat_keys_pinned(self):
        assert frozenset(FAULT_STAT_KEYS) == frozenset({
            "shard_retries", "shard_failures", "deadline_hits",
            "pool_rebuilds", "degradations", "corrupt_shards",
            "snapshot_faults", "hedges", "hedge_wins"})

    def test_stats_exact_under_concurrent_calls(self):
        # Every thread injects exactly one raise into its own call;
        # the recovery counters must sum exactly, no torn updates.
        calls = 8
        plan = faults.FaultPlan([
            faults.FaultSpec("pool.format_shard", "raise", shard=0,
                             attempt=0, limit=calls)])
        errors = []
        with BulkPool(jobs=2, kind="thread") as pool:
            def one_call():
                try:
                    if pool.format_bulk(CORPUS) != WANT:
                        errors.append("payload mismatch")
                except Exception as exc:  # pragma: no cover - debug aid
                    errors.append(repr(exc))

            with faults.armed(plan):
                threads = [threading.Thread(target=one_call)
                           for _ in range(calls)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            stats = pool.stats()
        assert errors == []
        assert plan.fired["pool.format_shard"] == calls
        assert stats["shard_failures"] == calls
        assert stats["shard_retries"] == calls
