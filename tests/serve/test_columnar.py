"""Columnar ingestion: every buffer shape, every payload edge case.

Satellite coverage for the zero-copy decoder: NaN payloads, signed
zeros, denormals and infinities must survive the packed round trip for
every byte-encoded format, and malformed buffers must fail cleanly
(``DecodeError``), never reinterpret.
"""

import struct
import sys
from array import array

import pytest

from repro.engine.bulk import (
    bits_from_buffer,
    floats_from_bits64,
    ingest_bits,
    pack_bits,
)
from repro.errors import DecodeError
from repro.floats.formats import (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    STANDARD_FORMATS,
)
from repro.floats.model import Flonum

FORMATS = [BINARY16, BINARY32, BINARY64]

#: Interesting bit patterns per format: ±0, smallest/largest denormal,
#: smallest normal, 1.0-ish, max finite, ±inf, quiet/signaling-shaped
#: NaNs with payloads, all-ones NaN.
def edge_bits(fmt):
    w = fmt.total_bits
    sig = w - 1 - (fmt.total_bits - fmt.precision)  # stored mantissa bits
    exp_bits = w - 1 - sig
    exp_mask = ((1 << exp_bits) - 1) << sig
    sign_bit = 1 << (w - 1)
    return [
        0,                              # +0
        sign_bit,                       # -0
        1,                              # smallest denormal
        (1 << sig) - 1,                 # largest denormal
        1 << sig,                       # smallest normal
        exp_mask >> 1,                  # mid-range normal
        exp_mask - (1 << sig),          # top-exponent normal
        exp_mask,                       # +inf
        sign_bit | exp_mask,            # -inf
        exp_mask | (1 << (sig - 1)),    # quiet NaN, empty payload
        exp_mask | 1,                   # NaN, low-bit payload
        exp_mask | ((1 << sig) - 1),    # NaN, saturated payload
        sign_bit | exp_mask | 0b1011,   # signed NaN with payload
    ]


class TestPackedRoundTrip:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_bytes_round_trip_preserves_every_bit(self, fmt):
        bits = edge_bits(fmt)
        packed = pack_bits(bits, fmt)
        assert len(packed) == len(bits) * fmt.total_bits // 8
        assert bits_from_buffer(packed, fmt) == bits
        assert ingest_bits(bytearray(packed), fmt) == bits
        assert ingest_bits(memoryview(packed), fmt) == bits

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_nan_payloads_and_signed_zero_survive_decode(self, fmt):
        bits = edge_bits(fmt)
        decoded = [Flonum.from_bits(b, fmt) for b in bits]
        assert decoded[0].is_zero and decoded[0].sign == 0
        assert decoded[1].is_zero and decoded[1].sign == 1
        assert decoded[2].is_finite and decoded[2].e == fmt.min_e
        assert decoded[7].is_infinite and decoded[7].sign == 0
        assert decoded[8].is_infinite and decoded[8].sign == 1
        assert all(v.is_nan for v in decoded[9:])
        # Packing the decoded flonums loses at most the NaN payload —
        # the non-NaN population must be exactly reversible.
        again = ingest_bits(decoded, fmt)
        assert again[:9] == bits[:9]

    def test_float_list_ingestion_is_bit_exact(self):
        xs = [0.0, -0.0, 5e-324, float("inf"), float("-inf"),
              float("nan"), 0.1, 1e308]
        bits = ingest_bits(xs, BINARY64)
        want = [struct.unpack("<Q", struct.pack("<d", x))[0] for x in xs]
        if sys.byteorder == "big":  # pragma: no cover
            want = [struct.unpack(">Q", struct.pack(">d", x))[0] for x in xs]
        assert bits == want
        assert [str(x) for x in floats_from_bits64(bits)] == \
               [str(x) for x in xs]


class TestBufferShapes:
    def test_array_d_is_a_float_view(self):
        xs = [1.5, -2.25, 0.1]
        assert ingest_bits(array("d", xs), BINARY64) == ingest_bits(
            xs, BINARY64)

    def test_typed_float_view_width_mismatch_raises(self):
        with pytest.raises(DecodeError):
            bits_from_buffer(array("f", [1.0, 2.0]), BINARY64)
        with pytest.raises(DecodeError):
            bits_from_buffer(array("d", [1.0]), BINARY32)

    def test_uint_view_is_taken_as_bit_patterns(self):
        bits = edge_bits(BINARY16)
        a = array("H", bits)
        assert a.itemsize == 2
        assert bits_from_buffer(a, BINARY16) == bits

    def test_noncontiguous_memoryview_is_copied_not_rejected(self):
        packed = pack_bits([1, 2, 3, 4], BINARY64)
        doubled = pack_bits([1, 99, 2, 99, 3, 99, 4, 99], BINARY64)
        mv = memoryview(doubled).cast("Q")[::2]
        assert not mv.c_contiguous
        assert bits_from_buffer(mv, BINARY64) \
               == bits_from_buffer(packed, BINARY64)

    def test_unsupported_item_format_raises(self):
        with pytest.raises(DecodeError):
            bits_from_buffer(array("i", [1, 2]), BINARY32)

    def test_non_buffer_object_raises(self):
        with pytest.raises(DecodeError):
            bits_from_buffer(object(), BINARY64)

    def test_numpy_buffers_if_available(self):
        np = pytest.importorskip("numpy")
        xs = np.array([0.5, -0.0, float("nan")], dtype=np.float64)
        assert ingest_bits(xs, BINARY64) == ingest_bits(list(map(
            float, xs)), BINARY64)
        half = np.array([1.0, -2.0], dtype=np.float16)
        assert ingest_bits(half, BINARY16) == [0x3C00, 0xC000]
        u64 = np.array([0x3FF0000000000000], dtype=np.uint64)
        assert ingest_bits(u64, BINARY64) == [0x3FF0000000000000]


class TestMalformedPayloads:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_trailing_partial_value_raises(self, fmt):
        itemsize = fmt.total_bits // 8
        good = pack_bits([0] * 3, fmt)
        with pytest.raises(DecodeError, match="trailing partial"):
            bits_from_buffer(good + b"\x00" * (itemsize - 1), fmt)
        if itemsize > 1:
            with pytest.raises(DecodeError, match="trailing partial"):
                bits_from_buffer(good[:-1], fmt)

    def test_unencodable_format_raises(self):
        toy = STANDARD_FORMATS.get("decimal64")
        for fmt in filter(None, [toy]):
            if not fmt.has_encoding or fmt.total_bits % 8:
                with pytest.raises(DecodeError):
                    ingest_bits(b"\x00" * 8, fmt)

    def test_out_of_range_int_patterns_raise(self):
        with pytest.raises(DecodeError):
            ingest_bits([0, 1 << 16], BINARY16)
        with pytest.raises(DecodeError):
            ingest_bits([-1], BINARY64)
        with pytest.raises(DecodeError):
            pack_bits([1 << 64], BINARY64)

    def test_narrow_floats_cannot_come_from_python_lists(self):
        with pytest.raises(DecodeError):
            ingest_bits([1.0, 2.0], BINARY32)

    def test_mixed_bools_are_not_bit_patterns(self):
        with pytest.raises(DecodeError):
            ingest_bits([True, False], BINARY64)


class TestWideFormats:
    def test_binary128_packed_round_trip(self):
        # 16-byte items have no array typecode: the int.from_bytes
        # fallback must still round-trip exactly.
        bits = [0, 1, (1 << 127) | (1 << 64) | 7, (1 << 128) - 1 >> 1]
        packed = pack_bits(bits, BINARY128)
        assert len(packed) == 16 * len(bits)
        assert bits_from_buffer(packed, BINARY128) == bits
