"""Daemon lifecycle: admission control, micro-batching, graceful
drain, and the CLI entry point.

The backpressure contract: past the in-flight budget, new requests get
a typed :class:`~repro.errors.ServeOverloadError` response immediately
while admitted requests complete untouched.  The drain contract:
:meth:`ReproDaemon.close` stops accepting, flushes pending
micro-batches, writes every admitted response, and stays idempotent.
"""

import asyncio
import subprocess
import sys
import threading

import pytest

from repro.engine import Engine
from repro.engine.bulk import format_bulk, ingest_bits, pack_bits
from repro.errors import RangeError, ServeOverloadError
from repro.floats.formats import BINARY64
from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.daemon import SERVE_STAT_KEYS, ReproDaemon, serving

VALUES = [1.5, 2.5, 3.0, -0.0, 5e-324, 1e308]
PACKED = pack_bits(ingest_bits(VALUES, BINARY64), BINARY64)
PLANE = format_bulk(PACKED, BINARY64, engine=Engine())


def run_async(coro, timeout=60):
    """Drive a coroutine on a fresh loop (tests stay synchronous)."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestAdmission:
    def test_request_budget_sheds_with_typed_error(self):
        with serving(max_inflight_requests=1, batch_window=0.05) as d:
            async def burst():
                c = await AsyncServeClient.connect(d.host, d.port)
                tasks = [asyncio.ensure_future(c.format(PACKED))
                         for _ in range(12)]
                res = await asyncio.gather(*tasks, return_exceptions=True)
                await c.close()
                return res
            res = run_async(burst())
        ok = [r for r in res if isinstance(r, bytes)]
        shed = [r for r in res if isinstance(r, ServeOverloadError)]
        assert len(ok) >= 1 and len(shed) >= 1
        assert len(ok) + len(shed) == 12
        assert all(r == PLANE for r in ok)  # in-flight work unaffected
        assert d.stats()["overloads"] == len(shed)

    def test_byte_budget_sheds_with_typed_error(self):
        with serving(max_inflight_bytes=len(PACKED),
                     batch_window=0.05) as d:
            async def burst():
                c = await AsyncServeClient.connect(d.host, d.port)
                tasks = [asyncio.ensure_future(c.format(PACKED))
                         for _ in range(6)]
                res = await asyncio.gather(*tasks, return_exceptions=True)
                await c.close()
                return res
            res = run_async(burst())
        assert any(isinstance(r, ServeOverloadError) for r in res)
        assert all(r == PLANE for r in res if isinstance(r, bytes))

    def test_pings_bypass_admission(self):
        with serving(max_inflight_requests=1) as d:
            with ServeClient(d.host, d.port) as c:
                for _ in range(5):
                    assert c.ping()
            assert d.stats()["overloads"] == 0

    def test_inflight_returns_to_zero(self):
        with serving() as d:
            with ServeClient(d.host, d.port) as c:
                c.format(PACKED)
                c.read(PLANE)
            assert d.inflight == (0, 0)


class TestBatching:
    def test_burst_coalesces_into_one_bulk_call(self):
        with serving(batch_window=0.01) as d:
            async def burst():
                c = await AsyncServeClient.connect(d.host, d.port)
                outs = await asyncio.gather(
                    *[c.format(PACKED) for _ in range(24)])
                await c.close()
                return outs
            outs = run_async(burst())
            stats = d.stats()
        assert all(o == PLANE for o in outs)
        assert stats["max_batch"] > 1
        assert stats["batches"] < 24

    def test_batched_responses_split_byte_identically(self):
        # Different-sized payloads in one batch must split back
        # exactly: per-request responses equal per-request oracles.
        chunks = [PACKED[:8], PACKED[:24], PACKED, b"", PACKED[8:16]]
        oracles = [format_bulk(c, BINARY64, engine=Engine())
                   for c in chunks]
        with serving(batch_window=0.01) as d:
            async def burst():
                c = await AsyncServeClient.connect(d.host, d.port)
                outs = await asyncio.gather(
                    *[c.format(chunk) for chunk in chunks])
                await c.close()
                return outs
            outs = run_async(burst())
        assert list(outs) == oracles

    def test_read_batches_split_on_token_counts(self):
        planes = [b"1.5\n2.5\n", b"", b"17\n", b"1e10\n-0.0\n3.25\n",
                  b"9.5"]  # unterminated tail rides along
        from repro.engine.bulk import read_bulk

        oracles = [pack_bits(read_bulk(p, BINARY64, engine=Engine()),
                             BINARY64) for p in planes]
        with serving(batch_window=0.01) as d:
            async def burst():
                c = await AsyncServeClient.connect(d.host, d.port)
                outs = await asyncio.gather(
                    *[c.read(p) for p in planes])
                await c.close()
                return outs
            outs = run_async(burst())
        assert list(outs) == oracles

    def test_poisoned_batch_falls_back_per_request(self):
        # One garbage literal must fail alone; batch-mates succeed.
        planes = [b"1.5\n", b"zzz\n", b"2.5\n"]
        with serving(batch_window=0.01) as d:
            async def burst():
                c = await AsyncServeClient.connect(d.host, d.port)
                res = await asyncio.gather(
                    *[c.read(p) for p in planes],
                    return_exceptions=True)
                await c.close()
                return res
            res = run_async(burst())
            stats = d.stats()
        from repro.errors import ParseError

        assert isinstance(res[1], ParseError)
        assert isinstance(res[0], bytes) and isinstance(res[2], bytes)
        if stats["max_batch"] > 1:  # the burst actually coalesced
            assert stats["batch_fallbacks"] >= 1


class TestDrain:
    def test_close_is_idempotent(self):
        with serving() as d:
            async def closes():
                await d.close()
                await d.close()
            fut = asyncio.run_coroutine_threadsafe(closes(), d._loop)
            fut.result(timeout=30)
            assert d.stats()["drains"] == 1

    def test_close_drains_inflight_responses(self):
        d = ReproDaemon(batch_window=0.05)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            asyncio.run_coroutine_threadsafe(
                d.start(), loop).result(timeout=30)

            async def burst_then_close():
                c = await AsyncServeClient.connect(d.host, d.port)
                tasks = [asyncio.ensure_future(c.format(PACKED))
                         for _ in range(8)]
                # All eight sit in the micro-batch window; close() must
                # flush, convert, and *write* them before tearing down.
                for _ in range(2000):
                    if d.inflight[0] >= 8:
                        break
                    await asyncio.sleep(0.002)
                await d.close()
                res = await asyncio.gather(*tasks, return_exceptions=True)
                await c.close()
                return res

            res = asyncio.run_coroutine_threadsafe(
                burst_then_close(), loop).result(timeout=60)
            # Every admitted request completed; none hung.
            assert all(isinstance(r, bytes) and r == PLANE for r in res)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)
            loop.close()

    def test_drain_admission_race_is_deterministic(self):
        # The drain/admission race, pinned: requests admitted before
        # the drain flag flips are *served* even though their
        # micro-batch window (30s, far past any drain wait) has not
        # expired — close() must wake the batchers, not wait them out;
        # a request arriving after the flip sheds with the typed
        # overload error; and the counters reconcile exactly.
        import time

        d = ReproDaemon(batch_window=30.0, drain_timeout=20.0)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            asyncio.run_coroutine_threadsafe(
                d.start(), loop).result(timeout=30)

            async def race():
                c = await AsyncServeClient.connect(d.host, d.port)
                tasks = [asyncio.ensure_future(c.format(PACKED))
                         for _ in range(4)]
                for _ in range(2000):
                    if d.inflight[0] >= 4:
                        break
                    await asyncio.sleep(0.002)
                t0 = time.monotonic()
                closing = asyncio.ensure_future(d.close())
                await asyncio.sleep(0)  # close() flips _draining here
                late = await asyncio.gather(c.format(PACKED),
                                            return_exceptions=True)
                res = await asyncio.gather(*tasks,
                                           return_exceptions=True)
                await closing
                elapsed = time.monotonic() - t0
                await c.close()
                return res, late[0], elapsed

            res, late, elapsed = asyncio.run_coroutine_threadsafe(
                race(), loop).result(timeout=60)
            assert all(r == PLANE for r in res)  # admitted => served
            assert isinstance(late, ServeOverloadError)  # late => shed
            assert elapsed < 15.0  # woke the batchers, no 30s wait
            stats = d.stats()
            assert stats["drains"] == 1
            assert stats["overloads"] >= 1
            assert stats["responses"] >= 4
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)
            loop.close()

    def test_requests_during_drain_are_rejected(self):
        with serving() as d:
            with ServeClient(d.host, d.port) as c:
                assert c.format(PACKED) == PLANE
                d._draining = True  # hold the drain window open
                with pytest.raises(ServeOverloadError, match="draining"):
                    c.format(PACKED)
                d._draining = False
                assert c.format(PACKED) == PLANE  # connection survived

    def test_stats_keys_always_complete(self):
        with serving() as d:
            assert set(d.stats()) == set(SERVE_STAT_KEYS)
            assert d.pool_stats() == {}  # no traffic, no pools
            with ServeClient(d.host, d.port) as c:
                c.format(PACKED)
            assert d.pool_stats() != {}


class TestConfig:
    def test_bad_kind_rejected(self):
        with pytest.raises(RangeError, match="kind"):
            ReproDaemon(kind="fiber")

    def test_bad_jobs_rejected(self):
        with pytest.raises(RangeError, match="jobs"):
            ReproDaemon(jobs=0)

    def test_negative_window_rejected(self):
        with pytest.raises(RangeError, match="batch_window"):
            ReproDaemon(batch_window=-1.0)


class TestCli:
    def test_serve_main_announces_and_serves(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0"],
            stdout=subprocess.PIPE, text=True)
        try:
            line = proc.stdout.readline()
            assert "repro-serve listening on" in line
            port = int(line.rsplit(":", 1)[1])
            with ServeClient("127.0.0.1", port) as c:
                assert c.format(PACKED) == PLANE
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    def test_cli_serve_flag_rejects_values(self):
        from repro.cli import run

        with pytest.raises(SystemExit):
            run(["--serve", "1.5"])
