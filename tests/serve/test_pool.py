"""Sharded pools: ordering, byte identity, stats merging, validation."""

import pytest

from repro.engine import Engine
from repro.engine.bulk import format_bulk, ingest_bits, read_bulk
from repro.errors import RangeError
from repro.floats.formats import BINARY32, BINARY64, FloatFormat
from repro.serve import BulkPool
from repro.workloads.corpus import duplicated_random, uniform_random

CORPUS = [v.to_float() for v in uniform_random(600, seed=21, signed=True)] \
    + [0.0, -0.0, float("nan"), float("inf"), float("-inf"), 5e-324]


def scalar_payload(xs):
    return format_bulk(xs, engine=Engine())


class TestProcessPool:
    def test_format_is_byte_identical_and_ordered(self):
        with BulkPool(jobs=2, shards_per_job=3) as pool:
            assert pool.format_bulk(CORPUS) == scalar_payload(CORPUS)

    def test_read_merges_shards_in_input_order(self):
        payload = scalar_payload(CORPUS)
        bits = ingest_bits(CORPUS, BINARY64)
        with BulkPool(jobs=2) as pool:
            assert pool.read_bulk(payload) == bits
            flonums = pool.read_bulk(payload, out="flonums")
        assert [v.to_bits() for v in flonums] == bits

    def test_stats_sum_worker_deltas(self):
        xs = duplicated_random(400, 50, seed=6)
        with BulkPool(jobs=2, shards_per_job=1) as pool:
            pool.format_bulk(xs)
            stats = pool.stats()
        # Interning inside each shard: at most one conversion per
        # distinct value per shard, and every row was served.
        assert 0 < stats["conversions"] <= 2 * 50
        assert stats["conversions"] < 400

    def test_jobs_1_runs_inline(self):
        pool = BulkPool(jobs=1)
        assert pool._pool() is None
        assert pool.format_bulk([1.5, 2.5]) == b"1.5\n2.5\n"
        pool.close()

    def test_format_column_splits_rows(self):
        with BulkPool(jobs=2) as pool:
            assert pool.format_column([0.1, -0.0]) == ["0.1", "-0"]

    def test_narrow_format_pool(self):
        bits = list(range(0, 60000, 1000))
        with BulkPool(jobs=2, fmt=BINARY32) as pool:
            got = pool.format_bulk(bits)
        assert got == format_bulk(bits, BINARY32, engine=Engine())


class TestThreadPool:
    def test_shares_one_engine_and_matches_scalar(self):
        eng = Engine()
        with BulkPool(jobs=2, kind="thread", engine=eng) as pool:
            got = pool.format_bulk(CORPUS)
            assert got == scalar_payload(CORPUS)
            assert pool.stats() is not None
            assert pool.stats()["conversions"] == eng.stats()["conversions"]
            payload = scalar_payload(CORPUS)
            assert pool.read_bulk(payload) == ingest_bits(CORPUS, BINARY64)


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(RangeError):
            BulkPool(kind="greenlet")

    def test_non_standard_format_rejected(self):
        toy = FloatFormat(name="toy", radix=2, precision=5,
                          exponent_width=0, emin=-10, emax=10)
        with pytest.raises(RangeError):
            BulkPool(fmt=toy)

    def test_empty_delimiter_rejected(self):
        with pytest.raises(RangeError):
            BulkPool(delimiter="")

    def test_bad_out_kind(self):
        with BulkPool(jobs=1) as pool:
            with pytest.raises(RangeError):
                pool.read_bulk(b"1\n", out="text")

    def test_empty_inputs(self):
        with BulkPool(jobs=2) as pool:
            assert pool.format_bulk([]) == b""
            assert pool.read_bulk(b"") == []


class TestEntryPointSharding:
    def test_format_bulk_jobs_flag_matches_inline(self):
        xs = CORPUS[:200]
        assert format_bulk(xs, jobs=2) == scalar_payload(xs)

    def test_read_bulk_jobs_flag_matches_inline(self):
        payload = scalar_payload(CORPUS[:200])
        assert read_bulk(payload, jobs=2) == read_bulk(
            payload, engine=Engine())
