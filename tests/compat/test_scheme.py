"""Scheme number syntax: the paper's motivating runtime surface."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from helpers import finite_doubles, positive_flonums
from repro.compat.scheme import number_to_string, string_to_number
from repro.errors import ParseError, RangeError
from repro.floats.formats import BINARY32
from repro.floats.model import Flonum


class TestNumberToString:
    @pytest.mark.parametrize("x,expect", [
        (0.3, "0.3"),
        (1.0, "1."),
        (100.0, "100."),
        (0.0, "0."),
        (-0.0, "-0."),
        (-2.5, "-2.5"),
        (1e23, "1e23"),
        (5e-324, "5e-324"),
        (float("inf"), "+inf.0"),
        (float("-inf"), "-inf.0"),
        (float("nan"), "+nan.0"),
    ])
    def test_decimal(self, x, expect):
        assert number_to_string(x) == expect

    def test_flonums_always_marked(self):
        # A flonum's external representation is never bare-integer.
        for x in (1.0, 2.0, 1024.0, -7.0):
            s = number_to_string(x)
            assert "." in s or "e" in s

    @pytest.mark.parametrize("x,radix,expect", [
        (0.5, 2, "#b0.1"),
        (-0.5, 2, "#b-0.1"),
        (255.0, 16, "#xff."),
        (8.0, 8, "#o10."),
    ])
    def test_other_radixes(self, x, radix, expect):
        assert number_to_string(x, radix) == expect

    def test_rejects_bad_radix(self):
        with pytest.raises(RangeError):
            number_to_string(1.0, radix=12)


class TestStringToNumber:
    def test_exact_integers(self):
        assert string_to_number("42") == 42
        assert string_to_number("-42") == -42
        assert string_to_number("#x2a") == 42
        assert string_to_number("#b101010") == 42
        assert string_to_number("#o52") == 42

    def test_exact_rationals(self):
        assert string_to_number("1/3") == Fraction(1, 3)
        assert string_to_number("#x-1/a") == Fraction(-1, 10)

    def test_inexact_syntax(self):
        v = string_to_number("0.5")
        assert isinstance(v, Flonum)
        assert v.to_fraction() == Fraction(1, 2)
        assert isinstance(string_to_number("1e3"), Flonum)

    def test_exactness_prefixes(self):
        assert string_to_number("#e0.5") == Fraction(1, 2)
        assert string_to_number("#e12") == 12
        v = string_to_number("#i3")
        assert isinstance(v, Flonum) and v.to_fraction() == 3
        v = string_to_number("#i1/3")
        assert isinstance(v, Flonum)

    def test_radix_point_in_other_base(self):
        v = string_to_number("#b0.1")
        assert isinstance(v, Flonum) and v.to_fraction() == Fraction(1, 2)

    def test_specials(self):
        assert string_to_number("+inf.0").is_infinite
        assert string_to_number("-inf.0").sign == 1
        assert string_to_number("+nan.0").is_nan

    def test_signed_zero(self):
        v = string_to_number("-0.0")
        assert v.is_zero and v.is_negative

    def test_prefix_order_free(self):
        assert string_to_number("#e#x10") == 16
        assert string_to_number("#x#e10") == 16

    @pytest.mark.parametrize("bad", [
        "", "#", "#q1", "#x#x10", "#e#e1", "abc", "1.2.3", "#b12",
        "#x1/", "+inf", "1e1e1",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            string_to_number(bad)


class TestRoundTrip:
    @given(finite_doubles())
    @settings(max_examples=300)
    def test_decimal_roundtrip(self, x):
        v = Flonum.from_float(x)
        got = string_to_number(number_to_string(x))
        assert got == v

    @given(positive_flonums())
    @settings(max_examples=150)
    def test_radix16_roundtrip(self, v):
        got = string_to_number(number_to_string(v, 16))
        assert got == v

    @given(positive_flonums(BINARY32))
    @settings(max_examples=100)
    def test_binary32_scheme(self, v):
        got = string_to_number(number_to_string(v), BINARY32)
        assert got == v

    def test_radix2_roundtrip_exactness(self):
        # Binary output is the value itself: reading it back is exact by
        # construction, not merely by shortest-ness.
        for x in (0.1, 1 / 3, 5e-324):
            s = number_to_string(x, 2)
            got = string_to_number(s)
            assert got == Flonum.from_float(x)
