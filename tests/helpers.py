"""Shared strategies, toy formats and helpers for the test suite."""

from __future__ import annotations

import struct

from hypothesis import strategies as st

from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum

# ----------------------------------------------------------------------
# Toy formats small enough for exhaustive sweeps.
# ----------------------------------------------------------------------

TOY_P5 = FloatFormat.toy(precision=5, emin=-8, emax=8, name="toy-p5")
TOY_P4_WIDE = FloatFormat.toy(precision=4, emin=-20, emax=20,
                              name="toy-p4-wide")
TOY_B4 = FloatFormat.toy(precision=3, emin=-6, emax=6, radix=4,
                         name="toy-b4")


def finite_doubles():
    """Finite doubles, bit-uniform (hits denormals and extremes often)."""
    return (
        st.integers(min_value=0, max_value=(1 << 64) - 1)
        .map(lambda bits: struct.unpack(">d", struct.pack(">Q", bits))[0])
        .filter(lambda x: x == x and x not in (float("inf"), float("-inf")))
    )


def positive_flonums(fmt: FloatFormat = BINARY64):
    """Positive finite non-zero Flonums of a format, component-uniform."""

    def build(f, e):
        if f >= fmt.hidden_limit:
            return Flonum.finite(0, f, e, fmt)
        return Flonum.finite(0, f, fmt.min_e, fmt)

    return st.builds(
        build,
        st.integers(min_value=1, max_value=fmt.mantissa_limit - 1),
        st.integers(min_value=fmt.min_e, max_value=fmt.max_e),
    )


def output_bases():
    return st.sampled_from([2, 3, 8, 10, 16, 36])


def enumerate_toy(fmt: FloatFormat, include_denormals: bool = True):
    return list(Flonum.enumerate_positive(fmt, include_denormals))


def double_from_bits(bits: int) -> float:
    return struct.unpack(">d", struct.pack(">Q", bits))[0]


def reads_back_as(value, v, info) -> bool:
    """Whether the exact rational `value` reads back as `v` (per info)."""
    if info.low < value < info.high:
        return True
    if info.low_ok and value == info.low:
        return True
    if info.high_ok and value == info.high:
        return True
    return False


def assert_correctly_rounded(v, result, mode):
    """The true Theorem-4 invariant: within half a final-digit unit, OR
    the closer candidate does not read back as v.

    The paper states |V - v| <= B**(k-n)/2 unconditionally, but at
    uneven-gap boundaries the closer candidate can fall outside the
    rounding range (observed for binary64/base-10 at e.g. 2**-1017,
    where CPython's repr makes the same farther-but-valid choice); the
    achievable guarantee is closest-valid plus a strict one-unit bound.
    """
    from fractions import Fraction

    from repro.core.rounding import boundary_info

    base = result.base
    unit = Fraction(base) ** (result.k - len(result.digits))
    value = result.to_fraction()
    err = abs(value - v.to_fraction())
    if 2 * err <= unit:
        return
    assert err < unit, f"one-unit bound violated: {v!r} -> {result}"
    info = boundary_info(v, mode)
    other = value - unit if value > v.to_fraction() else value + unit
    assert not reads_back_as(other, v, info), (
        f"closer valid candidate ignored: {v!r} -> {result}")
