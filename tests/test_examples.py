"""Every example must run clean end-to-end (deliverable smoke tests)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: (script, args) — args shrink the workloads to CI scale.
CASES = [
    ("quickstart.py", []),
    ("fixed_format_marks.py", []),
    ("base_conversion.py", []),
    ("column_formatter.py", []),
    ("format_zoo.py", []),
    ("printf_comparison.py", []),
    ("json_numbers.py", []),
    ("repr_roundtrip.py", []),
    ("paper_measurements.py", ["400"]),
    ("self_check.py", ["40"]),
]


def _run(script, args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300,
    )


@pytest.mark.parametrize("script,args", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = _run(script, args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate their scenario"


def test_example_inventory_matches_directory():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {script for script, _ in CASES}
    assert covered == on_disk, (
        f"uncovered examples: {on_disk - covered}; "
        f"stale cases: {covered - on_disk}")


def test_quickstart_shows_the_flagship_outputs():
    result = _run("quickstart.py", [])
    assert "1e23" in result.stdout
    assert "100.000000000000000#####" in result.stdout


def test_self_check_reports_all_ok():
    result = _run("self_check.py", ["30"])
    assert "All engines agree" in result.stdout
