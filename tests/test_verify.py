"""The self-verification battery."""

import pytest

from repro.floats.formats import (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    X87_80,
)
from repro.verify import (
    VerificationReport,
    counted_digits_rational,
    main,
    roundtrip_values,
    sample_values,
    verify_format,
    verify_roundtrip,
)


class TestSampleValues:
    def test_deterministic(self):
        assert sample_values(BINARY64, 50, 7) == sample_values(BINARY64, 50, 7)

    def test_size(self):
        assert len(sample_values(BINARY64, 50)) == 50

    def test_includes_boundary_values(self):
        vals = sample_values(BINARY64, 50)
        fs = {(v.f, v.e) for v in vals}
        assert (1, BINARY64.min_e) in fs  # smallest denormal
        assert BINARY64.largest_finite in fs

    def test_all_positive_finite(self):
        for v in sample_values(BINARY32, 40):
            assert v.is_finite and not v.sign and not v.is_zero


@pytest.mark.parametrize("fmt,n", [
    (BINARY64, 60), (BINARY32, 40), (BINARY16, 40),
    (BINARY128, 15), (X87_80, 15),
])
def test_all_engines_agree(fmt, n):
    report = verify_format(fmt, n)
    assert report.checked >= n - 1
    assert report.ok, report.mismatches[:5]


def test_reports_per_tier_counts():
    report = verify_format(BINARY64, 30)
    # Every tier of both free and fixed format must have been exercised.
    for tier in ("free/exact", "free/engine", "free/tier1", "free/host",
                 "free/engine-host", "fixed/exact", "fixed/engine-counted",
                 "fixed/counted-rational", "fixed/engine-paper",
                 "fixed/printf-host", "reader/roundtrip",
                 "surface/roundtrip"):
        assert report.tier_checks.get(tier, 0) > 0, tier
    assert not report.tier_mismatches
    text = report.tier_summary()
    assert "fixed/engine-counted" in text
    assert "ok" in text


def test_counted_rational_oracle_matches_integer_oracle():
    from repro.baselines.naive_fixed import exact_fixed_digits

    for v in sample_values(BINARY64, 40, seed=5):
        for nd in (1, 4, 9, 17):
            want = exact_fixed_digits(v, ndigits=nd)
            assert counted_digits_rational(v, ndigits=nd) == (
                want.k, want.digits), (v, nd)
        for pos in (-7, -1, 0, 3):
            want = exact_fixed_digits(v, position=pos)
            assert counted_digits_rational(v, position=pos) == (
                want.k, want.digits), (v, pos)


class TestRoundtripValues:
    def test_deterministic(self):
        assert roundtrip_values(BINARY64, 60, 3) == \
            roundtrip_values(BINARY64, 60, 3)

    def test_signed_and_includes_both_zeros(self):
        vals = roundtrip_values(BINARY32, 80)
        assert any(v.is_zero and v.sign for v in vals)
        assert any(v.is_zero and not v.sign for v in vals)
        assert any(v.sign and not v.is_zero for v in vals)

    def test_includes_denormals_and_extreme_powers(self):
        vals = roundtrip_values(BINARY64, 80)
        keyed = {(v.sign, v.f, v.e) for v in vals}
        assert (0, 1, BINARY64.min_e) in keyed  # smallest denormal
        assert (1, BINARY64.hidden_limit, BINARY64.max_e) in keyed


class TestRoundtripBattery:
    @pytest.mark.parametrize("fmt", [BINARY16, BINARY32, BINARY64],
                             ids=lambda f: f.name)
    def test_both_legs_agree(self, fmt):
        report = verify_roundtrip(fmt, n=120, seed=9)
        assert report.ok, report.mismatches[:5]
        assert report.checked >= 240  # both legs counted
        legs = set(report.tier_checks)
        assert any(t.startswith("print-parse/") for t in legs)
        assert any(t.startswith("parse-print-parse/") for t in legs)
        assert "print-parse-print" in legs

    def test_host_oracle_only_on_binary64(self):
        with_host = verify_roundtrip(BINARY64, n=40, seed=2)
        without = verify_roundtrip(BINARY32, n=40, seed=2)
        assert with_host.tier_checks.get("host-float", 0) > 0
        assert "host-float" not in without.tier_checks

    def test_reader_tiers_all_exercised(self):
        report = verify_roundtrip(BINARY64, n=400, seed=0)
        for tier in ("tier0", "tier1"):
            assert any(t.endswith("/" + tier) for t in report.tier_checks
                       if report.tier_checks[t]), tier

    def test_cli_roundtrip_flag(self, capsys):
        rc = main(["--roundtrip", "--n", "60", "--seed", "4",
                   "--formats", "binary16", "binary64"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "round-trip" in out
        assert "binary16" in out and "binary64" in out


class TestCli:
    def test_main_ok(self, capsys):
        rc = main(["--n", "8", "--seed", "1",
                   "--formats", "binary16", "binary64"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "binary16" in out and "binary64" in out
        assert "all tiers agree" in out

    def test_main_fresh_seed_prints_seed(self, capsys):
        rc = main(["--n", "4", "--seed", "fresh", "--formats", "binary16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "seed=" in out


class TestReport:
    def test_summary_ok(self):
        r = VerificationReport("binary64", checked=10)
        assert "OK" in r.summary()

    def test_summary_mismatch(self):
        from repro.floats.model import Flonum

        r = VerificationReport("binary64", checked=10)
        r.check("kind")
        r.record("kind", Flonum.from_float(1.0), "boom")
        assert not r.ok
        assert "1 MISMATCHES" in r.summary()
        assert "kind" in r.mismatches[0]
        assert r.tier_mismatches == {"kind": 1}
        assert "1 MISMATCHES" in r.tier_summary()


import repro.verify as verify  # noqa: E402 - bulk battery internals


class TestBulkBattery:
    @pytest.mark.parametrize("fmt", [BINARY16, BINARY64],
                             ids=lambda f: f.name)
    def test_bulk_layer_is_byte_identical(self, fmt):
        report = verify.verify_bulk(fmt, n=300, seed=1)
        assert report.ok, report.mismatches[:5]
        for tag in ("bulk/column-dedup", "bulk/column-packed",
                    "bulk/writer", "bulk/pool-format", "bulk/pool-read",
                    "bulk/read", "bulk/read-roundtrip"):
            assert report.tier_checks.get(tag) == 1, tag

    def test_detects_divergence(self):
        # A corrupted oracle row must surface as a recorded mismatch.
        report = verify.VerificationReport(format_name="probe")
        verify._compare_rows(report, "bulk/column-dedup",
                             ["1.5", "bad"], ["1.5", "2.5"],
                             verify.roundtrip_values(BINARY64, 2, 0))
        assert not report.ok
        assert report.tier_mismatches["bulk/column-dedup"] == 1

    def test_cli_bulk_flag(self, capsys):
        status = verify.main(["--bulk", "--n", "120",
                              "--formats", "binary32"])
        out = capsys.readouterr().out
        assert status == 0
        assert "bulk battery" in out and "binary32 bulk" in out

    def test_cli_rejects_combined_batteries(self, capsys):
        with pytest.raises(SystemExit):
            verify.main(["--bulk", "--roundtrip"])


class TestChaosBattery:
    def test_chaos_battery_green(self):
        report = verify.verify_chaos(BINARY64, n=600, seed=2)
        assert report.ok, report.mismatches[:5]
        for tag in ("chaos/crash", "chaos/stall", "chaos/corrupt",
                    "chaos/tier-raise", "chaos/mixed",
                    "chaos/typed-shard-error", "chaos/typed-deadline",
                    "chaos/strict"):
            assert report.tier_checks.get(tag, 0) >= 1, tag

    def test_chaos_leaves_no_plan_armed(self):
        from repro import faults

        verify.verify_chaos(BINARY64, n=200, seed=3)
        assert faults.active() is None

    def test_cli_chaos_flag(self, capsys):
        status = verify.main(["--chaos", "--n", "200",
                              "--formats", "binary64"])
        out = capsys.readouterr().out
        assert status == 0
        assert "chaos battery" in out and "binary64 chaos" in out

    def test_cli_rejects_chaos_with_other_batteries(self, capsys):
        for combo in (["--chaos", "--bulk"], ["--chaos", "--roundtrip"]):
            with pytest.raises(SystemExit):
                verify.main(combo)
