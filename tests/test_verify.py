"""The self-verification battery."""

import pytest

from repro.floats.formats import (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    X87_80,
)
from repro.verify import VerificationReport, sample_values, verify_format


class TestSampleValues:
    def test_deterministic(self):
        assert sample_values(BINARY64, 50, 7) == sample_values(BINARY64, 50, 7)

    def test_size(self):
        assert len(sample_values(BINARY64, 50)) == 50

    def test_includes_boundary_values(self):
        vals = sample_values(BINARY64, 50)
        fs = {(v.f, v.e) for v in vals}
        assert (1, BINARY64.min_e) in fs  # smallest denormal
        assert BINARY64.largest_finite in fs

    def test_all_positive_finite(self):
        for v in sample_values(BINARY32, 40):
            assert v.is_finite and not v.sign and not v.is_zero


@pytest.mark.parametrize("fmt,n", [
    (BINARY64, 60), (BINARY32, 40), (BINARY16, 40),
    (BINARY128, 15), (X87_80, 15),
])
def test_all_engines_agree(fmt, n):
    report = verify_format(fmt, n)
    assert report.checked >= n - 1
    assert report.ok, report.mismatches[:5]


class TestReport:
    def test_summary_ok(self):
        r = VerificationReport("binary64", checked=10)
        assert "OK" in r.summary()

    def test_summary_mismatch(self):
        from repro.floats.model import Flonum

        r = VerificationReport("binary64", checked=10)
        r.record("kind", Flonum.from_float(1.0), "boom")
        assert not r.ok
        assert "1 MISMATCHES" in r.summary()
        assert "kind" in r.mismatches[0]
