"""BigInt sign-magnitude wrapper."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bignum.integer import BigInt

ints = st.integers(min_value=-(1 << 300), max_value=(1 << 300) - 1)
nonzero = ints.filter(bool)


class TestRoundtrip:
    @given(ints)
    def test_from_to(self, n):
        assert BigInt.from_int(n).to_int() == n

    def test_zero_never_negative(self):
        from repro.bignum.natural import BigNat

        z = BigInt(True, BigNat.zero())
        assert not z.neg and z.is_zero


class TestArithmetic:
    @given(ints, ints)
    def test_add(self, a, b):
        assert (BigInt.from_int(a) + BigInt.from_int(b)).to_int() == a + b

    @given(ints, ints)
    def test_sub(self, a, b):
        assert (BigInt.from_int(a) - BigInt.from_int(b)).to_int() == a - b

    @given(ints, ints)
    def test_mul(self, a, b):
        assert (BigInt.from_int(a) * BigInt.from_int(b)).to_int() == a * b

    @given(ints, st.integers(min_value=-(1 << 29), max_value=(1 << 29)))
    def test_mul_small(self, a, k):
        assert BigInt.from_int(a).mul_small(k).to_int() == a * k

    @given(ints)
    def test_negate(self, a):
        assert BigInt.from_int(a).negate().to_int() == -a


class TestDivision:
    @given(ints, nonzero)
    def test_divmod_floor_matches_python(self, a, b):
        q, r = BigInt.from_int(a).divmod_floor(BigInt.from_int(b))
        assert (q.to_int(), r.to_int()) == divmod(a, b)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            BigInt.from_int(1).divmod_floor(BigInt.from_int(0))


class TestComparison:
    @given(ints, ints)
    def test_ordering(self, a, b):
        A, B = BigInt.from_int(a), BigInt.from_int(b)
        assert (A < B) == (a < b)
        assert (A <= B) == (a <= b)
        assert (A == B) == (a == b)

    @given(ints)
    def test_hash(self, a):
        assert hash(BigInt.from_int(a)) == hash(BigInt.from_int(a))
