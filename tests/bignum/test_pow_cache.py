"""The paper's power and logarithm tables."""

import math
import threading

import pytest

from repro.bignum.pow_cache import (
    DYNAMIC_CACHE_LIMIT,
    PAPER_TABLE_LIMIT,
    cache_info,
    clear_dynamic_cache,
    inv_log2_of,
    log_ratio,
    power,
    power_uncached,
    set_dynamic_cache_limit,
)


@pytest.fixture(autouse=True)
def _restore_cache_limit():
    yield
    set_dynamic_cache_limit(DYNAMIC_CACHE_LIMIT)
    clear_dynamic_cache()


class TestPowerTable:
    def test_paper_table_values(self):
        # Figure 2's table: 10**k for 0 <= k < 326.
        assert PAPER_TABLE_LIMIT == 326
        assert power(10, 0) == 1
        assert power(10, 325) == 10**325

    def test_generic_bases_memoized(self):
        clear_dynamic_cache()
        assert power(7, 30) == 7**30
        assert cache_info()["dynamic_entries"] >= 1
        assert power(7, 30) == 7**30  # hits the memo

    def test_large_ten_exponent_beyond_table(self):
        assert power(10, 5000) == 10**5000

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            power(10, -1)
        with pytest.raises(ValueError):
            power_uncached(10, -1)

    def test_uncached_matches(self):
        assert power_uncached(3, 40) == power(3, 40)

    def test_clear(self):
        power(13, 13)
        clear_dynamic_cache()
        assert cache_info()["dynamic_entries"] == 0


class TestLogTables:
    @pytest.mark.parametrize("base", list(range(2, 37)))
    def test_inv_log2_table(self, base):
        assert inv_log2_of(base) == pytest.approx(1 / math.log2(base))

    def test_inv_log2_out_of_table(self):
        assert inv_log2_of(100) == pytest.approx(1 / math.log2(100))

    def test_log_ratio_binary(self):
        assert log_ratio(2, 10) == inv_log2_of(10)

    def test_log_ratio_generic(self):
        assert log_ratio(4, 10) == pytest.approx(math.log(4) / math.log(10))


class TestBoundedDynamicCache:
    """The generic-base memo is an LRU with a hard ceiling (the seed's
    version grew without bound under exponent-diverse workloads)."""

    def test_eviction_keeps_population_bounded(self):
        clear_dynamic_cache()
        set_dynamic_cache_limit(8)
        for k in range(40):
            assert power(3, k) == 3**k
        info = cache_info()
        assert info["dynamic_entries"] <= 8
        assert info["dynamic_limit"] == 8
        assert info["evictions"] >= 32

    def test_lru_keeps_hot_entries(self):
        clear_dynamic_cache()
        set_dynamic_cache_limit(4)
        power(3, 100)  # the entry we keep touching
        for k in range(1, 30):
            power(7, k)
            power(3, 100)  # refresh recency every round
        before = cache_info()["hits"]
        power(3, 100)
        assert cache_info()["hits"] == before + 1

    def test_hit_miss_counters(self):
        clear_dynamic_cache()
        info0 = cache_info()
        assert info0["hits"] == info0["misses"] == info0["evictions"] == 0
        power(11, 23)
        power(11, 23)
        info = cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1

    def test_base10_table_bypasses_dynamic_cache(self):
        clear_dynamic_cache()
        power(10, 5)
        assert cache_info()["dynamic_entries"] == 0

    def test_shrinking_limit_evicts(self):
        clear_dynamic_cache()
        set_dynamic_cache_limit(64)
        for k in range(20):
            power(13, k)
        assert cache_info()["dynamic_entries"] == 20
        set_dynamic_cache_limit(5)
        info = cache_info()
        assert info["dynamic_entries"] <= 5
        assert info["dynamic_limit"] == 5

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            set_dynamic_cache_limit(0)

    def test_concurrent_power_calls(self):
        clear_dynamic_cache()
        set_dynamic_cache_limit(16)
        errors = []

        def work(base):
            try:
                for k in range(120):
                    assert power(base, k) == base**k
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(b,))
                   for b in (3, 5, 6, 7, 9, 11)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache_info()["dynamic_entries"] <= 16
