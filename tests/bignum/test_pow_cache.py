"""The paper's power and logarithm tables."""

import math

import pytest

from repro.bignum.pow_cache import (
    PAPER_TABLE_LIMIT,
    cache_info,
    clear_dynamic_cache,
    inv_log2_of,
    log_ratio,
    power,
    power_uncached,
)


class TestPowerTable:
    def test_paper_table_values(self):
        # Figure 2's table: 10**k for 0 <= k < 326.
        assert PAPER_TABLE_LIMIT == 326
        assert power(10, 0) == 1
        assert power(10, 325) == 10**325

    def test_generic_bases_memoized(self):
        clear_dynamic_cache()
        assert power(7, 30) == 7**30
        assert cache_info()["dynamic_entries"] >= 1
        assert power(7, 30) == 7**30  # hits the memo

    def test_large_ten_exponent_beyond_table(self):
        assert power(10, 5000) == 10**5000

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            power(10, -1)
        with pytest.raises(ValueError):
            power_uncached(10, -1)

    def test_uncached_matches(self):
        assert power_uncached(3, 40) == power(3, 40)

    def test_clear(self):
        power(13, 13)
        clear_dynamic_cache()
        assert cache_info()["dynamic_entries"] == 0


class TestLogTables:
    @pytest.mark.parametrize("base", list(range(2, 37)))
    def test_inv_log2_table(self, base):
        assert inv_log2_of(base) == pytest.approx(1 / math.log2(base))

    def test_inv_log2_out_of_table(self):
        assert inv_log2_of(100) == pytest.approx(1 / math.log2(100))

    def test_log_ratio_binary(self):
        assert log_ratio(2, 10) == inv_log2_of(10)

    def test_log_ratio_generic(self):
        assert log_ratio(4, 10) == pytest.approx(math.log(4) / math.log(10))
