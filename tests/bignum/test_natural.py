"""BigNat limb arithmetic, property-tested against Python ints."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bignum.natural import LIMB_BASE, BigNat
from repro.errors import RangeError

naturals = st.integers(min_value=0, max_value=(1 << 600) - 1)
positives = st.integers(min_value=1, max_value=(1 << 600) - 1)
small = st.integers(min_value=0, max_value=LIMB_BASE - 1)


class TestConversions:
    @given(naturals)
    def test_roundtrip(self, n):
        assert BigNat.from_int(n).to_int() == n

    def test_zero_is_empty(self):
        assert BigNat.from_int(0).limbs == []
        assert BigNat.zero().is_zero
        assert not BigNat.one().is_zero

    def test_rejects_negative(self):
        with pytest.raises(RangeError):
            BigNat.from_int(-1)

    @given(naturals)
    def test_bit_length(self, n):
        assert BigNat.from_int(n).bit_length() == n.bit_length()


class TestComparison:
    @given(naturals, naturals)
    def test_ordering(self, a, b):
        A, B = BigNat.from_int(a), BigNat.from_int(b)
        assert (A < B) == (a < b)
        assert (A <= B) == (a <= b)
        assert (A == B) == (a == b)
        assert (A > B) == (a > b)
        assert (A >= B) == (a >= b)

    @given(naturals)
    def test_hash_consistency(self, a):
        assert hash(BigNat.from_int(a)) == hash(BigNat.from_int(a))


class TestAddSub:
    @given(naturals, naturals)
    def test_add(self, a, b):
        assert (BigNat.from_int(a) + BigNat.from_int(b)).to_int() == a + b

    @given(naturals, naturals)
    def test_sub(self, a, b):
        a, b = max(a, b), min(a, b)
        assert (BigNat.from_int(a) - BigNat.from_int(b)).to_int() == a - b

    def test_sub_underflow(self):
        with pytest.raises(RangeError):
            BigNat.from_int(1) - BigNat.from_int(2)

    @given(naturals)
    def test_add_zero_identity(self, a):
        A = BigNat.from_int(a)
        assert (A + BigNat.zero()).to_int() == a
        assert (A - BigNat.zero()).to_int() == a


class TestMul:
    @given(naturals, naturals)
    def test_school(self, a, b):
        assert (BigNat.from_int(a) * BigNat.from_int(b)).to_int() == a * b

    @given(st.integers(min_value=0, max_value=(1 << 4000) - 1),
           st.integers(min_value=0, max_value=(1 << 4000) - 1))
    @settings(max_examples=30)
    def test_karatsuba_region(self, a, b):
        assert (BigNat.from_int(a) * BigNat.from_int(b)).to_int() == a * b

    @given(naturals, small)
    def test_mul_small(self, a, k):
        assert BigNat.from_int(a).mul_small(k).to_int() == a * k

    def test_mul_small_rejects_negative(self):
        with pytest.raises(RangeError):
            BigNat.one().mul_small(-1)


class TestShifts:
    @given(naturals, st.integers(min_value=0, max_value=200))
    def test_shift_left(self, a, s):
        assert BigNat.from_int(a).shift_left(s).to_int() == a << s

    @given(naturals, st.integers(min_value=0, max_value=700))
    def test_shift_right(self, a, s):
        assert BigNat.from_int(a).shift_right(s).to_int() == a >> s

    def test_negative_shift_rejected(self):
        with pytest.raises(RangeError):
            BigNat.one().shift_left(-1)
        with pytest.raises(RangeError):
            BigNat.one().shift_right(-1)


class TestDivision:
    @given(naturals, positives)
    def test_divmod(self, a, b):
        q, r = BigNat.from_int(a).divmod(BigNat.from_int(b))
        assert (q.to_int(), r.to_int()) == divmod(a, b)

    @given(naturals, st.integers(min_value=1, max_value=LIMB_BASE - 1))
    def test_divmod_small(self, a, k):
        q, r = BigNat.from_int(a).divmod_small(k)
        assert (q.to_int(), r) == divmod(a, k)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            BigNat.one().divmod(BigNat.zero())
        with pytest.raises(RangeError):
            BigNat.one().divmod_small(0)

    def test_knuth_addback_case(self):
        # A divisor/dividend pair engineered so the qhat estimate is one
        # too large and D6 (add back) runs: top limbs maximal.
        b = LIMB_BASE
        u = (b - 1) * b**4 + (b - 1) * b**3 + 1
        v = (b - 1) * b**2 + (b - 2)
        q, r = BigNat.from_int(u).divmod(BigNat.from_int(v))
        assert (q.to_int(), r.to_int()) == divmod(u, v)

    @given(positives)
    def test_self_division(self, a):
        q, r = BigNat.from_int(a).divmod(BigNat.from_int(a))
        assert q.to_int() == 1 and r.is_zero

    @given(naturals, positives)
    def test_reconstruction(self, a, b):
        A, B = BigNat.from_int(a), BigNat.from_int(b)
        q, r = A.divmod(B)
        assert (q * B + r).to_int() == a
        assert r < B
