"""Shared fixtures for the test suite (strategies live in helpers.py)."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from helpers import TOY_B4, TOY_P5

# The in-process interpreter finds ``repro`` via the ``pythonpath`` ini
# option in pyproject.toml, but tests that spawn subprocesses
# (examples, CLI daemons, report tools) need the path on the inherited
# environment too — export it once so a bare ``python -m pytest`` works
# from a clean checkout.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in os.environ.get("PYTHONPATH", "").split(os.pathsep):
    os.environ["PYTHONPATH"] = (
        _SRC + os.pathsep + os.environ["PYTHONPATH"]
        if os.environ.get("PYTHONPATH")
        else _SRC
    )


@pytest.fixture(scope="session")
def toy_p5():
    return TOY_P5


@pytest.fixture(scope="session")
def toy_b4():
    return TOY_B4
