"""Shared fixtures for the test suite (strategies live in helpers.py)."""

from __future__ import annotations

import pytest

from helpers import TOY_B4, TOY_P5


@pytest.fixture(scope="session")
def toy_p5():
    return TOY_P5


@pytest.fixture(scope="session")
def toy_b4():
    return TOY_B4
