"""Decimal literal parsing."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.reader.parse import parse_decimal


class TestBasicForms:
    @pytest.mark.parametrize("text,sign,digits,exp", [
        ("0", 0, 0, 0),
        ("1", 0, 1, 0),
        ("-1", 1, 1, 0),
        ("+42", 0, 42, 0),
        ("12.34", 0, 1234, -2),
        ("-12.34e5", 1, 1234, 3),
        ("1e10", 0, 1, 10),
        ("1E10", 0, 1, 10),
        (".5", 0, 5, -1),
        ("5.", 0, 5, 0),
        ("0.001", 0, 1, -3),
        ("00012", 0, 12, 0),
        ("1e-3", 0, 1, -3),
        ("  7  ", 0, 7, 0),
    ])
    def test_parse(self, text, sign, digits, exp):
        p = parse_decimal(text)
        assert (p.sign, p.digits, p.exponent) == (sign, digits, exp)
        assert p.special is None

    def test_trailing_zeros_normalized(self):
        p = parse_decimal("12300")
        assert (p.digits, p.exponent) == (123, 2)
        p = parse_decimal("1.50")
        assert (p.digits, p.exponent) == (15, -1)

    def test_zero_normalizes_exponent(self):
        p = parse_decimal("0.000e5")
        assert p.digits == 0 and p.exponent == 0 and p.is_zero

    @given(st.integers(), st.integers(min_value=-50, max_value=50))
    def test_value_preserved(self, d, q):
        text = f"{d}e{q}"
        p = parse_decimal(text)
        assert p.to_fraction() == Fraction(d) * Fraction(10) ** q


class TestSpecials:
    @pytest.mark.parametrize("text,kind,sign", [
        ("inf", "inf", 0), ("Infinity", "inf", 0), ("-inf", "inf", 1),
        ("+Inf", "inf", 0), ("nan", "nan", 0), ("NaN", "nan", 0),
        ("-NAN", "nan", 1),
    ])
    def test_parse_specials(self, text, kind, sign):
        p = parse_decimal(text)
        assert p.special == kind and p.sign == sign

    def test_special_has_no_fraction(self):
        with pytest.raises(ParseError):
            parse_decimal("inf").to_fraction()


class TestHashMarks:
    def test_hashes_read_as_zeros(self):
        p = parse_decimal("100.000000000000000#####")
        q = parse_decimal("100.00000000000000000000")
        assert p.to_fraction() == q.to_fraction()
        assert p.insignificant == 5

    def test_hash_in_integer_part(self):
        p = parse_decimal("5####")
        assert p.to_fraction() == 50000
        assert p.insignificant == 4

    def test_hashes_must_be_trailing(self):
        with pytest.raises(ParseError):
            parse_decimal("1#2")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "  ", "abc", "1..2", "1e", "e5", "--1", "1e5.5", ".", "+",
        "0x10", "1_000",
    ])
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse_decimal(bad)
