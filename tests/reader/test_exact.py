"""The exact correctly rounded reader (ground truth)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import TOY_P5, finite_doubles
from repro.core.rounding import ReaderMode
from repro.errors import RangeError
from repro.floats.formats import BINARY16, BINARY32, BINARY64
from repro.floats.model import Flonum
from repro.reader.exact import ilog, read_decimal, read_fraction, round_rational

NEAREST_MODES = [ReaderMode.NEAREST_EVEN, ReaderMode.NEAREST_AWAY,
                 ReaderMode.NEAREST_TO_ZERO, ReaderMode.NEAREST_UNKNOWN]
DIRECTED_MODES = [ReaderMode.TOWARD_ZERO, ReaderMode.TOWARD_POSITIVE,
                  ReaderMode.TOWARD_NEGATIVE]


class TestIlog:
    @given(st.integers(min_value=1, max_value=10**40),
           st.integers(min_value=1, max_value=10**40),
           st.sampled_from([2, 3, 10, 16]))
    def test_definition(self, num, den, b):
        e = ilog(num, den, b)
        value = Fraction(num, den)
        assert Fraction(b) ** e <= value < Fraction(b) ** (e + 1)

    def test_exact_powers(self):
        assert ilog(1000, 1, 10) == 3
        assert ilog(1, 1000, 10) == -3
        assert ilog(1, 1, 2) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            ilog(0, 1, 10)


class TestAgainstHostStrtod:
    """CPython's float() is a correctly rounded nearest-even reader — a
    fully independent oracle for the binary64 case."""

    @given(st.integers(min_value=0, max_value=10**19),
           st.integers(min_value=-330, max_value=330))
    @settings(max_examples=400)
    def test_matches_float_parse(self, d, q):
        text = f"{d}e{q}"
        assert read_decimal(text) == Flonum.from_float(float(text))

    @given(finite_doubles())
    def test_reads_repr_back(self, x):
        assert read_decimal(repr(x)) == Flonum.from_float(x)

    @pytest.mark.parametrize("text", [
        "1e23", "9.999999999999999e22", "2.2250738585072011e-308",
        "2.2250738585072014e-308", "5e-324", "2.47e-324", "2.48e-324",
        "1.7976931348623157e308", "1.7976931348623159e308",  # overflows
        "4.9406564584124654e-324", "0.5e-324", "0.50000000001e-324",
    ])
    def test_hard_literals(self, text):
        assert read_decimal(text) == Flonum.from_float(float(text))


class TestRoundingModes:
    @given(st.integers(min_value=1, max_value=10**25),
           st.integers(min_value=-40, max_value=40))
    @settings(max_examples=200)
    def test_directed_modes_bracket_value(self, d, q):
        value = Fraction(d) * Fraction(10) ** q
        down = read_fraction(value, mode=ReaderMode.TOWARD_NEGATIVE)
        up = read_fraction(value, mode=ReaderMode.TOWARD_POSITIVE)
        trunc = read_fraction(value, mode=ReaderMode.TOWARD_ZERO)
        assert down.to_fraction() <= value
        if not up.is_infinite:
            assert up.to_fraction() >= value
        assert trunc == down  # positive values truncate downward
        for mode in NEAREST_MODES:
            near = read_fraction(value, mode=mode)
            if near.is_infinite or up.is_infinite:
                continue
            assert near in (down, up)

    @given(st.integers(min_value=1, max_value=10**25),
           st.integers(min_value=-40, max_value=40))
    @settings(max_examples=200)
    def test_nearest_is_nearest(self, d, q):
        value = Fraction(d) * Fraction(10) ** q
        near = read_fraction(value, mode=ReaderMode.NEAREST_EVEN)
        down = read_fraction(value, mode=ReaderMode.TOWARD_NEGATIVE)
        up = read_fraction(value, mode=ReaderMode.TOWARD_POSITIVE)
        if near.is_infinite or up.is_infinite:
            return
        err = abs(near.to_fraction() - value)
        assert err <= abs(down.to_fraction() - value)
        assert err <= abs(up.to_fraction() - value)

    def test_tie_to_even(self):
        # 1e23 is an exact midpoint; even mantissa wins.
        v = read_decimal("1e23")
        assert v.f % 2 == 0

    def test_tie_away_and_to_zero(self):
        lo = read_decimal("1e23", mode=ReaderMode.NEAREST_TO_ZERO)
        hi = read_decimal("1e23", mode=ReaderMode.NEAREST_AWAY)
        assert lo < hi
        assert hi.to_fraction() - lo.to_fraction() == Fraction(2) ** 24

    def test_negative_directed_modes(self):
        v = read_decimal("-0.1", mode=ReaderMode.TOWARD_POSITIVE)
        w = read_decimal("-0.1", mode=ReaderMode.TOWARD_NEGATIVE)
        assert v.to_fraction() > Fraction(-1, 10) > w.to_fraction()
        t = read_decimal("-0.1", mode=ReaderMode.TOWARD_ZERO)
        assert t == v  # toward zero == toward positive for negatives


class TestOverflowUnderflow:
    def test_overflow_nearest_to_inf(self):
        assert read_decimal("1e400").is_infinite
        assert read_decimal("-1e400").is_infinite

    def test_overflow_toward_zero_clamps(self):
        v = read_decimal("1e400", mode=ReaderMode.TOWARD_ZERO)
        f, e = BINARY64.largest_finite
        assert v == Flonum.finite(0, f, e, BINARY64)

    def test_overflow_directed_respects_sign(self):
        v = read_decimal("-1e400", mode=ReaderMode.TOWARD_POSITIVE)
        assert v.is_finite and v.is_negative
        w = read_decimal("-1e400", mode=ReaderMode.TOWARD_NEGATIVE)
        assert w.is_infinite and w.is_negative

    def test_underflow_to_zero(self):
        v = read_decimal("1e-400")
        assert v.is_zero

    def test_underflow_toward_positive_gives_min_denormal(self):
        v = read_decimal("1e-400", mode=ReaderMode.TOWARD_POSITIVE)
        assert v == Flonum.finite(0, 1, BINARY64.min_e, BINARY64)

    def test_half_min_denormal_ties_to_zero(self):
        # Exactly half the smallest denormal: even mantissa (0) wins.
        value = Fraction(1, 2) * Fraction(2) ** BINARY64.min_e
        assert read_fraction(value).is_zero

    def test_just_above_half_min_denormal(self):
        value = Fraction(1, 2) * Fraction(2) ** BINARY64.min_e
        v = read_fraction(value + Fraction(1, 10**400))
        assert v == Flonum.finite(0, 1, BINARY64.min_e, BINARY64)


class TestOtherFormats:
    def test_binary16(self):
        v = read_decimal("1.5", BINARY16)
        assert v.to_fraction() == Fraction(3, 2)
        assert read_decimal("65520", BINARY16).is_infinite  # > max half
        assert read_decimal("65504", BINARY16).to_fraction() == 65504

    def test_binary32(self):
        import struct

        for text in ("0.1", "3.4028235e38", "1e-45", "1.1754944e-38"):
            want = struct.unpack(">f", struct.pack(">f", float(text)))[0]
            assert read_decimal(text, BINARY32).to_fraction() == Fraction(want)

    def test_toy_format_exhaustive_roundtrip(self):
        # Reading each toy value's exact decimal gives the value back.
        for v in Flonum.enumerate_positive(TOY_P5):
            frac = v.to_fraction()
            assert read_fraction(frac, TOY_P5) == v


class TestSpecialStrings:
    def test_nan_inf_zero(self):
        assert read_decimal("nan").is_nan
        assert read_decimal("inf").is_infinite
        z = read_decimal("-0.0")
        assert z.is_zero and z.is_negative

    def test_round_rational_validates(self):
        with pytest.raises(RangeError):
            round_rational(-1, 2)
        with pytest.raises(RangeError):
            round_rational(1, 0)
