"""Clinger's AlgorithmR refinement reader."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import finite_doubles
from repro.errors import RangeError
from repro.floats.formats import BINARY16, BINARY64
from repro.floats.model import Flonum
from repro.reader.algorithm_r import algorithm_r, initial_guess, read_decimal_r
from repro.reader.exact import round_rational


class TestInitialGuess:
    @given(st.integers(min_value=1, max_value=10**30),
           st.integers(min_value=1, max_value=10**30))
    @settings(max_examples=200)
    def test_truncation_within_one_ulp(self, num, den):
        try:
            z = initial_guess(num, den, BINARY64)
        except RangeError:
            return
        if z.is_zero:
            return
        value = Fraction(num, den)
        assert z.to_fraction() <= value
        # Error below one ulp of the guess.
        assert value - z.to_fraction() < Fraction(2) ** z.e

    def test_overflow_seeds_largest(self):
        z = initial_guess(10**400, 1, BINARY64)
        f, e = BINARY64.largest_finite
        assert (z.f, z.e) == (f, e)

    def test_underflow_seeds_min_denormal(self):
        z = initial_guess(1, 10**400, BINARY64)
        assert (z.f, z.e) == (1, BINARY64.min_e)


class TestAgreementWithExact:
    @given(st.integers(min_value=0, max_value=10**19),
           st.integers(min_value=-330, max_value=330))
    @settings(max_examples=300)
    def test_matches_exact_reader(self, d, q):
        num, den = (d * 10**q, 1) if q >= 0 else (d, 10**-q)
        want = round_rational(num, den, BINARY64)
        got = algorithm_r(num, den, BINARY64)
        assert got == want

    @given(finite_doubles())
    def test_reads_repr_back(self, x):
        got = read_decimal_r(repr(x))
        assert got == Flonum.from_float(x)

    @pytest.mark.parametrize("text", [
        "1e23", "5e-324", "2.47e-324", "1.7976931348623159e308",
        "2.2250738585072011e-308", "1e400", "1e-400", "0", "-0.0",
    ])
    def test_hard_cases(self, text):
        got = read_decimal_r(text)
        want = Flonum.from_float(float(text))
        assert got == want

    def test_specials(self):
        assert read_decimal_r("nan").is_nan
        assert read_decimal_r("-inf").is_infinite

    def test_binary16_agreement(self):
        for text in ("0.1", "65504", "65520", "6e-8", "5.96e-8"):
            want = round_rational(*_ratio(text), BINARY16)
            assert read_decimal_r(text, BINARY16) == want

    def test_negative_values(self):
        v = read_decimal_r("-0.1")
        assert v.is_negative
        assert v.abs() == Flonum.from_float(0.1)

    def test_rejects_negative_rational(self):
        with pytest.raises(RangeError):
            algorithm_r(-1, 2)


def _ratio(text):
    from repro.reader.parse import parse_decimal

    p = parse_decimal(text)
    if p.exponent >= 0:
        return p.digits * 10**p.exponent, 1
    return p.digits, 10**-p.exponent


class TestMidpointTies:
    def test_exact_midpoint_rounds_even(self):
        # 1e23 is the midpoint between two doubles.
        v = algorithm_r(10**23, 1, BINARY64)
        assert v.f % 2 == 0

    def test_midpoint_above_largest_finite(self):
        # Exactly (max + ulp/2): ties to even -> max has odd mantissa, so
        # the result overflows to infinity.
        f, e = BINARY64.largest_finite
        num = 2 * f + 1
        v = algorithm_r(num * 2**e, 2, BINARY64)
        assert v.is_infinite

    def test_just_below_overflow_midpoint(self):
        f, e = BINARY64.largest_finite
        num = (2 * f + 1) * 2**e - 1
        v = algorithm_r(num, 2, BINARY64)
        assert v.is_finite and (v.f, v.e) == (f, e)
