"""Bellerophon fast paths and their exactness conditions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.floats.formats import BINARY32, BINARY64
from repro.floats.model import Flonum
from repro.reader.bellerophon import bellerophon, read_decimal_fast
from repro.reader.exact import round_rational


class TestFastPathSelection:
    def test_small_exponent_uses_fast_path(self):
        assert bellerophon(123, 0).fast_path
        assert bellerophon(123, 22).fast_path
        assert bellerophon(123, -22).fast_path

    def test_shifting_extension(self):
        # q slightly above 22 still exact when digits absorb the shift.
        assert bellerophon(123, 30).fast_path

    def test_large_significand_falls_back(self):
        assert not bellerophon(1 << 60, 0).fast_path

    def test_large_negative_exponent_falls_back(self):
        assert not bellerophon(123, -40).fast_path

    def test_shift_overflow_falls_back(self):
        # 19-digit significand cannot absorb 15 more digits.
        assert not bellerophon(10**18 + 1, 37).fast_path

    def test_non_binary64_always_exact_path(self):
        assert not bellerophon(1, 0, fmt=BINARY32).fast_path


class TestCorrectness:
    @given(st.integers(min_value=0, max_value=(1 << 53) - 1),
           st.integers(min_value=-37, max_value=37))
    @settings(max_examples=400)
    def test_matches_exact_reader(self, d, q):
        got = bellerophon(d, q).value
        num, den = (d * 10**q, 1) if q >= 0 else (d, 10**-q)
        want = round_rational(num, den)
        assert got == want

    @given(st.integers(min_value=0, max_value=10**25),
           st.integers(min_value=-320, max_value=320),
           st.booleans())
    @settings(max_examples=300)
    def test_matches_host_float(self, d, q, neg):
        got = bellerophon(d, q, negative=neg).value
        text = f"{'-' if neg else ''}{d}e{q}"
        assert got == Flonum.from_float(float(text))


class TestSignedZero:
    """``d == 0`` must honour ``negative=True`` — the sign bit is data."""

    def test_negative_zero_component_form(self):
        for q in (0, 5, -5, 100, -100):
            z = bellerophon(0, q, negative=True).value
            assert z.is_zero and z.is_negative, q

    def test_positive_zero_component_form(self):
        z = bellerophon(0, 0).value
        assert z.is_zero and not z.is_negative

    def test_zero_is_fast_path(self):
        assert bellerophon(0, 0, negative=True).fast_path

    def test_negative_zero_matches_host(self):
        import math

        for text in ("-0", "-0.0", "-0e10", "-0.00e-10"):
            got = bellerophon(0, 0, negative=True).value
            assert math.copysign(1.0, got.to_float()) == \
                math.copysign(1.0, float(text)), text

    def test_negative_zero_string_forms(self):
        for text in ("-0", "-0.0", "-0e7", "-0.000"):
            z = read_decimal_fast(text).value
            assert z.is_zero and z.is_negative, text


class TestStringFrontend:
    def test_reads_strings(self):
        r = read_decimal_fast("1.5e10")
        assert r.fast_path
        assert r.value == Flonum.from_float(1.5e10)

    def test_specials_and_zero(self):
        assert read_decimal_fast("nan").value.is_nan
        assert read_decimal_fast("inf").value.is_infinite
        z = read_decimal_fast("-0")
        assert z.value.is_zero and z.value.is_negative

    def test_human_literals_mostly_fast(self):
        texts = ["3.14", "1e10", "0.25", "123456.789", "2.5e-3", "42"]
        assert all(read_decimal_fast(t).fast_path for t in texts)
