"""The truncating (bounded-work) reader."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import finite_doubles
from repro.core.rounding import ReaderMode
from repro.errors import ParseError
from repro.floats.formats import BINARY16, BINARY64
from repro.floats.model import Flonum
from repro.reader.exact import read_decimal
from repro.reader.truncated import TRUNCATION_DIGITS, read_decimal_truncated


class TestAgreementWithExact:
    @given(st.integers(min_value=0, max_value=10**25),
           st.integers(min_value=-320, max_value=320))
    @settings(max_examples=300)
    def test_random_literals(self, d, q):
        text = f"{d}e{q}"
        assert read_decimal_truncated(text) == read_decimal(text)

    @given(finite_doubles())
    @settings(max_examples=200)
    def test_reprs(self, x):
        assert read_decimal_truncated(repr(x)) == Flonum.from_float(x)

    @pytest.mark.parametrize("mode", list(ReaderMode))
    def test_modes(self, mode):
        for text in ("0.1", "12345678901234567890123456789", "2.5e-324"):
            assert (read_decimal_truncated(text, mode=mode)
                    == read_decimal(text, mode=mode))

    def test_specials_and_hashes_route_through(self):
        assert read_decimal_truncated("inf").is_infinite
        assert read_decimal_truncated("nan").is_nan
        assert (read_decimal_truncated("100.000000000000000#####")
                == Flonum.from_float(100.0))

    def test_other_formats(self):
        assert (read_decimal_truncated("0.1", BINARY16)
                == read_decimal("0.1", BINARY16))


class TestHugeLiterals:
    def test_millions_of_digits_fast_path(self):
        # 1.000…0001e0 with a deep tail: sticky decides without building
        # a million-digit integer.
        text = "1." + "0" * 100000 + "1"
        got = read_decimal_truncated(text)
        assert got == Flonum.from_float(1.0)
        # The tail matters for directed rounding:
        up = read_decimal_truncated(text, mode=ReaderMode.TOWARD_POSITIVE)
        assert up > got

    def test_long_nines(self):
        text = "0." + "9" * 50000
        got = read_decimal_truncated(text)
        assert got == read_decimal("0." + "9" * 30)  # rounds to 1.0
        assert got == Flonum.from_float(1.0)

    def test_boundary_straddle_falls_back_exactly(self):
        # Exactly the 2**-1 + half-ulp boundary with a deep tie-breaking
        # digit far beyond the truncation horizon.
        half_ulp = "0.5000000000000000277555756156289135105907917022705078125"
        deep = half_ulp + "0" * 40 + "1"
        got = read_decimal_truncated(deep)
        want = read_decimal(deep)
        assert got == want
        # And the exact tie itself (sticky false beyond truncation would
        # still straddle): nearest-even picks the even mantissa.
        tie = read_decimal_truncated(half_ulp)
        assert tie == read_decimal(half_ulp)

    def test_long_zero(self):
        text = "0." + "0" * 10000
        assert read_decimal_truncated(text).is_zero

    def test_negative_huge(self):
        text = "-3." + "1" * 10000 + "e-5"
        assert read_decimal_truncated(text) == read_decimal(
            "-3." + "1" * 25 + "e-5")


class TestErrors:
    @pytest.mark.parametrize("bad", ["", "abc", "1..2", "--5"])
    def test_malformed(self, bad):
        with pytest.raises(ParseError):
            read_decimal_truncated(bad)

    def test_truncation_horizon_constant(self):
        assert TRUNCATION_DIGITS >= 17  # must exceed binary64's needs
