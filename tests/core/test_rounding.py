"""Reader modes, boundary inclusion, tie strategies."""

import pytest
from hypothesis import given

from helpers import positive_flonums
from repro.core.rounding import ReaderMode, TieBreak, boundary_info
from repro.errors import RangeError
from repro.floats.model import Flonum
from repro.floats.ulp import midpoint_high, midpoint_low


class TestTieBreak:
    def test_up(self):
        assert TieBreak.UP.choose(3) == 4

    def test_down(self):
        assert TieBreak.DOWN.choose(3) == 3

    def test_even(self):
        assert TieBreak.EVEN.choose(3) == 4
        assert TieBreak.EVEN.choose(4) == 4


class TestMirroring:
    def test_directed_modes_flip(self):
        assert ReaderMode.TOWARD_POSITIVE.mirrored() is ReaderMode.TOWARD_NEGATIVE
        assert ReaderMode.TOWARD_NEGATIVE.mirrored() is ReaderMode.TOWARD_POSITIVE

    @pytest.mark.parametrize("mode", [
        ReaderMode.NEAREST_EVEN, ReaderMode.NEAREST_UNKNOWN,
        ReaderMode.NEAREST_AWAY, ReaderMode.NEAREST_TO_ZERO,
        ReaderMode.TOWARD_ZERO,
    ])
    def test_symmetric_modes_fixed(self, mode):
        assert mode.mirrored() is mode


class TestBoundaryInfo:
    @given(positive_flonums())
    def test_nearest_unknown_excludes_endpoints(self, v):
        info = boundary_info(v, ReaderMode.NEAREST_UNKNOWN)
        assert not info.low_ok and not info.high_ok
        assert info.low == midpoint_low(v)
        assert info.high == midpoint_high(v)

    @given(positive_flonums())
    def test_nearest_even_inclusion_tracks_parity(self, v):
        info = boundary_info(v, ReaderMode.NEAREST_EVEN)
        even = v.f % 2 == 0
        assert info.low_ok is even and info.high_ok is even

    @given(positive_flonums())
    def test_nearest_away_low_only(self, v):
        info = boundary_info(v, ReaderMode.NEAREST_AWAY)
        assert info.low_ok and not info.high_ok

    @given(positive_flonums())
    def test_nearest_to_zero_high_only(self, v):
        info = boundary_info(v, ReaderMode.NEAREST_TO_ZERO)
        assert not info.low_ok and info.high_ok

    @given(positive_flonums())
    def test_toward_zero_range_is_above_v(self, v):
        info = boundary_info(v, ReaderMode.TOWARD_ZERO)
        # Reals in [v, v+) truncate back to v.
        assert info.low == v.to_fraction()
        assert info.low_ok and not info.high_ok
        assert info.high == 2 * midpoint_high(v) - v.to_fraction()

    @given(positive_flonums())
    def test_toward_positive_range_is_below_v(self, v):
        info = boundary_info(v, ReaderMode.TOWARD_POSITIVE)
        assert info.high == v.to_fraction()
        assert info.high_ok and not info.low_ok

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            boundary_info(Flonum.zero(), ReaderMode.NEAREST_EVEN)
        with pytest.raises(RangeError):
            boundary_info(Flonum.from_float(-1.0), ReaderMode.NEAREST_EVEN)

    def test_paper_1e23_example(self):
        # 1e23's double has an even mantissa, so the IEEE reader rounds the
        # exact boundary 10**23 back to it: the printer may emit "1e23".
        v = Flonum.from_float(1e23)
        info = boundary_info(v, ReaderMode.NEAREST_EVEN)
        assert info.high_ok
        from fractions import Fraction

        assert info.high == Fraction(10) ** 23
