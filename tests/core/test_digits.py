"""The digit-generation loop in isolation."""

from fractions import Fraction

from repro.core.digits import DigitResult, generate_digits
from repro.core.rounding import TieBreak


def _state_for(value: Fraction, half_gap: Fraction, base: int = 10):
    """Build a pre-multiplied (r, s, m+, m-) state for v/B**k = value."""
    # value must be in (1/B, 1]; choose s as the common denominator.
    combined = value * base
    margin = half_gap * base
    den = (combined.denominator * margin.denominator)
    r = combined.numerator * margin.denominator
    m = margin.numerator * combined.denominator
    return r, den, m, m


class TestGenerateDigits:
    def test_terminates_immediately_for_wide_margin(self):
        r, s, mp, mm = _state_for(Fraction(1, 2), Fraction(1, 4))
        digits, state = generate_digits(r, s, mp, mm, 10, False, False)
        assert digits == [5]

    def test_multiple_digits_for_narrow_margin(self):
        r, s, mp, mm = _state_for(Fraction(1, 3), Fraction(1, 10**6))
        digits, _ = generate_digits(r, s, mp, mm, 10, False, False)
        assert digits[:5] == [3, 3, 3, 3, 3]
        assert len(digits) <= 7

    def test_increment_chosen_when_closer(self):
        # value 0.297, margin wide enough to stop after "3" (0.3 closer).
        r, s, mp, mm = _state_for(Fraction(297, 1000), Fraction(1, 100))
        digits, state = generate_digits(r, s, mp, mm, 10, False, False)
        assert digits == [3]
        assert state.incremented

    def test_keep_chosen_when_closer(self):
        r, s, mp, mm = _state_for(Fraction(303, 1000), Fraction(1, 100))
        digits, state = generate_digits(r, s, mp, mm, 10, False, False)
        assert digits == [3]
        assert not state.incremented

    def test_tie_strategies(self):
        # value exactly 0.25 with margin covering both 0.2 and 0.3.
        r, s, mp, mm = _state_for(Fraction(1, 4), Fraction(1, 10))
        up, _ = generate_digits(r, s, mp, mm, 10, False, False, TieBreak.UP)
        down, _ = generate_digits(r, s, mp, mm, 10, False, False,
                                  TieBreak.DOWN)
        even, _ = generate_digits(r, s, mp, mm, 10, False, False,
                                  TieBreak.EVEN)
        assert up == [3] and down == [2] and even == [2]

    def test_inclusive_low_stops_on_exact(self):
        # Exact value 0.5 with zero low margin: only low_ok permits stop.
        # (Pre-multiplied state: r/s = value * base.)
        digits, _ = generate_digits(50, 10, 0, 0, 10, True, False)
        assert digits == [5]

    def test_chosen_r_tracks_increment(self):
        r, s, mp, mm = _state_for(Fraction(297, 1000), Fraction(1, 100))
        _, state = generate_digits(r, s, mp, mm, 10, False, False)
        # v - V is negative after increment: chosen_r = r - s < 0.
        assert state.chosen_r == state.r - state.s < 0

    def test_state_margins_scaled_together(self):
        r, s, mp, mm = _state_for(Fraction(1, 3), Fraction(1, 10**4))
        digits, state = generate_digits(r, s, mp, mm, 10, False, False)
        n = len(digits)
        assert state.m_plus == mp * 10 ** (n - 1)


class TestDigitResult:
    def test_to_fraction(self):
        r = DigitResult(k=1, digits=(3, 1, 4), base=10)
        assert r.to_fraction() == Fraction(314, 1000) * 10

    def test_to_fraction_other_base(self):
        r = DigitResult(k=0, digits=(1, 1), base=2)
        assert r.to_fraction() == Fraction(3, 4)

    def test_ndigits(self):
        assert DigitResult(k=0, digits=(1, 2, 3)).ndigits == 3

    def test_str_rendering(self):
        assert "0.314e1" in str(DigitResult(k=1, digits=(3, 1, 4)))
