"""The BigNat-backed driver must match the native-int driver exactly."""

from hypothesis import given, settings

from helpers import TOY_P5, enumerate_toy, output_bases, positive_flonums
from repro.core.backends import bignat_pow, shortest_digits_bignat
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode, TieBreak


class TestBignatPow:
    def test_small_values(self):
        assert bignat_pow(10, 0).to_int() == 1
        assert bignat_pow(10, 3).to_int() == 1000
        assert bignat_pow(2, 64).to_int() == 1 << 64

    def test_large_value(self):
        assert bignat_pow(10, 325).to_int() == 10**325

    def test_cached_identity(self):
        assert bignat_pow(7, 20) is bignat_pow(7, 20)


class TestBackendEquality:
    @given(positive_flonums())
    @settings(max_examples=100)
    def test_matches_int_driver_binary64(self, v):
        a = shortest_digits(v)
        b = shortest_digits_bignat(v)
        assert (a.k, a.digits) == (b.k, b.digits)

    @given(positive_flonums(), output_bases())
    @settings(max_examples=100)
    def test_matches_across_bases(self, v, base):
        a = shortest_digits(v, base=base, mode=ReaderMode.NEAREST_UNKNOWN)
        b = shortest_digits_bignat(v, base=base,
                                   mode=ReaderMode.NEAREST_UNKNOWN)
        assert (a.k, a.digits) == (b.k, b.digits)

    def test_exhaustive_toy_all_modes(self):
        for mode in (ReaderMode.NEAREST_EVEN, ReaderMode.TOWARD_ZERO):
            for v in enumerate_toy(TOY_P5):
                a = shortest_digits(v, mode=mode)
                b = shortest_digits_bignat(v, mode=mode)
                assert (a.k, a.digits) == (b.k, b.digits)

    def test_tie_strategy_respected(self):
        from repro.floats.model import Flonum

        v = Flonum.finite(0, 16, -6, TOY_P5)  # 0.25
        for tie in TieBreak:
            a = shortest_digits(v, mode=ReaderMode.NEAREST_UNKNOWN, tie=tie)
            b = shortest_digits_bignat(v, mode=ReaderMode.NEAREST_UNKNOWN,
                                       tie=tie)
            assert (a.k, a.digits) == (b.k, b.digits)

    def test_extreme_exponents(self):
        from repro.floats.model import Flonum

        for x in (5e-324, 1.7976931348623157e308, 2.2250738585072014e-308):
            v = Flonum.from_float(x)
            a = shortest_digits(v)
            b = shortest_digits_bignat(v)
            assert (a.k, a.digits) == (b.k, b.digits)
