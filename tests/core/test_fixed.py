"""Fixed-format output with # marks (paper Section 4)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import TOY_P5, enumerate_toy, positive_flonums
from repro.core.fixed import FixedResult, fixed_digits
from repro.core.rounding import TieBreak
from repro.errors import RangeError
from repro.floats.formats import BINARY32, BINARY64
from repro.floats.model import Flonum
from repro.floats.ulp import midpoint_high, midpoint_low


def _digits_str(r):
    return "".join(str(d) for d in r.digits) + "#" * r.hashes


class TestPaperExamples:
    def test_hundred_to_twenty_decimals(self):
        # "printing 100 in IEEE double-precision to digit position 20"
        # gives 100.000000000000000#####.
        r = fixed_digits(Flonum.from_float(100.0), position=-20)
        assert r.k == 3
        assert _digits_str(r) == "100" + "0" * 15 + "#" * 5
        assert r.hashes == 5

    def test_one_third_single_precision_ten_digits(self):
        # The introduction: single-precision 1/3 to 10 digits prints
        # 0.3333333### (seven significant digits).
        import struct

        x = struct.unpack(">f", struct.pack(">f", 1 / 3))[0]
        v = Flonum.from_float(x).with_format(BINARY32)
        r = fixed_digits(v, ndigits=10)
        assert _digits_str(r).count("#") >= 2
        assert _digits_str(r).startswith("3333333")

    def test_hundred_to_position_zero(self):
        # "Suppose 100 were printed to absolute position 0": termination
        # holds after the first digit but the remaining positions are
        # significant zeros, not #.
        r = fixed_digits(Flonum.from_float(100.0), position=0)
        assert _digits_str(r) == "100"
        assert r.hashes == 0


class TestRoundingCorrectness:
    @pytest.mark.parametrize("x,j,expect", [
        (0.4, 0, ""),          # rounds to zero
        (0.5, 0, "1"),
        (0.6, 0, "1"),
        (1.4, 0, "1"),
        (9.6, 0, "10"),
        (0.96, 0, "1"),
        (9.5, 0, "10"),        # tie rounds up by default
        (0.04, -1, ""),
        (0.06, -1, "1"),
        (0.14, -1, "1"),
        (123.456, -2, "12346"),
        (12345.0, 2, "123"),
    ])
    def test_absolute_golden(self, x, j, expect):
        r = fixed_digits(Flonum.from_float(x), position=j)
        assert _digits_str(r) == expect
        if expect == "":
            assert r.is_zero and r.k == j

    @given(positive_flonums(), st.integers(min_value=-30, max_value=30))
    @settings(max_examples=200)
    def test_within_expanded_range(self, v, j):
        """Output condition: V inside the max(gap, B**j/2) range."""
        r = fixed_digits(v, position=j)
        value = v.to_fraction()
        delta = Fraction(10) ** j / 2
        low = min(midpoint_low(v), value - delta)
        high = max(midpoint_high(v), value + delta)
        out = r.to_fraction()
        assert low <= out <= high

    @given(positive_flonums(), st.integers(min_value=-25, max_value=5))
    @settings(max_examples=200)
    def test_precise_values_round_exactly(self, v, j):
        """When B**j/2 dominates both gaps, output == round(v, j)."""
        value = v.to_fraction()
        delta = Fraction(10) ** j / 2
        if midpoint_high(v) - value > delta or value - midpoint_low(v) > delta:
            return  # representation-limited; covered elsewhere
        r = fixed_digits(v, position=j)
        err = abs(r.to_fraction() - value)
        assert err <= delta
        # And the result is a multiple of B**j (a genuine position-j value).
        scaled = r.to_fraction() / Fraction(10) ** j
        assert scaled.denominator == 1

    def test_never_generates_past_position(self):
        for v in enumerate_toy(TOY_P5):
            for j in range(-8, 4):
                r = fixed_digits(v, position=j)
                if not r.is_zero:
                    assert r.k - len(r.digits) - r.hashes == j


class TestHashSemantics:
    """# marks positions whose digits carry no information: any choice of
    digits there keeps the value reading back as v."""

    @given(positive_flonums(), st.integers(min_value=-25, max_value=0))
    @settings(max_examples=100)
    def test_hash_positions_truly_insignificant(self, v, j):
        from repro.reader.exact import read_fraction

        r = fixed_digits(v, position=j)
        if r.hashes == 0 or r.is_zero:
            return
        base_value = r.to_fraction()  # hashes read as zeros
        top_value = base_value + (
            Fraction(10) ** (j + r.hashes) - Fraction(10) ** j)
        # Both extremes of the # span must read back to v.
        assert read_fraction(base_value) == v
        assert read_fraction(top_value) == v

    def test_denormal_mostly_hashes(self):
        r = fixed_digits(Flonum.from_float(5e-324), ndigits=30)
        assert r.hashes >= 28
        assert r.digits[0] == 5

    def test_full_precision_no_hashes(self):
        r = fixed_digits(Flonum.from_float(0.25), position=-6)
        assert r.hashes == 0
        assert _digits_str(r) == "250000"


class TestRelativeMode:
    @given(positive_flonums(), st.integers(min_value=1, max_value=25))
    @settings(max_examples=200)
    def test_digit_count_exact(self, v, i):
        r = fixed_digits(v, ndigits=i)
        assert len(r.digits) + r.hashes == i

    @pytest.mark.parametrize("x,i,expect", [
        (0.95, 1, "9"),     # the double 0.95 is below the decimal .95
        (0.0095, 1, "9"),
        (0.96, 1, "1"),     # k bumps past the power: 0.96 -> "1"
        (0.0096, 1, "1"),
        (9.99, 2, "10"),
        (123.456, 4, "1235"),
        (1 / 3, 5, "33333"),
    ])
    def test_golden(self, x, i, expect):
        r = fixed_digits(Flonum.from_float(x), ndigits=i)
        assert _digits_str(r) == expect

    def test_relative_matches_absolute_at_final_k(self):
        for x in (1.5, 0.123, 99.99, 7e-4, 2.5e10):
            v = Flonum.from_float(x)
            rel = fixed_digits(v, ndigits=6)
            ab = fixed_digits(v, position=rel.k - 6)
            assert (rel.k, rel.digits, rel.hashes) == (ab.k, ab.digits,
                                                       ab.hashes)


class TestValidation:
    def test_requires_exactly_one_mode(self):
        v = Flonum.from_float(1.0)
        with pytest.raises(RangeError):
            fixed_digits(v)
        with pytest.raises(RangeError):
            fixed_digits(v, position=0, ndigits=3)

    def test_rejects_bad_ndigits(self):
        with pytest.raises(RangeError):
            fixed_digits(Flonum.from_float(1.0), ndigits=0)

    def test_rejects_bad_base(self):
        with pytest.raises(RangeError):
            fixed_digits(Flonum.from_float(1.0), position=0, base=1)

    def test_rejects_nonpositive_value(self):
        with pytest.raises(RangeError):
            fixed_digits(Flonum.zero(), position=0)


class TestTieStrategies:
    def test_down_tie(self):
        r = fixed_digits(Flonum.from_float(0.5), position=0,
                         tie=TieBreak.DOWN)
        assert r.is_zero

    def test_even_tie(self):
        r = fixed_digits(Flonum.from_float(1.5), position=0,
                         tie=TieBreak.EVEN)
        assert _digits_str(r) == "2"
        r = fixed_digits(Flonum.from_float(2.5), position=0,
                         tie=TieBreak.EVEN)
        assert _digits_str(r) == "2"
