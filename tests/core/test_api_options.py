"""API option matrix: styles, bases, formats, zero forms."""

import pytest
from hypothesis import given, settings

from helpers import finite_doubles
from repro.core.api import format_fixed, format_shortest
from repro.core.rounding import ReaderMode
from repro.errors import RangeError
from repro.floats.formats import BINARY16, DECIMAL64
from repro.floats.model import Flonum
from repro.format.notation import NotationOptions
from repro.reader.exact import read_decimal


class TestShortestStyles:
    def test_engineering_style(self):
        assert format_shortest(6.02214076e23,
                               style="engineering") == "602.214076e21"

    def test_python_repr_negative_zero(self):
        opts = NotationOptions(python_repr=True)
        assert format_shortest(-0.0, options=opts) == "-0.0"

    def test_options_override_style_argument(self):
        opts = NotationOptions(style="scientific")
        assert format_shortest(1234.5, style="positional",
                               options=opts) == "1.2345e3"

    @given(finite_doubles())
    @settings(max_examples=100)
    def test_every_style_reads_back(self, x):
        if x != x or x in (float("inf"), float("-inf")):
            return
        for style in ("auto", "positional", "scientific", "engineering"):
            s = format_shortest(x, style=style)
            assert float(s) == x


class TestFixedOptionMatrix:
    def test_base16_decimals(self):
        # decimals counts positions after the point in the OUTPUT base.
        assert format_fixed(0.5, decimals=2, base=16) == "0.80"
        assert format_fixed(1 / 16, decimals=1, base=16) == "0.1"

    def test_base2_position(self):
        assert format_fixed(2.75, position=-2, base=2) == "10.11"

    def test_scientific_zero_python_repr(self):
        opts = NotationOptions(style="scientific", python_repr=True)
        assert format_fixed(0.0, decimals=2, options=opts) == "0e-02"

    def test_negative_fixed_zero_result(self):
        # -0.004 at 2 decimals rounds to -0.00.
        assert format_fixed(-0.004, decimals=2) == "-0.00"

    def test_flonum_input_other_format(self):
        v = read_decimal("0.333333", BINARY16)
        s = format_fixed(v, ndigits=8)
        assert s.count("#") >= 2  # binary16 has ~4 significant digits

    def test_decimal_format_input(self):
        v = Flonum.finite(0, 10**15, -16, DECIMAL64)  # exactly 0.1
        assert format_fixed(v, decimals=3) == "0.100"

    def test_int_input(self):
        assert format_fixed(7, decimals=1) == "7.0"
        assert format_shortest(10**15) == "1000000000000000"

    def test_int_input_beyond_double_rejected(self):
        with pytest.raises(RangeError):
            format_shortest(2**53 + 1)


class TestModeSurface:
    @pytest.mark.parametrize("mode", list(ReaderMode))
    def test_all_modes_produce_readable_output(self, mode):
        for x in (0.3, -0.3, 1e23, 5e-324):
            s = format_shortest(x, mode=mode)
            got = read_decimal(s, mode=mode)
            assert got == Flonum.from_float(x), (x, mode, s)

    def test_tie_parameter_propagates(self):
        from repro.core.rounding import TieBreak

        # A value printing to an exact tie in a toy situation is hard to
        # hit with doubles; check the parameter plumbs through without
        # altering non-tie outputs.
        assert (format_shortest(0.3, tie=TieBreak.DOWN)
                == format_shortest(0.3, tie=TieBreak.UP))


class TestScalerSurface:
    def test_scaler_parameter(self):
        from repro.core.scaling import scale_float_log, scale_iterative

        for scaler in (scale_iterative, scale_float_log):
            assert format_shortest(123.456, scaler=scaler) == "123.456"
