"""String-level API: format_shortest / format_fixed."""

import pytest
from hypothesis import given

from helpers import finite_doubles
from repro.core.api import format_fixed, format_shortest, to_flonum
from repro.core.rounding import ReaderMode, TieBreak
from repro.errors import RangeError
from repro.floats.formats import BINARY32
from repro.floats.model import Flonum
from repro.format.notation import NotationOptions


class TestToFlonum:
    def test_accepts_float_int_flonum(self):
        assert to_flonum(1.5).to_fraction() == 1.5
        assert to_flonum(7).to_fraction() == 7
        v = Flonum.from_float(2.0)
        assert to_flonum(v) is v

    def test_rejects_bool_and_str(self):
        with pytest.raises(RangeError):
            to_flonum(True)
        with pytest.raises(RangeError):
            to_flonum("1.5")

    def test_format_parameter(self):
        v = to_flonum(1.5, BINARY32)
        assert v.fmt is BINARY32


class TestFormatShortest:
    @pytest.mark.parametrize("x,expect", [
        (0.3, "0.3"),
        (-0.3, "-0.3"),
        (1e23, "1e23"),
        (5e-324, "5e-324"),
        (0.0, "0"),
        (-0.0, "-0"),
        (float("inf"), "inf"),
        (float("-inf"), "-inf"),
        (float("nan"), "nan"),
        (1234.5, "1234.5"),
        (1e-4, "0.0001"),
        (1e-5, "1e-5"),
        (1e15, "1000000000000000"),
        (1e16, "1e16"),
    ])
    def test_golden(self, x, expect):
        assert format_shortest(x) == expect

    def test_style_override(self):
        assert format_shortest(1234.5, style="scientific") == "1.2345e3"
        assert format_shortest(1e23, style="positional") == (
            "1" + "0" * 23)

    def test_base_16(self):
        assert format_shortest(255.0, base=16, style="positional") == "ff"

    def test_base_2(self):
        assert format_shortest(0.5, base=2, style="positional") == "0.1"

    def test_conservative_mode_lengthens_1e23(self):
        s = format_shortest(1e23, mode=ReaderMode.NEAREST_UNKNOWN)
        assert s == "9.999999999999999e22"

    def test_negative_directed_mode_mirrors(self):
        # Printing -x under TOWARD_POSITIVE must use TOWARD_NEGATIVE for
        # |x|: the output may equal the magnitude itself.
        s = format_shortest(-0.3, mode=ReaderMode.TOWARD_NEGATIVE)
        assert s.startswith("-")

    def test_python_repr_options(self):
        opts = NotationOptions(python_repr=True)
        assert format_shortest(3.0, options=opts) == "3.0"
        assert format_shortest(1e23, options=opts) == "1e+23"
        assert format_shortest(0.0, options=opts) == "0.0"

    @given(finite_doubles())
    def test_round_trips_via_python_float(self, x):
        assert float(format_shortest(x)) == x


class TestFormatFixed:
    @pytest.mark.parametrize("kwargs,x,expect", [
        (dict(ndigits=10), 1 / 3, "0.3333333333"),
        (dict(decimals=20), 100.0, "100.000000000000000#####"),
        (dict(decimals=2), 3.14159, "3.14"),
        (dict(decimals=2), -3.14159, "-3.14"),
        (dict(decimals=0), 0.4, "0"),
        (dict(decimals=0), 0.6, "1"),
        (dict(decimals=3), 0.0, "0.000"),
        (dict(position=2), 12345.0, "12300"),
        (dict(decimals=1), -0.04, "-0.0"),
    ])
    def test_golden(self, kwargs, x, expect):
        assert format_fixed(x, **kwargs) == expect

    def test_specials(self):
        assert format_fixed(float("nan"), decimals=2) == "nan"
        assert format_fixed(float("inf"), decimals=2) == "inf"
        assert format_fixed(float("-inf"), decimals=2) == "-inf"

    def test_scientific_style(self):
        assert format_fixed(5e-324, ndigits=8, style="scientific") == (
            "5.#######e-324")

    def test_zero_relative(self):
        assert format_fixed(0.0, ndigits=4) == "0.000"

    def test_requires_one_precision_spec(self):
        with pytest.raises(RangeError):
            format_fixed(1.0)
        with pytest.raises(RangeError):
            format_fixed(1.0, decimals=2, ndigits=3)

    def test_rejects_negative_decimals(self):
        with pytest.raises(RangeError):
            format_fixed(1.0, decimals=-1)

    def test_tie_parameter(self):
        assert format_fixed(2.5, decimals=0) == "3"
        assert format_fixed(2.5, decimals=0, tie=TieBreak.EVEN) == "2"

    def test_hash_output_reads_back(self):
        from repro.reader.exact import read_decimal

        s = format_fixed(100.0, decimals=20)
        assert "#" in s
        assert read_decimal(s) == Flonum.from_float(100.0)
