"""The incremental digit stream."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import positive_flonums
from repro.baselines.naive_fixed import exact_fixed_digits
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode, TieBreak
from repro.core.stream import DigitStream
from repro.errors import RangeError
from repro.floats.model import Flonum


class TestNaturalTermination:
    @given(positive_flonums())
    @settings(max_examples=200)
    def test_iterating_matches_shortest(self, v):
        stream = DigitStream(v)
        digits = list(stream)
        want = shortest_digits(v)
        assert stream.complete
        assert (stream.k, tuple(digits)) == (want.k, want.digits)

    def test_next_digit_protocol(self):
        stream = DigitStream(Flonum.from_float(0.25))
        d1, done1 = stream.next_digit()
        d2, done2 = stream.next_digit()
        assert (d1, done1) == (2, False)
        assert (d2, done2) == (5, True)
        with pytest.raises(RangeError):
            stream.next_digit()

    def test_mode_parameter(self):
        v = Flonum.from_float(1e23)
        assert list(DigitStream(v, mode=ReaderMode.NEAREST_EVEN)) == [1]
        assert len(list(DigitStream(v, mode=ReaderMode.NEAREST_UNKNOWN))) == 16


class TestTake:
    @given(positive_flonums(), st.integers(min_value=1, max_value=25))
    @settings(max_examples=300)
    def test_capped_is_correctly_rounded_prefix(self, v, n):
        r = DigitStream(v, tie=TieBreak.EVEN).take(n)
        natural = shortest_digits(v)
        if len(natural.digits) <= n:
            assert (r.k, r.digits) == (natural.k, natural.digits)
        else:
            want = exact_fixed_digits(v, ndigits=n, tie=TieBreak.EVEN)
            assert (r.k, r.digits) == (want.k, want.digits)

    def test_carry_propagates(self):
        # 0.999999 capped at 3 digits rounds to 1.00 x 10^0.
        v = Flonum.from_float(0.9999995)
        r = DigitStream(v).take(3)
        assert r.digits == (1, 0, 0) and r.k == 1

    def test_take_needs_fresh_stream(self):
        stream = DigitStream(Flonum.from_float(1 / 3))
        stream.next_digit()
        with pytest.raises(RangeError):
            stream.take(4)

    def test_take_validates(self):
        with pytest.raises(RangeError):
            DigitStream(Flonum.from_float(1.0)).take(0)


class TestTakeVsEngineCounted:
    """``take(n)`` against the tiered engine's counted route, any base.

    The engine path shares no code with the stream (counted Grisu tier
    plus the exact one-division baseline), so agreement here pins the
    carry behaviour — in particular the all-``(base-1)`` expansions
    whose rounding propagates a carry past every kept digit.
    """

    @given(positive_flonums(), st.integers(min_value=1, max_value=20),
           st.integers(min_value=2, max_value=36))
    @settings(max_examples=200)
    def test_agrees_with_engine_counted(self, v, n, base):
        from repro.engine import Engine

        r = DigitStream(v, base=base, tie=TieBreak.EVEN).take(n)
        natural = shortest_digits(v, base=base)
        if len(natural.digits) <= n:
            assert (r.k, r.digits) == (natural.k, natural.digits)
        else:
            want = Engine().counted_digits(v, ndigits=n, base=base,
                                           tie=TieBreak.EVEN)
            assert (r.k, r.digits) == (want.k, want.digits)

    def test_all_nines_carry_every_base(self):
        from repro.engine import Engine

        eng = Engine()
        v = Flonum.from_float(1.0 - 2**-53)  # 0.(B-1)(B-1)... in base B
        for base in range(2, 37):
            for n in (1, 2, 3, 5):
                r = DigitStream(v, base=base, tie=TieBreak.EVEN).take(n)
                want = eng.counted_digits(v, ndigits=n, base=base,
                                          tie=TieBreak.EVEN)
                assert (r.k, r.digits) == (want.k, want.digits), (base, n)
                # The carry must have propagated past every kept digit:
                # 0.(B-1)... rounds up to 1.0, digits (1, 0, ..., 0).
                assert r.k == 1 and r.digits == (1,) + (0,) * (n - 1), (
                    base, n)

    def test_carry_just_below_a_power(self):
        from repro.engine import Engine

        eng = Engine()
        # 255.9999... in base 16 is FF.FFF...: take(2) carries to 0x100.
        from repro.floats import predecessor

        v = predecessor(Flonum.from_float(256.0))
        r = DigitStream(v, base=16, tie=TieBreak.EVEN).take(2)
        want = eng.counted_digits(v, ndigits=2, base=16, tie=TieBreak.EVEN)
        assert (r.k, r.digits) == (want.k, want.digits) == (3, (1, 0))


class TestValidation:
    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            DigitStream(Flonum.zero())

    def test_rejects_bad_base(self):
        with pytest.raises(RangeError):
            DigitStream(Flonum.from_float(1.0), base=1)
