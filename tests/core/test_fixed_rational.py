"""The rational fixed-format spec vs the production integer version."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import TOY_P5, enumerate_toy, positive_flonums
from repro.core.fixed import fixed_digits
from repro.core.fixed_rational import fixed_digits_rational
from repro.core.rounding import TieBreak
from repro.errors import RangeError
from repro.floats.formats import BINARY16
from repro.floats.model import Flonum


def _eq(a, b):
    return (a.k, a.digits, a.hashes, a.position) == (
        b.k, b.digits, b.hashes, b.position)


class TestEquivalence:
    @given(positive_flonums(), st.integers(min_value=-30, max_value=10))
    @settings(max_examples=200)
    def test_absolute_binary64(self, v, j):
        assert _eq(fixed_digits(v, position=j),
                   fixed_digits_rational(v, position=j))

    @given(positive_flonums(), st.integers(min_value=1, max_value=22))
    @settings(max_examples=200)
    def test_relative_binary64(self, v, i):
        assert _eq(fixed_digits(v, ndigits=i),
                   fixed_digits_rational(v, ndigits=i))

    @given(positive_flonums(BINARY16), st.integers(min_value=-12, max_value=6),
           st.sampled_from(list(TieBreak)))
    @settings(max_examples=200)
    def test_binary16_with_hash_runs(self, v, j, tie):
        assert _eq(fixed_digits(v, position=j, tie=tie),
                   fixed_digits_rational(v, position=j, tie=tie))

    def test_exhaustive_toy(self):
        for v in enumerate_toy(TOY_P5):
            for j in range(-8, 4):
                assert _eq(fixed_digits(v, position=j),
                           fixed_digits_rational(v, position=j)), (v, j)

    def test_exhaustive_toy_relative(self):
        for v in enumerate_toy(TOY_P5):
            for i in (1, 2, 4, 8):
                assert _eq(fixed_digits(v, ndigits=i),
                           fixed_digits_rational(v, ndigits=i)), (v, i)

    @given(positive_flonums(), st.sampled_from([2, 16]),
           st.integers(min_value=-10, max_value=4))
    @settings(max_examples=100)
    def test_other_bases(self, v, base, j):
        assert _eq(fixed_digits(v, position=j, base=base),
                   fixed_digits_rational(v, position=j, base=base))

    def test_paper_examples_via_spec(self):
        r = fixed_digits_rational(Flonum.from_float(100.0), position=-20)
        assert r.hashes == 5 and r.digits[:3] == (1, 0, 0)

    def test_validation(self):
        with pytest.raises(RangeError):
            fixed_digits_rational(Flonum.from_float(1.0))
        with pytest.raises(RangeError):
            fixed_digits_rational(Flonum.zero(), position=0)
        with pytest.raises(RangeError):
            fixed_digits_rational(Flonum.from_float(1.0), ndigits=0)
        with pytest.raises(RangeError):
            fixed_digits_rational(Flonum.from_float(1.0), position=0, base=1)
