"""The Section-2 rational-arithmetic specification itself."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from helpers import positive_flonums
from repro.core.rational import find_k_rational, shortest_digits_rational
from repro.core.rounding import ReaderMode
from repro.errors import RangeError
from repro.floats.model import Flonum
from repro.floats.ulp import rounding_interval


class TestFindK:
    @pytest.mark.parametrize("high,base,high_ok,k", [
        (Fraction(1, 2), 10, False, 0),
        (Fraction(1), 10, False, 0),
        (Fraction(1), 10, True, 1),   # strict bound steps past the power
        (Fraction(10), 10, False, 1),
        (Fraction(11), 10, False, 2),
        (Fraction(1, 10), 10, False, -1),
        (Fraction(1, 11), 10, False, -1),
        (Fraction(1, 100), 10, False, -2),
        (Fraction(7), 2, False, 3),
        (Fraction(8), 2, False, 3),
        (Fraction(8), 2, True, 4),
    ])
    def test_cases(self, high, base, high_ok, k):
        assert find_k_rational(high, base, high_ok) == k

    def test_definition_minimality(self):
        for num in range(1, 200):
            high = Fraction(num, 17)
            k = find_k_rational(high, 10, False)
            assert high <= Fraction(10) ** k
            assert high > Fraction(10) ** (k - 1)


class TestSpecification:
    @given(positive_flonums())
    @settings(max_examples=100)
    def test_output_in_rounding_interval(self, v):
        r = shortest_digits_rational(v, mode=ReaderMode.NEAREST_UNKNOWN)
        low, high = rounding_interval(v)
        assert low < r.to_fraction() < high

    @given(positive_flonums())
    @settings(max_examples=100)
    def test_output_correctly_rounded(self, v):
        # Output condition 2 in its achievable closest-valid form (see
        # helpers.assert_correctly_rounded for the boundary caveat).
        from helpers import assert_correctly_rounded

        r = shortest_digits_rational(v, mode=ReaderMode.NEAREST_UNKNOWN)
        assert_correctly_rounded(v, r, ReaderMode.NEAREST_UNKNOWN)

    def test_first_digit_nonzero(self):
        for x in (0.1, 0.001, 5e-324, 123.0, 1e300):
            r = shortest_digits_rational(Flonum.from_float(x))
            assert r.digits[0] != 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(RangeError):
            shortest_digits_rational(Flonum.zero())
        with pytest.raises(RangeError):
            shortest_digits_rational(Flonum.from_float(1.0), base=37)
