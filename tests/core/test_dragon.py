"""The free-format driver: golden outputs and reference agreement."""

import pytest
from hypothesis import given, settings

from helpers import (
    TOY_B4,
    TOY_P5,
    enumerate_toy,
    output_bases,
    positive_flonums,
)
from repro.core.dragon import shortest_digits
from repro.core.rational import shortest_digits_rational
from repro.core.rounding import ReaderMode, TieBreak
from repro.core.scaling import scale_estimate, scale_float_log, scale_iterative
from repro.errors import RangeError
from repro.floats.formats import BINARY32, BINARY64
from repro.floats.model import Flonum


def _digits_str(result):
    return "".join(str(d) for d in result.digits)


class TestGoldenOutputs:
    @pytest.mark.parametrize("x,k,digits", [
        (0.3, 0, "3"),
        (1.0, 1, "1"),
        (2.0, 1, "2"),
        (0.1, 0, "1"),
        (1 / 3, 0, "3333333333333333"),
        (123456.789, 6, "123456789"),
        (5e-324, -323, "5"),
        (1.7976931348623157e308, 309, "17976931348623157"),
        (3.141592653589793, 1, "3141592653589793"),
    ])
    def test_known_values(self, x, k, digits):
        r = shortest_digits(Flonum.from_float(x))
        assert (r.k, _digits_str(r)) == (k, digits)

    def test_paper_1e23_needs_reader_awareness(self):
        # Section 3.1's example: under IEEE unbiased reading the output is
        # 1e23; a conservative printer needs 17 digits.
        v = Flonum.from_float(1e23)
        aware = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
        assert (aware.k, _digits_str(aware)) == (24, "1")
        unaware = shortest_digits(v, mode=ReaderMode.NEAREST_UNKNOWN)
        assert _digits_str(unaware) == "9999999999999999"

    def test_abstract_says_03_not_0299(self):
        # "3/10 would print as 0.3 instead of 0.2999999" — even with the
        # conservative reader assumption.
        r = shortest_digits(Flonum.from_float(0.3),
                            mode=ReaderMode.NEAREST_UNKNOWN)
        assert _digits_str(r) == "3"

    def test_binary32_third(self):
        import struct

        x = struct.unpack(">f", struct.pack(">f", 1 / 3))[0]
        v = Flonum.from_float(x).with_format(BINARY32)
        r = shortest_digits(v)
        assert _digits_str(r) == "33333334"  # 8 digits suffice for binary32


class TestValidation:
    def test_rejects_bad_base(self):
        v = Flonum.from_float(1.0)
        with pytest.raises(RangeError):
            shortest_digits(v, base=1)
        with pytest.raises(RangeError):
            shortest_digits(v, base=37)

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            shortest_digits(Flonum.zero())
        with pytest.raises(RangeError):
            shortest_digits(Flonum.from_float(-1.0))
        with pytest.raises(RangeError):
            shortest_digits(Flonum.infinity())


class TestAgainstRationalReference:
    """The integer implementation must equal the Section-2 specification."""

    @given(positive_flonums())
    @settings(max_examples=150)
    def test_binary64_nearest_even(self, v):
        fast = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
        spec = shortest_digits_rational(v, mode=ReaderMode.NEAREST_EVEN)
        assert (fast.k, fast.digits) == (spec.k, spec.digits)

    @given(positive_flonums(), output_bases())
    @settings(max_examples=150)
    def test_binary64_any_base_conservative(self, v, base):
        fast = shortest_digits(v, base=base)
        spec = shortest_digits_rational(v, base=base,
                                        mode=ReaderMode.NEAREST_EVEN)
        assert (fast.k, fast.digits) == (spec.k, spec.digits)

    @pytest.mark.parametrize("mode", list(ReaderMode))
    def test_every_mode_exhaustive_toy(self, mode):
        for v in enumerate_toy(TOY_P5):
            fast = shortest_digits(v, mode=mode)
            spec = shortest_digits_rational(v, mode=mode)
            assert (fast.k, fast.digits) == (spec.k, spec.digits), v

    def test_radix4_exhaustive(self):
        for v in enumerate_toy(TOY_B4):
            for base in (3, 10):
                fast = shortest_digits(v, base=base)
                spec = shortest_digits_rational(
                    v, base=base, mode=ReaderMode.NEAREST_EVEN)
                assert (fast.k, fast.digits) == (spec.k, spec.digits)


class TestScalerEquivalence:
    @given(positive_flonums())
    @settings(max_examples=150)
    def test_scalers_identical_output(self, v):
        results = {
            (r.k, r.digits)
            for r in (
                shortest_digits(v, scaler=scale_iterative),
                shortest_digits(v, scaler=scale_float_log),
                shortest_digits(v, scaler=scale_estimate),
            )
        }
        assert len(results) == 1

    def test_scalers_identical_output_base2(self):
        for v in enumerate_toy(TOY_P5):
            results = {
                (r.k, r.digits)
                for scaler in (scale_iterative, scale_float_log,
                               scale_estimate)
                for r in [shortest_digits(v, base=2, scaler=scaler)]
            }
            assert len(results) == 1


class TestTieHandling:
    def test_tie_strategies_differ_only_in_last_digit(self):
        # 2**-2 = 0.25 sits exactly between "2" and "3" at one digit with
        # wide margins in a tiny format.
        fmt = TOY_P5
        v = Flonum.finite(0, 16, -6, fmt)  # 16/64 = 0.25
        up = shortest_digits(v, tie=TieBreak.UP,
                             mode=ReaderMode.NEAREST_UNKNOWN)
        down = shortest_digits(v, tie=TieBreak.DOWN,
                               mode=ReaderMode.NEAREST_UNKNOWN)
        if up.digits != down.digits:
            assert up.k == down.k
            assert abs(up.digits[-1] - down.digits[-1]) == 1
