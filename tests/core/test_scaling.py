"""The three scalers: agreement, contracts, estimator accuracy."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import (
    TOY_B4,
    TOY_P5,
    enumerate_toy,
    output_bases,
    positive_flonums,
)
from repro.core.boundaries import adjust_for_mode, initial_scaled_value
from repro.core.rounding import ReaderMode
from repro.core.scaling import (
    STATS,
    digit_length,
    estimate_k_fast,
    estimate_k_float_log,
    scale_estimate,
    scale_float_log,
    scale_iterative,
)
from repro.floats.model import Flonum

ALL_SCALERS = [scale_iterative, scale_float_log, scale_estimate]


def _scaled_value(v, mode=ReaderMode.NEAREST_UNKNOWN):
    r, s, mp, mm = initial_scaled_value(v)
    return adjust_for_mode(v, r, s, mp, mm, mode)


def _contract_holds(k, r, s, m_plus, base, high_ok):
    """Post-scaling contract: with the pre-multiplication by B applied,
    high*B/B**k lies in (1, B] (or [1, B) when the endpoint is usable)."""
    high_scaled = Fraction(r + m_plus, s)  # == high * B / B**k
    if high_ok:
        return 1 <= high_scaled < base
    return 1 < high_scaled <= base


class TestDigitLength:
    def test_binary(self):
        assert digit_length(1, 2) == 1
        assert digit_length(255, 2) == 8
        assert digit_length(256, 2) == 9

    def test_decimal(self):
        assert digit_length(999, 10) == 3
        assert digit_length(1000, 10) == 4

    @given(positive_flonums())
    def test_matches_bit_length(self, v):
        assert digit_length(v.f, 2) == v.f.bit_length()


class TestScalerAgreement:
    @given(positive_flonums(), output_bases())
    @settings(max_examples=200)
    def test_all_three_agree_on_k(self, v, base):
        sv = _scaled_value(v)
        ks = set()
        for scaler in ALL_SCALERS:
            k, r, s, mp, mm = scaler(sv, base, v)
            ks.add(k)
            assert _contract_holds(k, r, s, mp, base, sv.high_ok)
        assert len(ks) == 1

    @given(positive_flonums())
    def test_agree_under_even_boundaries(self, v):
        sv = _scaled_value(v, ReaderMode.NEAREST_EVEN)
        results = {scaler(sv, 10, v)[0] for scaler in ALL_SCALERS}
        assert len(results) == 1

    def test_exhaustive_toy(self):
        for v in enumerate_toy(TOY_P5):
            sv = _scaled_value(v)
            results = [scaler(sv, 10, v) for scaler in ALL_SCALERS]
            assert len({k for k, *_ in results}) == 1
            for k, r, s, mp, mm in results:
                assert _contract_holds(k, r, s, mp, 10, sv.high_ok)

    def test_exhaustive_toy_radix4_base3(self):
        for v in enumerate_toy(TOY_B4):
            sv = _scaled_value(v)
            results = [scaler(sv, 3, v) for scaler in ALL_SCALERS]
            assert len({k for k, *_ in results}) == 1


class TestKSemantics:
    @given(positive_flonums())
    def test_k_is_minimal_bound_exclusive(self, v):
        # Not high_ok: k is the smallest integer with high <= B**k.
        sv = _scaled_value(v, ReaderMode.NEAREST_UNKNOWN)
        k, *_ = scale_iterative(sv, 10, v)
        high = Fraction(sv.r + sv.m_plus, sv.s)
        assert high <= Fraction(10) ** k
        assert high > Fraction(10) ** (k - 1)

    def test_k_strict_when_high_attainable(self):
        # 1e23's boundary is exactly 10**23 and is attainable under
        # nearest-even reading: k must step past it.
        v = Flonum.from_float(1e23)
        sv = _scaled_value(v, ReaderMode.NEAREST_EVEN)
        k, *_ = scale_iterative(sv, 10, v)
        assert k == 24
        sv2 = _scaled_value(v, ReaderMode.NEAREST_UNKNOWN)
        k2, *_ = scale_iterative(sv2, 10, v)
        assert k2 == 23

    @pytest.mark.parametrize("x,k", [
        (1.0, 1), (9.5, 1), (10.0, 2), (0.1, 0), (0.099, -1),
        (5e-324, -323), (1.7976931348623157e308, 309),
    ])
    def test_known_k_values(self, x, k):
        v = Flonum.from_float(x)
        sv = _scaled_value(v)
        assert scale_estimate(sv, 10, v)[0] == k


class TestEstimators:
    @given(positive_flonums(), output_bases())
    @settings(max_examples=300)
    def test_fast_estimate_within_one(self, v, base):
        sv = _scaled_value(v)
        k_true, *_ = scale_iterative(sv, base, v)
        est = estimate_k_fast(v, base)
        assert est <= k_true, "estimate must never overshoot"
        assert k_true - est <= 1, "estimate is k or k-1"

    @given(positive_flonums(), output_bases())
    @settings(max_examples=300)
    def test_float_log_estimate_within_one(self, v, base):
        sv = _scaled_value(v)
        k_true, *_ = scale_iterative(sv, base, v)
        est = estimate_k_float_log(v, base)
        assert est <= k_true
        assert k_true - est <= 1

    def test_float_log_usually_exact(self):
        # Paper: "the floating-point logarithm estimate was almost always
        # k, our simpler estimate is frequently k-1."
        from repro.workloads.schryer import corpus

        vals = corpus(2000)
        exact_log = exact_fast = 0
        for v in vals:
            sv = _scaled_value(v)
            k_true, *_ = scale_iterative(sv, 10, v)
            exact_log += estimate_k_float_log(v, 10) == k_true
            exact_fast += estimate_k_fast(v, 10) == k_true
        assert exact_log > exact_fast
        assert exact_log / len(vals) > 0.95

    def test_stats_counters(self):
        STATS.reset()
        v = Flonum.from_float(3.0)
        sv = _scaled_value(v)
        scale_estimate(sv, 10, v)
        assert STATS.calls == 1
        assert STATS.overshoot_drops == 0

    def test_huge_format_no_overflow(self):
        # binary128-sized exponents must not overflow the host double in
        # the log-based estimators.
        from repro.floats.formats import BINARY128

        v = Flonum.finite(0, BINARY128.hidden_limit, 16000, BINARY128)
        est = estimate_k_float_log(v, 10)
        est2 = estimate_k_fast(v, 10)
        sv = _scaled_value(v)
        k_true, *_ = scale_iterative(sv, 10, v)
        assert k_true - 1 <= est <= k_true
        assert k_true - 1 <= est2 <= k_true


class TestFixupRobustness:
    """apply_estimate must repair *any* bad estimate, both directions.

    The shipped estimators never overshoot (epsilon-guarded) and
    undershoot by at most one, but the fixup is written as a loop so
    exotic radixes — and this test — can hand it arbitrary garbage.
    """

    def _state(self, v):
        return _scaled_value(v, ReaderMode.NEAREST_EVEN)

    @given(positive_flonums(), st.integers(min_value=-4, max_value=4))
    @settings(max_examples=150)
    def test_offset_estimates_repaired(self, v, offset):
        from repro.core.scaling import apply_estimate

        sv = self._state(v)
        k_true, *_ = scale_iterative(sv, 10, v)
        est = estimate_k_fast(v, 10) + offset
        k, r, s, mp, mm = apply_estimate(sv, 10, est)
        assert k == k_true
        assert _contract_holds(k, r, s, mp, 10, sv.high_ok)

    def test_wildly_low_estimate(self):
        from repro.core.scaling import apply_estimate

        v = Flonum.from_float(1e100)
        sv = self._state(v)
        k, r, s, mp, mm = apply_estimate(sv, 10, 0)
        assert k == 101
        assert _contract_holds(k, r, s, mp, 10, sv.high_ok)

    def test_wildly_high_estimate(self):
        from repro.core.scaling import apply_estimate

        v = Flonum.from_float(1e-100)
        sv = self._state(v)
        k, r, s, mp, mm = apply_estimate(sv, 10, 5)
        assert k == -99
        assert _contract_holds(k, r, s, mp, 10, sv.high_ok)

    @given(positive_flonums(), st.integers(min_value=-3, max_value=3))
    @settings(max_examples=100)
    def test_digits_unchanged_under_bad_estimates(self, v, offset):
        """The full conversion is estimate-independent: any starting
        guess yields identical output."""
        from repro.core.scaling import apply_estimate

        def bad_scaler(sv, base, value):
            return apply_estimate(sv, base, estimate_k_fast(value, base)
                                  + offset)

        ref = shortest_digits_for_test(v)
        got = shortest_digits_for_test(v, scaler=bad_scaler)
        assert (ref.k, ref.digits) == (got.k, got.digits)


def shortest_digits_for_test(v, scaler=None):
    from repro.core.dragon import shortest_digits

    return shortest_digits(v, scaler=scaler)
