"""Table 1: the integer initialization of r, s, m+, m-."""

from fractions import Fraction

import pytest
from hypothesis import given

from helpers import TOY_B4, TOY_P5, enumerate_toy, positive_flonums
from repro.core.boundaries import adjust_for_mode, initial_scaled_value
from repro.core.rounding import ReaderMode
from repro.errors import RangeError
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.floats.ulp import gap_high, gap_low


def _check_invariants(v):
    """r/s == v;  m+/s == (v+ - v)/2;  m-/s == (v - v-)/2."""
    r, s, m_plus, m_minus = initial_scaled_value(v)
    assert Fraction(r, s) == v.to_fraction()
    assert Fraction(m_plus, s) == gap_high(v) / 2
    assert Fraction(m_minus, s) == gap_low(v) / 2


class TestTable1Cases:
    def test_case_e_nonneg_regular(self):
        # e >= 0, f != b**(p-1): r = f*be*2, s = 2, m+ = m- = be.
        v = Flonum.finite(0, (1 << 52) + 5, 3, BINARY64)
        r, s, m_plus, m_minus = initial_scaled_value(v)
        assert (r, s) == (v.f * 8 * 2, 2)
        assert m_plus == m_minus == 8
        _check_invariants(v)

    def test_case_e_nonneg_power_boundary(self):
        # e >= 0, f == b**(p-1): the gap below narrows by b.
        v = Flonum.finite(0, 1 << 52, 3, BINARY64)
        r, s, m_plus, m_minus = initial_scaled_value(v)
        assert (r, s) == (v.f * 8 * 2 * 2, 2 * 2)
        assert (m_plus, m_minus) == (16, 8)
        _check_invariants(v)

    def test_case_e_negative_regular(self):
        v = Flonum.finite(0, (1 << 52) + 5, -60, BINARY64)
        r, s, m_plus, m_minus = initial_scaled_value(v)
        assert (r, s) == (v.f * 2, 2**60 * 2)
        assert m_plus == m_minus == 1
        _check_invariants(v)

    def test_case_e_negative_power_boundary(self):
        v = Flonum.finite(0, 1 << 52, -60, BINARY64)
        r, s, m_plus, m_minus = initial_scaled_value(v)
        assert (r, s) == (v.f * 2 * 2, 2**61 * 2)
        assert (m_plus, m_minus) == (2, 1)
        _check_invariants(v)

    def test_min_exponent_power_not_narrowed(self):
        # f == b**(p-1) at e == min_e: the neighbour below is the largest
        # denormal, a full ulp away, so no narrowing applies.
        v = Flonum.finite(0, 1 << 52, BINARY64.min_e, BINARY64)
        _, _, m_plus, m_minus = initial_scaled_value(v)
        assert m_plus == m_minus

    def test_denormal(self):
        v = Flonum.finite(0, 123, BINARY64.min_e, BINARY64)
        _check_invariants(v)

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            initial_scaled_value(Flonum.zero())

    @given(positive_flonums())
    def test_invariants_random_binary64(self, v):
        _check_invariants(v)

    def test_invariants_exhaustive_toy(self):
        for v in enumerate_toy(TOY_P5):
            _check_invariants(v)

    def test_invariants_exhaustive_radix4(self):
        # Non-binary radix exercises the generic b arithmetic of Table 1.
        for v in enumerate_toy(TOY_B4):
            _check_invariants(v)

    def test_toy_min_e_nonnegative(self):
        # A format whose minimum exponent is >= 0 hits the e >= 0 columns
        # with the min-exponent guard (the paper's table assumes IEEE-like
        # ranges where e >= 0 implies e > min_e).
        fmt = FloatFormat.toy(precision=3, emin=2, emax=6, name="toy-pos-e")
        for v in enumerate_toy(fmt):
            _check_invariants(v)


class TestAdjustForMode:
    def _scaled(self, v, mode):
        r, s, mp, mm = initial_scaled_value(v)
        return adjust_for_mode(v, r, s, mp, mm, mode)

    @given(positive_flonums())
    def test_nearest_modes_preserve_margins(self, v):
        r, s, mp, mm = initial_scaled_value(v)
        for mode in (ReaderMode.NEAREST_UNKNOWN, ReaderMode.NEAREST_EVEN,
                     ReaderMode.NEAREST_AWAY, ReaderMode.NEAREST_TO_ZERO):
            sv = adjust_for_mode(v, r, s, mp, mm, mode)
            assert (sv.m_plus, sv.m_minus) == (mp, mm)

    @given(positive_flonums())
    def test_toward_zero_doubles_high_margin(self, v):
        r, s, mp, mm = initial_scaled_value(v)
        sv = adjust_for_mode(v, r, s, mp, mm, ReaderMode.TOWARD_ZERO)
        assert sv.m_plus == 2 * mp and sv.m_minus == 0
        assert sv.low_ok and not sv.high_ok

    @given(positive_flonums())
    def test_toward_positive_doubles_low_margin(self, v):
        r, s, mp, mm = initial_scaled_value(v)
        sv = adjust_for_mode(v, r, s, mp, mm, ReaderMode.TOWARD_POSITIVE)
        assert sv.m_minus == 2 * mm and sv.m_plus == 0
        assert sv.high_ok and not sv.low_ok

    def test_even_mantissa_inclusion(self):
        sv = self._scaled(Flonum.from_float(2.0), ReaderMode.NEAREST_EVEN)
        assert sv.low_ok and sv.high_ok

    def test_odd_mantissa_exclusion(self):
        v = Flonum.finite(0, (1 << 52) + 1, 0, BINARY64)
        sv = self._scaled(v, ReaderMode.NEAREST_EVEN)
        assert not sv.low_ok and not sv.high_ok
