"""Negative values and reader modes: the printer must mirror directed
modes before converting the magnitude (regression tests for the
``mode.mirrored()`` handling in ``format_shortest`` and the engine).

A reader rounding TOWARD_POSITIVE treats a *negative* value's rounding
interval the way TOWARD_NEGATIVE treats the positive magnitude's — so
``format(-x, m)`` must equal ``"-" + format(x, m.mirrored())``, and the
output must actually read back to the value under the claimed mode.
"""

import pytest

from repro.core.api import format_shortest
from repro.core.rounding import ReaderMode
from repro.engine import Engine
from repro.floats.model import Flonum
from repro.reader.exact import read_decimal
from repro.workloads.corpus import torture_floats, uniform_random

ALL_MODES = list(ReaderMode)

#: Boundary-sensitive values: decimal ties (1e23!), power boundaries,
#: and plain moderate values where directed modes shorten the output.
BOUNDARY_VALUES = [
    1e23, 1e22, 9.109383632e-31, 6.02214076e23, 0.1, 0.5, 1.5,
    2.2250738585072014e-308, 5e-324, 9007199254740993.0, 123.456,
    1.7976931348623157e308, 3.141592653589793,
]


class TestMirrorIdentity:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_boundary_values(self, mode):
        for x in BOUNDARY_VALUES:
            pos = format_shortest(x, mode=mode.mirrored())
            neg = format_shortest(-x, mode=mode)
            assert neg == "-" + pos, (x, mode)

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_random_corpus(self, mode):
        for v in uniform_random(150, seed=17):
            x = v.to_float()
            assert (format_shortest(-x, mode=mode)
                    == "-" + format_shortest(x, mode=mode.mirrored()))

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_exact_path_agrees_with_engine(self, mode):
        eng = Engine()
        for x in BOUNDARY_VALUES:
            assert (format_shortest(-x, mode=mode, engine=None)
                    == format_shortest(-x, mode=mode)
                    == eng.format(-x, mode=mode))

    def test_mirrored_involution(self):
        for mode in ALL_MODES:
            assert mode.mirrored().mirrored() is mode


class TestDirectedRoundTrip:
    """The printed string must read back to the value under the mode it
    was printed for — the paper's correctness statement, signed."""

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_boundary_values_round_trip(self, mode):
        for x in BOUNDARY_VALUES:
            for val in (x, -x):
                s = format_shortest(val, mode=mode)
                back = read_decimal(s, mode=mode)
                assert back == Flonum.from_float(val), (val, mode, s)

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_torture_round_trip(self, mode):
        for v in torture_floats():
            x = v.to_float()
            s = format_shortest(-x, mode=mode)
            assert read_decimal(s, mode=mode) == Flonum.from_float(-x)

    def test_1e23_directed_shapes(self):
        """The flagship boundary case, all four directions, both signs.

        Under NEAREST_EVEN both signs print the one-digit form; directed
        modes may only use it on the side where 10**23 stays inside the
        half-open rounding interval."""
        even_pos = format_shortest(1e23, mode=ReaderMode.NEAREST_EVEN)
        even_neg = format_shortest(-1e23, mode=ReaderMode.NEAREST_EVEN)
        assert even_pos == "1e23"
        assert even_neg == "-1e23"
        for mode in ALL_MODES:
            for val in (1e23, -1e23):
                s = format_shortest(val, mode=mode)
                assert read_decimal(s, mode=mode) == Flonum.from_float(val)
