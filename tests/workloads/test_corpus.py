"""Curated edge-case corpora."""

from repro.floats.formats import BINARY16, BINARY64
from repro.floats.model import Flonum
from repro.floats.ulp import midpoint_high, midpoint_low
from repro.workloads.corpus import (
    all_positive_finite,
    boundary_neighbourhood,
    decimal_ties,
    denormals,
    power_boundaries,
    torture_floats,
)


class TestPowerBoundaries:
    def test_contains_powers_and_neighbours(self):
        vals = power_boundaries(BINARY64, lo=0, hi=2)
        fracs = {v.to_fraction() for v in vals}
        # b**(p-1) * 2**e are exact powers of two scaled into the window.
        assert any(f == 2 ** (52 + 0) for f in fracs)

    def test_all_positive_finite_values(self):
        for v in power_boundaries(BINARY64):
            assert v.is_finite and not v.sign and not v.is_zero


class TestDenormals:
    def test_all_denormal(self):
        for v in denormals(BINARY64):
            assert v.is_denormal

    def test_includes_extremes(self):
        vals = denormals(BINARY64)
        fs = {v.f for v in vals}
        assert 1 in fs
        assert BINARY64.hidden_limit - 1 in fs

    def test_binary16_small_set(self):
        vals = denormals(BINARY16, count=8)
        assert vals and all(v.fmt is BINARY16 for v in vals)


class TestDecimalTies:
    def test_each_pair_has_power_of_ten_boundary(self):
        from fractions import Fraction

        vals = decimal_ties(BINARY64)
        assert vals
        hits = 0
        for v in vals:
            for mid in (midpoint_high(v), midpoint_low(v)):
                num, den = mid.numerator, mid.denominator
                if den == 1:
                    while num % 10 == 0:
                        num //= 10
                    hits += num == 1
        assert hits >= 1  # 1e23 at minimum (both neighbours listed)

    def test_includes_the_1e23_double(self):
        vals = {v.to_bits() for v in decimal_ties(BINARY64)}
        assert Flonum.from_float(1e23).to_bits() in vals


class TestTorture:
    def test_nonempty_and_finite(self):
        vals = torture_floats()
        assert len(vals) > 15
        assert all(v.is_finite for v in vals)


class TestNeighbourhood:
    def test_radius(self):
        v = Flonum.from_float(1.0)
        hood = boundary_neighbourhood(v, radius=3)
        assert len(hood) == 7
        for a, b in zip(hood, hood[1:]):
            assert a < b

    def test_clipped_at_zero(self):
        v = Flonum.finite(0, 1, BINARY64.min_e, BINARY64)
        hood = boundary_neighbourhood(v, radius=3)
        assert hood[0] == v

    def test_clipped_at_infinity(self):
        f, e = BINARY64.largest_finite
        v = Flonum.finite(0, f, e, BINARY64)
        hood = boundary_neighbourhood(v, radius=2)
        assert hood[-1] == v


class TestExhaustiveIterator:
    def test_matches_model_enumeration(self):
        from helpers import TOY_P5

        assert (list(all_positive_finite(TOY_P5))
                == list(Flonum.enumerate_positive(TOY_P5)))


class TestDuplicatedRandom:
    def test_deterministic_and_sized(self):
        from repro.workloads.corpus import duplicated_random

        a = duplicated_random(500, 40, seed=7)
        b = duplicated_random(500, 40, seed=7)
        assert a == b
        assert len(a) == 500
        assert len(set(a)) <= 40

    def test_universe_is_the_uniform_sample(self):
        from repro.workloads.corpus import duplicated_random, uniform_random

        vals = duplicated_random(1000, 25, seed=3)
        assert set(vals) <= set(uniform_random(25, seed=3))

    def test_distinct_must_be_positive(self):
        import pytest

        from repro.errors import ReproError
        from repro.workloads.corpus import duplicated_random

        with pytest.raises(ReproError):
            duplicated_random(10, 0)


class TestZipfRandom:
    def test_head_heavier_than_uniform(self):
        from collections import Counter

        from repro.workloads.corpus import duplicated_random, zipf_random

        flat = duplicated_random(4000, 100, seed=11)
        skewed = zipf_random(4000, 100, s=1.3, seed=11)
        # The most common zipf value dominates far beyond the uniform top.
        top_flat = Counter(flat).most_common(1)[0][1]
        top_skew = Counter(skewed).most_common(1)[0][1]
        assert top_skew > 2 * top_flat

    def test_deterministic(self):
        from repro.workloads.corpus import zipf_random

        assert zipf_random(300, 30, seed=5) == zipf_random(300, 30, seed=5)
