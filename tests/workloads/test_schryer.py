"""The Schryer-style corpus generator."""

import pytest

from repro.floats.formats import BINARY32, BINARY64
from repro.workloads.schryer import (
    PAPER_CORPUS_SIZE,
    corpus,
    exponent_sweep,
    mantissa_patterns,
)


class TestMantissaPatterns:
    def test_all_normalized(self):
        for f in mantissa_patterns(BINARY64):
            assert BINARY64.hidden_limit <= f < BINARY64.mantissa_limit

    def test_includes_extremes(self):
        pats = set(mantissa_patterns(BINARY64))
        assert BINARY64.hidden_limit in pats
        assert BINARY64.mantissa_limit - 1 in pats

    def test_includes_single_bit_forms(self):
        pats = set(mantissa_patterns(BINARY64))
        assert BINARY64.hidden_limit + 1 in pats
        assert BINARY64.hidden_limit + (1 << 30) in pats

    def test_sorted_unique(self):
        pats = mantissa_patterns(BINARY64)
        assert pats == sorted(set(pats))

    def test_binary32(self):
        pats = mantissa_patterns(BINARY32)
        assert all(BINARY32.hidden_limit <= f < BINARY32.mantissa_limit
                   for f in pats)


class TestExponentSweep:
    def test_full_range_by_default(self):
        exps = exponent_sweep(BINARY64)
        assert exps[0] == BINARY64.min_e
        assert exps[-1] == BINARY64.max_e
        assert len(exps) == BINARY64.max_e - BINARY64.min_e + 1

    def test_subsampled(self):
        exps = exponent_sweep(BINARY64, count=100)
        assert len(exps) == 100
        assert exps == sorted(exps)
        assert exps[0] == BINARY64.min_e


class TestCorpus:
    def test_deterministic(self):
        assert corpus(500) == corpus(500)

    def test_size_exact(self):
        for n in (1, 10, 1000, 5000):
            assert len(corpus(n)) == n

    def test_all_positive_normalized(self):
        for v in corpus(2000):
            assert v.is_normal and not v.sign

    def test_spans_exponent_range(self):
        es = {v.e for v in corpus(3000)}
        assert min(es) < -900
        assert max(es) > 900

    def test_empty(self):
        assert corpus(0) == []

    def test_paper_size_constant(self):
        # We do not build all 250,680 here (slow in CI), just pin the
        # constant the benches reference.
        assert PAPER_CORPUS_SIZE == 250_680

    def test_seed_changes_random_fill(self):
        a = corpus(10**5 // 10, seed=1)
        b = corpus(10**5 // 10, seed=2)
        # Pattern-product prefix is shared; the tails may differ only if
        # the random fill kicked in. Just check determinism per seed.
        assert a == corpus(10**5 // 10, seed=1)
        assert b == corpus(10**5 // 10, seed=2)
