"""The 1996-printf model and its incorrect-rounding audit (Table 3)."""

import pytest
from hypothesis import given, settings

from helpers import positive_flonums
from repro.baselines.naive_fixed import exact_fixed_digits
from repro.baselines.naive_printf import (
    audit_naive_printf,
    is_correctly_rounded,
    naive_printf_digits,
)
from repro.errors import RangeError
from repro.floats.model import Flonum
from repro.workloads.schryer import corpus


class TestDigitGeneration:
    @pytest.mark.parametrize("x,k,first", [
        (1.0, 1, 1), (0.1, 0, 1), (123.456, 3, 1), (5e-324, -323, 4),
        (1e300, 301, 1),
    ])
    def test_k_and_leading_digit(self, x, k, first):
        got_k, digits = naive_printf_digits(x, 17)
        assert got_k == k
        assert digits[0] == first

    @given(positive_flonums())
    @settings(max_examples=150)
    def test_digit_count_fixed(self, v):
        k, digits = naive_printf_digits(v, 17)
        assert len(digits) == 17

    @given(positive_flonums())
    @settings(max_examples=100)
    def test_wide_precision_always_correct(self, v):
        # With a 113-bit intermediate the chain error stays far below a
        # half unit in the 17th digit.
        k, digits = naive_printf_digits(v, 17, precision=113)
        assert is_correctly_rounded(v, k, digits)

    def test_short_digit_counts_are_exactish(self):
        # Even the 53-bit chain gets few digits right (Gay's observation
        # behind the fixed-format fast-path heuristics).
        for x in (3.14159, 2.5, 123.456, 9.99):
            k, digits = naive_printf_digits(x, 6)
            assert is_correctly_rounded(x, k, digits, ndigits=6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(RangeError):
            naive_printf_digits(0.0)
        with pytest.raises(RangeError):
            naive_printf_digits(-1.0)
        with pytest.raises(RangeError):
            naive_printf_digits(1.0, 0)


class TestCorrectnessChecker:
    def test_accepts_exact_answer(self):
        v = Flonum.from_float(0.1)
        want = exact_fixed_digits(v, ndigits=17)
        assert is_correctly_rounded(v, want.k, want.digits)

    def test_rejects_off_by_one(self):
        v = Flonum.from_float(0.1)
        want = exact_fixed_digits(v, ndigits=17)
        wrong = list(want.digits)
        wrong[-1] = (wrong[-1] + 5) % 10
        assert not is_correctly_rounded(v, want.k, tuple(wrong))

    def test_accepts_either_tie_side(self):
        # 0.5 at 1 digit is a genuine tie: both 5e-1 and ... well, both
        # tie choices must be accepted as correctly rounded.
        v = Flonum.from_float(2.5)
        assert is_correctly_rounded(v, 1, (2,), ndigits=1)
        assert is_correctly_rounded(v, 1, (3,), ndigits=1)
        assert not is_correctly_rounded(v, 1, (4,), ndigits=1)


class TestAudit:
    def test_error_rate_spectrum(self):
        """The Table-3 shape: narrower intermediates mis-round more."""
        vals = corpus(400)
        r53 = audit_naive_printf(vals, precision=53)
        r64 = audit_naive_printf(vals, precision=64)
        r113 = audit_naive_printf(vals, precision=113)
        assert r53.incorrect > r64.incorrect >= r113.incorrect
        assert r113.incorrect == 0
        assert r53.total == r64.total == 400

    def test_rate_property(self):
        vals = corpus(50)
        audit = audit_naive_printf(vals, precision=64)
        assert audit.rate == audit.incorrect / 50
