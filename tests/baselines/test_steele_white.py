"""The Dragon4 baseline: correct but unoptimized and rounding-unaware."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from helpers import positive_flonums
from repro.baselines.steele_white import dragon4_fixed, dragon4_shortest
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.errors import RangeError
from repro.floats.model import Flonum
from repro.floats.ulp import rounding_interval


class TestFreeFormat:
    @given(positive_flonums())
    @settings(max_examples=200)
    def test_output_in_rounding_interval(self, v):
        r = dragon4_shortest(v)
        low, high = rounding_interval(v)
        assert low < r.to_fraction() < high

    @given(positive_flonums())
    @settings(max_examples=200)
    def test_matches_conservative_burger_dybvig(self, v):
        # Dragon4 == our algorithm under the unknown-reader assumption
        # (S&W resolve exact equidistance downward: 2r <= s keeps d).
        from repro.core.rounding import TieBreak

        ours = shortest_digits(v, mode=ReaderMode.NEAREST_UNKNOWN,
                               tie=TieBreak.DOWN)
        theirs = dragon4_shortest(v)
        assert (ours.k, ours.digits) == (theirs.k, theirs.digits)

    @given(positive_flonums())
    @settings(max_examples=200)
    def test_never_shorter_than_reader_aware(self, v):
        aware = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
        theirs = dragon4_shortest(v)
        assert len(theirs.digits) >= len(aware.digits)

    def test_1e23_prints_long(self):
        # The paper's motivating difference: no rounding-mode awareness.
        r = dragon4_shortest(Flonum.from_float(1e23))
        assert "".join(map(str, r.digits)) == "9999999999999999"

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            dragon4_shortest(Flonum.zero())


class TestFixedFormat:
    def test_garbage_digits_not_hashes(self):
        # S&W print plausible digits beyond the precision; no # marks.
        r = dragon4_fixed(Flonum.from_float(1e23), position=-2)
        assert r.hashes == 0
        assert len(r.digits) == r.k + 2

    def test_small_rounds_to_zero(self):
        r = dragon4_fixed(Flonum.from_float(5e-324), position=-2)
        assert r.is_zero

    def test_simple_rounding(self):
        r = dragon4_fixed(Flonum.from_float(3.14159), position=-2)
        assert "".join(map(str, r.digits)) == "314"

    def test_exact_half_terminates(self):
        # 1.5 at position 0: the inclusive-high mask variant must not spin.
        r = dragon4_fixed(Flonum.from_float(1.5), position=0)
        assert "".join(map(str, r.digits)) == "2"

    @given(positive_flonums())
    @settings(max_examples=150)
    def test_mask_semantics(self, v):
        # Output within B**j/2 of v OR within the gap (their inaccuracy
        # never exceeds the representation gap range).
        j = -2
        r = dragon4_fixed(v, position=j)
        err = abs(r.to_fraction() - v.to_fraction())
        from repro.floats.ulp import gap_high, gap_low

        slack = max(Fraction(10) ** j / 2,
                    max(gap_high(v), gap_low(v)) / 2)
        assert err <= slack

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            dragon4_fixed(Flonum.from_float(-1.0), position=0)
