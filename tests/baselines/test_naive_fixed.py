"""The straightforward exact fixed-format baseline."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import positive_flonums
from repro.baselines.naive_fixed import exact_fixed_digits, naive_fixed_17
from repro.core.rounding import TieBreak
from repro.errors import RangeError
from repro.floats.model import Flonum


class TestAbsoluteMode:
    @given(positive_flonums(), st.integers(min_value=-30, max_value=10))
    @settings(max_examples=200)
    def test_correctly_rounded_at_position(self, v, j):
        r = exact_fixed_digits(v, position=j)
        err = abs(r.to_fraction() - v.to_fraction())
        assert err <= Fraction(10) ** j / 2
        # Result is a multiple of B**j.
        assert (r.to_fraction() / Fraction(10) ** j).denominator == 1

    def test_zero_when_below_half(self):
        r = exact_fixed_digits(Flonum.from_float(0.4), position=0)
        assert r.digits == () and r.k == 0

    def test_exact_tie_even(self):
        assert exact_fixed_digits(Flonum.from_float(0.5),
                                  position=0).digits == ()
        assert exact_fixed_digits(Flonum.from_float(1.5),
                                  position=0).digits == (2,)
        assert exact_fixed_digits(Flonum.from_float(2.5),
                                  position=0).digits == (2,)

    def test_tie_strategies(self):
        v = Flonum.from_float(2.5)
        assert exact_fixed_digits(v, position=0,
                                  tie=TieBreak.UP).digits == (3,)
        assert exact_fixed_digits(v, position=0,
                                  tie=TieBreak.DOWN).digits == (2,)


class TestRelativeMode:
    @given(positive_flonums(), st.integers(min_value=1, max_value=20))
    @settings(max_examples=200)
    def test_digit_count_and_error(self, v, n):
        r = exact_fixed_digits(v, ndigits=n)
        assert len(r.digits) == n
        err = abs(r.to_fraction() - v.to_fraction())
        assert err <= Fraction(10) ** (r.k - n) / 2
        assert r.digits[0] != 0

    def test_carry_shifts_exponent(self):
        # 9.995 (the double just below) stays 9.99…; true carries:
        r = exact_fixed_digits(Flonum.from_float(9.9999), ndigits=3)
        assert r.digits == (1, 0, 0) and r.k == 2

    def test_17_digit_helper(self):
        r = naive_fixed_17(Flonum.from_float(0.1))
        assert len(r.digits) == 17
        assert "".join(map(str, r.digits)) == "10000000000000001"

    def test_against_python_formatting(self):
        # %.16e prints 17 significant digits, correctly rounded.
        for x in (0.1, 1 / 3, 123.456, 5e-324, 1.7976931348623157e308):
            r = naive_fixed_17(Flonum.from_float(x))
            want = f"{x:.16e}"
            mantissa = want.split("e")[0].replace(".", "").replace("-", "")
            assert "".join(map(str, r.digits)) == mantissa


class TestValidation:
    def test_requires_one_mode(self):
        v = Flonum.from_float(1.0)
        with pytest.raises(RangeError):
            exact_fixed_digits(v)
        with pytest.raises(RangeError):
            exact_fixed_digits(v, position=0, ndigits=1)

    def test_rejects_bad_ndigits(self):
        with pytest.raises(RangeError):
            exact_fixed_digits(Flonum.from_float(1.0), ndigits=0)

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            exact_fixed_digits(Flonum.zero(), position=0)

    def test_other_bases(self):
        v = Flonum.from_float(0.5)
        r = exact_fixed_digits(v, ndigits=1, base=2)
        assert r.digits == (1,) and r.k == 0
