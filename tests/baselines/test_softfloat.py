"""SoftFloat: the configurable-precision arithmetic behind naive printf."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.softfloat import SoftFloat
from repro.errors import RangeError


def _correctly_rounded(value: Fraction, precision: int) -> Fraction:
    """Reference nearest-even rounding to `precision` significant bits."""
    num, den = value.numerator, value.denominator
    e = num.bit_length() - den.bit_length()
    # Normalize so 2**(p-1) <= scaled < 2**p, conservatively two tries.
    for shift in (precision - 1 - e, precision - e):
        if shift >= 0:
            n, d = num << shift, den
        else:
            n, d = num, den << -shift
        f, rem = divmod(n, d)
        if (1 << (precision - 1)) <= f < (1 << precision):
            if 2 * rem > d or (2 * rem == d and f & 1):
                f += 1
            return Fraction(f, 1) * Fraction(2) ** (-shift)
    raise AssertionError("normalization failed")


class TestFromRatio:
    @given(st.integers(min_value=1, max_value=10**25),
           st.integers(min_value=1, max_value=10**25),
           st.sampled_from([24, 53, 64, 113]))
    @settings(max_examples=300)
    def test_correctly_rounded(self, num, den, precision):
        sf = SoftFloat.from_ratio(num, den, precision)
        assert sf.m.bit_length() == precision
        assert sf.to_fraction() == _correctly_rounded(Fraction(num, den),
                                                      precision)

    def test_exact_small_integer(self):
        sf = SoftFloat.from_int(7, 53)
        assert sf.to_fraction() == 7

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            SoftFloat.from_ratio(0, 1, 53)
        with pytest.raises(RangeError):
            SoftFloat.from_ratio(1, 0, 53)


class TestMul:
    @given(st.integers(min_value=1, max_value=10**15),
           st.integers(min_value=1, max_value=10**15),
           st.sampled_from([24, 53, 64]))
    @settings(max_examples=300)
    def test_single_rounding(self, a, b, precision):
        fa = SoftFloat.from_int(a, precision)
        fb = SoftFloat.from_int(b, precision)
        prod = fa.mul(fb)
        assert prod.m.bit_length() == precision
        want = _correctly_rounded(fa.to_fraction() * fb.to_fraction(),
                                  precision)
        assert prod.to_fraction() == want

    def test_rejects_mixed_precision(self):
        with pytest.raises(RangeError):
            SoftFloat.from_int(2, 53).mul(SoftFloat.from_int(2, 64))


class TestFloorAndFraction:
    def test_integral(self):
        sf = SoftFloat.from_int(12, 53)
        ip, fn, fd = sf.floor_and_fraction()
        assert (ip, fn) == (12, 0)

    def test_fractional(self):
        sf = SoftFloat.from_ratio(5, 2, 53)
        ip, fn, fd = sf.floor_and_fraction()
        assert ip == 2 and Fraction(fn, fd) == Fraction(1, 2)

    def test_below_one(self):
        sf = SoftFloat.from_ratio(1, 8, 53)
        ip, fn, fd = sf.floor_and_fraction()
        assert ip == 0 and Fraction(fn, fd) == Fraction(1, 8)
