"""Gay's Taylor-series estimator vs ours (Section 5 comparison)."""

from hypothesis import given, settings

from helpers import positive_flonums
from repro.baselines.gay_estimator import gay_estimate_k, gay_estimate_log10
from repro.core.boundaries import adjust_for_mode, initial_scaled_value
from repro.core.rounding import ReaderMode
from repro.core.scaling import estimate_k_fast, scale_iterative
from repro.floats.model import Flonum
from repro.workloads.schryer import corpus


def _true_k(v):
    r, s, mp, mm = initial_scaled_value(v)
    sv = adjust_for_mode(v, r, s, mp, mm, ReaderMode.NEAREST_UNKNOWN)
    return scale_iterative(sv, 10, v)[0]


class TestEstimate:
    @given(positive_flonums())
    @settings(max_examples=300)
    def test_never_overshoots_within_one(self, v):
        k = _true_k(v)
        est = gay_estimate_k(v)
        assert est <= k
        assert k - est <= 1

    @given(positive_flonums())
    @settings(max_examples=200)
    def test_log10_accuracy(self, v):
        import math

        approx = gay_estimate_log10(v)
        exact = (math.log10(v.f) + v.e * math.log10(2))
        # Tangent-line overshoot bound plus float noise.
        assert -1e-9 <= approx - exact <= 0.0314

    def test_more_accurate_than_ours(self):
        """The paper: Gay's estimator is more accurate, ours cheaper; the
        fixup makes the accuracy difference irrelevant."""
        vals = corpus(2000)
        gay_exact = ours_exact = 0
        for v in vals:
            k = _true_k(v)
            gay_exact += gay_estimate_k(v) == k
            ours_exact += estimate_k_fast(v, 10) == k
        assert gay_exact > ours_exact

    def test_binary128_no_overflow(self):
        from repro.floats.formats import BINARY128

        v = Flonum.finite(0, BINARY128.hidden_limit, 16000, BINARY128)
        est = gay_estimate_k(v)
        assert isinstance(est, int)
