"""The printf/strtod probing baseline."""

import pytest
from hypothesis import given, settings

from helpers import finite_doubles
from repro.baselines.probe import probe_shortest, probe_shortest_digits
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.errors import RangeError
from repro.floats.model import Flonum


class TestCorrectness:
    @given(finite_doubles())
    @settings(max_examples=300)
    def test_always_round_trips(self, x):
        if x != x or x in (float("inf"), float("-inf")) or x <= 0:
            return
        assert float(probe_shortest(x)) == x

    @given(finite_doubles())
    @settings(max_examples=300)
    def test_never_shorter_than_exact_algorithm(self, x):
        if x != x or x in (float("inf"), float("-inf")) or x <= 0:
            return
        probed = probe_shortest_digits(x)
        ours = shortest_digits(Flonum.from_float(x),
                               mode=ReaderMode.NEAREST_EVEN)
        assert len(probed.digits) >= len(ours.digits)

    @given(finite_doubles())
    @settings(max_examples=200)
    def test_usually_identical(self, x):
        if x != x or x in (float("inf"), float("-inf")) or x <= 0:
            return
        probed = probe_shortest_digits(x)
        ours = shortest_digits(Flonum.from_float(x),
                               mode=ReaderMode.NEAREST_EVEN)
        if len(probed.digits) == len(ours.digits):
            assert (probed.k, probed.digits) == (ours.k, ours.digits)

    def test_rejects_specials(self):
        for bad in (0.0, float("inf"), float("nan")):
            with pytest.raises(RangeError):
                probe_shortest(bad)


class TestProbingMissesTheCornerCases:
    def test_theorem4_corner_defeats_probing(self):
        """At 2**-1017 the 16-digit correctly rounded string does not
        round-trip (it reads as the predecessor), so probing jumps to 17
        digits — while the valid farther 16-digit candidate exists and
        the exact algorithm finds it.  The folk method is not minimal."""
        x = 2.0 ** -1017
        probed = probe_shortest_digits(x)
        ours = shortest_digits(Flonum.from_float(x),
                               mode=ReaderMode.NEAREST_EVEN)
        assert len(ours.digits) == 16
        assert len(probed.digits) == 17

    def test_how_often_on_power_boundaries(self):
        """Count the probing-suboptimal cases across the power-of-two
        boundary family (the Theorem-4 corner population)."""
        from repro.floats.formats import BINARY64

        longer = 0
        total = 0
        for e in range(BINARY64.min_e + 1, BINARY64.max_e + 1, 3):
            v = Flonum.finite(0, BINARY64.hidden_limit, e, BINARY64)
            x = v.to_float()
            probed = probe_shortest_digits(x)
            ours = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
            total += 1
            longer += len(probed.digits) > len(ours.digits)
        assert longer > 0
        assert longer < total // 10  # rare, but real
