"""Random-format fuzzing: the algorithm over arbitrary (b, p, e-range).

The paper states the algorithm for any radix and precision; hypothesis
here *generates the formats themselves* — radix 2..16, precision 1..12,
arbitrary exponent windows — and checks the full contract on random
values of each.  This is the broadest generalization test in the suite:
nothing in core/ may assume binary64, radix 2, or IEEE-shaped ranges.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dragon import shortest_digits
from repro.core.fixed import fixed_digits
from repro.core.rational import shortest_digits_rational
from repro.core.rounding import ReaderMode, boundary_info
from repro.floats.formats import FloatFormat
from repro.floats.model import Flonum
from repro.reader.exact import read_fraction


@st.composite
def format_and_value(draw):
    radix = draw(st.sampled_from([2, 3, 4, 5, 8, 10, 16]))
    precision = draw(st.integers(min_value=1, max_value=12 if radix < 8
                                 else 6))
    emin = draw(st.integers(min_value=-40, max_value=20))
    emax = draw(st.integers(min_value=emin, max_value=emin + 60))
    fmt = FloatFormat.toy(precision=precision, emin=emin, emax=emax,
                          radix=radix)
    f = draw(st.integers(min_value=1, max_value=fmt.mantissa_limit - 1))
    e = draw(st.integers(min_value=fmt.min_e, max_value=fmt.max_e))
    if f < fmt.hidden_limit:
        e = fmt.min_e
    return fmt, Flonum.finite(0, f, e, fmt)


@st.composite
def format_value_base(draw):
    fmt, v = draw(format_and_value())
    base = draw(st.sampled_from([2, 3, 7, 10, 16, 36]))
    return fmt, v, base


class TestFreeFormatGeneralized:
    @given(format_value_base())
    @settings(max_examples=400, deadline=None)
    def test_roundtrip_any_format_any_base(self, fvb):
        fmt, v, base = fvb
        r = shortest_digits(v, base=base, mode=ReaderMode.NEAREST_EVEN)
        assert read_fraction(r.to_fraction(), fmt) == v

    @given(format_value_base())
    @settings(max_examples=300, deadline=None)
    def test_matches_rational_spec(self, fvb):
        fmt, v, base = fvb
        fast = shortest_digits(v, base=base, mode=ReaderMode.NEAREST_EVEN)
        spec = shortest_digits_rational(v, base=base,
                                        mode=ReaderMode.NEAREST_EVEN)
        assert (fast.k, fast.digits) == (spec.k, spec.digits)

    @given(format_value_base())
    @settings(max_examples=300, deadline=None)
    def test_correct_rounding_bound(self, fvb):
        # Theorem 4, in its achievable form: closest *valid* candidate
        # (see helpers.assert_correctly_rounded for the uneven-gap
        # counterexample to the literal half-unit bound).
        from helpers import assert_correctly_rounded

        fmt, v, base = fvb
        r = shortest_digits(v, base=base, mode=ReaderMode.NEAREST_EVEN)
        assert_correctly_rounded(v, r, ReaderMode.NEAREST_EVEN)

    @given(format_value_base())
    @settings(max_examples=200, deadline=None)
    def test_within_range_conservative(self, fvb):
        fmt, v, base = fvb
        info = boundary_info(v, ReaderMode.NEAREST_UNKNOWN)
        r = shortest_digits(v, base=base, mode=ReaderMode.NEAREST_UNKNOWN)
        assert info.low < r.to_fraction() < info.high

    @given(format_and_value())
    @settings(max_examples=200, deadline=None)
    def test_directed_modes(self, fv):
        fmt, v = fv
        for mode in (ReaderMode.TOWARD_ZERO, ReaderMode.TOWARD_POSITIVE):
            r = shortest_digits(v, mode=mode)
            assert read_fraction(r.to_fraction(), fmt, mode=mode) == v


class TestFixedFormatGeneralized:
    @given(format_and_value(), st.integers(min_value=-10, max_value=10))
    @settings(max_examples=300, deadline=None)
    def test_absolute_in_expanded_range(self, fv, j):
        fmt, v = fv
        from repro.floats.ulp import midpoint_high, midpoint_low

        r = fixed_digits(v, position=j)
        value = v.to_fraction()
        delta = Fraction(10) ** j / 2
        low = min(midpoint_low(v), value - delta)
        high = max(midpoint_high(v), value + delta)
        assert low <= r.to_fraction() <= high

    @given(format_and_value(), st.integers(min_value=1, max_value=15))
    @settings(max_examples=300, deadline=None)
    def test_relative_width(self, fv, i):
        fmt, v = fv
        r = fixed_digits(v, ndigits=i)
        assert len(r.digits) + r.hashes == i
