"""The error contract: public entry points raise only
:class:`~repro.errors.ReproError` subclasses on bad input.

Callers (and the bulk pool's retry logic, which treats ReproError as
"deterministic — do not retry") depend on this: a ValueError or
TypeError escaping a public API is a bug, not a style issue."""

import pytest

from repro import (
    BulkPool,
    Engine,
    Flonum,
    ReadEngine,
    ReproError,
    format_bulk,
    format_fixed,
    format_shortest,
    read,
    read_bulk,
    read_decimal,
    read_many,
)
from repro.floats.formats import BINARY64
from repro.format.hexfloat import parse_hex

MALFORMED_TEXTS = [
    "", "   ", "not-a-number", "1.2.3", "--5", "1e", "0x", "1_0",
    "nan(", "1,5", "+-3", "e10", ".e5", "1e99999999999999999999",
]

BAD_COLUMNS = [
    ["1.5", "bogus"],
    ["", "2.0"],
    [object()],
]


def _only_repro_error(fn):
    """Call ``fn``; pass if it succeeds or raises a ReproError, fail
    on any other exception type."""
    try:
        fn()
    except ReproError:
        pass
    except Exception as exc:
        pytest.fail(f"non-ReproError escaped: {type(exc).__name__}: {exc!r}")


class TestReaderContract:
    @pytest.mark.parametrize("text", MALFORMED_TEXTS)
    def test_read_decimal(self, text):
        _only_repro_error(lambda: read_decimal(text, BINARY64))

    @pytest.mark.parametrize("text", MALFORMED_TEXTS)
    def test_tiered_read(self, text):
        _only_repro_error(lambda: read(text, BINARY64))

    @pytest.mark.parametrize("text", MALFORMED_TEXTS)
    def test_read_many(self, text):
        _only_repro_error(lambda: read_many(["1.5", text], BINARY64))

    @pytest.mark.parametrize("text", MALFORMED_TEXTS)
    def test_parse_hex(self, text):
        _only_repro_error(lambda: parse_hex(text, BINARY64))

    @pytest.mark.parametrize("text", [None, 1.5, b"1.5"])
    def test_non_string_input(self, text):
        _only_repro_error(lambda: read(text, BINARY64))


class TestFormatterContract:
    def test_format_shortest_bad_value(self):
        _only_repro_error(lambda: format_shortest("a string"))
        _only_repro_error(lambda: format_shortest(object()))

    def test_format_shortest_bad_base(self):
        v = Flonum.from_float(1.5)
        _only_repro_error(lambda: format_shortest(v, base=1))
        _only_repro_error(lambda: format_shortest(v, base=37))

    def test_format_fixed_bad_counts(self):
        v = Flonum.from_float(1.5)
        _only_repro_error(lambda: format_fixed(v, ndigits=0))
        _only_repro_error(lambda: format_fixed(v, ndigits=-3))
        _only_repro_error(
            lambda: format_fixed(v, ndigits=2, decimals=2))

    def test_engine_format_bad_value(self):
        eng = Engine()
        _only_repro_error(lambda: eng.format("nope"))
        _only_repro_error(lambda: eng.format_many([1.5, object()]))


class TestBulkContract:
    @pytest.mark.parametrize("column", BAD_COLUMNS,
                             ids=["bad-literal", "empty-literal",
                                  "non-string"])
    def test_read_bulk(self, column):
        _only_repro_error(lambda: read_bulk(column, BINARY64))

    def test_format_bulk_bad_data(self):
        _only_repro_error(lambda: format_bulk(["not", "floats"]))
        _only_repro_error(lambda: format_bulk(object()))

    def test_pool_constructor_validation(self):
        _only_repro_error(lambda: BulkPool(kind="fiber"))
        _only_repro_error(lambda: BulkPool(jobs=0))
        _only_repro_error(lambda: BulkPool(jobs=-2))
        _only_repro_error(lambda: BulkPool(retries=-1))
        _only_repro_error(lambda: BulkPool(deadline=0))
        _only_repro_error(lambda: BulkPool(budget=-1))
        _only_repro_error(lambda: BulkPool(on_error="explode"))
        _only_repro_error(lambda: BulkPool(delimiter=b""))

    def test_pool_bad_input_propagates_typed(self):
        with BulkPool(jobs=2, kind="thread") as pool:
            _only_repro_error(
                lambda: pool.read_bulk(["1.5", "not-a-number"]))
            _only_repro_error(lambda: pool.read_bulk(b"1.5\nxyz\n"))
            _only_repro_error(lambda: pool.read_bulk([], out="pickles"))

    def test_engine_reader_bad_input(self):
        eng = ReadEngine()
        for text in MALFORMED_TEXTS:
            _only_repro_error(lambda t=text: eng.read(t, BINARY64))


class TestCliContract:
    def test_bulk_cli_malformed_stdin_is_typed(self, capsys):
        from repro.cli import run

        status = run(["--bulk", "1.5", "not-a-number"])
        captured = capsys.readouterr()
        assert status == 1
        out = captured.out.strip().splitlines()
        assert len(out) == 1
        assert out[0].startswith("error: ParseError:")
