"""The algorithms across the full format zoo: binary16..binary128, x87.

The paper presents the algorithm for generic (f, e, p, min-exp); these
sweeps confirm nothing in the implementation is binary64-specific.
"""

from fractions import Fraction

from hypothesis import given, settings

from helpers import positive_flonums
from repro.core.api import format_fixed, format_shortest
from repro.core.dragon import shortest_digits
from repro.core.fixed import fixed_digits
from repro.core.rounding import ReaderMode
from repro.floats.formats import BINARY16, BINARY32, BINARY128, X87_80
from repro.floats.model import Flonum
from repro.reader.exact import read_decimal, read_fraction

WIDE_FORMATS = [BINARY128, X87_80]


class TestBinary128:
    @given(positive_flonums(BINARY128))
    @settings(max_examples=100)
    def test_roundtrip(self, v):
        r = shortest_digits(v)
        assert read_fraction(r.to_fraction(), BINARY128) == v

    @given(positive_flonums(BINARY128))
    @settings(max_examples=50)
    def test_correct_rounding(self, v):
        from helpers import assert_correctly_rounded

        r = shortest_digits(v)
        assert_correctly_rounded(v, r, ReaderMode.NEAREST_EVEN)

    def test_needs_up_to_36_digits(self):
        # A quad value needing the worst-case digit count exists.
        assert BINARY128.decimal_digits_to_distinguish() == 36

    def test_string_api(self):
        v = Flonum.finite(0, BINARY128.hidden_limit, -112, BINARY128)  # 1.0
        assert format_shortest(v) == "1"
        assert format_fixed(v, decimals=2) == "1.00"

    def test_extreme_exponents(self):
        for f, e in (BINARY128.largest_finite, BINARY128.smallest_positive,
                     BINARY128.smallest_normal):
            v = Flonum.finite(0, f, e, BINARY128)
            r = shortest_digits(v)
            assert read_fraction(r.to_fraction(), BINARY128) == v


class TestX87:
    @given(positive_flonums(X87_80))
    @settings(max_examples=100)
    def test_roundtrip(self, v):
        r = shortest_digits(v)
        assert read_fraction(r.to_fraction(), X87_80) == v

    def test_bits_roundtrip(self):
        v = Flonum.finite(0, X87_80.hidden_limit + 12345, -20, X87_80)
        assert Flonum.from_bits(v.to_bits(), X87_80) == v

    def test_denormal_roundtrip(self):
        v = Flonum.finite(0, 7, X87_80.min_e, X87_80)
        r = shortest_digits(v)
        assert read_fraction(r.to_fraction(), X87_80) == v


class TestCrossFormat:
    def test_same_value_prints_differently_by_precision(self):
        """1/3 rounded into each format needs format-specific digits."""
        lengths = {}
        for fmt in (BINARY16, BINARY32, BINARY128):
            v = read_decimal("0." + "3" * 40, fmt)
            lengths[fmt.name] = len(shortest_digits(v).digits)
        assert (lengths["binary16"] < lengths["binary32"]
                < lengths["binary128"])

    def test_exact_values_print_identically(self):
        """1.5 is exact in every format: same digits everywhere."""
        for fmt in (BINARY16, BINARY32, BINARY128, X87_80):
            v = read_decimal("1.5", fmt)
            r = shortest_digits(v)
            assert (r.k, r.digits) == (1, (1, 5))

    @given(positive_flonums(BINARY16))
    @settings(max_examples=100)
    def test_widening_preserves_shortest_or_shorter(self, v):
        """A binary16 value is exact in binary64; its binary64 shortest
        string is at most as long (the wider format's tighter gaps can
        only demand more digits for *inexact* values)."""
        wide = v.with_format(BINARY128)
        narrow = shortest_digits(v)
        wider = shortest_digits(wide)
        # The binary16 shortest reads back to v in binary16, but the
        # binary128 one must pin the value far more precisely.
        assert len(wider.digits) >= len(narrow.digits)

    def test_fixed_format_wide(self):
        v = Flonum.finite(0, 1, BINARY16.min_e, BINARY16)  # 2**-24
        r = fixed_digits(v, ndigits=20)
        assert r.hashes > 0  # insignificance kicks in for the tiny format
        v128 = v.with_format(BINARY128)
        r128 = fixed_digits(v128, ndigits=20)
        assert r128.hashes == 0  # quad has plenty of precision here
