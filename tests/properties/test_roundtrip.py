"""Information preservation: read(print(v)) == v, every mode, every format.

This is the paper's output condition (1) made executable against our own
accurate reader (and, for binary64, against CPython's reader as a second
opinion).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import (
    TOY_B4,
    TOY_P5,
    enumerate_toy,
    finite_doubles,
    output_bases,
    positive_flonums,
)
from repro.core.api import format_shortest
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.engine import Engine
from repro.floats.formats import BINARY16, BINARY32, BINARY64
from repro.floats.model import Flonum
from repro.reader.exact import read_decimal, read_fraction

NEAREST_MODES = [ReaderMode.NEAREST_EVEN, ReaderMode.NEAREST_AWAY,
                 ReaderMode.NEAREST_TO_ZERO, ReaderMode.NEAREST_UNKNOWN]
ALL_MODES = list(ReaderMode)


class TestBinary64:
    @given(finite_doubles())
    @settings(max_examples=500)
    def test_python_reader_roundtrip(self, x):
        assert float(format_shortest(x)) == x

    @given(positive_flonums())
    @settings(max_examples=300)
    def test_own_reader_roundtrip_nearest_even(self, v):
        s = format_shortest(v, mode=ReaderMode.NEAREST_EVEN)
        assert read_decimal(s, mode=ReaderMode.NEAREST_EVEN) == v

    @given(positive_flonums())
    @settings(max_examples=200)
    def test_conservative_output_safe_for_every_nearest_reader(self, v):
        """NEAREST_UNKNOWN output must read back under *any* tie rule."""
        s = format_shortest(v, mode=ReaderMode.NEAREST_UNKNOWN)
        for mode in NEAREST_MODES:
            assert read_decimal(s, mode=mode) == v

    @given(positive_flonums())
    @settings(max_examples=200)
    def test_directed_reader_roundtrip(self, v):
        for mode in (ReaderMode.TOWARD_ZERO, ReaderMode.TOWARD_POSITIVE,
                     ReaderMode.TOWARD_NEGATIVE):
            s = format_shortest(v, mode=mode)
            assert read_decimal(s, mode=mode) == v

    @given(finite_doubles())
    @settings(max_examples=200)
    def test_negative_values_roundtrip_directed(self, x):
        if x == 0 or x != x:
            return
        v = Flonum.from_float(x)
        for mode in ALL_MODES:
            s = format_shortest(v, mode=mode)
            assert read_decimal(s, mode=mode) == v


class TestOtherFormatsAndBases:
    @given(positive_flonums(BINARY32))
    @settings(max_examples=200)
    def test_binary32(self, v):
        r = shortest_digits(v)
        assert read_fraction(r.to_fraction(), BINARY32) == v

    def test_binary16_exhaustive_normals(self):
        for v in Flonum.enumerate_positive(BINARY16,
                                           include_denormals=False):
            r = shortest_digits(v)
            assert read_fraction(r.to_fraction(), BINARY16) == v

    def test_binary16_exhaustive_denormals(self):
        for f in range(1, BINARY16.hidden_limit):
            v = Flonum.finite(0, f, BINARY16.min_e, BINARY16)
            r = shortest_digits(v)
            assert read_fraction(r.to_fraction(), BINARY16) == v

    @given(positive_flonums(), output_bases())
    @settings(max_examples=200)
    def test_any_output_base(self, v, base):
        r = shortest_digits(v, base=base)
        assert read_fraction(r.to_fraction(), BINARY64) == v

    def test_toy_formats_exhaustive_all_modes(self):
        for fmt in (TOY_P5, TOY_B4):
            for v in enumerate_toy(fmt):
                for mode in ALL_MODES:
                    r = shortest_digits(v, mode=mode)
                    got = read_fraction(r.to_fraction(), fmt, mode=mode)
                    assert got == v, (fmt.name, v, mode, r)


def _signed_flonums(fmt):
    """Finite Flonums of ``fmt``, sign-uniform, denormal-heavy."""

    def build(sign, f, e):
        if f == 0:
            return Flonum.zero(fmt, sign)
        if f < fmt.hidden_limit:
            return Flonum.finite(sign, f, fmt.min_e, fmt)
        return Flonum.finite(sign, f, e, fmt)

    return st.builds(
        build,
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=fmt.mantissa_limit - 1),
        st.integers(min_value=fmt.min_e, max_value=fmt.max_e),
    )


def _same_datum(a, b):
    return a == b and a.sign == b.sign


class TestReadEngineRoundtrip:
    """print → ReadEngine → print through the tiered engines.

    The write and read sides are independently certified; their
    composition must be the identity on every finite value — including
    denormals, signed zeros and exact powers of two, where the lower
    rounding gap halves and the reader tiers work hardest.
    """

    @pytest.mark.parametrize("fmt", [BINARY16, BINARY32, BINARY64],
                             ids=lambda f: f.name)
    def test_engine_roundtrip_random(self, fmt):
        eng = Engine()

        @given(_signed_flonums(fmt))
        @settings(max_examples=300)
        def check(v):
            text = eng.format(v, fmt=fmt)
            back = eng.read(text, fmt)
            assert _same_datum(back, v), (v, text, back)
            assert eng.format(back, fmt=fmt) == text

        check()

    @pytest.mark.parametrize("fmt", [BINARY16, BINARY32, BINARY64],
                             ids=lambda f: f.name)
    def test_denormals_and_powers_of_two(self, fmt):
        eng = Engine()
        lo = fmt.hidden_limit
        vals = [Flonum.finite(s, f, fmt.min_e, fmt)
                for s in (0, 1)
                for f in (1, 2, 3, lo // 2, lo - 1)]
        vals += [Flonum.finite(s, lo, e, fmt)
                 for s in (0, 1)
                 for e in (fmt.min_e, fmt.min_e + 1, 0,
                           fmt.max_e - 1, fmt.max_e)]
        for v in vals:
            text = eng.format(v, fmt=fmt)
            assert _same_datum(eng.read(text, fmt), v), (v, text)

    def test_schryer_corpus_through_the_engine(self):
        from repro.workloads.schryer import corpus

        eng = Engine()
        vals = corpus(150)
        texts = [eng.format(v) for v in vals]
        for v, back in zip(vals, eng.read_many(texts)):
            assert _same_datum(back, v)

    @pytest.mark.slow
    def test_binary16_exhaustive_engine_roundtrip(self):
        eng = Engine(cache_size=0)
        for v in Flonum.enumerate_positive(BINARY16,
                                           include_denormals=True):
            text = eng.format(v, fmt=BINARY16)
            assert _same_datum(eng.read(text, BINARY16), v), (v, text)

    @pytest.mark.slow
    @pytest.mark.parametrize("fmt", [BINARY32, BINARY64],
                             ids=lambda f: f.name)
    def test_engine_roundtrip_deep(self, fmt):
        eng = Engine()

        @given(_signed_flonums(fmt))
        @settings(max_examples=2000, deadline=None)
        def check(v):
            text = eng.format(v, fmt=fmt)
            assert _same_datum(eng.read(text, fmt), v), (v, text)

        check()
