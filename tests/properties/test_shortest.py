"""Minimal length and correct rounding (Theorems 4 and 5).

Minimality is checked semantically: *no* digit string with fewer digits
reads back to ``v``.  Rather than enumerate all shorter strings, we use
the fact that the best (n-1)-digit candidates are the two neighbours of
``v`` rounded at that position — if neither reads back, nothing shorter
does (this is exactly the paper's Theorem 5 argument).
"""

from fractions import Fraction

from hypothesis import given, settings

from helpers import (
    TOY_B4,
    TOY_P5,
    enumerate_toy,
    finite_doubles,
    output_bases,
    positive_flonums,
)
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode, boundary_info
from repro.floats.formats import BINARY64
from repro.floats.model import Flonum


def _reads_back(value: Fraction, info) -> bool:
    if info.low < value < info.high:
        return True
    if info.low_ok and value == info.low:
        return True
    if info.high_ok and value == info.high:
        return True
    return False


def _no_shorter_exists(v, result, mode, base):
    """Theorem-5 check: both best (n-1)-digit candidates fail."""
    n = len(result.digits)
    if n == 1:
        return True  # nothing shorter than one digit
    info = boundary_info(v, mode)
    weight = Fraction(base) ** (result.k - (n - 1))
    floor_cand = (v.to_fraction() / weight).__floor__() * weight
    candidates = (floor_cand, floor_cand + weight)
    return not any(_reads_back(c, info) for c in candidates)


def _correctly_rounded(v, result, base, mode=ReaderMode.NEAREST_EVEN):
    from helpers import assert_correctly_rounded

    assert_correctly_rounded(v, result, mode)
    return True


class TestBinary64:
    @given(positive_flonums())
    @settings(max_examples=300)
    def test_correct_rounding_nearest_even(self, v):
        r = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
        assert _correctly_rounded(v, r, 10)

    @given(positive_flonums())
    @settings(max_examples=300)
    def test_minimal_length_nearest_even(self, v):
        r = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
        assert _no_shorter_exists(v, r, ReaderMode.NEAREST_EVEN, 10)

    @given(positive_flonums(), output_bases())
    @settings(max_examples=200)
    def test_minimal_any_base(self, v, base):
        r = shortest_digits(v, base=base, mode=ReaderMode.NEAREST_UNKNOWN)
        assert _no_shorter_exists(v, r, ReaderMode.NEAREST_UNKNOWN, base)
        assert _correctly_rounded(v, r, base, ReaderMode.NEAREST_UNKNOWN)

    @given(finite_doubles())
    @settings(max_examples=300)
    def test_never_longer_than_repr(self, x):
        """Sanity vs CPython: our NEAREST_EVEN digit count matches the
        digit count of repr (CPython uses the same problem definition)."""
        if x == 0 or x != x or x in (float("inf"), float("-inf")):
            return
        v = Flonum.from_float(abs(x))
        r = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
        repr_digits = sum(c.isdigit() for c in repr(abs(x)).split("e")[0])
        # repr keeps a trailing .0 on integral values; strip such zeros.
        assert len(r.digits) <= repr_digits


class TestExhaustiveToyFormats:
    def test_every_value_every_mode_minimal(self):
        for v in enumerate_toy(TOY_P5):
            for mode in (ReaderMode.NEAREST_EVEN, ReaderMode.NEAREST_UNKNOWN,
                         ReaderMode.TOWARD_ZERO):
                r = shortest_digits(v, mode=mode)
                assert _no_shorter_exists(v, r, mode, 10), (v, mode)
                if mode is ReaderMode.TOWARD_ZERO:
                    # Directed ranges are one-sided: the closer candidate
                    # may be outside, so only the one-unit bound holds.
                    err = abs(r.to_fraction() - v.to_fraction())
                    assert err < Fraction(10) ** (r.k - len(r.digits))
                else:
                    assert _correctly_rounded(v, r, 10)

    def test_brute_force_minimality_small_format(self):
        """Independent brute force: enumerate ALL shorter digit strings."""
        fmt = TOY_B4
        base = 10
        mode = ReaderMode.NEAREST_EVEN
        for v in enumerate_toy(fmt):
            r = shortest_digits(v, base=base, mode=mode)
            n = len(r.digits)
            if n == 1:
                continue
            info = boundary_info(v, mode)
            # All (n-1)-digit strings d1...d(n-1) x B**k' for k' in a
            # window around r.k (others are out of range trivially).
            shorter_exists = False
            for kp in range(r.k - 1, r.k + 2):
                for mant in range(base ** (n - 2), base ** (n - 1)):
                    value = Fraction(mant, base ** (n - 1)) * Fraction(base) ** kp
                    if _reads_back(value, info):
                        shorter_exists = True
                        break
                if shorter_exists:
                    break
            assert not shorter_exists, (v, r)

    def test_every_digit_valid_and_leading_nonzero(self):
        for v in enumerate_toy(TOY_P5):
            for base in (2, 10, 16):
                r = shortest_digits(v, base=base)
                assert all(0 <= d < base for d in r.digits)
                assert r.digits[0] != 0
