"""Fixed-format properties over random and exhaustive inputs."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import TOY_P5, enumerate_toy, positive_flonums
from repro.core.fixed import fixed_digits
from repro.core.rounding import TieBreak
from repro.floats.model import Flonum
from repro.floats.ulp import midpoint_high, midpoint_low
from repro.reader.exact import read_fraction


def _range(v, j, base=10):
    value = v.to_fraction()
    delta = Fraction(base) ** j / 2
    return (min(midpoint_low(v), value - delta),
            max(midpoint_high(v), value + delta))


class TestAbsoluteInvariants:
    @given(positive_flonums(), st.integers(min_value=-320, max_value=320))
    @settings(max_examples=300)
    def test_output_in_expanded_range_any_position(self, v, j):
        r = fixed_digits(v, position=j)
        low, high = _range(v, j)
        assert low <= r.to_fraction() <= high

    @given(positive_flonums(), st.integers(min_value=-30, max_value=30))
    @settings(max_examples=200)
    def test_span_bookkeeping(self, v, j):
        r = fixed_digits(v, position=j)
        if r.is_zero:
            assert r.k == j and r.digits == () and r.hashes == 0
        else:
            assert len(r.digits) + r.hashes == r.k - j
            assert r.digits[0] != 0

    @given(positive_flonums(), st.integers(min_value=-25, max_value=5),
           st.sampled_from(list(TieBreak)))
    @settings(max_examples=200)
    def test_tie_strategy_bounds(self, v, j, tie):
        r = fixed_digits(v, position=j, tie=tie)
        low, high = _range(v, j)
        assert low <= r.to_fraction() <= high

    def test_exhaustive_toy_all_positions(self):
        for v in enumerate_toy(TOY_P5):
            for j in range(-10, 5):
                r = fixed_digits(v, position=j)
                low, high = _range(v, j)
                assert low <= r.to_fraction() <= high, (v, j, r)


class TestHashInvariants:
    @given(positive_flonums(), st.integers(min_value=-320, max_value=0))
    @settings(max_examples=300)
    def test_every_hash_fill_reads_back(self, v, j):
        """The definition of insignificance: replacing the # positions by
        the extreme digit fills keeps the value reading back as v."""
        r = fixed_digits(v, position=j)
        if r.hashes == 0 or r.is_zero:
            return
        zeros = r.to_fraction()
        nines = zeros + Fraction(10) ** (j + r.hashes) - Fraction(10) ** j
        assert read_fraction(zeros, v.fmt) == v
        assert read_fraction(nines, v.fmt) == v

    @given(positive_flonums(), st.integers(min_value=-320, max_value=0))
    @settings(max_examples=200)
    def test_hash_run_boundary_is_tight(self, v, j):
        """The # run starts exactly where the paper's significance rule
        flips: the first # position m0 satisfies high - V >= B**(m0+1)
        (insignificant), while one position higher the inequality fails up
        to the inclusive-endpoint slack."""
        r = fixed_digits(v, position=j)
        if r.hashes == 0 or r.is_zero:
            return
        _, high = _range(v, j)
        headroom = high - r.to_fraction()
        # First (leftmost) hash at position j + hashes - 1 is insignificant.
        assert headroom >= Fraction(10) ** (j + r.hashes)
        # The position above it was emitted as a real digit or zero: the
        # same inequality must not have held strictly there.
        assert headroom <= Fraction(10) ** (j + r.hashes + 1)

    def test_denormal_binary16_hash_run(self):
        from repro.floats.formats import BINARY16

        v = Flonum.finite(0, 1, BINARY16.min_e, BINARY16)  # 2**-24
        r = fixed_digits(v, ndigits=12)
        assert r.hashes >= 4
        assert len(r.digits) + r.hashes == 12


class TestRelativeInvariants:
    @given(positive_flonums(), st.integers(min_value=1, max_value=30))
    @settings(max_examples=300)
    def test_exact_width(self, v, i):
        r = fixed_digits(v, ndigits=i)
        assert len(r.digits) + r.hashes == i
        assert r.digits and r.digits[0] != 0

    @given(positive_flonums(), st.integers(min_value=1, max_value=25))
    @settings(max_examples=200)
    def test_agrees_with_absolute(self, v, i):
        r = fixed_digits(v, ndigits=i)
        ab = fixed_digits(v, position=r.k - i)
        assert (r.k, r.digits, r.hashes) == (ab.k, ab.digits, ab.hashes)

    def test_exhaustive_toy_relative(self):
        for v in enumerate_toy(TOY_P5):
            for i in (1, 2, 3, 6):
                r = fixed_digits(v, ndigits=i)
                assert len(r.digits) + r.hashes == i


class TestAgainstNaiveBaseline:
    @given(positive_flonums(), st.integers(min_value=-20, max_value=3))
    @settings(max_examples=200)
    def test_matches_exact_when_precision_suffices(self, v, j):
        """When the B**j/2 margin dominates both gaps (so no early stop
        and no #), our fixed output equals the straightforward exact
        conversion."""
        from repro.baselines.naive_fixed import exact_fixed_digits

        value = v.to_fraction()
        delta = Fraction(10) ** j / 2
        if (midpoint_high(v) - value >= delta
                or value - midpoint_low(v) >= delta):
            return
        ours = fixed_digits(v, position=j, tie=TieBreak.EVEN)
        naive = exact_fixed_digits(v, position=j, tie=TieBreak.EVEN)
        assert ours.to_fraction() == naive.to_fraction()


class TestAcrossBases:
    """Fixed format is base-generic: the same invariants in base 2..16."""

    @given(positive_flonums(), st.sampled_from([2, 8, 16]),
           st.integers(min_value=-12, max_value=4))
    @settings(max_examples=150)
    def test_output_in_expanded_range(self, v, base, j):
        r = fixed_digits(v, position=j, base=base)
        value = v.to_fraction()
        delta = Fraction(base) ** j / 2
        low = min(midpoint_low(v), value - delta)
        high = max(midpoint_high(v), value + delta)
        assert low <= r.to_fraction() <= high

    @given(positive_flonums(), st.sampled_from([2, 8, 16]),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=150)
    def test_relative_width(self, v, base, i):
        r = fixed_digits(v, ndigits=i, base=base)
        assert len(r.digits) + r.hashes == i
        assert all(0 <= d < base for d in r.digits)

    def test_binary_fixed_no_hashes_within_precision(self):
        # Binary output of a binary float is exact: the first 53 binary
        # positions are always significant.
        v = Flonum.from_float(1 / 3)
        r = fixed_digits(v, ndigits=50, base=2)
        assert r.hashes == 0

    def test_binary_fixed_hashes_beyond_precision(self):
        v = Flonum.from_float(1 / 3)
        r = fixed_digits(v, ndigits=60, base=2)
        assert r.hashes > 0
