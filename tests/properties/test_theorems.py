"""Appendix A, theorem by theorem, as executable properties.

* Theorem 1 — every ``d_i`` is a valid digit, ``d_1 > 0``, and the final
  increment never carries.
* Lemma 2 / corollary — the loop invariant ``v = 0.d1..dn x B^k + q_n B^{k-n}``.
* Theorem 3 — information preservation: ``low < V < high`` (relaxed to the
  inclusive endpoints the implementation's ``low_ok``/``high_ok`` admit).
* Theorem 4 — correct rounding (in its achievable closest-valid form;
  see TestTheorem4CorrectRounding for the boundary caveat).
* Theorem 5 — minimum length (in test_shortest.py).
"""

from fractions import Fraction

from hypothesis import given, settings

from helpers import (
    TOY_P5,
    enumerate_toy,
    output_bases,
    positive_flonums,
)
from repro.core.boundaries import adjust_for_mode, initial_scaled_value
from repro.core.digits import generate_digits
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode, boundary_info
from repro.core.scaling import scale_estimate
from repro.floats.model import Flonum


class TestTheorem1:
    @given(positive_flonums(), output_bases())
    @settings(max_examples=300)
    def test_digits_valid_first_nonzero(self, v, base):
        r = shortest_digits(v, base=base, mode=ReaderMode.NEAREST_EVEN)
        assert all(0 <= d < base for d in r.digits)
        assert r.digits[0] != 0

    @given(positive_flonums(), output_bases())
    @settings(max_examples=300)
    def test_no_carry_on_increment(self, v, base):
        # If the final digit came from an increment it is <= base-1; a
        # value of `base` would be a carry, which Theorem 1 excludes.
        r = shortest_digits(v, base=base)
        assert r.digits[-1] <= base - 1

    def test_exhaustive_toy(self):
        for v in enumerate_toy(TOY_P5):
            for base in (2, 3, 10):
                r = shortest_digits(v, base=base)
                assert r.digits[0] != 0
                assert all(0 <= d < base for d in r.digits)


class TestLemma2Invariant:
    @given(positive_flonums())
    @settings(max_examples=200)
    def test_remainder_tracks_value(self, v):
        """v - V == chosen_r/s * B^(k-n), the invariant the fixed-format
        significance loop relies on."""
        base = 10
        r0, s0, mp0, mm0 = initial_scaled_value(v)
        sv = adjust_for_mode(v, r0, s0, mp0, mm0, ReaderMode.NEAREST_EVEN)
        k, r, s, mp, mm = scale_estimate(sv, base, v)
        digits, state = generate_digits(r, s, mp, mm, base, sv.low_ok,
                                        sv.high_ok)
        n = len(digits)
        acc = 0
        for d in digits:
            acc = acc * base + d
        V = Fraction(acc, base**n) * Fraction(base) ** k
        residue = Fraction(state.chosen_r, state.s) * Fraction(base) ** (k - n)
        assert v.to_fraction() - V == residue

    @given(positive_flonums())
    @settings(max_examples=200)
    def test_margins_scale_with_position(self, v):
        """m+/s still measures (high - v) at the final position."""
        base = 10
        r0, s0, mp0, mm0 = initial_scaled_value(v)
        sv = adjust_for_mode(v, r0, s0, mp0, mm0, ReaderMode.NEAREST_EVEN)
        info = boundary_info(v, ReaderMode.NEAREST_EVEN)
        k, r, s, mp, mm = scale_estimate(sv, base, v)
        digits, state = generate_digits(r, s, mp, mm, base, sv.low_ok,
                                        sv.high_ok)
        n = len(digits)
        got_high = Fraction(state.m_plus, state.s) * Fraction(base) ** (k - n)
        assert got_high == info.high - v.to_fraction()


class TestTheorem3InformationPreservation:
    @given(positive_flonums(), output_bases())
    @settings(max_examples=300)
    def test_output_within_range(self, v, base):
        for mode in (ReaderMode.NEAREST_EVEN, ReaderMode.NEAREST_UNKNOWN):
            r = shortest_digits(v, base=base, mode=mode)
            info = boundary_info(v, mode)
            value = r.to_fraction()
            lo_ok = info.low < value or (info.low_ok and value == info.low)
            hi_ok = value < info.high or (info.high_ok and value == info.high)
            assert lo_ok and hi_ok


class TestTheorem4CorrectRounding:
    """Theorem 4 in its *achievable* form.

    The paper claims |V - v| <= B^(k-n)/2 unconditionally, but its proof
    implicitly assumes the rejected candidate was valid.  At uneven-gap
    boundaries the closer candidate can fall outside the rounding range
    (e.g. binary64 2**-1017 in base 10 — where CPython's repr makes the
    same farther-but-valid choice).  The achievable guarantee: within
    half a unit, or the closer candidate does not read back; always
    strictly within one unit.
    """

    @given(positive_flonums(), output_bases())
    @settings(max_examples=300)
    def test_closest_valid_bound(self, v, base):
        from helpers import assert_correctly_rounded

        r = shortest_digits(v, base=base)
        assert_correctly_rounded(v, r, ReaderMode.NEAREST_EVEN)

    def test_exhaustive_toy_tight(self):
        from helpers import assert_correctly_rounded

        for v in enumerate_toy(TOY_P5):
            r = shortest_digits(v)
            assert_correctly_rounded(v, r, ReaderMode.NEAREST_EVEN)

    def test_paper_bound_violation_is_real_and_matched_by_cpython(self):
        """The counterexample, pinned: 2**-1017 prints with error just
        over half a final-digit unit because the closer candidate rounds
        to the predecessor — and CPython agrees."""
        x = 2.0 ** -1017
        v = Flonum.from_float(x)
        r = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
        unit = Fraction(10) ** (r.k - len(r.digits))
        err = abs(r.to_fraction() - v.to_fraction())
        assert unit / 2 < err < unit
        assert repr(x).startswith("7.120236347223045")
        digits = "".join(str(d) for d in r.digits)
        assert digits == "7120236347223045"
