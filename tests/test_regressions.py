"""Regression pins for bugs found (and fixed) during development.

Each test documents a real failure mode with the smallest reproducer, so
a future refactor that reintroduces it fails with a story attached.
"""

from fractions import Fraction

from repro.core.fixed import fixed_digits
from repro.core.rounding import ReaderMode, TieBreak
from repro.floats.model import Flonum
from repro.reader.truncated import read_decimal_truncated


class TestFixedFormatZeroRule:
    def test_first_digit_below_stop_position(self):
        """0.4 at position 0: k == j, so there are NO digit positions at
        or above the stop — the output is the zero numeral.  An early
        version generated a digit at position -1 and returned 0.4."""
        r = fixed_digits(Flonum.from_float(0.4), position=0)
        assert r.is_zero and r.k == 0

    def test_all_zero_digit_string_canonicalized(self):
        """0.5 at position 0 with ties-down generates the digit 0; that
        is the zero output and must normalize (an early version returned
        digits=(0,) with k=1, which rendered as '0' but broke the
        span bookkeeping len(digits)+hashes == k-j)."""
        r = fixed_digits(Flonum.from_float(0.5), position=0,
                         tie=TieBreak.DOWN)
        assert r.is_zero and r.digits == ()


class TestDoubleLiteralsAreNotDecimals:
    def test_095_rounds_down_at_one_digit(self):
        """The double nearest 0.95 is BELOW 0.95, so one significant
        digit gives '9', not '1e0' — a test expectation bug worth
        keeping visible."""
        r = fixed_digits(Flonum.from_float(0.95), ndigits=1)
        assert r.digits == (9,)
        r = fixed_digits(Flonum.from_float(0.96), ndigits=1)
        assert (r.k, r.digits) == (1, (1,))


class TestCorpusAliasing:
    def test_corpus_exponents_not_aliased(self):
        """An early corpus strode exponents with a fixed step, collapsing
        1500 samples onto ~10 distinct exponents and biasing the
        estimator-accuracy measurement to 100%.  The product-space stride
        must keep exponent coverage proportional to the sample count."""
        from repro.workloads.schryer import corpus

        values = corpus(1500)
        assert len({v.e for v in values}) > 1000

    def test_estimator_inexactness_visible_on_corpus(self):
        """With honest coverage the fast estimator is off by one on a
        visible fraction (the paper's 'frequently k-1')."""
        from repro.analysis.estimator_stats import accuracy_scan
        from repro.workloads.schryer import corpus

        scan = accuracy_scan(corpus(600))
        assert 0.02 < 1 - scan["fast"].exact_rate < 0.35


class TestTruncatedReaderJumpPoints:
    def test_directed_mode_at_representable_prefix(self):
        """'1.000…001' under TOWARD_POSITIVE: the kept prefix is exactly
        1.0 (a jump point of ceil), so naive closed-endpoint bracketing
        always straddles and fell back to the exact reader — defeating
        the bounded-work guarantee.  The one-sided-limit bracketing must
        decide this without building the full integer."""
        text = "1." + "0" * 100000 + "1"
        up = read_decimal_truncated(text, mode=ReaderMode.TOWARD_POSITIVE)
        from repro.floats.ulp import successor

        assert up == successor(Flonum.from_float(1.0))

    def test_huge_literal_parse_beyond_int_limit(self):
        """CPython caps str->int at 4300 digits by default; the exact
        parser must chunk around it (found when the straddle fallback
        crashed on a 100k-digit literal)."""
        from repro.reader.exact import read_decimal

        text = "0." + "3" * 5000
        got = read_decimal(text)
        assert got == Flonum.from_float(1 / 3)


class TestGrisuBoundaryBail:
    def test_1e23_family_bails_rather_than_disagreeing(self):
        """Grisu3 must not certify a result on inputs where the shortest
        output depends on the reader's tie rule."""
        from repro.fastpath import grisu_shortest

        assert grisu_shortest(Flonum.from_float(1e23)) is None


class TestScaleConsistencyPairs:
    def test_sw_fixed_exact_half_terminates(self):
        """Steele-White's fixed-format mask with inclusive high and the
        matching scale bounds: an exact-half remainder (1.5 at position
        0) once looped forever under mismatched inclusivities."""
        from repro.baselines.steele_white import dragon4_fixed

        r = dragon4_fixed(Flonum.from_float(1.5), position=0)
        assert "".join(map(str, r.digits)) == "2"


class TestTheorem4Boundary:
    def test_half_unit_bound_violation_is_stable(self):
        """The 2**-1017 closest-valid case (see docs/semantics.md): the
        error must stay in (unit/2, unit) — if a change 'fixes' this to
        within half a unit, it broke round-tripping instead."""
        from repro.core.dragon import shortest_digits
        from repro.reader.exact import read_fraction

        v = Flonum.from_float(2.0**-1017)
        r = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
        unit = Fraction(10) ** (r.k - len(r.digits))
        err = abs(r.to_fraction() - v.to_fraction())
        assert unit / 2 < err < unit
        assert read_fraction(r.to_fraction(), v.fmt) == v
