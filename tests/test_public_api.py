"""The public surface: everything advertised exists and basic flows work."""

import importlib

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_names_resolve(self):
        for mod_name in ("repro.core", "repro.floats", "repro.reader",
                         "repro.baselines", "repro.bignum", "repro.format",
                         "repro.workloads", "repro.fastpath"):
            mod = importlib.import_module(mod_name)
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{mod_name}.{name}"

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestEndToEndFlows:
    """The README examples, verbatim."""

    def test_readme_free_format(self):
        assert repro.format_shortest(0.1 + 0.2) == "0.30000000000000004"
        assert repro.format_shortest(1e23) == "1e23"
        assert repro.format_shortest(
            1e23, mode=repro.ReaderMode.NEAREST_UNKNOWN
        ) == "9.999999999999999e22"

    def test_readme_fixed_format(self):
        assert repro.format_fixed(1 / 3, ndigits=10) == "0.3333333333"
        assert repro.format_fixed(100.0, decimals=20) == (
            "100.000000000000000#####")

    def test_readme_reader(self):
        v = repro.read_decimal("0.3")
        assert v == repro.Flonum.from_float(0.3)

    def test_printf_and_repr(self):
        assert repro.format_printf("%.2f", 3.14159) == "3.14"
        assert repro.py_repr(0.1) == "0.1"
        assert repro.python_hex(1.5) == (1.5).hex()

    def test_digit_level_api(self):
        v = repro.Flonum.from_float(0.3)
        r = repro.shortest_digits(v)
        assert isinstance(r, repro.DigitResult)
        f = repro.fixed_digits(v, ndigits=3)
        assert isinstance(f, repro.FixedResult)

    def test_errors_are_catchable_as_base(self):
        with pytest.raises(repro.ReproError):
            repro.format_fixed(1.0)  # missing precision spec
        with pytest.raises(repro.ReproError):
            repro.read_decimal("not a number")
