"""The 64-bit fixed-point substrate of the fast paths."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import positive_flonums
from repro.errors import RangeError
from repro.fastpath.diyfp import (
    DiyFp,
    cached_power_for_binary_exponent,
    normalize,
    normalized_boundaries,
)
from repro.fastpath.diyfp import _pow10_diyfp
from repro.floats.model import Flonum
from repro.floats.ulp import midpoint_high, midpoint_low


class TestDiyFp:
    def test_normalize(self):
        d = normalize(1, 0)
        assert d.f == 1 << 63 and d.e == -63

    def test_normalize_rejects_zero(self):
        with pytest.raises(RangeError):
            normalize(0, 5)

    @given(st.integers(min_value=1, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=(1 << 64) - 1))
    @settings(max_examples=300)
    def test_times_error_below_one_ulp(self, a, b):
        da = normalize(a, 0)
        db = normalize(b, 0)
        prod = da.times(db)
        exact = da.to_fraction() * db.to_fraction()
        err = abs(prod.to_fraction() - exact)
        assert err <= Fraction(2) ** prod.e / 2

    def test_minus(self):
        a, b = DiyFp(10, 3), DiyFp(4, 3)
        assert a.minus(b) == DiyFp(6, 3)
        with pytest.raises(RangeError):
            b.minus(a)
        with pytest.raises(RangeError):
            a.minus(DiyFp(1, 2))


class TestBoundaries:
    @given(positive_flonums())
    @settings(max_examples=300)
    def test_exact_midpoints(self, v):
        lo, hi = normalized_boundaries(v)
        assert lo.e == hi.e
        assert hi.f >= 1 << 63  # plus boundary normalized
        assert lo.to_fraction() == midpoint_low(v)
        assert hi.to_fraction() == midpoint_high(v)

    def test_uneven_gap_case(self):
        v = Flonum.from_float(1.0)
        lo, hi = normalized_boundaries(v)
        value = v.to_fraction()
        assert hi.to_fraction() - value == 2 * (value - lo.to_fraction())

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            normalized_boundaries(Flonum.zero())


class TestCachedPowers:
    @pytest.mark.parametrize("k", [-340, -200, -28, -1, 0, 1, 27, 200, 340])
    def test_correctly_rounded(self, k):
        d, exact = _pow10_diyfp(k)
        true = Fraction(10) ** k
        assert 1 << 63 <= d.f < 1 << 64
        assert abs(d.to_fraction() - true) <= Fraction(2) ** d.e / 2

    def test_exactness_flag(self):
        assert _pow10_diyfp(0)[1]
        assert _pow10_diyfp(10)[1]
        assert not _pow10_diyfp(30)[1]  # 10**30 needs > 64 bits
        assert not _pow10_diyfp(-1)[1]

    @pytest.mark.parametrize("e", list(range(-1140, 1030, 97)))
    def test_window_selection(self, e):
        power, k, _ = cached_power_for_binary_exponent(e)
        assert -60 <= e + power.e + 64 <= -32
        # power approximates 10**-k.
        ratio = power.to_fraction() * Fraction(10) ** k
        assert abs(ratio - 1) < Fraction(1, 10**15)
