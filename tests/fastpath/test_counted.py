"""The counted-digit (Gay-heuristic) fast path."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import positive_flonums
from repro.baselines.naive_fixed import exact_fixed_digits
from repro.core.rounding import TieBreak
from repro.errors import RangeError
from repro.fastpath import STATS, counted_fixed, fixed_fast
from repro.floats.formats import BINARY128
from repro.floats.model import Flonum


class TestAgreement:
    @given(positive_flonums(), st.integers(min_value=1, max_value=17))
    @settings(max_examples=400)
    def test_success_matches_exact(self, v, n):
        c = counted_fixed(v, n)
        if c is None:
            return
        want = exact_fixed_digits(v, ndigits=n)
        assert (c.k, c.digits) == (want.k, want.digits)

    @given(positive_flonums(), st.integers(min_value=1, max_value=17))
    @settings(max_examples=300)
    def test_facade_always_exact(self, v, n):
        r = fixed_fast(v, n)
        want = exact_fixed_digits(v, ndigits=n)
        assert (r.k, r.digits) == (want.k, want.digits)

    def test_carry_case(self):
        # 9.9999... rounding up to 10 at few digits exercises the ripple.
        v = Flonum.from_float(9.9999999)
        c = counted_fixed(v, 3)
        if c is not None:
            assert c.digits == (1, 0, 0) and c.k == 2


class TestBailing:
    def test_exact_ties_bail(self):
        """A value exactly on a rounding boundary cannot be certified."""
        v = Flonum.from_float(2.5)
        assert counted_fixed(v, 1) is None

    def test_too_many_digits_bails(self):
        v = Flonum.from_float(1 / 3)
        assert counted_fixed(v, 18) is None

    def test_wide_format_bails(self):
        v = Flonum.finite(0, BINARY128.hidden_limit, 0, BINARY128)
        assert counted_fixed(v, 5) is None

    def test_non_decimal_bails(self):
        assert counted_fixed(Flonum.from_float(1.5), 3, base=16) is None

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            counted_fixed(Flonum.zero(), 3)

    def test_hit_rate_reasonable(self):
        from repro.workloads.schryer import corpus

        STATS.reset()
        for v in corpus(500):
            fixed_fast(v, 15)
        rate = STATS.fixed_hits / (STATS.fixed_hits + STATS.fixed_misses)
        assert rate > 0.9

    def test_small_digit_counts_almost_always_hit(self):
        """Gay's observation: float arithmetic suffices when the digit
        count is small."""
        from repro.workloads.schryer import corpus

        misses = sum(counted_fixed(v, 6) is None for v in corpus(500))
        assert misses < 10
