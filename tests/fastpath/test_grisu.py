"""Grisu3 fast path: success implies exact agreement; failures bail."""

import pytest
from hypothesis import given, settings

from helpers import positive_flonums
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.errors import RangeError
from repro.fastpath import STATS, grisu_shortest, shortest_fast
from repro.floats.formats import BINARY32, BINARY128
from repro.floats.model import Flonum
from repro.workloads.corpus import decimal_ties, torture_floats


class TestAgreement:
    @given(positive_flonums())
    @settings(max_examples=400)
    def test_success_matches_exact_both_modes(self, v):
        g = grisu_shortest(v)
        if g is None:
            return
        for mode in (ReaderMode.NEAREST_EVEN, ReaderMode.NEAREST_UNKNOWN):
            exact = shortest_digits(v, mode=mode)
            assert (g.k, g.digits) == (exact.k, exact.digits)

    @given(positive_flonums(BINARY32))
    @settings(max_examples=200)
    def test_binary32_success_matches(self, v):
        g = grisu_shortest(v)
        if g is None:
            return
        exact = shortest_digits(v, mode=ReaderMode.NEAREST_UNKNOWN)
        assert (g.k, g.digits) == (exact.k, exact.digits)

    def test_torture_values(self):
        for v in torture_floats():
            g = grisu_shortest(v.abs()) if not v.is_zero else None
            if g is None:
                continue
            exact = shortest_digits(v.abs(), mode=ReaderMode.NEAREST_EVEN)
            assert (g.k, g.digits) == (exact.k, exact.digits)


class TestBailing:
    def test_boundary_sensitive_inputs_bail(self):
        """Inputs whose shortest output depends on the reader's tie rule
        (the 1e23 family) are exactly the ones 64 bits cannot decide."""
        bail = 0
        for v in decimal_ties():
            even = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
            unk = shortest_digits(v, mode=ReaderMode.NEAREST_UNKNOWN)
            if (even.k, even.digits) != (unk.k, unk.digits):
                assert grisu_shortest(v) is None, v
                bail += 1
        assert bail > 0  # the corpus contains such values (1e23 itself)

    def test_non_decimal_base_bails(self):
        assert grisu_shortest(Flonum.from_float(1.5), base=16) is None

    def test_wide_format_bails(self):
        v = Flonum.finite(0, BINARY128.hidden_limit, 0, BINARY128)
        assert grisu_shortest(v) is None

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            grisu_shortest(Flonum.zero())

    def test_hit_rate_is_high(self):
        """Loitsch reports ~99.5% coverage for Grisu3 on doubles."""
        from repro.workloads.schryer import corpus

        values = corpus(2000)
        hits = sum(grisu_shortest(v) is not None for v in values)
        assert hits / len(values) > 0.98


class TestFacade:
    def test_fallback_is_seamless(self):
        STATS.reset()
        v = Flonum.from_float(1e23)  # boundary case: must fall back
        r = shortest_fast(v)
        exact = shortest_digits(v, mode=ReaderMode.NEAREST_UNKNOWN)
        assert (r.k, r.digits) == (exact.k, exact.digits)
        assert STATS.shortest_misses >= 1

    @given(positive_flonums())
    @settings(max_examples=200)
    def test_always_equals_exact(self, v):
        r = shortest_fast(v)
        exact = shortest_digits(v, mode=ReaderMode.NEAREST_UNKNOWN)
        assert (r.k, r.digits) == (exact.k, exact.digits)
