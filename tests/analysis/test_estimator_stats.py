"""Estimator accuracy analysis and the paper's analytic bounds."""

import pytest

from repro.analysis.estimator_stats import (
    ESTIMATORS,
    accuracy_scan,
    true_k,
    undershoot_bound,
    worst_undershoot,
)
from repro.floats.formats import BINARY32, BINARY64
from repro.floats.model import Flonum
from repro.workloads.schryer import corpus


class TestAccuracyScan:
    @pytest.fixture(scope="class")
    def scan(self):
        return accuracy_scan(corpus(800))

    def test_no_estimator_overshoots(self, scan):
        for acc in scan.values():
            assert acc.never_overshoots, acc.name

    def test_within_one(self, scan):
        for acc in scan.values():
            assert acc.max_undershoot <= 1, acc.name

    def test_paper_accuracy_ordering(self, scan):
        # float-log most accurate, Gay close behind, fast least.
        assert scan["float-log"].exact_rate >= scan["gay"].exact_rate
        assert scan["gay"].exact_rate >= scan["fast"].exact_rate

    def test_float_log_almost_always_exact(self, scan):
        assert scan["float-log"].exact_rate > 0.99

    def test_totals(self, scan):
        assert all(acc.total == 800 for acc in scan.values())


class TestAnalyticBounds:
    def test_paper_0631_bound(self):
        # "it undershoots by no more than 1/log2 3 < 0.631" — the worst
        # base is 3.
        assert undershoot_bound(2, 3) == pytest.approx(0.6309297535714574)
        assert undershoot_bound(2, 10) == pytest.approx(0.30102999566398114)

    def test_worst_observed_within_bound(self):
        for fmt in (BINARY64, BINARY32):
            observed = worst_undershoot(fmt, base=10)
            assert observed <= undershoot_bound(2, 10) + 1e-12
            # The all-ones mantissa really does approach the bound.
            assert observed > 0.29

    def test_worst_observed_base3(self):
        observed = worst_undershoot(BINARY64, base=3)
        assert observed <= undershoot_bound(2, 3) + 1e-12
        assert observed > 0.62


class TestTrueK:
    def test_matches_scaling(self):
        for x in (1.0, 0.1, 1e23, 5e-324):
            v = Flonum.from_float(x)
            for name, est in ESTIMATORS.items():
                e = est(v, 10)
                k = true_k(v)
                assert e in (k, k - 1), (x, name)
