"""Digit-length distribution analysis."""

import pytest

from repro.analysis.digit_stats import (
    DigitLengthStats,
    digit_length_stats,
    histogram_lines,
)
from repro.core.rounding import ReaderMode
from repro.floats.formats import BINARY32
from repro.floats.model import Flonum
from repro.workloads.schryer import corpus


class TestStats:
    def test_mean_and_counts(self):
        s = DigitLengthStats()
        for n in (1, 2, 2, 3):
            s.add(n)
        assert s.total == 4
        assert s.mean == 2.0
        assert (s.min_length, s.max_length) == (1, 3)

    def test_quantile(self):
        s = DigitLengthStats()
        for n in (1, 1, 1, 5):
            s.add(n)
        assert s.quantile(0.5) == 1
        assert s.quantile(1.0) == 5
        with pytest.raises(ValueError):
            s.quantile(1.5)

    def test_empty(self):
        s = DigitLengthStats()
        assert s.mean == 0.0 and s.total == 0
        assert histogram_lines(s) == ["(empty)"]


class TestCorpusMeasurements:
    def test_paper_scale_mean(self):
        """Section 5: mean ≈ 15.2 on the Schryer corpus; 17 max."""
        stats = digit_length_stats(corpus(2000))
        assert 14.0 <= stats.mean <= 17.0
        assert stats.max_length <= 17

    def test_seventeen_digits_always_distinguish(self):
        stats = digit_length_stats(corpus(3000))
        assert stats.quantile(1.0) <= 17

    def test_binary32_needs_at_most_nine(self):
        values = [Flonum.finite(0, f, e, BINARY32)
                  for f in (BINARY32.hidden_limit, BINARY32.mantissa_limit - 1)
                  for e in range(BINARY32.min_e, BINARY32.max_e + 1, 7)]
        stats = digit_length_stats(values)
        assert stats.max_length <= 9

    def test_reader_awareness_shortens(self):
        from repro.workloads.corpus import decimal_ties

        ties = decimal_ties()
        aware = digit_length_stats(ties, mode=ReaderMode.NEAREST_EVEN)
        safe = digit_length_stats(ties, mode=ReaderMode.NEAREST_UNKNOWN)
        assert aware.mean < safe.mean

    def test_histogram_render(self):
        stats = digit_length_stats(corpus(300))
        lines = histogram_lines(stats, width=30)
        assert any("mean =" in line for line in lines)
        assert len(lines) == stats.max_length - stats.min_length + 2
