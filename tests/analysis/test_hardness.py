"""Adversarial-case generators, and the readers surviving them."""

import pytest

from repro.analysis.hardness import (
    hard_print_values,
    hard_read_cases,
    shortest_length_census,
)
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.floats.formats import BINARY16, BINARY32, BINARY64
from repro.reader.algorithm_r import read_decimal_r
from repro.reader.bellerophon import read_decimal_fast
from repro.reader.exact import read_decimal
from repro.reader.truncated import read_decimal_truncated


class TestHardReadCases:
    @pytest.fixture(scope="class")
    def cases(self):
        return hard_read_cases(BINARY64, count=60, digits=30)

    def test_deterministic_and_sized(self, cases):
        assert len(cases) == 60
        again = hard_read_cases(BINARY64, count=60, digits=30)
        assert [t for t, _ in cases] == [t for t, _ in again]

    def test_host_strtod_survives(self, cases):
        for text, v in cases:
            assert float(text) == v.to_float(), text

    def test_exact_reader_survives(self, cases):
        for text, v in cases:
            assert read_decimal(text) == v, text

    def test_algorithm_r_survives(self, cases):
        for text, v in cases:
            assert read_decimal_r(text) == v, text

    def test_bellerophon_survives(self, cases):
        for text, v in cases:
            assert read_decimal_fast(text).value == v, text

    def test_truncated_reader_survives(self, cases):
        # These sit ~10^-30 from a boundary: beyond the 20-digit
        # truncation horizon, so the fast bracket must *refuse* and the
        # exact fallback must decide correctly.
        for text, v in cases:
            assert read_decimal_truncated(text) == v, text

    def test_rounding_to_17_digits_first_fails_sometimes(self, cases):
        """The point of the corpus: a reader that first *rounds* the
        literal to 17 digits and then converts crosses the boundary on a
        decent fraction of these (truncating stays safe; rounding does
        not — which is why sticky bits, not rounding, are the correct
        way to shorten input)."""
        wrong = 0
        for text, v in cases:
            mantissa, _, exp = text.partition("e")
            drop = len(mantissa) - 17
            rounded = (int(mantissa) + (5 * 10 ** (drop - 1))) // 10**drop
            guess = float(f"{rounded}e{int(exp) + drop}")
            wrong += guess != v.to_float()
        assert wrong > len(cases) // 4

    def test_binary32_cases(self):
        for text, v in hard_read_cases(BINARY32, count=20, digits=20):
            assert read_decimal(text, BINARY32) == v


class TestHardPrintValues:
    def test_maximal_length(self):
        for v in hard_print_values(BINARY64, count=20):
            assert len(shortest_digits(v).digits) == 17

    def test_binary16(self):
        vals = hard_print_values(BINARY16, count=10)
        assert vals
        for v in vals:
            assert len(shortest_digits(v).digits) == 5


class TestCensus:
    def test_binade_census_sums(self):
        counts = shortest_length_census(BINARY16, exponent=0)
        assert sum(counts.values()) == BINARY16.hidden_limit
        assert max(counts) <= 5

    def test_distribution_shape(self):
        # Most binary16 values need 3-4 digits; a sizable minority in
        # low binades needs the full 5.
        counts = shortest_length_census(BINARY16, exponent=-14)
        total = sum(counts.values())
        assert (counts.get(3, 0) + counts.get(4, 0)) / total > 0.7
        assert counts.get(5, 0) / total > 0.1
