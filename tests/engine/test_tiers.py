"""Tier-level correctness: every fast-tier answer is byte-identical to
the exact algorithm (satellite: the agreement audit of the engine PR)."""

import pytest
from hypothesis import given, settings

from helpers import positive_flonums
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode, TieBreak
from repro.engine.tables import tables_for
from repro.engine.tier0 import tier0_digits
from repro.engine.tier1 import tier1_digits
from repro.fastpath import grisu_shortest
from repro.floats.formats import BINARY32, BINARY64
from repro.floats.model import Flonum
from repro.workloads.corpus import (
    decimal_ties,
    denormals,
    power_boundaries,
    torture_floats,
    uniform_random,
)
from repro.workloads.schryer import corpus as schryer_corpus

T64 = tables_for(BINARY64, 10)

ALL_MODES = list(ReaderMode)
NEAREST_MODES = (ReaderMode.NEAREST_EVEN, ReaderMode.NEAREST_UNKNOWN)


def run_tier0(v, mode):
    return tier0_digits(v.f, v.e, T64.hidden_limit, T64.min_e,
                        T64.mantissa_limit, T64.max_e, mode)


def run_tier1(v):
    return tier1_digits(v.f, v.e, T64.hidden_limit, T64.min_e,
                        T64.grisu_powers, T64.grisu_e_min)


def assert_matches_exact(v, got, mode, tie=TieBreak.UP):
    acc, nd, k = got
    body = str(acc)
    assert len(body) == nd
    exact = shortest_digits(v, mode=mode, tie=tie)
    assert k == exact.k
    assert body == "".join(str(d) for d in exact.digits)


def curated_corpus():
    vals = []
    vals += [Flonum.from_float(float(i)) for i in range(1, 300)]
    vals += [Flonum.from_float(i / 4) for i in range(1, 100)]
    vals += [Flonum.from_float(i / 10) for i in range(1, 100)]
    vals += [Flonum.from_float(x) for x in
             (1e23, 1e22, 1e16, 0.5, 0.25, 0.125, 1.5, 2.5, 1024.0,
              4503599627370496.0, 9007199254740992.0, 0.1, 0.2, 0.3)]
    vals += torture_floats()
    vals += decimal_ties()
    vals += power_boundaries()
    vals += denormals()
    return vals


class TestTier0:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_curated_corpus_every_mode(self, mode):
        accepted = 0
        for v in curated_corpus():
            got = run_tier0(v, mode)
            if got is None:
                continue
            accepted += 1
            assert_matches_exact(v, got, mode)
        assert accepted > 100  # the tier must actually fire

    def test_small_integers_accepted(self):
        for i in range(1, 1000):
            got = run_tier0(Flonum.from_float(float(i)), ReaderMode.NEAREST_EVEN)
            assert got is not None
            acc, nd, k = got
            assert str(acc) == str(i).rstrip("0")
            assert k == len(str(i))

    def test_exact_binary_fractions_accepted(self):
        for i in (1, 3, 5, 7, 11, 255):
            for sh in (1, 2, 3, 10, 20):
                v = Flonum.from_float(i / (1 << sh))
                assert run_tier0(v, ReaderMode.NEAREST_UNKNOWN) is not None

    def test_declines_boundary_ambiguity(self):
        # 1e23 is a decimal-tie: under NEAREST_EVEN the shortest output
        # is "1e23", which is *not* the exact expansion of the double —
        # tier 0 must decline rather than print 24 digits.
        v = Flonum.from_float(1e23)
        got = run_tier0(v, ReaderMode.NEAREST_EVEN)
        assert got is None

    def test_mode_changes_acceptance(self):
        # Under TOWARD_ZERO the value itself is always in the rounding
        # interval's closure, so exact expansions certify more often.
        v = Flonum.from_float(1e23)  # f = 0x152d02c7e14af6800...
        exact = shortest_digits(v, mode=ReaderMode.TOWARD_ZERO)
        got = run_tier0(v, ReaderMode.TOWARD_ZERO)
        if got is not None:
            assert_matches_exact(v, got, ReaderMode.TOWARD_ZERO)

    @given(positive_flonums())
    @settings(max_examples=300)
    def test_random_agreement_all_modes(self, v):
        for mode in ALL_MODES:
            got = run_tier0(v, mode)
            if got is not None:
                assert_matches_exact(v, got, mode)


class TestTier1:
    def test_pins_reference_grisu(self):
        """Value-for-value identical to the readable fastpath.grisu."""
        vals = (schryer_corpus(600) + curated_corpus()
                + uniform_random(600, seed=99))
        for v in vals:
            ref = grisu_shortest(v)
            got = run_tier1(v)
            if ref is None:
                assert got is None
            else:
                assert got is not None
                acc, nd, k = got
                assert k == ref.k
                assert str(acc) == "".join(str(d) for d in ref.digits)

    @pytest.mark.parametrize("mode", NEAREST_MODES)
    @pytest.mark.parametrize("tie",
                             [TieBreak.UP, TieBreak.DOWN, TieBreak.EVEN])
    def test_success_matches_exact(self, mode, tie):
        for v in uniform_random(400, seed=5) + torture_floats():
            got = run_tier1(v)
            if got is not None:
                assert_matches_exact(v, got, mode, tie)

    @given(positive_flonums())
    @settings(max_examples=300)
    def test_random_success_matches_exact(self, v):
        got = run_tier1(v)
        if got is not None:
            for mode in NEAREST_MODES:
                assert_matches_exact(v, got, mode)

    def test_binary32_tables(self):
        t32 = tables_for(BINARY32, 10)
        assert t32.grisu_ok
        hits = 0
        for v in uniform_random(300, fmt=BINARY32, seed=11):
            got = tier1_digits(v.f, v.e, t32.hidden_limit, t32.min_e,
                               t32.grisu_powers, t32.grisu_e_min)
            if got is None:
                continue
            hits += 1
            acc, nd, k = got
            exact = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
            assert k == exact.k
            assert str(acc) == "".join(str(d) for d in exact.digits)
        assert hits > 200

    def test_high_success_rate(self):
        vals = uniform_random(1500, seed=77)
        ok = sum(1 for v in vals if run_tier1(v) is not None)
        assert ok / len(vals) > 0.99
