"""Satellite: Engine.stats() and memo behaviour under fixed-format keys.

The memo now holds three key shapes — shortest ``(f, e, ctx)``,
counted/fixed ``(f, e, n, ctx)`` — and the stats carry separate
fixed-tier counters.  These tests pin the contract: no cross-
contamination between shortest and counted entries, distinct keys per
(ndigits | position, kind, tie), ``+x``/``-x`` sharing, and counter
arithmetic.
"""

import pytest

from repro.core.api import format_fixed
from repro.core.rounding import TieBreak
from repro.engine import Engine
from repro.errors import RangeError
from repro.floats.formats import BINARY32, BINARY64
from repro.floats.model import Flonum
from repro.format.printf import format_printf


@pytest.fixture()
def engine():
    return Engine()


class TestStatsCounters:
    def test_fixed_counters_start_zero(self, engine):
        s = engine.stats()
        assert s["fixed_tier1_hits"] == 0
        assert s["fixed_tier1_bailouts"] == 0
        assert s["fixed_tier2_calls"] == 0
        assert s["fixed_conversions"] == 0

    def test_fast_hit_counts(self, engine):
        engine.counted_digits(0.3, ndigits=5)
        s = engine.stats()
        assert s["fixed_tier1_hits"] == 1
        assert s["fixed_tier2_calls"] == 0
        assert s["fixed_conversions"] == 1
        assert s["conversions"] == 1

    def test_bailout_counts_and_falls_back(self, engine):
        # An exact decimal tie forces the tier to decline.
        engine.counted_digits(0.125, ndigits=2)
        s = engine.stats()
        assert s["fixed_tier1_bailouts"] == 1
        assert s["fixed_tier2_calls"] == 1
        assert s["fixed_conversions"] == 1

    def test_shortest_and_fixed_counted_separately(self, engine):
        engine.shortest_digits(0.3)
        engine.counted_digits(0.3, ndigits=5)
        s = engine.stats()
        assert s["conversions"] == 2
        assert s["fixed_conversions"] == 1

    def test_fixed_tier_disabled_goes_exact(self):
        eng = Engine(fixed_tier1=False)
        eng.counted_digits(0.3, ndigits=5)
        eng.fixed_digits(0.3, ndigits=5)
        s = eng.stats()
        assert s["fixed_tier1_hits"] == 0
        assert s["fixed_tier1_bailouts"] == 0
        assert s["fixed_tier2_calls"] == 2

    def test_reset_clears_fixed_counters(self, engine):
        engine.counted_digits(0.3, ndigits=5)
        engine.reset_stats()
        s = engine.stats()
        assert s["fixed_conversions"] == 0
        assert s["conversions"] == 0


class TestMemoKeys:
    def test_memo_hit_on_repeat(self, engine):
        a = engine.counted_digits(0.3, ndigits=5)
        b = engine.counted_digits(0.3, ndigits=5)
        assert a == b
        s = engine.stats()
        assert s["cache_hits"] == 1
        assert s["fixed_conversions"] == 1  # second call never re-converts

    def test_no_shortest_fixed_cross_contamination(self, engine):
        # Same (f, e), same digit count: the shortest result for 0.1 is
        # one digit ('1', k=0) while counted ndigits=1 rounds the exact
        # value — the memo must keep them apart.
        engine.shortest_digits(0.1)
        r = engine.counted_digits(0.1, ndigits=17)
        # 0.1 == 0.1000000000000000055511151231257827, 17 digits.
        assert r.digits[:3] == (1, 0, 0)
        assert len(r.digits) == 17
        s = engine.stats()
        assert s["cache_hits"] == 0
        assert s["cache_entries"] == 2

    def test_counted_vs_paper_fixed_distinct_keys(self, engine):
        engine.counted_digits(0.1, ndigits=5)
        engine.fixed_digits(0.1, ndigits=5)
        s = engine.stats()
        assert s["cache_hits"] == 0
        assert s["cache_entries"] == 2

    def test_relative_vs_absolute_distinct_keys(self, engine):
        # 2.0 with ndigits=3 and with position=-2 produce the same block
        # but must occupy distinct memo entries (different request kind).
        engine.counted_digits(2.0, ndigits=3)
        engine.counted_digits(2.0, position=-2)
        s = engine.stats()
        assert s["cache_hits"] == 0
        assert s["cache_entries"] == 2

    def test_ndigits_values_distinct_keys(self, engine):
        engine.counted_digits(0.3, ndigits=5)
        engine.counted_digits(0.3, ndigits=6)
        s = engine.stats()
        assert s["cache_hits"] == 0
        assert s["cache_entries"] == 2

    def test_tie_contexts_distinct_keys(self, engine):
        # Tie results depend on the strategy, so contexts must differ
        # even though fast-tier acceptances are tie-independent.
        a = engine.counted_digits(0.125, ndigits=2, tie=TieBreak.EVEN)
        b = engine.counted_digits(0.125, ndigits=2, tie=TieBreak.UP)
        assert a.digits == (1, 2)
        assert b.digits == (1, 3)

    def test_format_distinct_keys(self, engine):
        # binary32 1.0 and binary64 1.0 share (f=1<<23 vs 1<<52 …) — use
        # values whose (f, e) collide across formats to prove the ctx
        # separates them: f=1, e=min_e (the smallest denormals).
        v32 = Flonum.finite(0, 1, BINARY32.min_e, BINARY32)
        v64 = Flonum.finite(0, 1, BINARY64.min_e, BINARY64)
        a = engine.counted_digits(v32, ndigits=3, fmt=BINARY32)
        b = engine.counted_digits(v64, ndigits=3, fmt=BINARY64)
        assert a != b
        assert engine.stats()["cache_hits"] == 0

    def test_cache_disabled(self):
        eng = Engine(cache_size=0)
        eng.counted_digits(0.3, ndigits=5)
        eng.counted_digits(0.3, ndigits=5)
        s = eng.stats()
        assert s["cache_hits"] == 0
        assert s["cache_entries"] == 0
        assert s["fixed_conversions"] == 2


class TestSignSharing:
    """+x and -x share fixed memo entries (magnitude-only rounding)."""

    def test_format_fixed_shares_entries(self, engine):
        engine.format_fixed(1.75, decimals=4)
        before = engine.stats()["cache_entries"]
        engine.format_fixed(-1.75, decimals=4)
        s = engine.stats()
        assert s["cache_entries"] == before
        assert s["cache_hits"] == 1

    def test_printf_shares_entries(self, engine):
        assert format_printf("%.3e", 0.3) == "3.000e-01"
        assert format_printf("%.3e", -0.3) == "-3.000e-01"
        # Through a private engine to observe the memo directly:
        engine2 = Engine()
        from repro.format import printf

        printf.fmt_e(0.3, precision=3, engine=engine2)
        printf.fmt_e(-0.3, precision=3, engine=engine2)
        s = engine2.stats()
        assert s["cache_entries"] == 1
        assert s["cache_hits"] == 1

    def test_signs_render_correctly(self, engine):
        assert engine.format_fixed(-1.75, decimals=2) == "-1.75"
        assert engine.format_fixed(1.75, decimals=2) == "1.75"


class TestRouting:
    def test_format_fixed_routes_through_engine(self, engine):
        out = engine.format_fixed(1 / 3, ndigits=10)
        assert out == format_fixed(1 / 3, ndigits=10, engine=None)
        assert engine.stats()["fixed_conversions"] == 1

    def test_format_fixed_hash_marks_via_engine(self, engine):
        # The #-mark path must survive engine routing (tier bails).
        out = engine.format_fixed(100.0, decimals=20)
        assert out == "100.000000000000000#####"

    def test_engine_none_is_exact_only(self):
        from repro.engine import default_engine

        eng = default_engine()
        eng.reset_stats()
        format_fixed(1 / 3, ndigits=10, engine=None)
        format_printf("%.5e", 1 / 3, engine=None)
        assert eng.stats()["conversions"] == 0

    def test_validation_errors(self, engine):
        with pytest.raises(RangeError):
            engine.counted_digits(0.3)  # neither ndigits nor position
        with pytest.raises(RangeError):
            engine.counted_digits(0.3, ndigits=2, position=-1)
        with pytest.raises(RangeError):
            engine.counted_digits(0.3, ndigits=0)
        with pytest.raises(RangeError):
            engine.fixed_digits(-0.3, ndigits=2)
        with pytest.raises(RangeError):
            engine.counted_digits(float("inf"), ndigits=2)
