"""Contender lanes: the Schubfach writer and the Lemire reader.

The tentpole guarantees are differential and absolute: the Schubfach
lane must be byte-identical to the exact Burger–Dybvig writer on every
finite input *without a bail path*, and the Lemire lane must resolve
every in-certification-range literal without ever consulting the exact
rational reader.  The tier router that hosts them gets its own edge
cases here (empty orders, unknown names, single-lane orders), plus the
``bail_rate`` stats summary the router reports.
"""

import pytest
from hypothesis import given, settings

from helpers import positive_flonums
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode, TieBreak
from repro.engine import (
    READ_TIER_NAMES,
    WRITE_TIER_NAMES,
    Engine,
    ReadEngine,
    split_tier_names,
)
from repro.engine.schubfach import schubfach_digits
from repro.engine.tables import tables_for
from repro.errors import RangeError, ReproError
from repro.floats.formats import BINARY16, BINARY32, BINARY64
from repro.reader.exact import read_decimal
from repro.workloads.corpus import (
    decimal_ties,
    denormals,
    power_boundaries,
    torture_floats,
    uniform_random,
)

NE = ReaderMode.NEAREST_EVEN


def exact_text(v, mode=NE, tie=TieBreak.UP):
    d = shortest_digits(v, mode=mode, tie=tie)
    return d.k, "".join(str(x) for x in d.digits)


def corpus64():
    return (torture_floats() + decimal_ties() + power_boundaries()
            + denormals() + uniform_random(300, seed=42))


class TestSchubfachDigits:
    """The lane's core promise: exact agreement, no bail, any input."""

    def test_curated_corpus_binary64(self):
        t = tables_for(BINARY64, 10)
        t.ensure_schub()
        for v in corpus64():
            even = not (v.f & 1)
            k, text = schubfach_digits(v.f, v.e, t, even, TieBreak.UP)
            assert (k, text) == exact_text(v), f"f={v.f} e={v.e}"

    @pytest.mark.parametrize("fmt", [BINARY16, BINARY32])
    def test_narrow_formats(self, fmt):
        t = tables_for(fmt, 10)
        t.ensure_schub()
        vals = (uniform_random(300, fmt=fmt, seed=3)
                + denormals(fmt=fmt) + power_boundaries(fmt=fmt))
        for v in vals:
            even = not (v.f & 1)
            k, text = schubfach_digits(v.f, v.e, t, even, TieBreak.UP)
            assert (k, text) == exact_text(v), f"f={v.f} e={v.e}"

    @pytest.mark.parametrize("tie",
                             [TieBreak.UP, TieBreak.DOWN, TieBreak.EVEN])
    def test_tie_strategies_on_decimal_ties(self, tie):
        t = tables_for(BINARY64, 10)
        t.ensure_schub()
        for v in decimal_ties() + torture_floats():
            even = not (v.f & 1)
            k, text = schubfach_digits(v.f, v.e, t, even, tie)
            assert (k, text) == exact_text(v, tie=tie)

    def test_extreme_denormals_and_limits(self):
        t = tables_for(BINARY64, 10)
        t.ensure_schub()
        from repro.floats.model import Flonum

        edges = [
            Flonum.finite(0, 1, BINARY64.min_e, BINARY64),
            Flonum.finite(0, 10, BINARY64.min_e, BINARY64),
            Flonum.finite(0, BINARY64.hidden_limit, BINARY64.min_e,
                          BINARY64),
            Flonum.finite(0, BINARY64.mantissa_limit - 1, BINARY64.max_e,
                          BINARY64),
            Flonum.finite(0, BINARY64.hidden_limit, BINARY64.max_e,
                          BINARY64),
        ]
        for v in edges:
            even = not (v.f & 1)
            assert schubfach_digits(v.f, v.e, t, even,
                                    TieBreak.UP) == exact_text(v)

    @given(positive_flonums())
    @settings(max_examples=300)
    def test_random_agreement(self, v):
        t = tables_for(BINARY64, 10)
        t.ensure_schub()
        even = not (v.f & 1)
        assert schubfach_digits(v.f, v.e, t, even,
                                TieBreak.UP) == exact_text(v)


class TestSplitTierNames:
    def test_directions(self):
        assert split_tier_names(["tier0", "grisu3", "window"]) == \
            (("tier0", "grisu3"), ("tier0", "window"))
        assert split_tier_names(["schubfach", "lemire"]) == \
            (("schubfach",), ("lemire",))

    def test_empty_and_blank_entries(self):
        assert split_tier_names([]) == ((), ())
        assert split_tier_names(["", "schubfach", ""]) == \
            (("schubfach",), ())

    def test_unknown_name_is_typed(self):
        with pytest.raises(RangeError):
            split_tier_names(["tier0", "ryu"])
        with pytest.raises(ReproError):  # RangeError is a ReproError
            split_tier_names(["ryu"])

    def test_known_names_are_pinned(self):
        assert WRITE_TIER_NAMES == ("tier0", "grisu3", "schubfach")
        assert READ_TIER_NAMES == ("tier0", "window", "lemire")


class TestTierRouterEdges:
    def test_unknown_write_lane_raises(self):
        with pytest.raises(RangeError):
            Engine(tier_order=("tier0", "ryu"))

    def test_unknown_read_lane_raises(self):
        with pytest.raises(RangeError):
            Engine(read_tier_order=("strtod",))
        with pytest.raises(RangeError):
            ReadEngine(tier_order=("strtod",))

    def test_duplicate_lane_raises(self):
        with pytest.raises(RangeError):
            Engine(tier_order=("schubfach", "schubfach"))
        with pytest.raises(RangeError):
            ReadEngine(tier_order=("lemire", "lemire"))

    def test_empty_order_is_exact_only(self):
        eng = Engine(tier_order=(), cache_size=0)
        base = Engine(cache_size=0)
        vals = [v.to_float() for v in uniform_random(100, seed=9)]
        assert eng.format_many(vals) == base.format_many(vals)
        s = eng.stats()
        assert s["tier2_calls"] == s["conversions"] == len(vals)
        assert s["tier0_hits"] == s["tier1_hits"] == 0
        assert s["schubfach_hits"] == 0

    def test_empty_read_order_is_exact_only(self):
        eng = ReadEngine(tier_order=(), cache_size=0)
        texts = ["0.1", "1.5", "6.02214076e23", "1e-310"]
        for txt in texts:
            assert eng.read(txt) == read_decimal(txt, BINARY64, NE)
        s = eng.stats()
        assert s["read_tier2_calls"] == len(texts)
        assert s["read_lemire_hits"] == 0

    @pytest.mark.parametrize("order", [("tier0",), ("grisu3",),
                                       ("schubfach",),
                                       ("schubfach", "grisu3")])
    def test_single_and_reordered_lanes_byte_identical(self, order):
        eng = Engine(tier_order=order, cache_size=0)
        base = Engine(tier_order=(), cache_size=0)
        vals = [v.to_float() for v in corpus64()]
        assert eng.format_many(vals) == base.format_many(vals)

    @given(positive_flonums())
    @settings(max_examples=200)
    def test_schubfach_only_random_byte_identical(self, v):
        eng = Engine(tier_order=("schubfach",), cache_size=0)
        base = Engine(tier_order=(), cache_size=0)
        assert eng.format(v) == base.format(v)

    def test_schubfach_only_never_bails(self):
        eng = Engine(tier_order=("schubfach",), cache_size=0)
        vals = [v.to_float() for v in corpus64()]
        eng.format_many(vals)
        s = eng.stats()
        assert s["tier2_calls"] == 0
        assert s["schubfach_hits"] == s["conversions"]

    def test_lemire_only_reader_identity(self):
        eng = ReadEngine(tier_order=("lemire",), cache_size=0)
        texts = ["0.1", "1.5", "6.02214076e23", "2.2250738585072014e-308",
                 "1.7976931348623157e308", "9007199254740993",
                 "123456789.123456789", "5e-324"]
        texts += [repr(v.to_float())
                  for v in uniform_random(200, seed=17)]
        for txt in texts:
            assert eng.read(txt) == read_decimal(txt, BINARY64, NE), txt
        s = eng.stats()
        assert s["read_tier2_calls"] == 0
        assert s["read_lemire_hits"] > 0

    def test_lemire_lane_handles_past_certified_digits(self):
        # 18 and 19 significant digits exceed binary64's certified
        # bound (17) but are still untruncated, so the lane resolves
        # them (the exact-midpoint comparison covers what the proof
        # window alone does not) — and still correctly.
        eng = ReadEngine(tier_order=("lemire",), cache_size=0)
        for txt in ("1.234567890123456789", "874.5678901234567895e-3"):
            assert eng.read(txt) == read_decimal(txt, BINARY64, NE)
        s = eng.stats()
        assert s["read_lemire_hits"] == 2
        assert s["read_tier2_calls"] == 0

    def test_lemire_lane_defers_truncated_literals(self):
        # 21 significant digits truncate to a sticky 19-digit prefix;
        # the lane must not fire on sticky input, and with no other
        # lane in the order the conversion falls through to tier 2.
        eng = ReadEngine(tier_order=("lemire",), cache_size=0)
        txt = "1.23456789012345678901"
        assert eng.read(txt) == read_decimal(txt, BINARY64, NE)
        s = eng.stats()
        assert s["read_tier2_calls"] == 1
        assert s["read_lemire_hits"] == 0


class TestBailRate:
    """Satellite: the derived ``bail_rate`` summary in ``stats()``."""

    def test_formula_pinned(self):
        eng = Engine(cache_size=0)
        vals = [v.to_float() for v in corpus64()]
        eng.format_many(vals)
        eng.read_many([repr(x) for x in vals])
        s = eng.stats()
        wd = (s["tier0_hits"] + s["tier1_hits"] + s["schubfach_hits"]
              + s["tier2_calls"])
        rd = (s["read_tier0_hits"] + s["read_tier1_hits"]
              + s["read_lemire_hits"] + s["read_tier2_calls"])
        assert s["bail_rate"]["write"] == pytest.approx(
            s["tier2_calls"] / wd)
        assert s["bail_rate"]["read"] == pytest.approx(
            s["read_tier2_calls"] / rd)

    def test_zero_denominator_is_zero(self):
        s = Engine(cache_size=0).stats()
        assert s["bail_rate"] == {"write": 0.0, "read": 0.0}

    def test_exact_only_rate_is_one(self):
        eng = Engine(tier_order=(), cache_size=0)
        eng.format_many([0.1, 1.5, 2.5])
        assert eng.stats()["bail_rate"]["write"] == 1.0

    def test_schubfach_only_rate_is_zero(self):
        eng = Engine(tier_order=("schubfach",), cache_size=0)
        eng.format_many([0.1, 1.5, 2.5])
        assert eng.stats()["bail_rate"]["write"] == 0.0
