"""Satellite: batch-API edge cases — empty batches, memo-disabled
engines, and batches larger than the memo.

The contracts under test:

* an empty batch returns ``[]`` without touching shared state (zero
  lock acquisitions);
* a memo-disabled engine runs the whole batch lock-free and takes
  exactly one acquisition (the counter flush);
* a batch larger than the memo installs only the tail the equivalent
  sequential calls would have left behind, and never grows the memo
  past its bound;
* intra-batch duplicates are deduplicated against the batch-local
  pending set and counted as cache hits.
"""

import random

from repro.engine import Engine, ReadEngine


class CountingLock:
    """A context-manager lock proxy that tallies acquisitions."""

    def __init__(self, inner):
        self.inner = inner
        self.acquisitions = 0

    def __enter__(self):
        self.acquisitions += 1
        return self.inner.__enter__()

    def __exit__(self, *exc):
        return self.inner.__exit__(*exc)

    def acquire(self, *a, **kw):
        self.acquisitions += 1
        return self.inner.acquire(*a, **kw)

    def release(self):
        return self.inner.release()


def _vals(n, seed=1):
    rng = random.Random(seed)
    return [rng.uniform(-1e9, 1e9) for _ in range(n)]


def _count_locks(obj):
    proxy = CountingLock(obj._lock)
    obj._lock = proxy
    return proxy


class TestEmptyBatches:
    def test_format_many_empty_no_lock(self):
        eng = Engine()
        proxy = _count_locks(eng)
        assert eng.format_many([]) == []
        assert eng.format_many(iter([])) == []
        assert proxy.acquisitions == 0

    def test_format_many_empty_general_path(self):
        eng = Engine()
        assert eng.format_many([], base=16) == []

    def test_read_many_empty_no_lock(self):
        eng = ReadEngine()
        proxy = _count_locks(eng)
        assert eng.read_many([]) == []
        assert eng.read_many(iter([])) == []
        assert proxy.acquisitions == 0

    def test_empty_batches_leave_stats_untouched(self):
        eng = Engine()
        eng.format_many([])
        eng.read_many([])
        assert eng.stats()["conversions"] == 0
        assert eng.stats()["read_conversions"] == 0


class TestMemoDisabled:
    def test_format_many_single_flush_acquisition(self):
        eng = Engine(cache_size=0)
        vals = _vals(100)
        eng.format_many(vals)  # warm context interning + tables
        proxy = _count_locks(eng)
        out = eng.format_many(vals)
        assert proxy.acquisitions == 1
        assert out == [repr(v) for v in vals]
        assert eng.stats()["cache_hits"] == 0
        assert eng.stats()["cache_entries"] == 0

    def test_read_many_single_flush_acquisition(self):
        eng = ReadEngine(cache_size=0)
        texts = [repr(v) for v in _vals(100)]
        eng.read_many(texts)  # warm context interning + tables
        proxy = _count_locks(eng)
        out = eng.read_many(texts)
        assert proxy.acquisitions == 1
        assert [v.to_float() for v in out] == [float(t) for t in texts]
        assert eng.stats()["read_cache_hits"] == 0

    def test_results_match_memoized_engine(self):
        plain = Engine(cache_size=0)
        memo = Engine(cache_size=4096)
        vals = _vals(500, seed=9)
        assert plain.format_many(vals) == memo.format_many(vals)


class TestOversizedBatches:
    def test_format_many_keeps_only_the_tail(self):
        eng = Engine(cache_size=8)
        vals = _vals(64, seed=3)
        eng.format_many(vals)
        assert eng.stats()["cache_entries"] <= 8
        eng.reset_stats()
        eng.format_many(vals[-8:])
        s = eng.stats()
        assert s["cache_hits"] == 8
        assert s["cache_misses"] == 0
        # The evicted head misses again.
        eng.reset_stats()
        eng.format_many(vals[:1])
        assert eng.stats()["cache_misses"] == 1

    def test_read_many_keeps_only_the_tail(self):
        eng = ReadEngine(cache_size=8)
        texts = [repr(v) for v in _vals(64, seed=4)]
        eng.read_many(texts)
        assert len(eng._cache) <= 8
        eng.reset_stats()
        eng.read_many(texts[-8:])
        s = eng.stats()
        assert s["read_cache_hits"] == 8
        assert s["read_cache_misses"] == 0

    def test_memo_never_exceeds_bound_under_stream(self):
        eng = Engine(cache_size=16)
        for i in range(10):
            eng.format_many(_vals(50, seed=i))
            assert eng.stats()["cache_entries"] <= 16


class TestIntraBatchDuplicates:
    def test_duplicates_hit_the_pending_set(self):
        eng = Engine(cache_size=64)
        out = eng.format_many([0.1] * 10)
        assert out == ["0.1"] * 10
        s = eng.stats()
        assert s["cache_misses"] == 1
        assert s["cache_hits"] == 9
        assert s["conversions"] == 10

    def test_duplicate_results_identical_objects(self):
        eng = Engine()
        a, b = eng.format_many([1.2345678e17] * 2)
        assert a == b
