"""FormatTables: precomputed powers, table-backed scaling, sharing."""

import pytest
from hypothesis import given, settings

from helpers import positive_flonums
from repro.core.boundaries import adjust_for_mode, initial_scaled_value
from repro.core.rounding import ReaderMode
from repro.core.scaling import scale_estimate
from repro.engine.tables import FormatTables, clear_tables, tables_for
from repro.errors import RangeError
from repro.fastpath.diyfp import cached_power_for_binary_exponent
from repro.floats.formats import BINARY32, BINARY64, BINARY128, X87_80
from repro.floats.model import Flonum


class TestPowers:
    @pytest.mark.parametrize("fmt", [BINARY32, BINARY64, BINARY128])
    def test_power_table_contents(self, fmt):
        t = tables_for(fmt, 10)
        assert t.powers[0] == 1
        for k in (1, 2, t.power_limit // 2, t.power_limit):
            assert t.powers[k] == 10**k
            assert t.power(k) == 10**k

    def test_power_limit_covers_format_range(self):
        # binary128's most extreme values need ~5000 decimal digits of
        # scaling; the eager table must cover the estimator's whole
        # reachable range so the hot path never falls off it.
        t = tables_for(BINARY128, 10)
        assert t.power_limit >= 4980
        t64 = tables_for(BINARY64, 10)
        assert 330 <= t64.power_limit <= 350

    def test_out_of_range_falls_back(self):
        t = tables_for(BINARY64, 10)
        assert t.power(t.power_limit + 7) == 10 ** (t.power_limit + 7)

    def test_bad_base_rejected(self):
        with pytest.raises(RangeError):
            FormatTables(BINARY64, 1)
        with pytest.raises(RangeError):
            FormatTables(BINARY64, 37)


class TestGrisuPowers:
    def test_eligibility(self):
        assert tables_for(BINARY64, 10).grisu_ok
        assert tables_for(BINARY32, 10).grisu_ok
        assert not tables_for(BINARY64, 16).grisu_ok  # only decimal
        assert not tables_for(BINARY128, 10).grisu_ok  # 113 > 62 bits
        assert not tables_for(X87_80, 10).grisu_ok  # 64 > 62 bits

    def test_entries_match_search(self):
        t = tables_for(BINARY64, 10)
        for we in (t.grisu_e_min, -63, -40, 0, 200,
                   t.grisu_e_min + len(t.grisu_powers) - 1):
            cf, ce, mk = t.grisu_powers[we - t.grisu_e_min]
            power, mk_ref, _exact = cached_power_for_binary_exponent(we)
            assert (cf, ce, mk) == (power.f, power.e, mk_ref)

    def test_covers_every_normalized_exponent(self):
        t = tables_for(BINARY64, 10)
        # Smallest: denormal f=1 at min_e normalizes 63 places down;
        # largest: full mantissa at max_e.
        assert t.grisu_e_min == BINARY64.min_e + 1 - 64
        assert (t.grisu_e_min + len(t.grisu_powers) - 1
                == BINARY64.max_e + BINARY64.precision - 64)


class TestScale:
    @given(positive_flonums())
    @settings(max_examples=250)
    def test_matches_scale_estimate(self, v):
        """The table-backed scaler is the estimator, bit for bit."""
        t = tables_for(BINARY64, 10)
        for mode in (ReaderMode.NEAREST_EVEN, ReaderMode.TOWARD_POSITIVE):
            r, s, mp, mm = initial_scaled_value(v)
            sv = adjust_for_mode(v, r, s, mp, mm, mode)
            r2, s2, mp2, mm2 = initial_scaled_value(v)
            sv2 = adjust_for_mode(v, r2, s2, mp2, mm2, mode)
            assert t.scale(sv, 10, v) == scale_estimate(sv2, 10, v)

    @given(positive_flonums(BINARY128))
    @settings(max_examples=60)
    def test_matches_scale_estimate_binary128(self, v):
        t = tables_for(BINARY128, 10)
        r, s, mp, mm = initial_scaled_value(v)
        sv = adjust_for_mode(v, r, s, mp, mm, ReaderMode.NEAREST_UNKNOWN)
        r2, s2, mp2, mm2 = initial_scaled_value(v)
        sv2 = adjust_for_mode(v, r2, s2, mp2, mm2,
                              ReaderMode.NEAREST_UNKNOWN)
        assert t.scale(sv, 10, v) == scale_estimate(sv2, 10, v)

    def test_base_36(self):
        t = tables_for(BINARY64, 36)
        v = Flonum.from_float(123.456)
        r, s, mp, mm = initial_scaled_value(v)
        sv = adjust_for_mode(v, r, s, mp, mm, ReaderMode.NEAREST_EVEN)
        r2, s2, mp2, mm2 = initial_scaled_value(v)
        sv2 = adjust_for_mode(v, r2, s2, mp2, mm2, ReaderMode.NEAREST_EVEN)
        assert t.scale(sv, 36, v) == scale_estimate(sv2, 36, v)


class TestSharing:
    def test_same_instance_returned(self):
        a = tables_for(BINARY64, 10)
        b = tables_for(BINARY64, 10)
        assert a is b
        assert tables_for(BINARY64, 16) is not a

    def test_clear_tables(self):
        a = tables_for(BINARY64, 10)
        clear_tables()
        b = tables_for(BINARY64, 10)
        assert a is not b
