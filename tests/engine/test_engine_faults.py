"""Engine guard rails: an unexpected exception in a fast tier falls
back to the exact tier (counted in ``tier_faults``), byte-identically;
``strict=True`` re-raises it for CI."""

import pytest

from repro import faults
from repro.engine.engine import Engine
from repro.engine.reader import ReadEngine
from repro.errors import ParseError
from repro.floats.formats import BINARY64
from repro.workloads.corpus import uniform_random

VALUES = [v for v in uniform_random(300, seed=17, signed=True)
          if v.is_finite and not v.is_zero]
ORACLE = Engine()
WANT = [ORACLE.format(v, fmt=BINARY64) for v in VALUES]


@pytest.fixture(autouse=True)
def _disarmed():
    yield
    faults.disarm()


class TestFormatGuardRails:
    @pytest.mark.parametrize("site", ["engine.tier0", "engine.tier1"])
    def test_tier_fault_heals_byte_identically(self, site):
        eng = Engine()
        plan = faults.FaultPlan(
            [faults.FaultSpec(site, rate=0.2, limit=None)], seed=3)
        with faults.armed(plan):
            got = [eng.format(v, fmt=BINARY64) for v in VALUES]
        assert got == WANT
        fired = plan.fired.get(site, 0)
        assert fired > 0
        assert eng.stats()["tier_faults"] == fired

    def test_batch_path_heals(self):
        eng = Engine()
        plan = faults.FaultPlan(
            [faults.FaultSpec("engine.tier1", rate=0.2, limit=None)],
            seed=5)
        with faults.armed(plan):
            got = eng.format_many(VALUES, fmt=BINARY64)
        assert got == WANT
        assert eng.stats()["tier_faults"] == \
            plan.fired.get("engine.tier1", 0)

    def test_counted_path_heals(self):
        eng = Engine()
        want = [eng.format_fixed(v, ndigits=8) for v in VALUES]
        eng = Engine()
        plan = faults.FaultPlan(
            [faults.FaultSpec("engine.counted", rate=0.2, limit=None)],
            seed=7)
        with faults.armed(plan):
            got = [eng.format_fixed(v, ndigits=8) for v in VALUES]
        assert got == want
        fired = plan.fired.get("engine.counted", 0)
        assert fired > 0
        assert eng.stats()["tier_faults"] == fired

    def test_strict_engine_reraises(self):
        eng = Engine(strict=True)
        plan = faults.FaultPlan(
            [faults.FaultSpec("engine.tier0", at=(0,)),
             faults.FaultSpec("engine.tier1", at=(0,))])
        with faults.armed(plan):
            with pytest.raises(faults.InjectedFault):
                for v in VALUES:
                    eng.format(v, fmt=BINARY64)

    def test_disarmed_engine_counts_no_faults(self):
        eng = Engine()
        for v in VALUES[:32]:
            eng.format(v, fmt=BINARY64)
        assert eng.stats()["tier_faults"] == 0


class TestReaderGuardRails:
    def test_read_fault_heals_byte_identically(self):
        eng = ReadEngine()
        want = [eng.read(t, BINARY64).to_bits() for t in WANT]
        eng = ReadEngine()
        plan = faults.FaultPlan(
            [faults.FaultSpec("reader.tier0", rate=0.1, limit=None),
             faults.FaultSpec("reader.tier1", rate=0.1, limit=None)],
            seed=9)
        with faults.armed(plan):
            got = [eng.read(t, BINARY64).to_bits() for t in WANT]
        assert got == want
        fired = sum(plan.fired.values())
        assert fired > 0
        assert eng.stats()["read_tier_faults"] == fired

    def test_read_many_heals(self):
        eng = ReadEngine()
        want = [v.to_bits() for v in eng.read_many(WANT, BINARY64)]
        eng = ReadEngine()
        plan = faults.FaultPlan(
            [faults.FaultSpec("reader.tier1", rate=0.2, limit=None)],
            seed=13)
        with faults.armed(plan):
            got = [v.to_bits() for v in eng.read_many(WANT, BINARY64)]
        assert got == want
        assert eng.stats()["read_tier_faults"] == \
            plan.fired.get("reader.tier1", 0)

    def test_strict_reader_reraises(self):
        eng = ReadEngine(strict=True)
        plan = faults.FaultPlan(
            [faults.FaultSpec("reader.tier0", at=(0,)),
             faults.FaultSpec("reader.tier1", at=(0,))])
        with faults.armed(plan):
            with pytest.raises(faults.InjectedFault):
                for t in WANT:
                    eng.read(t, BINARY64)

    def test_parse_error_is_not_healed(self):
        # ReproError is a deliberate signal, not a fault: the guard
        # rail must let it through even with a plan armed.
        eng = ReadEngine()
        plan = faults.FaultPlan([
            faults.FaultSpec("reader.tier1", rate=0.0, limit=None)])
        with faults.armed(plan):
            with pytest.raises(ParseError):
                eng.read("not-a-number", BINARY64)
        assert eng.stats()["read_tier_faults"] == 0


class TestFaultPlanDeterminism:
    def test_same_seed_fires_identically(self):
        def run(seed):
            eng = Engine()
            plan = faults.FaultPlan(
                [faults.FaultSpec("engine.tier1", rate=0.15, limit=None)],
                seed=seed)
            with faults.armed(plan):
                for v in VALUES:
                    eng.format(v, fmt=BINARY64)
            return plan.fired.get("engine.tier1", 0)

        assert run(21) == run(21)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            faults.FaultSpec("engine.tier0", kind="crash")
        with pytest.raises(ValueError):
            faults.FaultSpec("pool.format_shard", kind="meltdown")
        with pytest.raises(ValueError):
            faults.FaultSpec("no.such.site")

    def test_limit_caps_firings(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec("engine.tier0", at=None, rate=0.0, limit=2)])
        hits = 0
        for _ in range(10):
            try:
                plan.fire("engine.tier0")
            except faults.InjectedFault:
                hits += 1
        assert hits == 2
        assert plan.total_fired() == 2

    def test_armed_restores_previous_plan(self):
        outer = faults.FaultPlan([])
        inner = faults.FaultPlan([])
        with faults.armed(outer):
            with faults.armed(inner):
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is None
