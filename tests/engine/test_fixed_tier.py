"""Satellite: the fixed-format fast tier is byte-identical to the exact
paths across formats, modes, and `#`-mark (denormal) territory.

Property-tested with hypothesis over raw ``(f, e)`` components so the
denormal range, the format boundaries, and the ties all get sampled, for
binary16/32/64 in both absolute- and relative-position modes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive_fixed import exact_fixed_digits
from repro.core.fixed import fixed_digits as exact_paper_fixed
from repro.core.rounding import TieBreak
from repro.engine import Engine
from repro.engine.counted import MAX_COUNTED_DIGITS, counted_tier_digits
from repro.engine.tables import tables_for
from repro.floats.formats import BINARY16, BINARY32, BINARY64
from repro.floats.model import Flonum
from repro.workloads.corpus import denormals, uniform_random
from repro.workloads.schryer import corpus as schryer_corpus

FORMATS = {"binary16": BINARY16, "binary32": BINARY32, "binary64": BINARY64}


def flonums(fmt):
    """Canonical positive finite Flonums of ``fmt`` (denormals included)."""
    def build(f, e):
        if f < fmt.hidden_limit:
            e = fmt.min_e  # denormals only exist at the minimum exponent
        return Flonum.finite(0, f, e, fmt)

    return st.builds(
        build,
        st.integers(min_value=1, max_value=fmt.mantissa_limit - 1),
        st.integers(min_value=fmt.min_e, max_value=fmt.max_e),
    )


class TestCountedTierCertification:
    """Direct tier calls: every acceptance equals the exact division."""

    @pytest.mark.parametrize("fmt", FORMATS.values(), ids=FORMATS.keys())
    def test_relative_uniform(self, fmt):
        tables = tables_for(fmt, 10)
        for v in uniform_random(300, fmt=fmt, seed=11):
            for nd in (1, 3, 7, 13, 17):
                got = counted_tier_digits(v.f, v.e, tables.grisu_powers,
                                          tables.grisu_e_min, ndigits=nd)
                if got is None:
                    continue
                acc, count, k = got
                want = exact_fixed_digits(v, ndigits=nd)
                assert count == nd
                assert (k, str(acc)) == (
                    want.k, "".join(str(d) for d in want.digits))

    def test_max_digits_bailout(self):
        tables = tables_for(BINARY64, 10)
        v = uniform_random(1, seed=5)[0]
        assert counted_tier_digits(
            v.f, v.e, tables.grisu_powers, tables.grisu_e_min,
            ndigits=MAX_COUNTED_DIGITS + 1) is None

    def test_exact_decimal_tie_bails(self):
        # 0.125 at 2 significant digits is an exact tie (12.5): the tier
        # must decline rather than pick a side.
        v = Flonum.from_float(0.125)
        tables = tables_for(BINARY64, 10)
        assert counted_tier_digits(v.f, v.e, tables.grisu_powers,
                                   tables.grisu_e_min, ndigits=2) is None


class TestEngineCountedAgreement:
    """Engine route (printf semantics) vs the exact integer division."""

    @pytest.mark.parametrize("fmt", FORMATS.values(), ids=FORMATS.keys())
    @settings(max_examples=300, deadline=None)
    @given(data=st.data(), nd=st.integers(min_value=1, max_value=20))
    def test_relative(self, fmt, data, nd):
        v = data.draw(flonums(fmt))
        eng = Engine()
        got = eng.counted_digits(v, ndigits=nd, fmt=fmt)
        want = exact_fixed_digits(v, ndigits=nd)
        assert (got.k, got.digits) == (want.k, want.digits)

    @pytest.mark.parametrize("fmt", FORMATS.values(), ids=FORMATS.keys())
    @settings(max_examples=300, deadline=None)
    @given(data=st.data(), pos=st.integers(min_value=-25, max_value=10))
    def test_absolute(self, fmt, data, pos):
        v = data.draw(flonums(fmt))
        eng = Engine()
        got = eng.counted_digits(v, position=pos, fmt=fmt)
        want = exact_fixed_digits(v, position=pos)
        assert (got.k, got.digits) == (want.k, want.digits)

    def test_ties_all_strategies(self):
        # Exact decimal ties must respect the tie strategy byte-for-byte
        # (the fast tier bails there; this checks the routing keeps the
        # strategy intact through the fallback).
        eng = Engine()
        for x in (0.125, 0.375, 2.5, 0.5, 1048576.0):
            v = Flonum.from_float(x)
            for nd in (1, 2, 3):
                for tie in TieBreak:
                    got = eng.counted_digits(v, ndigits=nd, tie=tie)
                    want = exact_fixed_digits(v, ndigits=nd, tie=tie)
                    assert (got.k, got.digits) == (want.k, want.digits), \
                        (x, nd, tie)


class TestEnginePaperFixedAgreement:
    """Engine route (Section 4 semantics, ``#`` marks) vs core/fixed."""

    @pytest.mark.parametrize("fmt", FORMATS.values(), ids=FORMATS.keys())
    @settings(max_examples=300, deadline=None)
    @given(data=st.data(), nd=st.integers(min_value=1, max_value=20))
    def test_relative(self, fmt, data, nd):
        v = data.draw(flonums(fmt))
        eng = Engine()
        got = eng.fixed_digits(v, ndigits=nd, fmt=fmt)
        want = exact_paper_fixed(v, ndigits=nd)
        assert got == want

    @pytest.mark.parametrize("fmt", FORMATS.values(), ids=FORMATS.keys())
    @settings(max_examples=300, deadline=None)
    @given(data=st.data(), pos=st.integers(min_value=-30, max_value=10))
    def test_absolute(self, fmt, data, pos):
        v = data.draw(flonums(fmt))
        eng = Engine()
        got = eng.fixed_digits(v, position=pos, fmt=fmt)
        want = exact_paper_fixed(v, position=pos)
        assert got == want

    @pytest.mark.parametrize("fmt", FORMATS.values(), ids=FORMATS.keys())
    def test_denormal_hash_positions(self, fmt):
        # Denormals are where insignificant trailing positions (# marks)
        # appear: the tier must either bail or agree, and the engine
        # result must carry identical hash counts.
        eng = Engine()
        for v in denormals(fmt, count=48):
            for pos in (v.e - 2, -8, -4, 0):
                got = eng.fixed_digits(v, position=pos, fmt=fmt)
                want = exact_paper_fixed(v, position=pos)
                assert got == want, (v, pos)
            for nd in (2, 5, 12, 20):
                got = eng.fixed_digits(v, ndigits=nd, fmt=fmt)
                want = exact_paper_fixed(v, ndigits=nd)
                assert got == want, (v, nd)

    def test_schryer_hard_cases(self):
        eng = Engine()
        for v in schryer_corpus(150):
            for nd in (3, 9, 17):
                assert (eng.fixed_digits(v, ndigits=nd)
                        == exact_paper_fixed(v, ndigits=nd))

    def test_tie_strategies_fixed(self):
        eng = Engine()
        for x in (0.125, 2.5, 0.0625):
            v = Flonum.from_float(x)
            for tie in TieBreak:
                got = eng.fixed_digits(v, ndigits=2, tie=tie)
                want = exact_paper_fixed(v, ndigits=2, tie=tie)
                assert got == want, (x, tie)

    def test_fixed_tier_disabled_matches(self):
        slow = Engine(fixed_tier1=False)
        fast = Engine()
        for v in uniform_random(120, seed=23):
            for nd in (4, 8):
                assert (slow.fixed_digits(v, ndigits=nd)
                        == fast.fixed_digits(v, ndigits=nd))
                assert (slow.counted_digits(v, ndigits=nd)
                        == fast.counted_digits(v, ndigits=nd))
