"""The tiered read engine: routing, certification, memo, stats, threads."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rounding import ReaderMode
from repro.engine import READ_STAT_KEYS, STAT_KEYS, Engine, ReadEngine
from repro.engine.reader import _decimal_digits, read_many
from repro.errors import ParseError, RangeError
from repro.floats.formats import (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    X87_80,
)
from repro.floats.model import Flonum
from repro.reader.exact import read_decimal
from repro.reader.parse import _scan_decimal, parse_decimal

NARROW_FORMATS = [BINARY16, BINARY32, BINARY64]
ALL_FORMATS = NARROW_FORMATS + [BINARY128, X87_80]


def _same(a: Flonum, b: Flonum) -> bool:
    """Bit-identity, signed zeros and NaN included."""
    if a.is_nan or b.is_nan:
        return a.is_nan and b.is_nan
    return a == b and a.sign == b.sign


# A corpus crossing every routing decision: exact-power window, interval
# tier, truncation, clamps, specials, signs, '#' marks, whitespace.
CORPUS = [
    "0", "-0", "1", "-1", "1.5", "0.1", "3.141592653589793", "255",
    "1e23", "9007199254740993", "6.1e-5", "65504", "65520", "3.4e38",
    "2.2250738585072014e-308", "1.7976931348623157e308", "5e-324",
    "4.9e-324", "2.47e-324", "1e400", "-1e400", "1e-999999", "-1e-400",
    "12345678901234567890123456789e-40", "123456789012345678901e-21",
    "9" * 40 + "e-60", "1" + "0" * 30, "0.0000000001",
    "nan", "inf", "-inf", "+inf", "  1.5  ", "1.2##e2", "1##",
    "7.038531e-26", "1.00000017881393432617187499e0",
]


class TestTierRouting:
    def test_tier_attribution_binary64(self):
        eng = ReadEngine()
        want = {
            "1.5": "tier0", "1e23": "tier0", "1e400": "tier0",
            "1e-999999": "tier0",
            "2.2250738585072014e-308": "tier1", "5e-324": "tier1",
            "1.7976931348623157e308": "tier1",
            "12345678901234567890123456789e-40": "tier1",
            "-0": "special", "nan": "special", "-inf": "special",
        }
        for text, tier in want.items():
            assert eng.read_result(text).tier == tier, text

    def test_generic_tier0_serves_narrow_formats(self):
        eng = ReadEngine()
        assert eng.read_result("1.5", BINARY16).tier == "tier0"
        assert eng.read_result("65504", BINARY32).tier == "tier0"
        # Overflow clamp settles without building 10**q.
        assert eng.read_result("1e10", BINARY16).tier == "tier0"
        assert eng.read_result("1e10", BINARY16).value.is_infinite

    def test_directed_modes_always_exact(self):
        eng = ReadEngine()
        for mode in (ReaderMode.TOWARD_ZERO, ReaderMode.TOWARD_POSITIVE,
                     ReaderMode.TOWARD_NEGATIVE):
            r = eng.read_result("1.5", BINARY64, mode)
            assert r.tier == "tier2"
            assert _same(r.value, read_decimal("1.5", BINARY64, mode))

    def test_wide_formats_always_exact(self):
        eng = ReadEngine()
        for fmt in (BINARY128, X87_80):
            r = eng.read_result("3.14", fmt)
            assert r.tier == "tier2"
            assert _same(r.value, read_decimal("3.14", fmt))

    def test_disabled_tiers_fall_through(self):
        eng = ReadEngine(tier0=False, tier1=False, cache_size=0)
        for text in ("1.5", "1e23", "5e-324"):
            r = eng.read_result(text)
            assert r.tier == "tier2"
            assert _same(r.value, read_decimal(text))
        stats = eng.stats()
        assert stats["read_tier0_hits"] == 0
        assert stats["read_tier1_hits"] == 0
        assert stats["read_tier2_calls"] == 3

    def test_rejects_negative_cache_size(self):
        with pytest.raises(RangeError):
            ReadEngine(cache_size=-1)


class TestDifferentialVsExactReader:
    @pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
    def test_corpus_matches_read_decimal(self, fmt):
        eng = ReadEngine(cache_size=0)
        for text in CORPUS:
            assert _same(eng.read(text, fmt), read_decimal(text, fmt)), (
                fmt.name, text)

    @pytest.mark.parametrize("fmt", NARROW_FORMATS, ids=lambda f: f.name)
    def test_every_mode_matches(self, fmt):
        eng = ReadEngine(cache_size=0)
        for mode in ReaderMode:
            for text in ("1.5", "0.1", "6.1e-5", "9" * 25 + "e-30",
                         "-3.077e-3"):
                assert _same(eng.read(text, fmt, mode),
                             read_decimal(text, fmt, mode)), (
                    fmt.name, mode, text)

    @given(st.integers(min_value=0, max_value=10**25),
           st.integers(min_value=-345, max_value=330),
           st.booleans())
    @settings(max_examples=300)
    def test_random_literals_binary64(self, d, q, neg):
        text = f"{'-' if neg else ''}{d}e{q}"
        eng = ReadEngine(cache_size=0)
        got = eng.read(text)
        assert _same(got, read_decimal(text))
        if abs(q) < 300:  # host parses without under/overflow surprises
            assert _same(got, Flonum.from_float(float(text)))

    @given(st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=-60, max_value=50))
    @settings(max_examples=200)
    def test_random_literals_binary16_32(self, d, q):
        text = f"{d}e{q}"
        eng = ReadEngine(cache_size=0)
        for fmt in (BINARY16, BINARY32):
            assert _same(eng.read(text, fmt), read_decimal(text, fmt)), (
                fmt.name, text)


class TestSignedZeros:
    def test_negative_zero_literals(self):
        eng = ReadEngine()
        for text in ("-0", "-0.0", "-0e99", "-0.000e-2"):
            v = eng.read(text)
            assert v.is_zero and v.is_negative, text

    def test_negative_underflow_keeps_sign(self):
        eng = ReadEngine()
        for text, fmt in (("-1e-400", BINARY64), ("-1e-999999", BINARY64),
                          ("-1e-20", BINARY16), ("-2.4e-324", BINARY64)):
            v = eng.read(text, fmt)
            assert v.is_zero and v.is_negative, (text, fmt.name)

    def test_positive_zero_stays_positive(self):
        eng = ReadEngine()
        for text in ("0", "+0.0", "1e-999999"):
            v = eng.read(text)
            assert v.is_zero and not v.is_negative, text


class TestMemo:
    def test_second_read_is_memo(self):
        eng = ReadEngine()
        first = eng.read_result("1.5")
        again = eng.read_result("1.5")
        assert first.tier == "tier0" and again.tier == "memo"
        assert _same(first.value, again.value)
        stats = eng.stats()
        assert stats["read_cache_hits"] == 1
        assert stats["read_cache_misses"] == 1

    def test_contexts_do_not_collide(self):
        eng = ReadEngine()
        a = eng.read("1e-10", BINARY64)
        b = eng.read("1e-10", BINARY32)
        assert a.fmt.precision != b.fmt.precision
        assert eng.read_result("1e-10", BINARY64).tier == "memo"
        assert _same(eng.read("1e-10", BINARY64), a)

    def test_lru_evicts_oldest_first(self):
        eng = ReadEngine(cache_size=2)
        eng.read("1.5")
        eng.read("2.5")
        eng.read("1.5")          # refresh: 2.5 is now the oldest
        eng.read("3.5")          # evicts 2.5
        assert eng.read_result("1.5").tier == "memo"
        assert eng.read_result("2.5").tier != "memo"

    def test_clear_cache(self):
        eng = ReadEngine()
        eng.read("1.5")
        eng.clear_cache()
        assert eng.read_result("1.5").tier != "memo"

    def test_cache_size_zero_disables(self):
        eng = ReadEngine(cache_size=0)
        eng.read("1.5")
        assert eng.read_result("1.5").tier == "tier0"
        assert eng.stats()["read_cache_hits"] == 0


class TestReadMany:
    def test_matches_singles(self):
        batch = ReadEngine(cache_size=0).read_many(CORPUS)
        singles = ReadEngine(cache_size=0)
        assert len(batch) == len(CORPUS)
        for text, got in zip(CORPUS, batch):
            assert _same(got, singles.read(text)), text

    def test_duplicates_hit_the_memo(self):
        eng = ReadEngine()
        eng.read_many(["1.5", "0.1"])  # warm: the first batch skips an
        out = eng.read_many(["1.5", "0.1"] * 50)  # empty-cache probe
        assert all(_same(a, b) for a, b in zip(out[:2], out[2:4]))
        assert eng.stats()["read_cache_hits"] == 100

    def test_memo_warm_across_batches(self):
        eng = ReadEngine()
        first = eng.read_many(CORPUS)
        hits_before = eng.stats()["read_cache_hits"]
        second = eng.read_many(CORPUS)
        assert eng.stats()["read_cache_hits"] > hits_before
        for a, b in zip(first, second):
            assert _same(a, b)

    def test_empty_batch(self):
        assert ReadEngine().read_many([]) == []

    def test_module_level_read_many(self):
        out = read_many(["1.5", "1e23"])
        assert _same(out[0], Flonum.from_float(1.5))
        assert _same(out[1], read_decimal("1e23"))


class TestParseErrors:
    @pytest.mark.parametrize("bad", ["", "abc", "1e", "--5", "1.2.3",
                                     "0x1p3", "1e+", "1.2#3e2", "e5"])
    def test_malformed_raises(self, bad):
        eng = ReadEngine()
        with pytest.raises(ParseError):
            eng.read(bad)
        with pytest.raises(ParseError):
            eng.read_many(["1.5", bad])

    def test_scan_agrees_with_parse_decimal(self):
        for text in CORPUS:
            scanned = _scan_decimal(text.strip())
            if scanned is None:
                continue  # specials, '#' marks: slow path territory
            sign, d, q = scanned
            parsed = parse_decimal(text.strip())
            assert parsed.special is None
            assert (parsed.sign, parsed.digits, parsed.exponent) == (
                sign, d, q), text

    @given(st.integers(min_value=0, max_value=10**30),
           st.integers(min_value=-200, max_value=200))
    @settings(max_examples=200)
    def test_scan_agrees_on_random_literals(self, d, q):
        text = f"{d}e{q}"
        sign, ds, qs = _scan_decimal(text)
        parsed = parse_decimal(text)
        assert (parsed.sign, parsed.digits, parsed.exponent) == (
            sign, ds, qs)


class TestDecimalDigits:
    def test_exhaustive_around_powers_of_ten(self):
        for k in range(20):
            p = 10**k
            for d in (p - 1, p, p + 1):
                if d > 0:
                    assert _decimal_digits(d) == len(str(d)), d

    def test_every_bit_length(self):
        for bits in range(1, 65):
            for d in (1 << (bits - 1), (1 << bits) - 1):
                assert _decimal_digits(d) == len(str(d)), d


class TestStatsSchema:
    def test_read_stat_keys_pinned(self):
        assert READ_STAT_KEYS == frozenset({
            "read_tier0_hits", "read_tier1_hits", "read_tier1_bailouts",
            "read_tier2_calls", "read_lemire_hits", "read_specials",
            "read_cache_hits", "read_cache_misses", "read_conversions",
            "read_tier_faults", "read_snapshot_faults",
        })

    def test_read_engine_stats_keys_exact(self):
        eng = ReadEngine()
        assert frozenset(eng.stats()) == READ_STAT_KEYS
        eng.read("1.5")
        assert frozenset(eng.stats()) == READ_STAT_KEYS

    def test_conversions_totals_every_resolution(self):
        eng = ReadEngine()
        for text in ("1.5", "1.5", "5e-324", "nan", "1e999"):
            eng.read(text)
        eng.read("2.5", BINARY128)  # tier2
        s = eng.stats()
        assert s["read_conversions"] == 6
        assert s["read_conversions"] == (
            s["read_tier0_hits"] + s["read_tier1_hits"]
            + s["read_lemire_hits"] + s["read_tier2_calls"]
            + s["read_specials"] + s["read_cache_hits"])

    def test_engine_stats_include_read_keys_before_reader_built(self):
        eng = Engine()
        stats = eng.stats()
        assert READ_STAT_KEYS <= frozenset(stats)
        assert all(stats[k] == 0 for k in READ_STAT_KEYS)

    def test_engine_reset_stats_preserves_key_set(self):
        eng = Engine()
        eng.format(0.1)
        eng.read("1.5")
        before = frozenset(eng.stats())
        assert before == STAT_KEYS | {"cache_entries"}
        eng.reset_stats()
        after = eng.stats()
        assert frozenset(after) == before
        for key in READ_STAT_KEYS:
            assert after[key] == 0, key


class TestEngineIntegration:
    def test_engine_read_matches_exact(self):
        eng = Engine()
        for text in CORPUS:
            assert _same(eng.read(text), read_decimal(text)), text

    def test_shared_memo_one_budget(self):
        eng = Engine(cache_size=4)
        assert eng.reader._cache is eng._cache
        eng.read_many([f"1e{k}" for k in range(10)])
        assert len(eng._cache) <= 4

    def test_text_and_float_keys_coexist(self):
        eng = Engine()
        eng.format(1.5)
        assert _same(eng.read("1.5"), Flonum.from_float(1.5))
        assert eng.format(1.5) == "1.5"
        assert eng.read_result("1.5").tier == "memo"

    def test_read_result_and_read_many_delegate(self):
        eng = Engine()
        assert eng.read_result("1e23").tier == "tier0"
        out = eng.read_many(["1.5", "2.5"])
        assert _same(out[1], Flonum.from_float(2.5))

    def test_concurrent_reads_and_formats(self):
        # Satellite regression: the memo is shared between directions
        # and mutated under one lock; racing both must neither corrupt
        # the LRU nor produce a wrong conversion.
        eng = Engine(cache_size=64)
        texts = [f"{k}.{k}e{k % 40}" for k in range(1, 200)]
        floats = [float(t) for t in texts]
        errors = []

        def read_loop():
            try:
                for _ in range(20):
                    for got, text in zip(eng.read_many(texts), texts):
                        if not _same(got, read_decimal(text)):
                            errors.append(("read", text))
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(("read-raised", repr(exc)))

        def format_loop():
            try:
                for _ in range(20):
                    for out, x in zip(eng.format_many(floats), floats):
                        if float(out) != x:
                            errors.append(("format", x))
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(("format-raised", repr(exc)))

        threads = [threading.Thread(target=read_loop) for _ in range(2)]
        threads += [threading.Thread(target=format_loop) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[:5]
        assert len(eng._cache) <= 64
