"""The Engine router: string agreement, batch API, memo, statistics."""

import threading

import pytest

from repro import format_many, format_shortest
from repro.core.rounding import ReaderMode, TieBreak
from repro.engine import Engine, default_engine
from repro.errors import RangeError
from repro.floats.formats import BINARY32, BINARY64, BINARY128
from repro.floats.model import Flonum
from repro.format.notation import NotationOptions
from repro.workloads.corpus import torture_floats, uniform_random
from repro.workloads.schryer import corpus as schryer_corpus


def exact(x, **kw):
    return format_shortest(x, engine=None, **kw)


@pytest.fixture()
def engine():
    return Engine()


class TestAgreement:
    """Satellite: every engine output byte-equals the exact path."""

    @pytest.mark.parametrize("mode", list(ReaderMode))
    def test_schryer_all_modes(self, engine, mode):
        floats = [v.to_float() for v in schryer_corpus(250)]
        floats += [-x for x in floats[:50]]
        expected = [exact(x, mode=mode) for x in floats]
        assert engine.format_many(floats, mode=mode) == expected
        assert [engine.format(x, mode=mode) for x in floats] == expected

    @pytest.mark.parametrize("tie", list(TieBreak))
    def test_uniform_random_ties(self, engine, tie):
        floats = [v.to_float() for v in uniform_random(400, seed=13)]
        expected = [exact(x, tie=tie) for x in floats]
        assert engine.format_many(floats, tie=tie) == expected

    def test_torture_and_specials(self, engine):
        xs = [f.to_float() for f in torture_floats()]
        xs += [0.0, -0.0, float("inf"), float("-inf"), float("nan"),
               1e23, -1e23, 5e-324, -5e-324, 1.0, -1.0]
        expected = [exact(x) for x in xs]
        assert engine.format_many(xs) == expected
        assert [engine.format(x) for x in xs] == expected

    def test_binary32_and_binary128(self, engine):
        for fmt in (BINARY32, BINARY128):
            vs = uniform_random(60, fmt=fmt, seed=3)
            for v in vs:
                assert engine.format(v) == exact(v)

    def test_int_inputs(self, engine):
        for n in (0, 1, -7, 10**15, 2**53):
            assert engine.format(n) == exact(n)
        assert engine.format_many([1, 2.5, -3]) == ["1", "2.5", "-3"]

    def test_default_engine_behind_format_shortest(self):
        eng = default_engine()
        before = eng.stats()["conversions"]
        assert format_shortest(0.1) == "0.1"
        assert eng.stats()["conversions"] == before + 1

    def test_format_many_module_function(self):
        xs = [0.1, 1e23, -2.5]
        assert format_many(xs) == [format_shortest(x) for x in xs]


class TestOptions:
    def test_custom_notation_options(self, engine):
        opts = NotationOptions(style="scientific", python_repr=True)
        for x in (0.1, 1234.5, -6e-9):
            assert engine.format(x, options=opts) == exact(x, options=opts)

    def test_special_spellings(self, engine):
        opts = NotationOptions(nan_text="NaN", inf_text="Infinity")
        assert engine.format(float("nan"), options=opts) == "NaN"
        assert engine.format(float("inf"), options=opts) == "Infinity"
        assert engine.format(float("-inf"), options=opts) == "-Infinity"
        got = engine.format_many(
            [float("nan"), float("-inf"), 1.5], options=opts)
        assert got == ["NaN", "-Infinity", "1.5"]

    def test_special_spellings_through_api(self):
        opts = NotationOptions(nan_text="NAN", inf_text="INF")
        assert format_shortest(float("nan"), options=opts) == "NAN"
        assert format_shortest(float("-inf"), options=opts) == "-INF"
        # The exact-only path honours them too (the old code ignored
        # opts for specials).
        assert exact(float("inf"), options=opts) == "INF"
        assert exact(float("nan"), options=opts) == "NAN"

    def test_python_repr_zero(self, engine):
        opts = NotationOptions(python_repr=True)
        assert engine.format(0.0, options=opts) == "0.0"
        assert engine.format(-0.0, options=opts) == "-0.0"

    def test_base_16(self, engine):
        v = Flonum.from_float(0.5)
        assert engine.format(0.5, base=16) == exact(0.5, base=16)
        assert engine.shortest_digits(v, base=16).base == 16


class TestShortestDigits:
    def test_matches_dragon(self, engine):
        from repro.core.dragon import shortest_digits

        for v in uniform_random(100, seed=21):
            got = engine.shortest_digits(v)
            ref = shortest_digits(v)
            assert (got.k, got.digits, got.base) == (ref.k, ref.digits,
                                                     ref.base)

    def test_rejects_nonpositive(self, engine):
        with pytest.raises(RangeError):
            engine.shortest_digits(0.0)
        with pytest.raises(RangeError):
            engine.shortest_digits(-1.5)
        with pytest.raises(RangeError):
            engine.shortest_digits(float("inf"))


class TestStatsAndCache:
    def test_tier_counters(self):
        eng = Engine()
        eng.format(3.0)  # tier 0
        eng.format(3.141592653589793)  # tier 1 (grisu-certifiable)
        s = eng.stats()
        assert s["tier0_hits"] == 1
        assert s["tier1_hits"] == 1
        assert s["conversions"] == 2
        eng.reset_stats()
        assert eng.stats()["conversions"] == 0

    def test_cache_hits(self):
        eng = Engine()
        eng.format(0.1)
        eng.format(0.1)
        # NEAREST_EVEN mirrors to itself, so -0.1 shares the entry.
        eng.format(-0.1)
        s = eng.stats()
        assert s["cache_hits"] == 2
        assert s["cache_misses"] == 1
        assert s["cache_entries"] == 1
        # An asymmetric mode keeps signs apart.
        eng.format(0.1, mode=ReaderMode.TOWARD_POSITIVE)
        eng.format(-0.1, mode=ReaderMode.TOWARD_POSITIVE)
        assert eng.stats()["cache_entries"] == 3

    def test_cache_is_bounded_lru(self):
        eng = Engine(cache_size=16)
        xs = [float(i) + 0.5 for i in range(64)]
        eng.format_many(xs)
        assert eng.stats()["cache_entries"] <= 16
        eng.clear_cache()
        assert eng.stats()["cache_entries"] == 0

    def test_cache_disabled(self):
        eng = Engine(cache_size=0)
        eng.format(0.1)
        eng.format(0.1)
        s = eng.stats()
        assert s["cache_hits"] == 0
        assert s["cache_entries"] == 0

    def test_tier2_only_engine(self):
        eng = Engine(tier0=False, tier1=False, cache_size=0)
        floats = [v.to_float() for v in uniform_random(50, seed=31)]
        assert eng.format_many(floats) == [exact(x) for x in floats]
        s = eng.stats()
        assert s["tier2_calls"] == s["conversions"] == 50
        assert s["tier0_hits"] == s["tier1_hits"] == 0

    def test_directed_modes_bypass_tier1(self):
        eng = Engine()
        floats = [v.to_float() for v in uniform_random(30, seed=41)]
        eng.format_many(floats, mode=ReaderMode.TOWARD_ZERO)
        assert eng.stats()["tier1_hits"] == 0

    def test_negative_cache_size_rejected(self):
        with pytest.raises(RangeError):
            Engine(cache_size=-1)

    def test_threaded_use(self):
        eng = Engine(cache_size=64)
        floats = [v.to_float() for v in uniform_random(200, seed=51)]
        expected = [exact(x) for x in floats]
        results = {}

        def work(tid):
            results[tid] = eng.format_many(floats)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for got in results.values():
            assert got == expected
        assert eng.stats()["cache_entries"] <= 64
