"""Warm-start snapshots: container robustness, memo/hot restore
correctness, the shared-memory hot plane, and the cross-format
memo-key regression the snapshot work surfaced.

The contract under test: a valid snapshot makes a fresh engine serve
byte-identical results faster; ANY defective snapshot — truncated,
bit-flipped, wrong version, foreign format set, torn mid-rewrite —
produces a counted fault and a cold (still correct) engine, never
wrong bytes and never a crash.
"""

import gc
import struct

import pytest

from repro.core.rounding import ReaderMode, TieBreak
from repro.engine import Engine
from repro.engine.snapshot import (
    _HEADER,
    SNAPSHOT_VERSION,
    HotPlane,
    Snapshot,
    apply_snapshot,
    bits_encoder,
    build_snapshot,
    hot_entries,
    load_snapshot,
    restore_tables,
    save_snapshot,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.errors import SnapshotError
from repro.floats.formats import BINARY32, BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.workloads.corpus import uniform_random

CORPUS = [v.to_float() for v in uniform_random(120, seed=7, signed=True)] \
    + [0.0, -0.0, float("inf"), float("-inf"), float("nan"), 5e-324, 0.1]


def donor_engine():
    """An engine whose memo holds CORPUS in both directions."""
    eng = Engine()
    texts = eng.format_many(CORPUS)
    eng.read_many(texts)
    return eng, texts


def make_snapshot(with_hot=True):
    eng, texts = donor_engine()
    hot = None
    if with_hot:
        flos = [Flonum.from_float(x) for x in CORPUS
                if x == x and abs(x) not in (0.0, float("inf"))]
        hot = hot_entries(flos, engine=eng)
    return build_snapshot(["binary64"], engine=eng, hot=hot), texts


class TestContainer:
    def test_bytes_round_trip(self):
        snap, _ = make_snapshot()
        blob = snapshot_to_bytes(snap)
        back = snapshot_from_bytes(blob)
        assert back.payload() == snap.payload()
        assert back.formats == ["binary64"]
        assert back.write_memo and back.read_memo and back.hot

    def test_file_round_trip(self, tmp_path):
        snap, _ = make_snapshot()
        path = tmp_path / "warm.snap"
        n = save_snapshot(snap, path)
        assert path.stat().st_size == n
        assert load_snapshot(path).payload() == snap.payload()

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "nope.snap")

    def test_truncated_header(self):
        snap, _ = make_snapshot(with_hot=False)
        blob = snapshot_to_bytes(snap)
        with pytest.raises(SnapshotError, match="truncated"):
            snapshot_from_bytes(blob[:_HEADER.size - 3])

    def test_truncated_payload(self):
        snap, _ = make_snapshot(with_hot=False)
        blob = snapshot_to_bytes(snap)
        with pytest.raises(SnapshotError, match="truncated"):
            snapshot_from_bytes(blob[:-5])

    def test_every_flipped_bit_in_payload_is_caught(self):
        # CRC32 catches any single-bit flip; sample a spread of them.
        snap, _ = make_snapshot(with_hot=False)
        blob = snapshot_to_bytes(snap)
        for pos in range(_HEADER.size, len(blob),
                         max(1, (len(blob) - _HEADER.size) // 16)):
            bad = bytearray(blob)
            bad[pos] ^= 0x10
            with pytest.raises(SnapshotError, match="CRC"):
                snapshot_from_bytes(bytes(bad))

    def test_bad_magic(self):
        snap, _ = make_snapshot(with_hot=False)
        bad = bytearray(snapshot_to_bytes(snap))
        bad[0] ^= 0xFF
        with pytest.raises(SnapshotError, match="magic"):
            snapshot_from_bytes(bytes(bad))

    def test_version_mismatch(self):
        snap, _ = make_snapshot(with_hot=False)
        blob = snapshot_to_bytes(snap)
        magic, _version, res, length, crc = _HEADER.unpack_from(blob)
        bad = _HEADER.pack(magic, SNAPSHOT_VERSION + 1, res, length, crc) \
            + blob[_HEADER.size:]
        with pytest.raises(SnapshotError, match="version"):
            snapshot_from_bytes(bad)

    def test_garbage_payload_with_valid_crc(self):
        # A CRC-consistent container whose payload is not our JSON must
        # still fail typed, not crash in json/zlib.
        payload = b"not zlib at all"
        import zlib
        blob = _HEADER.pack(b"RPRSNAP\x00", SNAPSHOT_VERSION, 0,
                            len(payload), zlib.crc32(payload)) + payload
        with pytest.raises(SnapshotError, match="malformed"):
            snapshot_from_bytes(blob)


class TestStaleness:
    def test_foreign_format_set_rejected(self):
        snap, _ = make_snapshot(with_hot=False)
        snap.tables["binary64"]["fingerprint"]["precision"] += 1
        with pytest.raises(SnapshotError, match="different format set"):
            restore_tables(snap)

    def test_unknown_format_name_rejected(self):
        snap, _ = make_snapshot(with_hot=False)
        snap.formats[0] = "binary61"
        snap.tables["binary61"] = snap.tables.pop("binary64")
        with pytest.raises(SnapshotError, match="unknown format"):
            restore_tables(snap)

    def test_rejection_is_all_or_nothing(self):
        # Validation happens before the first install: an engine fed a
        # stale snapshot is exactly as correct as a cold one.
        snap, _ = make_snapshot(with_hot=False)
        snap.tables["binary64"]["grisu_powers"].pop()  # wrong span
        eng = Engine(snapshot=snap)
        assert eng.stats()["snapshot_faults"] == 1
        assert eng.snapshot_restored is None
        assert eng.format_many(CORPUS) == Engine().format_many(CORPUS)

    def test_malformed_memo_row_rejected(self):
        snap, _ = make_snapshot(with_hot=False)
        snap.write_memo[0] = ["binary64", "nearest-even"]  # short row
        with pytest.raises(SnapshotError, match="write-memo row"):
            apply_snapshot(Engine(), snap)


class TestColdFallback:
    """Engine/ReadEngine constructors never propagate snapshot defects."""

    def test_corrupt_file_counts_fault_and_stays_correct(self, tmp_path):
        snap, _ = make_snapshot()
        path = tmp_path / "warm.snap"
        save_snapshot(snap, path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        eng = Engine(snapshot=path)
        assert eng.stats()["snapshot_faults"] == 1
        assert eng.snapshot_restored is None
        assert eng.format_many(CORPUS) == Engine().format_many(CORPUS)

    def test_mid_rewrite_partial_file(self, tmp_path):
        # A non-atomic writer torn halfway: the prefix parses as a
        # truncation, the fault is counted, output is cold-correct.
        snap, _ = make_snapshot()
        path = tmp_path / "warm.snap"
        save_snapshot(snap, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        eng = Engine(snapshot=path)
        assert eng.stats()["snapshot_faults"] == 1
        assert eng.format_many(CORPUS) == Engine().format_many(CORPUS)

    def test_missing_file_counts_fault(self, tmp_path):
        eng = Engine(snapshot=tmp_path / "never-written.snap")
        assert eng.stats()["snapshot_faults"] == 1
        assert eng.format(0.1) == "0.1"

    def test_save_is_atomic_under_valid_path(self, tmp_path):
        # save_snapshot goes through tmp+rename: the final path never
        # holds a partial container, and no temp litter survives.
        snap, _ = make_snapshot(with_hot=False)
        path = tmp_path / "warm.snap"
        save_snapshot(snap, path)
        save_snapshot(snap, path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["warm.snap"]
        load_snapshot(path)


class TestRestore:
    def test_write_memo_restores_as_cache_hits(self):
        snap, _ = make_snapshot(with_hot=False)
        warm = Engine(snapshot=snap)
        assert warm.snapshot_restored["write"] > 0
        warm.reset_stats()
        got = warm.format_many(CORPUS)
        assert got == Engine().format_many(CORPUS)
        stats = warm.stats()
        # Every finite non-zero magnitude was restored: no tier ran.
        assert stats["tier2_calls"] == 0
        assert stats["cache_hits"] > 0

    def test_read_memo_restores_as_read_cache_hits(self):
        snap, texts = make_snapshot(with_hot=False)
        warm = Engine(snapshot=snap)
        assert warm.snapshot_restored["read"] > 0
        cold_bits = [v.to_bits() for v in Engine().read_many(texts)]
        warm.reset_stats()
        assert [v.to_bits() for v in warm.read_many(texts)] == cold_bits
        assert warm.stats()["read_cache_hits"] > 0

    def test_restore_respects_cache_cap(self):
        snap, _ = make_snapshot(with_hot=False)
        small = Engine(cache_size=16, snapshot=snap)
        assert small.snapshot_restored["write"] <= 16
        assert len(small._cache) <= 16
        assert small.format_many(CORPUS) == Engine().format_many(CORPUS)

    def test_hot_dictionary_serves_without_memo(self):
        snap, _ = make_snapshot(with_hot=True)
        warm = Engine(cache_size=0, snapshot=snap)
        assert warm.snapshot_restored["hot"] > 0
        warm.reset_stats()
        assert warm.format_many(CORPUS) == Engine().format_many(CORPUS)
        assert warm.stats()["hot_hits"] > 0

    def test_hot_rows_are_magnitude_level(self):
        flos = [Flonum.from_float(0.1), Flonum.from_float(-0.1),
                Flonum.from_float(0.1)]
        rows = hot_entries(flos)
        assert len(rows) == 1  # sign dropped, duplicate dropped
        assert rows[0][0] == "binary64"


class TestHotPlane:
    def plane_for(self, snap):
        blob = HotPlane.from_snapshot(snap, "binary64")
        assert blob is not None
        return blob

    def test_probe_hits_and_misses(self):
        snap, _ = make_snapshot(with_hot=True)
        plane = HotPlane(memoryview(self.plane_for(snap)))
        to_bits = bits_encoder(BINARY64)
        hits = 0
        for name, mode, tie, f, e, k, body in snap.hot:
            got = plane.get(to_bits(f, e))
            assert got == (k, body)
            hits += 1
        assert hits == len(snap.hot)
        assert plane.get(to_bits(*_fe(9.25))) is None

    def test_attached_plane_serves_formats(self):
        snap, _ = make_snapshot(with_hot=True)
        eng = Engine(cache_size=0)
        eng.attach_hot_plane(HotPlane(memoryview(self.plane_for(snap))))
        assert eng.format_many(CORPUS) == Engine().format_many(CORPUS)
        assert eng.stats()["hot_hits"] > 0

    def test_torn_plane_rejected_at_attach(self):
        snap, _ = make_snapshot(with_hot=True)
        blob = bytearray(self.plane_for(snap))
        blob[len(blob) // 2] ^= 0x01
        with pytest.raises(SnapshotError, match="CRC"):
            HotPlane(memoryview(bytes(blob)))

    def test_truncated_plane_rejected(self):
        snap, _ = make_snapshot(with_hot=True)
        blob = self.plane_for(snap)
        with pytest.raises(SnapshotError, match="truncated"):
            HotPlane(memoryview(blob[:len(blob) // 2]))

    def test_bits_encoder_matches_flonum_to_bits(self):
        for fmt in (BINARY32, BINARY64):
            to_bits = bits_encoder(fmt)
            vals = [v.abs() for v in uniform_random(300, fmt=fmt, seed=3)]
            vals += [Flonum.from_bits(1, fmt),  # smallest subnormal
                     Flonum.from_bits(fmt.hidden_limit - 1, fmt)]
            for v in vals:
                assert to_bits(v.f, v.e) == v.to_bits()


class TestMemoKeyIsolation:
    """Regression: 0.1's binary32 pattern (f=13421773, e=-27) must not
    cross-serve between formats through one engine's memo."""

    F32, E32 = 13421773, -27

    def test_same_value_under_two_formats(self):
        # The identical real number 13421773 * 2**-27, presented as a
        # binary32 flonum and as a binary64 float, must round-trip to
        # each format's own shortest string no matter which the engine
        # memoized first.
        v32 = Flonum.finite(0, self.F32, self.E32, BINARY32)
        v64 = self.F32 * 2.0**self.E32
        for order in ((32, 64), (64, 32)):
            eng = Engine()
            out = {}
            for which in order:
                if which == 32:
                    out[32] = eng.format(v32, fmt=BINARY32)
                else:
                    out[64] = eng.format(v64)
            assert out[32] == "0.1"
            assert out[64] == "0.10000000149011612"

    def test_interned_formats_are_pinned_across_gc(self):
        # id(fmt) keys the context intern table; a collected format
        # whose id is recycled must never alias an old context.  The
        # pin list makes that impossible: every interned format stays
        # alive as long as the engine does.
        eng = Engine()
        baseline = len(eng._ctx_ids)
        for i in range(8):
            toy = FloatFormat(name=f"toy{i}", radix=2, precision=11,
                              exponent_width=0, emin=-14, emax=15)
            text = eng.format(Flonum.finite(0, 1029, -10, toy), fmt=toy)
            assert text == eng.format(
                Flonum.finite(0, 1029, -10, toy), fmt=toy)
            del toy
            gc.collect()
        # Eight structurally identical formats, eight distinct contexts.
        assert len(eng._ctx_ids) == baseline + 8
        assert len(eng._ctx_pins) == len(eng._ctx_ids)


def _fe(x):
    v = Flonum.from_float(x)
    return v.f, v.e
