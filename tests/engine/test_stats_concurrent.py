"""Satellite: ``stats()`` snapshots must never tear mid-batch.

Every counter mutation happens under the engine lock and the batch APIs
flush their tallies once per batch, so a concurrent observer may only
ever see whole-batch multiples.  The pollers below hammer ``stats()``
while a worker streams fixed-size batches; the old per-element
increments fail these assertions within a few batches.
"""

import random
import threading

from repro.engine import Engine, ReadEngine


def _corpus(n, seed):
    rng = random.Random(seed)
    out = []
    while len(out) < n:
        x = rng.uniform(-1e300, 1e300) * rng.choice([1e-200, 1.0, 1e200])
        if x == x and abs(x) != float("inf"):
            out.append(x)
    return out


def _poll_until(done, snap, check):
    """Run ``check(snap())`` in a tight loop until ``done`` is set.

    Returns the list of violations (empty == consistent throughout).
    """
    bad = []
    while not done.is_set():
        s = snap()
        err = check(s)
        if err is not None:
            bad.append(err)
            break
    return bad


class TestConcurrentStats:
    def test_format_many_batches_flush_atomically(self):
        eng = Engine(cache_size=64)
        k = 16
        batches = [_corpus(k, 100 + i) for i in range(150)]
        done = threading.Event()
        bad = []

        def check(s):
            total = s["conversions"]
            if total % k:
                return ("conversions", total)
            return None

        poller = threading.Thread(
            target=lambda: bad.extend(_poll_until(done, eng.stats, check)))
        poller.start()
        try:
            for b in batches:
                eng.format_many(b)
        finally:
            done.set()
            poller.join()
        assert bad == [], f"torn mid-batch snapshot observed: {bad}"
        assert eng.stats()["conversions"] == k * len(batches)

    def test_read_many_batches_flush_atomically(self):
        eng = ReadEngine(cache_size=64)
        k = 16
        batches = [[repr(x) for x in _corpus(k, 200 + i)]
                   for i in range(150)]
        done = threading.Event()
        bad = []

        def check(s):
            total = s["read_conversions"]
            if total % k:
                return ("read_conversions", total)
            return None

        poller = threading.Thread(
            target=lambda: bad.extend(_poll_until(done, eng.stats, check)))
        poller.start()
        try:
            for b in batches:
                eng.read_many(b)
        finally:
            done.set()
            poller.join()
        assert bad == [], f"torn mid-batch snapshot observed: {bad}"
        assert eng.stats()["read_conversions"] == k * len(batches)

    def test_reset_stats_races_cleanly_with_batches(self):
        """reset_stats() during a batch stream never yields a snapshot
        with impossible internal accounting (hit/miss sums exceeding
        conversions, negative counters...)."""
        eng = Engine(cache_size=64)
        vals = _corpus(64, 7)
        done = threading.Event()
        bad = []

        def check(s):
            parts = (s["tier0_hits"] + s["tier1_hits"] + s["tier2_calls"]
                     + s["fixed_conversions"] + s["cache_hits"])
            if parts != s["conversions"] or any(
                    v < 0 for v in s.values()
                    if not isinstance(v, dict)):
                return dict(s)
            return None

        poller = threading.Thread(
            target=lambda: bad.extend(_poll_until(done, eng.stats, check)))
        poller.start()
        try:
            for i in range(200):
                eng.format_many(vals)
                if i % 10 == 0:
                    eng.reset_stats()
        finally:
            done.set()
            poller.join()
        assert bad == [], f"inconsistent snapshot observed: {bad[:1]}"

    def test_engine_reader_stats_share_one_acquisition(self):
        """Engine.stats() with a built reader must not deadlock (the two
        share one non-reentrant lock) and must merge read counters."""
        eng = Engine()
        eng.read_many(["1.5", "2.5"])
        s = eng.stats()
        assert s["read_conversions"] == 2
        eng.reset_stats()
        assert eng.stats()["read_conversions"] == 0
