"""The repro-print command-line interface."""

import io

import pytest

from repro.cli import build_parser, run


def _run(*argv):
    out = io.StringIO()
    status = run(list(argv), out=out)
    return status, out.getvalue().splitlines()


class TestFreeFormat:
    def test_shortest_default(self):
        status, lines = _run("0.3")
        assert status == 0 and lines == ["0.3"]

    def test_multiple_values(self):
        status, lines = _run("0.1", "0.2", "0.3")
        assert lines == ["0.1", "0.2", "0.3"]

    def test_reader_mode_changes_1e23(self):
        _, aware = _run("1e23")
        _, unaware = _run("1e23", "--reader-mode", "nearest-unknown")
        assert aware == ["1e23"]
        assert unaware == ["9.999999999999999e22"]

    def test_python_repr_surface(self):
        _, lines = _run("1e23", "--python-repr")
        assert lines == ["1e+23"]

    def test_scaler_choice_same_answer(self):
        for scaler in ("estimate", "float-log", "iterative"):
            _, lines = _run("123.456", "--scaler", scaler)
            assert lines == ["123.456"]

    def test_base_conversion(self):
        _, lines = _run("0.5", "--base", "2", "--style", "positional")
        assert lines == ["0.1"]

    def test_negative_numbers(self):
        _, lines = _run("-0.3")
        assert lines == ["-0.3"]

    def test_specials(self):
        _, lines = _run("nan", "inf")
        assert lines == ["nan", "inf"]

    def test_negative_infinity_after_separator(self):
        # argparse needs "--" before non-numeric dash arguments.
        _, lines = _run("--", "-inf")
        assert lines == ["-inf"]


class TestFixedFormat:
    def test_decimals(self):
        _, lines = _run("100", "--decimals", "20")
        assert lines == ["100.000000000000000#####"]

    def test_digits(self):
        _, lines = _run("0.333333333333333333", "--digits", "10")
        assert lines == ["0.3333333333"]

    def test_position(self):
        _, lines = _run("12345", "--position", "2")
        assert lines == ["12300"]

    def test_format_choice(self):
        # Reading into binary32 first loses digits: 1/3's float32 prints
        # fewer significant digits.
        _, lines64 = _run("0.3333333333333333", "--format", "binary64")
        _, lines32 = _run("0.3333333333333333", "--format", "binary32")
        assert len(lines32[0]) < len(lines64[0])


class TestErrors:
    def test_bad_literal_reports_and_continues(self):
        status, lines = _run("abc", "1.5")
        assert status == 1
        assert lines[0].startswith("error:")
        assert lines[1] == "1.5"

    def test_parser_rejects_conflicting_modes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["1.0", "--digits", "3",
                                       "--decimals", "2"])

    def test_parser_rejects_unknown_scaler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["1.0", "--scaler", "magic"])


class TestHexAndFast:
    def test_hex_output(self):
        _, lines = _run("1.5", "--hex")
        assert lines == ["0x1.8p+0"]

    def test_hex_input(self):
        _, lines = _run("0x1.8p+0")
        assert lines == ["1.5"]

    def test_hex_roundtrip_both_ways(self):
        _, lines = _run("0x1.999999999999ap-4", "--hex")
        assert lines == ["0x1.999999999999ap-4"]
        _, lines = _run("0x1.999999999999ap-4")
        assert lines == ["0.1"]

    def test_fast_shortest_matches_exact(self):
        _, fast = _run("123.456", "--fast")
        _, exact = _run("123.456")
        assert fast == exact

    def test_fast_counted(self):
        _, lines = _run("0.123456", "--fast", "--digits", "3")
        assert lines == ["0.123"]

    def test_fast_specials(self):
        _, lines = _run("inf", "nan", "0", "--fast")
        assert lines == ["inf", "nan", "0"]

    def test_negative_hex_input(self):
        # dash-leading non-numeric args need the -- separator.
        _, lines = _run("--", "-0x1p-1")
        assert lines == ["-0.5"]


class TestRead:
    # The CLI reads through the process-wide default engine; a literal
    # another test already read resolves as tier=memo, so assertions
    # pin the components and accept the memo tier where it can occur.

    def test_reports_components_and_tier(self):
        _, lines = _run("1.5", "--read")
        head, tier = lines[0].rsplit(" tier=", 1)
        assert head == "sign=0 f=6755399441055744 e=-52"
        assert tier in ("tier0", "memo")

    def test_interval_tier_literal(self):
        _, lines = _run("2.2250738585072014e-308", "--read")
        head, tier = lines[0].rsplit(" tier=", 1)
        assert head == "sign=0 f=4503599627370496 e=-1074"
        assert tier in ("tier1", "memo")

    def test_specials_and_signed_zero(self):
        _, lines = _run("nan", "--read")
        assert lines[0].startswith("nan tier=")
        _, lines = _run("--read", "--", "-0")
        assert lines[0].startswith("sign=1 zero tier=")
        _, lines = _run("1e999", "--read")
        assert lines[0].startswith("sign=0 inf tier=")

    def test_no_engine_uses_exact_reader(self):
        _, engine = _run("1.5", "--read")
        _, exact = _run("1.5", "--read", "--no-engine")
        assert exact == ["sign=0 f=6755399441055744 e=-52 tier=exact"]
        assert engine[0].rsplit(" ", 1)[0] == exact[0].rsplit(" ", 1)[0]

    def test_format_choice(self):
        _, lines = _run("1.5", "--read", "--format", "binary16")
        assert lines[0].startswith("sign=0 f=1536 e=-10 tier=")

    def test_bad_literal_reports_and_continues(self):
        status, lines = _run("abc", "1.5", "--read")
        assert status == 1
        assert lines[0].startswith("error:")
        assert lines[1].startswith("sign=0 f=6755399441055744 e=-52")


class TestStyles:
    def test_engineering(self):
        _, lines = _run("6.02214076e23", "--style", "engineering")
        assert lines == ["602.214076e21"]

    def test_grouping(self):
        _, lines = _run("1234567.89", "--style", "positional",
                        "--group", ",")
        assert lines == ["1,234,567.89"]


class TestStdin:
    def test_reads_stdin_when_no_values(self, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("0.1\n\n1e23\n"))
        status, lines = _run()
        assert status == 0
        assert lines == ["0.1", "1e23"]


class TestBulk:
    def test_matches_scalar_path(self):
        vals = ["0.1", "1e300", "-0.0", "nan", "inf", "5e-324", "0.1"]
        status, lines = _run("--bulk", *vals)
        assert status == 0
        assert lines == _run(*vals)[1]

    def test_jobs_sharding_same_output(self):
        vals = [f"{i}.{i}e{i % 40}" for i in range(1, 60)]
        status, lines = _run("--bulk", "--jobs", "2", *vals)
        assert status == 0
        assert lines == _run("--bulk", *vals)[1]

    def test_narrow_format(self):
        status, lines = _run("--bulk", "--format", "binary32", "0.1", "2.5")
        assert status == 0
        assert lines == _run("--format", "binary32", "0.1", "2.5")[1]

    def test_reader_mode_flows_through(self):
        status, lines = _run("--bulk", "--reader-mode", "toward-zero",
                             "1e23")
        assert lines == _run("--reader-mode", "toward-zero", "1e23")[1]

    @pytest.mark.parametrize("flag", [("--hex",), ("--read",),
                                      ("--digits", "3"), ("--fast",),
                                      ("--no-engine",), ("--base", "16"),
                                      ("--python-repr",)])
    def test_incompatible_flags_rejected(self, flag):
        with pytest.raises(SystemExit):
            run(["--bulk", *flag, "1.0"], out=io.StringIO())

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            run(["--bulk", "--jobs", "0", "1.0"], out=io.StringIO())

    def test_bad_literal_fails_whole_column(self):
        status, lines = _run("--bulk", "0.1", "zzz")
        assert status == 1
        assert lines and lines[0].startswith("error:")

    def test_bad_literal_error_is_typed_one_liner(self):
        status, lines = _run("--bulk", "0.1", "zzz")
        assert status == 1
        assert len(lines) == 1
        assert lines[0].startswith("error: ParseError:")

    def test_chaos_seed_output_byte_identical(self):
        vals = [f"{i}.{i}e{i % 40}" for i in range(1, 60)]
        status, lines = _run("--bulk", "--jobs", "2", "--chaos-seed", "5",
                             *vals)
        assert status == 0
        assert lines == _run("--bulk", *vals)[1]

    def test_chaos_seed_disarms_after_run(self):
        from repro import faults

        status, _ = _run("--bulk", "--chaos-seed", "1", "1.5")
        assert status == 0
        assert faults.active() is None

    def test_chaos_seed_requires_bulk(self):
        with pytest.raises(SystemExit):
            run(["--chaos-seed", "3", "1.0"], out=io.StringIO())
