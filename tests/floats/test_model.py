"""Flonum: construction, ordering, exact values, immutability."""

from fractions import Fraction

import pytest
from hypothesis import given

from helpers import TOY_P5, finite_doubles
from repro.errors import (
    DecodeError,
    FormatError,
    NotRepresentableError,
    RangeError,
)
from repro.floats.formats import BINARY16, BINARY32, BINARY64
from repro.floats.model import Flonum, FlonumKind


class TestConstruction:
    @given(finite_doubles())
    def test_from_float_exact(self, x):
        v = Flonum.from_float(x)
        assert v.to_float() == x
        if x != 0:
            assert v.to_fraction() == Fraction(x)

    def test_from_float_specials(self):
        assert Flonum.from_float(float("nan")).is_nan
        assert Flonum.from_float(float("inf")).is_infinite
        neg = Flonum.from_float(float("-inf"))
        assert neg.is_infinite and neg.is_negative

    def test_signed_zero(self):
        plus = Flonum.from_float(0.0)
        minus = Flonum.from_float(-0.0)
        assert plus.is_zero and minus.is_zero
        assert minus.is_negative and not plus.is_negative
        assert plus == minus  # IEEE ordering identifies them

    def test_from_bits_binary16(self):
        one = Flonum.from_bits(0x3C00, BINARY16)
        assert one.to_fraction() == 1

    def test_to_bits_roundtrip_curated(self):
        for x in (1.0, -1.0, 0.1, 5e-324, 1.7976931348623157e308, 0.0):
            v = Flonum.from_float(x)
            assert Flonum.from_bits(v.to_bits(), BINARY64) == v

    def test_nan_to_bits_is_quiet(self):
        bits = Flonum.nan(BINARY64).to_bits()
        # Exponent all ones, top mantissa bit set.
        assert bits >> 52 == 0x7FF
        assert bits & (1 << 51)

    def test_from_int(self):
        assert Flonum.from_int(10).to_fraction() == 10
        assert Flonum.from_int(-3).to_fraction() == -3
        assert Flonum.from_int(0).is_zero
        # 2**53 + 1 is not a double.
        with pytest.raises(RangeError):
            Flonum.from_int((1 << 53) + 1)

    def test_finite_rejects_noncanonical(self):
        with pytest.raises(DecodeError):
            Flonum.finite(0, 1, 0, BINARY64)
        with pytest.raises(DecodeError):
            Flonum.finite(2, 1 << 52, 0, BINARY64)

    def test_immutable(self):
        v = Flonum.from_float(1.0)
        with pytest.raises(AttributeError):
            v.f = 3


class TestFromRaw:
    def test_normalizes_up(self):
        # 3 * 2**0 == 0b11 -> shifts left into the mantissa window.
        v = Flonum.from_raw(0, 3, 0, BINARY64)
        assert v.to_fraction() == 3
        assert v.f >= BINARY64.hidden_limit

    def test_normalizes_down_exact(self):
        v = Flonum.from_raw(0, 1 << 54, 0, BINARY64)
        assert v.to_fraction() == 1 << 54

    def test_rejects_inexact_shrink(self):
        with pytest.raises(RangeError):
            Flonum.from_raw(0, (1 << 54) + 1, 0, BINARY64)

    def test_rejects_overflow(self):
        with pytest.raises(RangeError):
            Flonum.from_raw(0, 1, 5000, BINARY64)

    def test_denormal_exact(self):
        v = Flonum.from_raw(0, 4, BINARY64.min_e - 2, BINARY64)
        assert v.e == BINARY64.min_e and v.f == 1

    def test_rejects_inexact_underflow(self):
        with pytest.raises(RangeError):
            Flonum.from_raw(0, 3, BINARY64.min_e - 1, BINARY64)

    def test_zero(self):
        assert Flonum.from_raw(1, 0, 17, BINARY64).is_zero


class TestOrdering:
    @given(finite_doubles(), finite_doubles())
    def test_matches_float_ordering(self, x, y):
        vx, vy = Flonum.from_float(x), Flonum.from_float(y)
        assert (vx < vy) == (x < y)
        assert (vx == vy) == (x == y)
        assert (vx <= vy) == (x <= y)

    def test_infinities_bracket_everything(self):
        lo = Flonum.infinity(BINARY64, sign=1)
        hi = Flonum.infinity(BINARY64, sign=0)
        mid = Flonum.from_float(1e308)
        assert lo < mid < hi
        assert lo < Flonum.from_float(-1e308) < hi

    def test_nan_unordered(self):
        with pytest.raises(NotRepresentableError):
            _ = Flonum.nan() < Flonum.from_float(1.0)

    def test_nan_equals_nan_structurally(self):
        # Flonums are value objects, not IEEE scalars.
        assert Flonum.nan() == Flonum.nan()

    @given(finite_doubles())
    def test_hash_consistent_with_eq(self, x):
        assert hash(Flonum.from_float(x)) == hash(Flonum.from_float(x))

    def test_bool(self):
        assert not Flonum.zero()
        assert Flonum.from_float(1.0)


class TestTransforms:
    def test_abs_negate(self):
        v = Flonum.from_float(-2.5)
        assert v.abs().to_fraction() == Fraction(5, 2)
        assert v.negate().to_fraction() == Fraction(5, 2)
        assert v.negate().negate() == v

    def test_negate_nan_identity(self):
        assert Flonum.nan().negate().is_nan

    def test_with_format_exact(self):
        v = Flonum.from_float(1.5)
        half = v.with_format(BINARY16)
        assert half.to_fraction() == Fraction(3, 2)

    def test_with_format_inexact_raises(self):
        v = Flonum.from_float(0.1)
        with pytest.raises(RangeError):
            v.with_format(BINARY16)

    def test_with_format_cross_radix_raises(self):
        toy10 = TOY_P5
        from repro.floats.formats import FloatFormat

        dec = FloatFormat.toy(precision=4, emin=-5, emax=5, radix=10)
        with pytest.raises(FormatError):
            Flonum.from_float(3.0).with_format(dec)

    def test_components(self):
        sign, f, e = Flonum.from_float(1.0).components()
        assert (sign, f, e) == (0, 1 << 52, -52)
        with pytest.raises(NotRepresentableError):
            Flonum.nan().components()

    def test_to_float_out_of_range(self):
        from repro.floats.formats import BINARY128

        big = Flonum.finite(0, BINARY128.hidden_limit, 2000, BINARY128)
        with pytest.raises(NotRepresentableError):
            big.to_float()


class TestEnumeration:
    def test_enumerate_toy_count(self):
        fmt = TOY_P5
        values = list(Flonum.enumerate_positive(fmt))
        # denormals: hidden_limit - 1; normals: (emax - emin + 1) * b**(p-1)
        expected = (fmt.hidden_limit - 1) + (
            (fmt.max_e - fmt.min_e + 1) * fmt.hidden_limit)
        assert len(values) == expected

    def test_enumerate_strictly_increasing(self):
        values = list(Flonum.enumerate_positive(TOY_P5))
        for a, b in zip(values, values[1:]):
            assert a < b

    def test_enumerate_without_denormals(self):
        values = list(Flonum.enumerate_positive(TOY_P5, False))
        assert all(v.is_normal for v in values)
