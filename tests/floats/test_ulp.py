"""Successor/predecessor and gap arithmetic (paper Section 2.1)."""

from fractions import Fraction

import pytest
from hypothesis import given

from helpers import TOY_B4, TOY_P5, enumerate_toy, positive_flonums
from repro.errors import RangeError
from repro.floats.formats import BINARY64
from repro.floats.model import Flonum
from repro.floats.ulp import (
    gap_high,
    gap_low,
    midpoint_high,
    midpoint_low,
    predecessor,
    rounding_interval,
    successor,
    ulp,
    ulp_exponent,
)


class TestSuccessorPredecessor:
    @given(positive_flonums())
    def test_successor_is_next(self, v):
        succ = successor(v)
        if succ.is_infinite:
            return
        assert v < succ
        assert succ.to_fraction() - v.to_fraction() == ulp(v)

    @given(positive_flonums())
    def test_predecessor_inverts_successor(self, v):
        succ = successor(v)
        if succ.is_infinite:
            return
        assert predecessor(succ) == v

    def test_exhaustive_adjacency_toy(self):
        values = enumerate_toy(TOY_P5)
        for a, b in zip(values, values[1:]):
            assert successor(a) == b
            assert predecessor(b) == a

    def test_exhaustive_adjacency_radix4(self):
        values = enumerate_toy(TOY_B4)
        for a, b in zip(values, values[1:]):
            assert successor(a) == b
            assert predecessor(b) == a

    def test_smallest_denormal_predecessor_is_zero(self):
        v = Flonum.finite(0, 1, BINARY64.min_e, BINARY64)
        assert predecessor(v).is_zero

    def test_largest_finite_successor_is_inf(self):
        f, e = BINARY64.largest_finite
        v = Flonum.finite(0, f, e, BINARY64)
        assert successor(v).is_infinite

    def test_power_boundary_crossing(self):
        # Successor of (b**p - 1) * b**e jumps to b**(p-1) * b**(e+1).
        v = Flonum.finite(0, BINARY64.mantissa_limit - 1, 0, BINARY64)
        succ = successor(v)
        assert succ.f == BINARY64.hidden_limit and succ.e == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(RangeError):
            successor(Flonum.zero())
        with pytest.raises(RangeError):
            predecessor(Flonum.from_float(-1.0))
        with pytest.raises(RangeError):
            successor(Flonum.infinity())


class TestGaps:
    def test_uneven_gap_at_power(self):
        # At f == b**(p-1) with e > min_e the gap below is b times
        # narrower than the gap above (the paper's v- case analysis).
        v = Flonum.finite(0, BINARY64.hidden_limit, 0, BINARY64)
        assert gap_high(v) == gap_low(v) * 2

    def test_even_gap_elsewhere(self):
        v = Flonum.from_float(1.5)
        assert gap_high(v) == gap_low(v)

    def test_gap_at_min_exponent_power_is_even(self):
        # At the minimum exponent the value below b**(p-1)*b**min_e is the
        # largest denormal, a full ulp away: no narrowing.
        v = Flonum.finite(0, BINARY64.hidden_limit, BINARY64.min_e, BINARY64)
        assert gap_high(v) == gap_low(v)

    def test_largest_finite_gap_high_is_ulp(self):
        f, e = BINARY64.largest_finite
        v = Flonum.finite(0, f, e, BINARY64)
        assert gap_high(v) == ulp(v)

    @given(positive_flonums())
    def test_ulp_value(self, v):
        assert ulp(v) == Fraction(2) ** v.e
        assert ulp_exponent(v) == v.e

    def test_ulp_rejects_nonfinite(self):
        with pytest.raises(RangeError):
            ulp(Flonum.infinity())


class TestMidpoints:
    @given(positive_flonums())
    def test_interval_brackets_value(self, v):
        low, high = rounding_interval(v)
        assert low < v.to_fraction() < high

    @given(positive_flonums())
    def test_midpoints_are_halfway(self, v):
        value = v.to_fraction()
        assert midpoint_high(v) - value == gap_high(v) / 2
        assert value - midpoint_low(v) == gap_low(v) / 2

    def test_adjacent_intervals_share_endpoints(self):
        values = enumerate_toy(TOY_P5)
        for a, b in zip(values, values[1:]):
            assert midpoint_high(a) == midpoint_low(b)

    def test_flagship_1e23_is_a_midpoint(self):
        # The paper: 10**23 falls exactly between two doubles, the smaller
        # of which has an even mantissa.
        v = Flonum.from_float(1e23)
        assert midpoint_high(v) == Fraction(10) ** 23
        assert v.f % 2 == 0
