"""Correctly rounded Flonum arithmetic vs the host FPU and by properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import TOY_P5, finite_doubles, positive_flonums
from repro.core.rounding import ReaderMode
from repro.errors import RangeError
from repro.floats.arith import add, div, fma, mul, sqrt, sub
from repro.floats.formats import BINARY16, BINARY32, BINARY64
from repro.floats.model import Flonum


def _f(x):
    return Flonum.from_float(x)


def _same(result, x):
    want = Flonum.from_float(x)
    if want.is_nan:
        return result.is_nan
    if want.is_zero and result.is_zero:
        return want.sign == result.sign
    return result == want


class TestAgainstHostFPU:
    """The host's binary64 ops are IEEE nearest-even: a free oracle."""

    @given(finite_doubles(), finite_doubles())
    @settings(max_examples=400)
    def test_add(self, x, y):
        assert _same(add(_f(x), _f(y)), x + y)

    @given(finite_doubles(), finite_doubles())
    @settings(max_examples=400)
    def test_sub(self, x, y):
        assert _same(sub(_f(x), _f(y)), x - y)

    @given(finite_doubles(), finite_doubles())
    @settings(max_examples=400)
    def test_mul(self, x, y):
        assert _same(mul(_f(x), _f(y)), x * y)

    @given(finite_doubles(), finite_doubles())
    @settings(max_examples=400)
    def test_div(self, x, y):
        if y == 0:
            return
        assert _same(div(_f(x), _f(y)), x / y)

    @given(finite_doubles())
    @settings(max_examples=400)
    def test_sqrt(self, x):
        if x < 0:
            assert sqrt(_f(x)).is_nan
        else:
            assert _same(sqrt(_f(x)), math.sqrt(x))

    def test_overflow_to_inf(self):
        big = _f(1.7976931348623157e308)
        assert add(big, big).is_infinite
        assert mul(big, _f(2.0)).is_infinite

    def test_underflow_to_zero(self):
        tiny = _f(5e-324)
        r = mul(tiny, _f(0.25))
        assert r.is_zero and not r.is_negative


class TestSpecials:
    def test_nan_propagates(self):
        nan = Flonum.nan(BINARY64)
        one = _f(1.0)
        for op in (add, sub, mul, div):
            assert op(nan, one).is_nan
            assert op(one, nan).is_nan

    def test_inf_minus_inf(self):
        inf = Flonum.infinity(BINARY64)
        assert add(inf, inf.negate()).is_nan
        assert sub(inf, inf).is_nan
        assert add(inf, inf).is_infinite

    def test_zero_times_inf(self):
        assert mul(Flonum.zero(BINARY64), Flonum.infinity(BINARY64)).is_nan

    def test_division_specials(self):
        one, zero = _f(1.0), Flonum.zero(BINARY64)
        inf = Flonum.infinity(BINARY64)
        assert div(one, zero).is_infinite
        assert div(one.negate(), zero).sign == 1
        assert div(zero, zero).is_nan
        assert div(inf, inf).is_nan
        assert div(one, inf).is_zero

    def test_signed_zero_rules(self):
        pz, nz = _f(0.0), _f(-0.0)
        assert not add(pz, nz).is_negative  # (+0) + (-0) = +0
        assert add(nz, nz).is_negative  # (-0) + (-0) = -0
        r = add(_f(1.0), _f(-1.0), ReaderMode.TOWARD_NEGATIVE)
        assert r.is_zero and r.is_negative  # exact cancel rounds to -0 down
        assert not add(_f(1.0), _f(-1.0)).is_negative

    def test_sqrt_specials(self):
        assert sqrt(Flonum.nan(BINARY64)).is_nan
        assert sqrt(_f(-1.0)).is_nan
        assert sqrt(Flonum.infinity(BINARY64)).is_infinite
        assert sqrt(_f(-0.0)).is_negative  # sqrt(-0) = -0

    def test_mixed_formats_rejected(self):
        with pytest.raises(RangeError):
            add(_f(1.0), Flonum.from_bits(0x3C00, BINARY16))


class TestDirectedModes:
    @given(finite_doubles(), finite_doubles())
    @settings(max_examples=200)
    def test_directed_bracket_nearest(self, x, y):
        a, b = _f(x), _f(y)
        down = add(a, b, ReaderMode.TOWARD_NEGATIVE)
        up = add(a, b, ReaderMode.TOWARD_POSITIVE)
        near = add(a, b)
        if near.is_infinite or down.is_infinite or up.is_infinite:
            return
        assert down <= near <= up

    @given(positive_flonums(BINARY32))
    @settings(max_examples=200)
    def test_sqrt_directed_squares_bracket(self, v):
        down = sqrt(v, ReaderMode.TOWARD_NEGATIVE)
        up = sqrt(v, ReaderMode.TOWARD_POSITIVE)
        value = v.to_fraction()
        assert down.to_fraction() ** 2 <= value
        if not up.is_infinite:
            assert up.to_fraction() ** 2 >= value
        # Adjacent or equal.
        if down != up:
            from repro.floats.ulp import successor

            assert successor(down) == up


class TestFma:
    def test_single_rounding_differs_from_two(self):
        # The classic fma use: the exact division residual a - q*b.
        # Split evaluation rounds q*3 up to 1.0 and the residual vanishes;
        # fused keeps it (and it is exactly representable).
        from fractions import Fraction

        q = div(_f(1.0), _f(3.0))
        r_fused = fma(q, _f(-3.0), _f(1.0))
        r_split = sub(_f(1.0), mul(q, _f(3.0)))
        assert r_split.is_zero
        assert r_fused.to_fraction() == Fraction(1, 2**54)

    @given(finite_doubles(), finite_doubles(), finite_doubles())
    @settings(max_examples=150)
    def test_fma_matches_exact_rational(self, x, y, z):
        from fractions import Fraction

        from repro.reader.exact import read_fraction

        a, b, c = _f(x), _f(y), _f(z)
        got = fma(a, b, c)
        exact = Fraction(x) * Fraction(y) + Fraction(z)
        if exact == 0:
            assert got.is_zero
            return
        assert got == read_fraction(exact, BINARY64)

    def test_fma_specials(self):
        inf = Flonum.infinity(BINARY64)
        assert fma(Flonum.zero(BINARY64), inf, _f(1.0)).is_nan
        assert fma(_f(1.0), _f(1.0), inf).is_infinite
        assert fma(Flonum.nan(BINARY64), _f(1.0), _f(1.0)).is_nan


class TestOtherFormats:
    def test_binary16_closure(self):
        # Exhaustive-ish: sums of small binary16 values stay correctly
        # rounded (checked against binary64 reference done exactly).
        from fractions import Fraction

        from repro.reader.exact import read_fraction

        vals = [Flonum.from_bits(bits, BINARY16)
                for bits in range(0x3C00, 0x3C40)]  # 1.0 .. ~1.06
        for a in vals[:8]:
            for b in vals[:8]:
                got = add(a, b)
                want = read_fraction(a.to_fraction() + b.to_fraction(),
                                     BINARY16)
                assert got == want

    def test_toy_format_sqrt(self):
        for v in Flonum.enumerate_positive(TOY_P5):
            r = sqrt(v)
            # r is the representable value whose square brackets v.
            from repro.floats.ulp import predecessor, successor

            value = v.to_fraction()
            assert not r.is_nan
            lo = predecessor(r) if not r.is_zero else r
            hi = successor(r)
            if not lo.is_zero:
                assert lo.to_fraction() ** 2 < value or r.to_fraction() ** 2 <= value
            if not hi.is_infinite:
                assert hi.to_fraction() ** 2 > value
