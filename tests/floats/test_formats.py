"""FloatFormat: derived quantities and validation."""

import pytest

from repro.errors import FormatError
from repro.floats.formats import (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    STANDARD_FORMATS,
    X87_80,
    FloatFormat,
)


class TestStandardFormats:
    def test_binary64_exponent_range(self):
        assert BINARY64.emin == -1022
        assert BINARY64.emax == 1023
        # The paper's decoding: value = (2**52 + m) * 2**(be - 1075), so
        # the integer-mantissa exponent bottoms out at -1074.
        assert BINARY64.min_e == -1074
        assert BINARY64.max_e == 971

    def test_binary64_bias_and_widths(self):
        assert BINARY64.bias == 1023
        assert BINARY64.total_bits == 64
        assert BINARY64.mantissa_field_width == 52
        assert BINARY64.max_biased_exponent == 2047

    def test_binary32_parameters(self):
        assert BINARY32.precision == 24
        assert BINARY32.bias == 127
        assert BINARY32.min_e == -149
        assert BINARY32.total_bits == 32

    def test_binary16_parameters(self):
        assert BINARY16.precision == 11
        assert BINARY16.min_e == -24
        assert BINARY16.total_bits == 16

    def test_binary128_parameters(self):
        assert BINARY128.precision == 113
        assert BINARY128.total_bits == 128
        assert BINARY128.min_e == -16494

    def test_x87_explicit_bit_widths(self):
        assert X87_80.explicit_leading_bit
        assert X87_80.mantissa_field_width == 64
        assert X87_80.total_bits == 80

    def test_registry_names(self):
        assert set(STANDARD_FORMATS) == {
            "binary16", "binary32", "binary64", "binary128", "x87_80",
            "decimal32", "decimal64", "decimal128",
        }
        for name, fmt in STANDARD_FORMATS.items():
            assert fmt.name == name

    def test_mantissa_limits(self):
        assert BINARY64.mantissa_limit == 1 << 53
        assert BINARY64.hidden_limit == 1 << 52

    def test_extreme_values(self):
        f, e = BINARY64.largest_finite
        assert f == (1 << 53) - 1 and e == 971
        assert BINARY64.smallest_positive == (1, -1074)
        assert BINARY64.smallest_normal == (1 << 52, -1074)

    @pytest.mark.parametrize("fmt,digits", [
        (BINARY16, 5), (BINARY32, 9), (BINARY64, 17), (BINARY128, 36),
        (X87_80, 21),
    ])
    def test_decimal_digits_to_distinguish(self, fmt, digits):
        # The classic round-trip digit counts; 17 for binary64 is the
        # count Table 3's fixed-format baseline prints.
        assert fmt.decimal_digits_to_distinguish() == digits


class TestValidation:
    def test_rejects_bad_radix(self):
        with pytest.raises(FormatError):
            FloatFormat("bad", radix=1, precision=4, exponent_width=0,
                        emin=0, emax=1)

    def test_rejects_bad_precision(self):
        with pytest.raises(FormatError):
            FloatFormat("bad", radix=2, precision=0, exponent_width=0,
                        emin=0, emax=1)

    def test_rejects_inverted_exponents(self):
        with pytest.raises(FormatError):
            FloatFormat("bad", radix=2, precision=4, exponent_width=0,
                        emin=5, emax=1)

    def test_rejects_encoding_for_nonbinary(self):
        with pytest.raises(FormatError):
            FloatFormat("bad", radix=10, precision=4, exponent_width=8,
                        emin=-10, emax=10)

    def test_toy_formats_have_no_encoding(self):
        toy = FloatFormat.toy(precision=5, emin=-4, emax=4)
        assert not toy.has_encoding
        with pytest.raises(FormatError):
            _ = toy.bias
        with pytest.raises(FormatError):
            _ = toy.total_bits


class TestValidFinite:
    def test_zero_canonical_only_at_min_e(self):
        assert BINARY64.valid_finite(0, BINARY64.min_e)
        assert not BINARY64.valid_finite(0, 0)

    def test_denormal_only_at_min_e(self):
        assert BINARY64.valid_finite(123, BINARY64.min_e)
        assert not BINARY64.valid_finite(123, BINARY64.min_e + 1)

    def test_normal_range(self):
        assert BINARY64.valid_finite(1 << 52, 0)
        assert BINARY64.valid_finite((1 << 53) - 1, BINARY64.max_e)
        assert not BINARY64.valid_finite(1 << 53, 0)
        assert not BINARY64.valid_finite(1 << 52, BINARY64.max_e + 1)
        assert not BINARY64.valid_finite(1 << 52, BINARY64.min_e - 1)

    def test_negative_mantissa_invalid(self):
        assert not BINARY64.valid_finite(-1, 0)


class TestToyAndIeeeConstructors:
    def test_toy_radix(self):
        toy = FloatFormat.toy(precision=3, emin=-6, emax=6, radix=4)
        assert toy.mantissa_limit == 64
        assert toy.hidden_limit == 16
        assert toy.min_e == -8

    def test_ieee_constructor_matches_binary32(self):
        rebuilt = FloatFormat.ieee(8, 24)
        assert rebuilt.emin == BINARY32.emin
        assert rebuilt.emax == BINARY32.emax
        assert rebuilt.bias == BINARY32.bias

    def test_default_names(self):
        assert "p=7" in FloatFormat.ieee(5, 7).name
        assert "b=3" in FloatFormat.toy(4, -2, 2, radix=3).name
