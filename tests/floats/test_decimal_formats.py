"""IEEE 754-2008 decimal formats at the algorithm level."""

from fractions import Fraction

import pytest

from repro.core.dragon import shortest_digits
from repro.core.fixed import fixed_digits
from repro.core.rounding import ReaderMode
from repro.errors import FormatError
from repro.floats.formats import DECIMAL32, DECIMAL64, DECIMAL128
from repro.floats.model import Flonum
from repro.reader.exact import read_fraction


class TestParameters:
    @pytest.mark.parametrize("fmt,p,emax", [
        (DECIMAL32, 7, 96), (DECIMAL64, 16, 384), (DECIMAL128, 34, 6144),
    ])
    def test_ieee_parameters(self, fmt, p, emax):
        assert fmt.radix == 10
        assert fmt.precision == p
        assert fmt.emax == emax
        assert fmt.emin == 1 - emax

    def test_no_bit_encoding(self):
        assert not DECIMAL64.has_encoding
        with pytest.raises(FormatError):
            _ = DECIMAL64.total_bits

    def test_digit_counts(self):
        # Radix-10 formats distinguish themselves with exactly p digits.
        assert DECIMAL64.decimal_digits_to_distinguish() == 17

    def test_extremes(self):
        f, e = DECIMAL32.largest_finite
        assert Fraction(f) * Fraction(10) ** e == Fraction(9999999) * 10**90


class TestPrinting:
    def test_decimal_values_print_exactly(self):
        """0.1 IS exact in decimal formats: one digit, no tail."""
        v = Flonum.finite(0, 10**15, -16, DECIMAL64)  # 0.1
        r = shortest_digits(v)
        assert (r.k, r.digits) == (0, (1,))

    def test_third_needs_full_precision(self):
        v = Flonum.finite(0, 3333333333333333, -16, DECIMAL64)
        r = shortest_digits(v)
        assert len(r.digits) == 16

    def test_roundtrip(self):
        import random

        rng = random.Random(4)
        for _ in range(150):
            f = rng.randrange(DECIMAL64.hidden_limit,
                              DECIMAL64.mantissa_limit)
            e = rng.randrange(DECIMAL64.min_e, DECIMAL64.max_e + 1)
            v = Flonum.finite(0, f, e, DECIMAL64)
            r = shortest_digits(v)
            assert read_fraction(r.to_fraction(), DECIMAL64) == v

    def test_binary_output_of_decimal_float(self):
        """Cross-radix: decimal 0.1 has an infinite binary expansion, so
        the binary shortest output is bounded by the gap, not exactness."""
        v = Flonum.finite(0, 10**15, -16, DECIMAL64)
        r = shortest_digits(v, base=2)
        assert read_fraction(r.to_fraction(), DECIMAL64) == v
        assert len(r.digits) > 40  # needs most of the precision in bits

    def test_fixed_format_decimal(self):
        v = Flonum.finite(0, 3333333333333333, -16, DECIMAL64)
        r = fixed_digits(v, ndigits=20)
        assert r.hashes >= 1  # beyond 16 digits is insignificant

    def test_denormal_decimal(self):
        v = Flonum.finite(0, 7, DECIMAL32.min_e, DECIMAL32)
        r = shortest_digits(v)
        assert (r.k, r.digits) == (DECIMAL32.min_e + 1, (7,))


class TestUnevenGapsInDecimal:
    def test_power_of_ten_boundary(self):
        from repro.floats.ulp import gap_high, gap_low

        v = Flonum.finite(0, DECIMAL64.hidden_limit, 0, DECIMAL64)
        assert gap_high(v) == 10 * gap_low(v)

    def test_boundary_value_prints_short(self):
        # 10**15 (the smallest 16-digit mantissa at e=0): one digit out.
        v = Flonum.finite(0, DECIMAL64.hidden_limit, 0, DECIMAL64)
        r = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
        assert (r.k, r.digits) == (16, (1,))
