"""Bit-level encode/decode against struct and by exhaustion."""

import math
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DecodeError, RangeError
from repro.floats.decompose import (
    FloatClass,
    bits_to_float,
    bits_to_float32,
    classify_fields,
    decode_fields,
    decompose_float,
    encode_components,
    float32_to_bits,
    float_to_bits,
    join_bits,
    split_bits,
)
from repro.floats.formats import BINARY16, BINARY32, BINARY64, X87_80


class TestSplitJoin:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_split_join_roundtrip_binary64(self, bits):
        assert join_bits(*split_bits(bits, BINARY64), BINARY64) == bits

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_split_join_roundtrip_binary16(self, bits):
        assert join_bits(*split_bits(bits, BINARY16), BINARY16) == bits

    def test_split_fields_of_one(self):
        bits = float_to_bits(1.0)
        sign, be, m = split_bits(bits, BINARY64)
        assert (sign, be, m) == (0, 1023, 0)

    def test_split_rejects_oversized(self):
        with pytest.raises(DecodeError):
            split_bits(1 << 64, BINARY64)

    def test_join_rejects_bad_fields(self):
        with pytest.raises(DecodeError):
            join_bits(2, 0, 0, BINARY64)
        with pytest.raises(DecodeError):
            join_bits(0, 2048, 0, BINARY64)
        with pytest.raises(DecodeError):
            join_bits(0, 0, 1 << 52, BINARY64)


class TestClassify:
    def test_zero(self):
        assert classify_fields(0, 0, BINARY64) is FloatClass.ZERO

    def test_denormal(self):
        assert classify_fields(0, 1, BINARY64) is FloatClass.DENORMAL

    def test_normal(self):
        assert classify_fields(1023, 0, BINARY64) is FloatClass.NORMAL

    def test_infinity_and_nan(self):
        assert classify_fields(2047, 0, BINARY64) is FloatClass.INFINITE
        assert classify_fields(2047, 1, BINARY64) is FloatClass.NAN

    def test_x87_unnormal_rejected(self):
        # Exponent nonzero but integer bit clear: invalid on x87.
        with pytest.raises(DecodeError):
            classify_fields(1, 0, X87_80)

    def test_x87_normal(self):
        m = 1 << 63  # integer bit set
        assert classify_fields(1, m, X87_80) is FloatClass.NORMAL


class TestAgainstStruct:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_decode_matches_struct_binary64(self, bits):
        x = struct.unpack(">d", struct.pack(">Q", bits))[0]
        cls, sign, f, e = decode_fields(*split_bits(bits, BINARY64), BINARY64)
        if math.isnan(x):
            assert cls is FloatClass.NAN
        elif math.isinf(x):
            assert cls is FloatClass.INFINITE
            assert sign == (x < 0)
        else:
            assert sign == (math.copysign(1.0, x) < 0)
            assert math.ldexp(f, e) == abs(x)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_decode_matches_struct_binary32(self, bits):
        x = struct.unpack(">f", struct.pack(">I", bits))[0]
        cls, sign, f, e = decode_fields(*split_bits(bits, BINARY32), BINARY32)
        if math.isnan(x):
            assert cls is FloatClass.NAN
        elif math.isinf(x):
            assert cls is FloatClass.INFINITE
        else:
            assert math.ldexp(f, e) == abs(x)

    def test_float_bits_roundtrip(self):
        for x in (0.0, -0.0, 1.0, -2.5, 1e308, 5e-324, float("inf")):
            assert bits_to_float(float_to_bits(x)) == x

    def test_float32_bits_roundtrip(self):
        for x in (0.0, 1.0, -2.5, 3.4e38, 1e-45):
            bits = float32_to_bits(x)
            assert float32_to_bits(bits_to_float32(bits)) == bits


class TestEncodeComponents:
    def test_one(self):
        assert encode_components(0, 1 << 52, -52, BINARY64) == float_to_bits(1.0)

    def test_smallest_denormal(self):
        assert encode_components(0, 1, -1074, BINARY64) == float_to_bits(5e-324)

    def test_negative(self):
        assert encode_components(1, 1 << 52, -52, BINARY64) == float_to_bits(-1.0)

    def test_rejects_noncanonical(self):
        with pytest.raises(RangeError):
            encode_components(0, 1, 0, BINARY64)  # denormal mantissa, e != min

    def test_exhaustive_binary16_decode_encode(self):
        # Every finite half-precision bit pattern survives the round trip.
        for bits in range(1 << 16):
            sign, be, m = split_bits(bits, BINARY16)
            cls = classify_fields(be, m, BINARY16)
            if cls in (FloatClass.INFINITE, FloatClass.NAN):
                continue
            cls, sign, f, e = decode_fields(sign, be, m, BINARY16)
            assert encode_components(sign, f, e, BINARY16) == bits


class TestDecomposeFloat:
    def test_requires_known_format(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            decompose_float(1.0, BINARY16)

    def test_binary32_packs_first(self):
        # 0.1 is not a binary32 value; decompose rounds like a C cast.
        cls, sign, f, e = decompose_float(0.1, BINARY32)
        assert math.ldexp(f, e) == struct.unpack(
            ">f", struct.pack(">f", 0.1))[0]
