"""Signed integers over :class:`~repro.bignum.natural.BigNat`.

The conversion algorithm itself needs only naturals (every quantity in
Table 1 is non-negative), but the fixed-format significance loop tracks a
remainder that goes negative when the final digit was incremented — this
thin sign-magnitude wrapper covers that, and rounds out the substrate so
it could host the reader too.
"""

from __future__ import annotations

from typing import Tuple

from repro.bignum.natural import BigNat

__all__ = ["BigInt"]


class BigInt:
    """Sign-magnitude integer: ``(-1)**neg * mag``; zero is never negative."""

    __slots__ = ("neg", "mag")

    def __init__(self, neg: bool, mag: BigNat):
        self.neg = neg and not mag.is_zero
        self.mag = mag

    @staticmethod
    def from_int(n: int) -> "BigInt":
        return BigInt(n < 0, BigNat.from_int(abs(n)))

    def to_int(self) -> int:
        val = self.mag.to_int()
        return -val if self.neg else val

    @property
    def is_zero(self) -> bool:
        return self.mag.is_zero

    # ------------------------------------------------------------------

    def add(self, other: "BigInt") -> "BigInt":
        if self.neg == other.neg:
            return BigInt(self.neg, self.mag.add(other.mag))
        cmp = self.mag.compare(other.mag)
        if cmp == 0:
            return BigInt(False, BigNat.zero())
        if cmp > 0:
            return BigInt(self.neg, self.mag.sub(other.mag))
        return BigInt(other.neg, other.mag.sub(self.mag))

    def negate(self) -> "BigInt":
        return BigInt(not self.neg, self.mag)

    def sub(self, other: "BigInt") -> "BigInt":
        return self.add(other.negate())

    def mul(self, other: "BigInt") -> "BigInt":
        return BigInt(self.neg != other.neg, self.mag.mul(other.mag))

    def mul_small(self, k: int) -> "BigInt":
        if k < 0:
            return BigInt(not self.neg, self.mag.mul_small(-k))
        return BigInt(self.neg, self.mag.mul_small(k))

    def divmod_floor(self, other: "BigInt") -> Tuple["BigInt", "BigInt"]:
        """Floor division, matching Python's ``divmod`` semantics."""
        if other.is_zero:
            raise ZeroDivisionError("BigInt division by zero")
        q_mag, r_mag = self.mag.divmod(other.mag)
        if self.neg == other.neg:
            return BigInt(False, q_mag), BigInt(other.neg, r_mag)
        if r_mag.is_zero:
            return BigInt(True, q_mag), BigInt(False, r_mag)
        # Round the quotient toward -inf and flip the remainder.
        q = BigInt(True, q_mag.add(BigNat.one()))
        r = BigInt(other.neg, other.mag.sub(r_mag))
        return q, r

    # ------------------------------------------------------------------

    def compare(self, other: "BigInt") -> int:
        if self.neg != other.neg:
            return -1 if self.neg else 1
        cmp = self.mag.compare(other.mag)
        return -cmp if self.neg else cmp

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, BigInt) and self.neg == other.neg
                and self.mag == other.mag)

    def __lt__(self, other: "BigInt") -> bool:
        return self.compare(other) < 0

    def __le__(self, other: "BigInt") -> bool:
        return self.compare(other) <= 0

    def __hash__(self) -> int:
        return hash((self.neg, self.mag))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BigInt({self.to_int()})"

    __add__ = add
    __sub__ = sub
    __mul__ = mul
