"""High-precision integer substrate: limb arithmetic and power caches."""

from repro.bignum.integer import BigInt
from repro.bignum.natural import LIMB_BASE, LIMB_BITS, BigNat

from repro.bignum.pow_cache import (
    DYNAMIC_CACHE_LIMIT,
    PAPER_TABLE_LIMIT,
    cache_info,
    clear_dynamic_cache,
    inv_log2_of,
    log_ratio,
    power,
    power_uncached,
    set_dynamic_cache_limit,
)

__all__ = [
    "BigInt",
    "BigNat",
    "LIMB_BASE",
    "LIMB_BITS",
    "DYNAMIC_CACHE_LIMIT",
    "PAPER_TABLE_LIMIT",
    "cache_info",
    "clear_dynamic_cache",
    "inv_log2_of",
    "log_ratio",
    "power",
    "power_uncached",
    "set_dynamic_cache_limit",
]
