"""Limb-based natural-number arithmetic (the high-precision substrate).

The paper's implementation language (Scheme) has native bignums; Python
does too.  This module exists to demonstrate — and let the benches
measure — that the conversion algorithm needs only a small set of integer
operations, implementable portably: addition, subtraction, comparison,
multiplication, and quotient/remainder.  A run-time system without native
bignums would port exactly this file.

Representation: little-endian list of 30-bit limbs, no leading zero limb
(zero is the empty list).  Division is Knuth's Algorithm D with the
standard two-limb quotient estimate; multiplication switches to Karatsuba
above a threshold.  Everything is property-tested against Python ints.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import RangeError

__all__ = ["BigNat", "LIMB_BITS", "LIMB_BASE"]

LIMB_BITS = 30
LIMB_BASE = 1 << LIMB_BITS
_LIMB_MASK = LIMB_BASE - 1

#: Schoolbook→Karatsuba crossover, in limbs.
_KARATSUBA_CUTOFF = 48


class BigNat:
    """An arbitrary-precision natural number."""

    __slots__ = ("limbs",)

    def __init__(self, limbs: List[int]):
        # Trusted constructor: callers must pass a normalized limb list.
        self.limbs = limbs

    # ------------------------------------------------------------------
    # Conversions.
    # ------------------------------------------------------------------

    @staticmethod
    def from_int(n: int) -> "BigNat":
        if n < 0:
            raise RangeError("BigNat is unsigned")
        limbs: List[int] = []
        while n:
            limbs.append(n & _LIMB_MASK)
            n >>= LIMB_BITS
        return BigNat(limbs)

    def to_int(self) -> int:
        n = 0
        for limb in reversed(self.limbs):
            n = (n << LIMB_BITS) | limb
        return n

    @staticmethod
    def zero() -> "BigNat":
        return BigNat([])

    @staticmethod
    def one() -> "BigNat":
        return BigNat([1])

    # ------------------------------------------------------------------
    # Predicates and comparison.
    # ------------------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        return not self.limbs

    def bit_length(self) -> int:
        if not self.limbs:
            return 0
        return (len(self.limbs) - 1) * LIMB_BITS + self.limbs[-1].bit_length()

    def compare(self, other: "BigNat") -> int:
        a, b = self.limbs, other.limbs
        if len(a) != len(b):
            return 1 if len(a) > len(b) else -1
        for x, y in zip(reversed(a), reversed(b)):
            if x != y:
                return 1 if x > y else -1
        return 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BigNat) and self.limbs == other.limbs

    def __lt__(self, other: "BigNat") -> bool:
        return self.compare(other) < 0

    def __le__(self, other: "BigNat") -> bool:
        return self.compare(other) <= 0

    def __gt__(self, other: "BigNat") -> bool:
        return self.compare(other) > 0

    def __ge__(self, other: "BigNat") -> bool:
        return self.compare(other) >= 0

    def __hash__(self) -> int:
        return hash(tuple(self.limbs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BigNat({self.to_int()})"

    # ------------------------------------------------------------------
    # Addition / subtraction.
    # ------------------------------------------------------------------

    def add(self, other: "BigNat") -> "BigNat":
        a, b = self.limbs, other.limbs
        if len(a) < len(b):
            a, b = b, a
        out: List[int] = []
        carry = 0
        for i, limb in enumerate(a):
            s = limb + carry + (b[i] if i < len(b) else 0)
            out.append(s & _LIMB_MASK)
            carry = s >> LIMB_BITS
        if carry:
            out.append(carry)
        return BigNat(out)

    def sub(self, other: "BigNat") -> "BigNat":
        """``self - other``; raises if the result would be negative."""
        if self.compare(other) < 0:
            raise RangeError("BigNat subtraction underflow")
        a, b = self.limbs, other.limbs
        out: List[int] = []
        borrow = 0
        for i, limb in enumerate(a):
            d = limb - borrow - (b[i] if i < len(b) else 0)
            if d < 0:
                d += LIMB_BASE
                borrow = 1
            else:
                borrow = 0
            out.append(d)
        while out and out[-1] == 0:
            out.pop()
        return BigNat(out)

    __add__ = add
    __sub__ = sub

    # ------------------------------------------------------------------
    # Multiplication.
    # ------------------------------------------------------------------

    def mul_small(self, k: int) -> "BigNat":
        """Multiply by a non-negative machine-size integer."""
        if k < 0:
            raise RangeError("mul_small takes a non-negative factor")
        if k == 0 or not self.limbs:
            return BigNat([])
        if k == 1:
            return BigNat(self.limbs[:])
        out: List[int] = []
        carry = 0
        for limb in self.limbs:
            prod = limb * k + carry
            out.append(prod & _LIMB_MASK)
            carry = prod >> LIMB_BITS
        while carry:
            out.append(carry & _LIMB_MASK)
            carry >>= LIMB_BITS
        return BigNat(out)

    def mul(self, other: "BigNat") -> "BigNat":
        a, b = self.limbs, other.limbs
        if not a or not b:
            return BigNat([])
        if min(len(a), len(b)) >= _KARATSUBA_CUTOFF:
            return self._karatsuba(other)
        return BigNat(_school_mul(a, b))

    __mul__ = mul

    def _karatsuba(self, other: "BigNat") -> "BigNat":
        a, b = self, other
        n = max(len(a.limbs), len(b.limbs))
        half = n // 2
        a0, a1 = a._split(half)
        b0, b1 = b._split(half)
        z0 = a0.mul(b0)
        z2 = a1.mul(b1)
        z1 = (a0.add(a1)).mul(b0.add(b1)).sub(z0).sub(z2)
        return z0.add(z1._shift_limbs(half)).add(z2._shift_limbs(2 * half))

    def _split(self, at: int) -> Tuple["BigNat", "BigNat"]:
        lo = self.limbs[:at]
        while lo and lo[-1] == 0:
            lo.pop()
        return BigNat(lo), BigNat(self.limbs[at:])

    def _shift_limbs(self, count: int) -> "BigNat":
        if not self.limbs:
            return self
        return BigNat([0] * count + self.limbs)

    # ------------------------------------------------------------------
    # Shifts.
    # ------------------------------------------------------------------

    def shift_left(self, bits: int) -> "BigNat":
        if bits < 0:
            raise RangeError("negative shift")
        if not self.limbs or bits == 0:
            return BigNat(self.limbs[:])
        limb_shift, bit_shift = divmod(bits, LIMB_BITS)
        out = [0] * limb_shift
        carry = 0
        for limb in self.limbs:
            merged = (limb << bit_shift) | carry
            out.append(merged & _LIMB_MASK)
            carry = merged >> LIMB_BITS
        if carry:
            out.append(carry)
        return BigNat(out)

    def shift_right(self, bits: int) -> "BigNat":
        if bits < 0:
            raise RangeError("negative shift")
        limb_shift, bit_shift = divmod(bits, LIMB_BITS)
        src = self.limbs[limb_shift:]
        if not src:
            return BigNat([])
        if bit_shift == 0:
            out = src[:]
        else:
            out = []
            for i, limb in enumerate(src):
                val = limb >> bit_shift
                if i + 1 < len(src):
                    val |= (src[i + 1] << (LIMB_BITS - bit_shift)) & _LIMB_MASK
                out.append(val)
        while out and out[-1] == 0:
            out.pop()
        return BigNat(out)

    # ------------------------------------------------------------------
    # Division.
    # ------------------------------------------------------------------

    def divmod_small(self, k: int) -> Tuple["BigNat", int]:
        """Divide by a machine-size positive integer."""
        if k <= 0:
            raise RangeError("divmod_small needs a positive divisor")
        out = [0] * len(self.limbs)
        rem = 0
        for i in range(len(self.limbs) - 1, -1, -1):
            cur = (rem << LIMB_BITS) | self.limbs[i]
            out[i], rem = divmod(cur, k)
        while out and out[-1] == 0:
            out.pop()
        return BigNat(out), rem

    def divmod(self, other: "BigNat") -> Tuple["BigNat", "BigNat"]:
        """Knuth Algorithm D quotient and remainder."""
        if other.is_zero:
            raise ZeroDivisionError("BigNat division by zero")
        if self.compare(other) < 0:
            return BigNat([]), BigNat(self.limbs[:])
        if len(other.limbs) == 1:
            q, r = self.divmod_small(other.limbs[0])
            return q, BigNat([r] if r else [])

        # D1: normalize so the divisor's top limb has its high bit set.
        shift = LIMB_BITS - other.limbs[-1].bit_length()
        u = self.shift_left(shift).limbs[:]
        v = other.shift_left(shift).limbs
        n = len(v)
        m = len(u) - n
        u.append(0)
        q_limbs = [0] * (m + 1)
        v_top = v[-1]
        v_next = v[-2]

        for j in range(m, -1, -1):
            # D3: estimate the quotient limb from the top two/three limbs.
            top = (u[j + n] << LIMB_BITS) | u[j + n - 1]
            qhat, rhat = divmod(top, v_top)
            while qhat >= LIMB_BASE or (
                    qhat * v_next > ((rhat << LIMB_BITS) | u[j + n - 2])):
                qhat -= 1
                rhat += v_top
                if rhat >= LIMB_BASE:
                    break
            # D4: multiply-subtract.
            borrow = 0
            carry = 0
            for i in range(n):
                prod = qhat * v[i] + carry
                carry = prod >> LIMB_BITS
                d = u[j + i] - (prod & _LIMB_MASK) - borrow
                if d < 0:
                    d += LIMB_BASE
                    borrow = 1
                else:
                    borrow = 0
                u[j + i] = d
            d = u[j + n] - carry - borrow
            if d < 0:
                # D6: estimate was one too big; add the divisor back.
                d += LIMB_BASE
                qhat -= 1
                carry = 0
                for i in range(n):
                    s = u[j + i] + v[i] + carry
                    u[j + i] = s & _LIMB_MASK
                    carry = s >> LIMB_BITS
                d = (d + carry) & _LIMB_MASK
            u[j + n] = d
            q_limbs[j] = qhat

        while q_limbs and q_limbs[-1] == 0:
            q_limbs.pop()
        rem = BigNat(_normalized(u[:n])).shift_right(shift)
        return BigNat(q_limbs), rem

    def __divmod__(self, other: "BigNat"):
        return self.divmod(other)


def _normalized(limbs: List[int]) -> List[int]:
    while limbs and limbs[-1] == 0:
        limbs.pop()
    return limbs


def _school_mul(a: List[int], b: List[int]) -> List[int]:
    out = [0] * (len(a) + len(b))
    for i, x in enumerate(a):
        if x == 0:
            continue
        carry = 0
        for j, y in enumerate(b):
            acc = out[i + j] + x * y + carry
            out[i + j] = acc & _LIMB_MASK
            carry = acc >> LIMB_BITS
        pos = i + len(b)
        while carry:
            acc = out[pos] + carry
            out[pos] = acc & _LIMB_MASK
            carry = acc >> LIMB_BITS
            pos += 1
    return _normalized(out)
