"""Cached powers and logarithm tables (paper Figure 2's ``exptt``/``logB``).

The scaling step multiplies big integers by ``B**k`` for potentially large
``k``; recomputing these powers dominates runtime, so the paper keeps a
table of ``10**k`` for ``0 <= k <= 325`` (enough for IEEE double precision)
and a table of ``1/log2 B`` for ``2 <= B <= 36``.  We reproduce both and
back them with a *bounded* LRU memo for other bases and exponents, safe for
concurrent use (the engine serves conversions from multiple threads).

Formats whose exponent range outgrows the paper table (binary128 needs
``10**k`` for k up to ~5000) should use the per-format tables in
:mod:`repro.engine.tables`, which are sized once and never evict.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Dict, Tuple

__all__ = [
    "PAPER_TABLE_LIMIT",
    "DYNAMIC_CACHE_LIMIT",
    "power",
    "power_uncached",
    "inv_log2_of",
    "log_ratio",
    "cache_info",
    "clear_dynamic_cache",
    "set_dynamic_cache_limit",
]

#: The paper's table covers 10**k for 0 <= k <= 325, "sufficient to handle
#: all IEEE double-precision floating-point numbers".
PAPER_TABLE_LIMIT = 326

#: Default bound on the dynamic memo.  Each entry can be a very large
#: integer (10**5000 is ~2 KB), so an unbounded memo is a slow leak under
#: adversarial exponent traffic; beyond this many entries the least
#: recently used power is dropped.
DYNAMIC_CACHE_LIMIT = 512

_TEN_POWERS = []
_acc = 1
for _ in range(PAPER_TABLE_LIMIT):
    _TEN_POWERS.append(_acc)
    _acc *= 10
del _acc

#: 1/log2(B) for 2 <= B <= 36 (Figure 3's ``invlog2of``).  Index 0/1 unused.
_INV_LOG2 = [0.0, 0.0] + [1.0 / math.log2(B) for B in range(2, 37)]

_dynamic: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
_dynamic_lock = threading.Lock()
_dynamic_limit = DYNAMIC_CACHE_LIMIT
_evictions = 0
_hits = 0
_misses = 0


def power(base: int, k: int) -> int:
    """``base**k`` with the paper's lookup-table fast path (k >= 0).

    Misses of the base-10 table go through a bounded LRU memo guarded by a
    lock, so concurrent printers can share the cache without corrupting
    its eviction order.
    """
    global _evictions, _hits, _misses
    if k < 0:
        raise ValueError(f"negative exponent {k}")
    if base == 10 and k < PAPER_TABLE_LIMIT:
        return _TEN_POWERS[k]
    key = (base, k)
    with _dynamic_lock:
        cached = _dynamic.get(key)
        if cached is not None:
            _hits += 1
            _dynamic.move_to_end(key)
            return cached
        _misses += 1
    # Compute outside the lock: base**k can be slow for huge k, and the
    # worst a race costs is one redundant computation.
    value = base**k
    with _dynamic_lock:
        _dynamic[key] = value
        _dynamic.move_to_end(key)
        while len(_dynamic) > _dynamic_limit:
            _dynamic.popitem(last=False)
            _evictions += 1
    return value


def power_uncached(base: int, k: int) -> int:
    """``base**k`` with no caching — the ablation baseline."""
    if k < 0:
        raise ValueError(f"negative exponent {k}")
    return base**k


def inv_log2_of(base: int) -> float:
    """``1 / log2(base)``, table-backed for 2 <= base <= 36."""
    if 2 <= base <= 36:
        return _INV_LOG2[base]
    return 1.0 / math.log2(base)


def log_ratio(b: int, base: int) -> float:
    """``log_b(base)⁻¹ = log(b)/log(base)`` — converts base-``b`` digit
    counts to base-``base`` logarithms for radix-``b`` formats."""
    if b == 2:
        return inv_log2_of(base)
    return math.log(b) / math.log(base)


def cache_info() -> Dict[str, int]:
    """Introspection for tests and the pow-cache ablation bench."""
    with _dynamic_lock:
        return {
            "ten_table": len(_TEN_POWERS),
            "dynamic_entries": len(_dynamic),
            "dynamic_limit": _dynamic_limit,
            "evictions": _evictions,
            "hits": _hits,
            "misses": _misses,
        }


def set_dynamic_cache_limit(limit: int) -> None:
    """Resize the dynamic memo bound (evicting immediately if shrinking)."""
    global _dynamic_limit, _evictions
    if limit < 1:
        raise ValueError("cache limit must be >= 1")
    with _dynamic_lock:
        _dynamic_limit = limit
        while len(_dynamic) > _dynamic_limit:
            _dynamic.popitem(last=False)
            _evictions += 1


def clear_dynamic_cache() -> None:
    """Drop memoised powers (used between ablation bench rounds)."""
    global _evictions, _hits, _misses
    with _dynamic_lock:
        _dynamic.clear()
        _evictions = 0
        _hits = 0
        _misses = 0
