"""Cached powers and logarithm tables (paper Figure 2's ``exptt``/``logB``).

The scaling step multiplies big integers by ``B**k`` for potentially large
``k``; recomputing these powers dominates runtime, so the paper keeps a
table of ``10**k`` for ``0 <= k <= 325`` (enough for IEEE double precision)
and a table of ``1/log2 B`` for ``2 <= B <= 36``.  We reproduce both and
back them with an unbounded memo for other bases and exponents (binary128
needs ``10**k`` for k up to ~5000).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

__all__ = [
    "PAPER_TABLE_LIMIT",
    "power",
    "power_uncached",
    "inv_log2_of",
    "log_ratio",
    "cache_info",
    "clear_dynamic_cache",
]

#: The paper's table covers 10**k for 0 <= k <= 325, "sufficient to handle
#: all IEEE double-precision floating-point numbers".
PAPER_TABLE_LIMIT = 326

_TEN_POWERS = []
_acc = 1
for _ in range(PAPER_TABLE_LIMIT):
    _TEN_POWERS.append(_acc)
    _acc *= 10
del _acc

#: 1/log2(B) for 2 <= B <= 36 (Figure 3's ``invlog2of``).  Index 0/1 unused.
_INV_LOG2 = [0.0, 0.0] + [1.0 / math.log2(B) for B in range(2, 37)]

_dynamic: Dict[Tuple[int, int], int] = {}


def power(base: int, k: int) -> int:
    """``base**k`` with the paper's lookup-table fast path (k >= 0)."""
    if k < 0:
        raise ValueError(f"negative exponent {k}")
    if base == 10 and k < PAPER_TABLE_LIMIT:
        return _TEN_POWERS[k]
    key = (base, k)
    cached = _dynamic.get(key)
    if cached is None:
        cached = base**k
        _dynamic[key] = cached
    return cached


def power_uncached(base: int, k: int) -> int:
    """``base**k`` with no caching — the ablation baseline."""
    if k < 0:
        raise ValueError(f"negative exponent {k}")
    return base**k


def inv_log2_of(base: int) -> float:
    """``1 / log2(base)``, table-backed for 2 <= base <= 36."""
    if 2 <= base <= 36:
        return _INV_LOG2[base]
    return 1.0 / math.log2(base)


def log_ratio(b: int, base: int) -> float:
    """``log_b(base)⁻¹ = log(b)/log(base)`` — converts base-``b`` digit
    counts to base-``base`` logarithms for radix-``b`` formats."""
    if b == 2:
        return inv_log2_of(base)
    return math.log(b) / math.log(base)


def cache_info() -> Dict[str, int]:
    """Introspection for tests and the pow-cache ablation bench."""
    return {
        "ten_table": len(_TEN_POWERS),
        "dynamic_entries": len(_dynamic),
    }


def clear_dynamic_cache() -> None:
    """Drop memoised powers (used between ablation bench rounds)."""
    _dynamic.clear()
