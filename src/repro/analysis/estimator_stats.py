"""Estimator-accuracy analysis (paper §3.2's claims, quantified).

The paper's accuracy statements — the simple estimate "never overshoots
log_B v, and it undershoots by no more than 1/log₂B < 0.631", hence "is
k or k-1" — are checked here two ways: an empirical scan over a corpus
(distribution of ``k - estimate`` per estimator) and an exact-arithmetic
worst-case probe that searches mantissa extremes for the largest
observed undershoot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable

from repro.baselines.gay_estimator import gay_estimate_k
from repro.core.boundaries import adjust_for_mode, initial_scaled_value
from repro.core.rounding import ReaderMode
from repro.core.scaling import (
    estimate_k_fast,
    estimate_k_float_log,
    scale_iterative,
)
from repro.floats.formats import FloatFormat
from repro.floats.model import Flonum

__all__ = ["EstimatorAccuracy", "accuracy_scan", "ESTIMATORS",
           "undershoot_bound", "worst_undershoot"]

ESTIMATORS: Dict[str, Callable[[Flonum, int], int]] = {
    "fast": estimate_k_fast,
    "float-log": estimate_k_float_log,
    "gay": lambda v, base: gay_estimate_k(v),
}


def true_k(v: Flonum, base: int = 10) -> int:
    """Exact scaling factor via the iterative algorithm."""
    sv = adjust_for_mode(v, *initial_scaled_value(v),
                         ReaderMode.NEAREST_UNKNOWN)
    return scale_iterative(sv, base, v)[0]


@dataclass
class EstimatorAccuracy:
    """Distribution of ``true_k - estimate`` for one estimator."""

    name: str
    offsets: Dict[int, int] = field(default_factory=dict)

    def add(self, offset: int) -> None:
        self.offsets[offset] = self.offsets.get(offset, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.offsets.values())

    @property
    def exact_rate(self) -> float:
        return self.offsets.get(0, 0) / self.total if self.total else 0.0

    @property
    def never_overshoots(self) -> bool:
        return all(off >= 0 for off in self.offsets)

    @property
    def max_undershoot(self) -> int:
        return max(self.offsets) if self.offsets else 0


def accuracy_scan(values: Iterable[Flonum], base: int = 10
                  ) -> Dict[str, EstimatorAccuracy]:
    """Run every estimator over a corpus against the exact ``k``."""
    results = {name: EstimatorAccuracy(name) for name in ESTIMATORS}
    for v in values:
        k = true_k(v, base)
        for name, est in ESTIMATORS.items():
            results[name].add(k - est(v, base))
    return results


def undershoot_bound(radix: int, base: int) -> float:
    """The paper's analytic undershoot bound: ``log_base(radix)``.

    For radix 2, base 10 this is ≈ 0.30103 of a decimal order per lost
    bit of mantissa information — at most one whole decimal order, so
    the estimate is ``k`` or ``k - 1`` (0.631 is the paper's bound for
    the worst base, B = 3).
    """
    return math.log(radix) / math.log(base)


def worst_undershoot(fmt: FloatFormat, base: int = 10, samples: int = 200
                     ) -> float:
    """Largest observed ``log_B v - estimate_input`` over mantissa extremes.

    The fast estimator discards the mantissa fraction; the loss is
    maximal for all-ones mantissas just below a power of the radix.
    Returns the largest observed fractional loss (in base-``base``
    orders), which must stay below :func:`undershoot_bound` + epsilon.
    """
    worst = 0.0
    b = fmt.radix
    step = max(1, (fmt.max_e - fmt.min_e) // samples)
    for e in range(fmt.min_e, fmt.max_e + 1, step):
        v = Flonum.finite(0, fmt.mantissa_limit - 1, e, fmt)
        exact_log = (math.log(v.f) + e * math.log(b)) / math.log(base)
        floor_est = (v.e + v.f.bit_length() - 1 if b == 2 else None)
        if floor_est is None:  # pragma: no cover - b != 2 unused here
            continue
        est_log = floor_est * math.log(b) / math.log(base)
        worst = max(worst, exact_log - est_log)
    return worst
