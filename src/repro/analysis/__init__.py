"""Measurement utilities behind the paper's in-text claims."""

from repro.analysis.digit_stats import (
    DigitLengthStats,
    digit_length_stats,
    histogram_lines,
)
from repro.analysis.hardness import (
    hard_print_values,
    hard_read_cases,
    shortest_length_census,
)
from repro.analysis.estimator_stats import (
    ESTIMATORS,
    EstimatorAccuracy,
    accuracy_scan,
    true_k,
    undershoot_bound,
    worst_undershoot,
)

__all__ = [
    "hard_print_values",
    "hard_read_cases",
    "shortest_length_census",
    "DigitLengthStats",
    "digit_length_stats",
    "histogram_lines",
    "ESTIMATORS",
    "EstimatorAccuracy",
    "accuracy_scan",
    "true_k",
    "undershoot_bound",
    "worst_undershoot",
]
