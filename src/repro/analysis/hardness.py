"""Adversarial-case generators: inputs that stress readers and printers.

Two families the conversion literature uses to break implementations:

* **hard-to-read literals** — decimal strings lying extremely close to a
  rounding boundary, where a reader needs many guard digits to decide
  (the inputs that defeat truncating fast paths and expose off-by-one
  ulp bugs in strtod);
* **hard-to-print values** — floats whose shortest output needs the
  format's maximal digit count, i.e. whose rounding interval contains no
  short decimal.

Both are derived *constructively* from the format's own boundary
structure rather than found by blind search, so a few hundred cases give
systematic coverage.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Tuple

from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.floats.ulp import midpoint_high

__all__ = ["hard_read_cases", "hard_print_values", "shortest_length_census"]


def hard_read_cases(fmt: FloatFormat = BINARY64, count: int = 100,
                    digits: int = 30, seed: int = 1996
                    ) -> List[Tuple[str, Flonum]]:
    """Literals within 10**-digits (relative) of a rounding boundary.

    Each case is ``(text, expected)``: the text is the upper midpoint of
    a random value truncated to ``digits`` significant digits — i.e. it
    sits just *below* the boundary, so the expected result is the value
    itself, and any reader that guesses from the first ~17 digits gets
    it wrong half the time.
    """
    rng = random.Random(seed)
    cases: List[Tuple[str, Flonum]] = []
    lo, hi = fmt.hidden_limit, fmt.mantissa_limit - 1
    while len(cases) < count:
        f = rng.randrange(lo, hi + 1)
        e = rng.randrange(fmt.min_e, fmt.max_e + 1)
        v = Flonum.finite(0, f, e, fmt)
        boundary = midpoint_high(v)
        text = _truncate_to_digits(boundary, digits)
        if text is None:
            continue
        # Truncation keeps the value strictly below the boundary, so it
        # must read back as v under any round-to-nearest mode... unless
        # truncation hit the boundary exactly (terminating expansion).
        value = _parse_fraction(text)
        if not value < boundary:
            continue
        cases.append((text, v))
    return cases


def _truncate_to_digits(value: Fraction, digits: int):
    """Decimal literal of ``value`` truncated to ``digits`` sig. digits."""
    if value <= 0:
        return None
    num, den = value.numerator, value.denominator
    # Position of the first digit.
    from repro.reader.exact import ilog

    e = ilog(num, den, 10)
    shift = digits - 1 - e
    if shift >= 0:
        mantissa = num * 10**shift // den
    else:
        mantissa = num // (den * 10**-shift)
    return f"{mantissa}e{e - digits + 1}"


def _parse_fraction(text: str) -> Fraction:
    from repro.reader.parse import parse_decimal

    return parse_decimal(text).to_fraction()


def hard_print_values(fmt: FloatFormat = BINARY64, count: int = 50,
                      seed: int = 1996) -> List[Flonum]:
    """Values whose shortest output needs the format's maximal length.

    Random search filtered by actual shortest length; values needing
    ``decimal_digits_to_distinguish()`` digits are dense enough (tens of
    percent) that this terminates quickly.
    """
    target = fmt.decimal_digits_to_distinguish()
    rng = random.Random(seed)
    out: List[Flonum] = []
    lo, hi = fmt.hidden_limit, fmt.mantissa_limit - 1
    attempts = 0
    while len(out) < count and attempts < count * 200:
        attempts += 1
        f = rng.randrange(lo, hi + 1)
        e = rng.randrange(fmt.min_e, fmt.max_e + 1)
        v = Flonum.finite(0, f, e, fmt)
        if len(shortest_digits(v).digits) >= target:
            out.append(v)
    return out


def shortest_length_census(fmt: FloatFormat, exponent: int) -> dict:
    """Exact distribution of shortest lengths across one binade.

    Exhaustive over every mantissa at the given exponent — practical for
    narrow formats (binary16: 1024 values per binade).
    """
    counts: dict = {}
    for f in range(fmt.hidden_limit, fmt.mantissa_limit):
        v = Flonum.finite(0, f, exponent, fmt)
        n = len(shortest_digits(v, mode=ReaderMode.NEAREST_EVEN).digits)
        counts[n] = counts.get(n, 0) + 1
    return counts
