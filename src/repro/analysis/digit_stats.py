"""Digit-length statistics (the paper's "15.2 digits on average").

Section 5 justifies Table 3's workload with one scalar: "The average
number of digits needed is 15.2, so the free-format algorithm has no
particular advantage over the fixed-format algorithm" (which always
prints 17).  This module computes that distribution for any corpus,
format, reader mode and base, so the claim can be re-measured rather
than quoted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.floats.model import Flonum

__all__ = ["DigitLengthStats", "digit_length_stats", "histogram_lines"]


@dataclass
class DigitLengthStats:
    """Distribution of shortest-output digit counts over a corpus."""

    counts: Dict[int, int] = field(default_factory=dict)

    def add(self, length: int) -> None:
        self.counts[length] = self.counts.get(length, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def mean(self) -> float:
        if not self.counts:
            return 0.0
        return sum(n * c for n, c in self.counts.items()) / self.total

    @property
    def max_length(self) -> int:
        return max(self.counts) if self.counts else 0

    @property
    def min_length(self) -> int:
        return min(self.counts) if self.counts else 0

    def quantile(self, q: float) -> int:
        """Smallest length covering fraction ``q`` of the corpus."""
        if not 0 <= q <= 1:
            raise ValueError("quantile in [0, 1]")
        need = q * self.total
        seen = 0
        for length in sorted(self.counts):
            seen += self.counts[length]
            if seen >= need:
                return length
        return self.max_length  # pragma: no cover - loop always returns


def digit_length_stats(values: Iterable[Flonum], base: int = 10,
                       mode: ReaderMode = ReaderMode.NEAREST_EVEN
                       ) -> DigitLengthStats:
    """Shortest-output length distribution of ``values``."""
    stats = DigitLengthStats()
    for v in values:
        stats.add(len(shortest_digits(v, base=base, mode=mode).digits))
    return stats


def histogram_lines(stats: DigitLengthStats, width: int = 50) -> List[str]:
    """A text histogram, one line per digit count."""
    if not stats.counts:
        return ["(empty)"]
    peak = max(stats.counts.values())
    lines = []
    for length in range(stats.min_length, stats.max_length + 1):
        count = stats.counts.get(length, 0)
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        share = count / stats.total
        lines.append(f"{length:3d} | {bar:<{width}s} {share:6.1%}")
    lines.append(f"mean = {stats.mean:.2f} digits over {stats.total} values")
    return lines
