"""Fixed-format output with ``#`` marks (paper Section 4).

Fixed-format printing stops at a requested digit position — *absolute*
(``j``: the weight exponent of the last digit, so ``j = -2`` means
hundredths) or *relative* (``i``: the number of digits to produce).  The
key idea is to reuse the free-format machinery with a conditionally
*expanded* rounding range:

* the output must be correctly rounded at position ``j``, i.e. within
  ``B**j / 2`` of ``v``;
* but every real between the neighbour midpoints is indistinguishable from
  ``v``, so when the representation's gap half-width exceeds ``B**j / 2``
  the wider bound governs — and digits beyond the point where *any* digit
  choice stays inside the range are insignificant, printed as ``#``.

The termination conditions gain equality exactly on the sides where the
``B**j / 2`` expansion won (those endpoints are genuinely half-way, hence
acceptable for correct rounding), which also guarantees the loop never
runs past position ``j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple

from repro.bignum.pow_cache import power
from repro.core.boundaries import ScaledValue, initial_scaled_value
from repro.core.digits import generate_digits
from repro.core.rounding import TieBreak
from repro.core.scaling import apply_estimate, estimate_k_fast
from repro.errors import RangeError
from repro.floats.model import Flonum

__all__ = ["FixedResult", "fixed_digits"]

HASH_MARK = "#"


@dataclass(frozen=True)
class FixedResult:
    """A fixed-format digit string.

    The digits (then ``hashes`` ``#`` marks) occupy positions ``k-1`` down
    to ``position``; ``len(digits) + hashes == k - position``.  A rounded-
    to-zero result has ``digits == ()`` and ``k == position``.
    """

    k: int
    digits: Tuple[int, ...]
    hashes: int
    position: int
    base: int = 10

    @property
    def is_zero(self) -> bool:
        return not self.digits

    @property
    def ndigits(self) -> int:
        return len(self.digits)

    def to_fraction(self) -> Fraction:
        """The exact value with ``#`` marks read as zeros."""
        acc = 0
        for d in self.digits:
            acc = acc * self.base + d
        return acc * Fraction(self.base) ** (self.k - len(self.digits))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        body = "".join("0123456789abcdefghijklmnopqrstuvwxyz"[d]
                       for d in self.digits) + HASH_MARK * self.hashes
        return f"0.{body}e{self.k}@{self.position}"


def fixed_digits(v: Flonum, position: Optional[int] = None,
                 ndigits: Optional[int] = None, base: int = 10,
                 tie: TieBreak = TieBreak.UP) -> FixedResult:
    """Fixed-format digits of a positive finite ``v``.

    Exactly one of ``position`` (absolute mode: weight exponent of the last
    digit) and ``ndigits`` (relative mode: total digits to produce) must be
    given.  Sign, zero and specials are the string-level API's job.
    """
    if base < 2 or base > 36:
        raise RangeError(f"output base must be in 2..36, got {base}")
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("fixed_digits requires a positive finite value")
    if (position is None) == (ndigits is None):
        raise RangeError("give exactly one of position= or ndigits=")
    if position is not None:
        return _fixed_absolute(v, position, base, tie)
    if ndigits < 1:
        raise RangeError(f"ndigits must be >= 1, got {ndigits}")
    return _fixed_relative(v, ndigits, base, tie)


def _fixed_absolute(v: Flonum, j: int, base: int, tie: TieBreak
                    ) -> FixedResult:
    """Absolute digit position: stop at the digit of weight ``base**j``."""
    r, s, m_plus, m_minus = initial_scaled_value(v)

    # Expansion margin: B**j / 2 over the common denominator.  s carries a
    # factor of two by construction, so s//2 is exact; negative j rescales
    # the whole state instead of introducing a fraction.
    if j >= 0:
        m_exp = (s // 2) * power(base, j)
    else:
        m_exp = s // 2
        factor = power(base, -j)
        r *= factor
        s *= factor
        m_plus *= factor
        m_minus *= factor

    # The endpoints are attainable (inclusive termination) exactly on the
    # sides where the requested-precision margin is at least the gap margin.
    low_ok = m_exp >= m_minus
    high_ok = m_exp >= m_plus
    sv = ScaledValue(r, s, max(m_plus, m_exp), max(m_minus, m_exp),
                     low_ok, high_ok)

    # Estimate k from v, floored at j: the expanded high is at least
    # B**j / 2, so k >= j; the fixup loop absorbs any remaining undershoot.
    est = max(estimate_k_fast(v, base), j)
    k, r, s, mp, mm = apply_estimate(sv, base, est)

    if k <= j:
        # high <= B**j: no digit position at or above j can be non-zero, so
        # v rounds to zero at this precision (see tests for the boundary
        # analysis; k < j cannot occur).
        return FixedResult(k=j, digits=(), hashes=0, position=j, base=base)

    digits, state = generate_digits(r, s, mp, mm, base, low_ok, high_ok, tie)
    if not any(digits):
        # A tie at the leading digit can resolve downward to an all-zero
        # string (e.g. 0.5 at position 0 with ties-down): that is the zero
        # output, canonicalized like the k <= j case.
        return FixedResult(k=j, digits=(), hashes=0, position=j, base=base)
    pos = k - len(digits)
    if pos < j:  # pragma: no cover - excluded by the extended conditions
        raise AssertionError("generated past the requested position")
    if pos == j:
        return FixedResult(k=k, digits=tuple(digits), hashes=0,
                           position=j, base=base)

    if low_ok and high_ok:
        # Both endpoints came from the B**j/2 expansion: the representation
        # is precise enough that every remaining position is significant.
        digits.extend([0] * (pos - j))
        return FixedResult(k=k, digits=tuple(digits), hashes=0,
                           position=j, base=base)

    # Limited precision: emit zeros while they are significant, then #
    # marks.  Position m is insignificant when incrementing the digit at
    # m+1 keeps the value inside the range: V + B**(m+1) <= high, i.e.
    # rr + m+ >= s at the current scale (rr tracks v - V and is negative
    # when the final digit was incremented).
    rr = state.chosen_r
    mp_run = state.m_plus
    s = state.s
    hashes = 0
    while pos > j:
        insignificant = (rr + mp_run >= s) if high_ok else (rr + mp_run > s)
        if insignificant:
            hashes = pos - j
            break
        digits.append(0)
        rr *= base
        mp_run *= base
        pos -= 1
    return FixedResult(k=k, digits=tuple(digits), hashes=hashes,
                       position=j, base=base)


def _fixed_relative(v: Flonum, i: int, base: int, tie: TieBreak
                    ) -> FixedResult:
    """Relative mode: produce ``i`` digit positions (digits plus ``#``).

    The absolute position is ``j = k - i``, but ``k`` itself can depend on
    the expansion (which depends on ``j``).  Per the paper, start from the
    estimate ignoring the expansion and refine: the absolute-mode run
    recomputes the true ``k`` for its ``j``, and one refinement suffices
    (the expanded high exceeds the unexpanded ``B**k`` bound by less than a
    factor of ``B``).
    """
    r, s, m_plus, m_minus = initial_scaled_value(v)
    # k ignoring the expansion, computed with conservative (exclusive)
    # endpoints — matches the paper's khat = ceil(log_B (v + v+)/2).
    sv = ScaledValue(r, s, m_plus, m_minus, False, False)
    k_hat, *_ = apply_estimate(sv, base, estimate_k_fast(v, base))

    k = k_hat
    for _ in range(3):
        result = _fixed_absolute(v, k - i, base, tie)
        if result.k == k or result.is_zero:
            return result
        k = result.k
    raise AssertionError(  # pragma: no cover - paper: one refinement max
        "relative-position refinement failed to converge")
