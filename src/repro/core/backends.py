"""The free-format driver over the limb-based bignum substrate.

Demonstrates (and lets the A3 ablation measure) that the algorithm's
arithmetic needs are exactly the :class:`~repro.bignum.natural.BigNat`
operation set — a port target for run-time systems without native
bignums.  Digit-for-digit equality with the native-int driver is a
property test.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bignum.natural import BigNat
from repro.core.boundaries import adjust_for_mode, initial_scaled_value
from repro.core.digits import DigitResult
from repro.core.rounding import ReaderMode, TieBreak
from repro.core.scaling import estimate_k_fast
from repro.errors import RangeError
from repro.floats.model import Flonum

__all__ = ["shortest_digits_bignat", "bignat_pow"]

_POW_CACHE: Dict[Tuple[int, int], BigNat] = {}


def bignat_pow(base: int, k: int) -> BigNat:
    """``base**k`` by square-and-multiply over BigNat (cached)."""
    if k < 0:
        raise RangeError("negative exponent")
    key = (base, k)
    got = _POW_CACHE.get(key)
    if got is not None:
        return got
    result = BigNat.one()
    factor = BigNat.from_int(base)
    n = k
    while n:
        if n & 1:
            result = result.mul(factor)
        n >>= 1
        if n:
            factor = factor.mul(factor)
    _POW_CACHE[key] = result
    return result


def shortest_digits_bignat(v: Flonum, base: int = 10,
                           mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                           tie: TieBreak = TieBreak.UP) -> DigitResult:
    """Free-format conversion executed entirely on BigNat arithmetic.

    Mirrors :func:`repro.core.dragon.shortest_digits` with the estimator
    scaler; only the Table-1 setup (machine-int sized inputs aside from
    the mantissa) crosses over from native ints.
    """
    if base < 2 or base > 36:
        raise RangeError(f"output base must be in 2..36, got {base}")
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("requires a positive finite value")
    ri, si, mpi, mmi = initial_scaled_value(v)
    sv = adjust_for_mode(v, ri, si, mpi, mmi, mode)
    low_ok, high_ok = sv.low_ok, sv.high_ok
    r = BigNat.from_int(sv.r)
    s = BigNat.from_int(sv.s)
    m_plus = BigNat.from_int(sv.m_plus)
    m_minus = BigNat.from_int(sv.m_minus)

    est = estimate_k_fast(v, base)
    if est >= 0:
        s = s.mul(bignat_pow(base, est))
    else:
        scale = bignat_pow(base, -est)
        r = r.mul(scale)
        m_plus = m_plus.mul(scale)
        m_minus = m_minus.mul(scale)

    def too_low(r_, s_):
        cmp = r_.add(m_plus).compare(s_)
        return cmp >= 0 if high_ok else cmp > 0

    k = est
    if too_low(r, s):
        # Fixup: consume the first pre-multiplication (Figure 3).
        k += 1
        if too_low(r, s.mul_small(base)):  # pragma: no cover - b=2 never
            s = s.mul_small(base)
            k += 1
    else:
        r = r.mul_small(base)
        m_plus = m_plus.mul_small(base)
        m_minus = m_minus.mul_small(base)

    digits = []
    while True:
        q, r = r.divmod(s)
        d = q.to_int()
        cmp_low = r.compare(m_minus)
        tc1 = cmp_low <= 0 if low_ok else cmp_low < 0
        cmp_high = r.add(m_plus).compare(s)
        tc2 = cmp_high >= 0 if high_ok else cmp_high > 0
        if tc1 or tc2:
            break
        digits.append(d)
        r = r.mul_small(base)
        m_plus = m_plus.mul_small(base)
        m_minus = m_minus.mul_small(base)

    if tc1 and not tc2:
        chosen = d
    elif tc2 and not tc1:
        chosen = d + 1
    else:
        cmp_half = r.mul_small(2).compare(s)
        if cmp_half < 0:
            chosen = d
        elif cmp_half > 0:
            chosen = d + 1
        else:
            chosen = tie.choose(d)
    digits.append(chosen)
    return DigitResult(k=k, digits=tuple(digits), base=base)
