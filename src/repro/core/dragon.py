"""Free-format printing driver (the paper's headline algorithm).

Combines Table-1 initialization, a scaling algorithm (the fast estimator by
default) and the digit loop into the complete integer-arithmetic free-format
conversion: the shortest digit string, correctly rounded, that reads back
as the original value under the chosen reader rounding mode.
"""

from __future__ import annotations

from typing import Optional

from repro.core.boundaries import adjust_for_mode, initial_scaled_value
from repro.core.digits import DigitResult, generate_digits
from repro.core.rounding import ReaderMode, TieBreak
from repro.core.scaling import Scaler, scale_estimate
from repro.errors import RangeError
from repro.floats.model import Flonum

__all__ = ["shortest_digits", "shortest_digits_scaled"]


def shortest_digits_scaled(sv, v: Flonum, base: int, tie: TieBreak,
                           scaler: Scaler) -> DigitResult:
    """Digit generation from already-adjusted Table-1 state.

    The tail of :func:`shortest_digits` after validation and mode
    adjustment, split out so the tiered engine (which validates once per
    batch and owns per-format scaling tables) can drive it directly.
    """
    k, r, s, m_plus, m_minus = scaler(sv, base, v)
    digits, _state = generate_digits(
        r, s, m_plus, m_minus, base, sv.low_ok, sv.high_ok, tie,
    )
    return DigitResult(k=k, digits=tuple(digits), base=base)


def shortest_digits(v: Flonum, base: int = 10,
                    mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                    tie: TieBreak = TieBreak.UP,
                    scaler: Optional[Scaler] = None) -> DigitResult:
    """Shortest correctly rounded digits of a positive finite ``v``.

    Args:
        v: A positive, non-zero, finite :class:`Flonum`.  Sign, zero and
           specials are handled by the string-level API
           (:mod:`repro.core.api`), keeping this driver aligned with the
           paper's presentation.
        base: Output base ``B``, 2..36.
        mode: Rounding behaviour of the reader that will consume the
           output.  :attr:`ReaderMode.NEAREST_UNKNOWN` is the conservative
           choice valid for every correct round-to-nearest reader.
        tie: Printer-side strategy when the two final-digit candidates are
           equidistant from ``v``.
        scaler: One of the three scaling algorithms from
           :mod:`repro.core.scaling`; defaults to the paper's estimator.

    Returns:
        A :class:`DigitResult` whose value ``0.d1...dn * B**k`` rounds to
        ``v`` when read back, is within half an ulp of the output (correct
        rounding), and has no shorter equivalent.
    """
    if base < 2 or base > 36:
        raise RangeError(f"output base must be in 2..36, got {base}")
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("shortest_digits requires a positive finite value")
    if scaler is None:
        scaler = scale_estimate
    r, s, m_plus, m_minus = initial_scaled_value(v)
    sv = adjust_for_mode(v, r, s, m_plus, m_minus, mode)
    return shortest_digits_scaled(sv, v, base, tie, scaler)
