"""Table 1: initial values of r, s, m+ and m- (paper Section 3.1).

The integer-arithmetic implementation represents the scaled number and its
rounding-range half-widths over an explicit common denominator::

    v = r / s        (v+ - v)/2 = m+ / s        (v - v-)/2 = m- / s

The factor of two baked into ``r`` and ``s`` makes the *half*-gaps exact
integers.  Four cases arise from the sign of ``e`` and whether ``v`` sits
just above a power of ``b`` (``f == b**(p-1)``), where the gap below is one
``b``-th of the gap above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import RangeError
from repro.floats.model import Flonum
from repro.core.rounding import ReaderMode

__all__ = ["ScaledValue", "initial_scaled_value", "adjust_for_mode"]


@dataclass
class ScaledValue:
    """The integer state (r, s, m+, m-) plus boundary-inclusion flags."""

    r: int
    s: int
    m_plus: int
    m_minus: int
    low_ok: bool
    high_ok: bool


def initial_scaled_value(v: Flonum) -> Tuple[int, int, int, int]:
    """Compute Table 1's ``(r, s, m+, m-)`` for a positive finite ``v``.

    The narrower-gap-below case requires both ``f == b**(p-1)`` *and*
    ``e > min_e``: at the minimum exponent the neighbour below is the
    largest denormal, one full ``b**e`` away.  (For IEEE formats ``e >= 0``
    implies ``e > min_e``, which is why the paper's table splits only on
    ``f``; toy formats with ``min_e >= 0`` need the extra condition.)
    """
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("initial_scaled_value requires a positive finite value")
    fmt = v.fmt
    b = fmt.radix
    f, e = v.f, v.e
    narrow_below = f == fmt.hidden_limit and e > fmt.min_e
    if e >= 0:
        be = b**e
        if not narrow_below:
            return (f * be * 2, 2, be, be)
        return (f * be * b * 2, b * 2, be * b, be)
    if not narrow_below:
        return (f * 2, b ** (-e) * 2, 1, 1)
    return (f * b * 2, b ** (1 - e) * 2, b, 1)


def adjust_for_mode(v: Flonum, r: int, s: int, m_plus: int,
                    m_minus: int,
                    mode: ReaderMode) -> ScaledValue:
    """Specialize Table-1 state to a reader mode.

    Round-to-nearest readers keep the midpoint half-gaps and only choose the
    endpoint-inclusion flags.  Directed readers shift the rounding range to
    one side of ``v``: one margin doubles to the full gap, the other
    collapses to zero (the printed string may then equal ``v`` exactly,
    which the termination test ``r <= m-`` / ``r + m+ >= s`` recognises via
    the inclusive comparison).
    """
    if mode is ReaderMode.NEAREST_UNKNOWN:
        return ScaledValue(r, s, m_plus, m_minus, False, False)
    if mode is ReaderMode.NEAREST_EVEN:
        even = v.f % 2 == 0
        return ScaledValue(r, s, m_plus, m_minus, even, even)
    if mode is ReaderMode.NEAREST_AWAY:
        return ScaledValue(r, s, m_plus, m_minus, True, False)
    if mode is ReaderMode.NEAREST_TO_ZERO:
        return ScaledValue(r, s, m_plus, m_minus, False, True)
    if mode in (ReaderMode.TOWARD_ZERO, ReaderMode.TOWARD_NEGATIVE):
        return ScaledValue(r, s, 2 * m_plus, 0, True, False)
    if mode is ReaderMode.TOWARD_POSITIVE:
        return ScaledValue(r, s, 0, 2 * m_minus, False, True)
    raise RangeError(f"unhandled reader mode {mode}")  # pragma: no cover
