"""The paper's printing algorithms: free format, fixed format, scaling."""

from repro.core.boundaries import (
    ScaledValue,
    adjust_for_mode,
    initial_scaled_value,
)
from repro.core.digits import DigitResult, GenerateState, generate_digits
from repro.core.dragon import shortest_digits
from repro.core.fixed import FixedResult, fixed_digits
from repro.core.fixed_rational import fixed_digits_rational
from repro.core.stream import DigitStream
from repro.core.rational import shortest_digits_rational
from repro.core.rounding import (
    BoundaryInfo,
    ReaderMode,
    TieBreak,
    boundary_info,
)
from repro.core.scaling import (
    STATS,
    Scaler,
    ScalingStats,
    digit_length,
    estimate_k_fast,
    estimate_k_float_log,
    scale_estimate,
    scale_float_log,
    scale_iterative,
)

__all__ = [
    "ScaledValue",
    "adjust_for_mode",
    "initial_scaled_value",
    "DigitResult",
    "GenerateState",
    "generate_digits",
    "shortest_digits",
    "FixedResult",
    "fixed_digits",
    "fixed_digits_rational",
    "DigitStream",
    "shortest_digits_rational",
    "BoundaryInfo",
    "ReaderMode",
    "TieBreak",
    "boundary_info",
    "STATS",
    "Scaler",
    "ScalingStats",
    "digit_length",
    "estimate_k_fast",
    "estimate_k_float_log",
    "scale_estimate",
    "scale_float_log",
    "scale_iterative",
]
