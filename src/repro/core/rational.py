"""Section 2's basic algorithm in exact rational arithmetic.

This is the executable specification: a direct transliteration of the
paper's four-step procedure using :class:`fractions.Fraction`.  It is slow
(the paper notes as much — every step reduces fractions to lowest terms)
but obviously faithful, and the property suite checks the production
integer implementation against it digit-for-digit.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.digits import DigitResult
from repro.core.rounding import BoundaryInfo, ReaderMode, TieBreak, boundary_info
from repro.errors import RangeError
from repro.floats.model import Flonum

__all__ = ["shortest_digits_rational", "find_k_rational"]


def find_k_rational(high: Fraction, base: int, high_ok: bool) -> int:
    """Step 2: the smallest ``k`` with ``high <= B**k`` (``<`` if the high
    endpoint is attainable), by direct search from 0."""
    k = 0
    bk = Fraction(1)

    def bound_ok(power: Fraction) -> bool:
        return high < power if high_ok else high <= power

    if bound_ok(bk):
        # Walk down while k-1 still satisfies the bound.
        while True:
            lower = bk / base
            if not bound_ok(lower):
                return k
            bk = lower
            k -= 1
    while not bound_ok(bk):
        bk *= base
        k += 1
    return k


def shortest_digits_rational(v: Flonum, base: int = 10,
                             mode: ReaderMode = ReaderMode.NEAREST_UNKNOWN,
                             tie: TieBreak = TieBreak.UP) -> DigitResult:
    """Steps 1-4 of Section 2.2, verbatim, over exact rationals."""
    if base < 2 or base > 36:
        raise RangeError(f"output base must be in 2..36, got {base}")
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("requires a positive finite value")

    # Step 1: rounding range from the neighbour gaps.
    info: BoundaryInfo = boundary_info(v, mode)
    value = v.to_fraction()
    v_low = value - info.low  # v - low
    high_v = info.high - value  # high - v

    # Step 2: scaling factor.
    k = find_k_rational(info.high, base, info.high_ok)

    # Step 3/4: generate digits until a termination condition holds, using
    # the concise conditions of the corollary to Lemma 2:
    #   (1) q_n * B**(k-n) <  v - low    (<= when low is attainable)
    #   (2) (1 - q_n) * B**(k-n) < high - v   (<= when high is attainable)
    q = value / Fraction(base) ** k
    digits = []
    weight = Fraction(base) ** k  # B**(k-n) at n = 0
    while True:
        q *= base
        d = int(q)  # floor: 0 <= q < base
        q -= d
        weight /= base
        below = q * weight
        above = (1 - q) * weight
        tc1 = below <= v_low if info.low_ok else below < v_low
        tc2 = above <= high_v if info.high_ok else above < high_v
        if not tc1 and not tc2:
            digits.append(d)
            continue
        if tc1 and not tc2:
            digits.append(d)
        elif tc2 and not tc1:
            digits.append(d + 1)
        else:
            # Return the number closer to v; break exact ties by strategy.
            if below < above:
                digits.append(d)
            elif below > above:
                digits.append(d + 1)
            else:
                digits.append(tie.choose(d))
        break
    return DigitResult(k=k, digits=tuple(digits), base=base)
