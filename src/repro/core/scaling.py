"""The three scaling algorithms (paper Sections 3.1-3.2, Figures 1-3).

Scaling finds ``k`` — the position of the radix point, i.e. the smallest
integer with ``high <= B**k`` (strictly ``<`` when the high endpoint is
attainable) — and rescales the integer state so the digit loop can start.

* :func:`scale_iterative` — Steele & White's search, ``O(|log v|)``
  big-integer multiplications (Figure 1).
* :func:`scale_float_log` — estimate ``ceil(log_B v)`` with the host's
  floating-point logarithm, minus a safety epsilon so it never overshoots,
  then fix up by at most one (Figure 2).
* :func:`scale_estimate` — the paper's contribution (Figure 3): estimate
  from the binary exponent alone, ``ceil((e + len(f) - 1) * log_B 2 - eps)``,
  two floating-point operations.  It may undershoot by one; the fixup
  *consumes the digit loop's first pre-multiplication* instead of touching
  the big integers, so the off-by-one case costs nothing.

All scalers share one contract: they return ``(k, r, s, m+, m-)`` with
``r``, ``m+``, ``m-`` already multiplied by ``B`` for the first digit
extraction, so the digit loop starts directly with ``divmod(r, s)``.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

from repro.bignum.pow_cache import log_ratio, power
from repro.core.boundaries import ScaledValue
from repro.floats.model import Flonum

__all__ = [
    "Scaler",
    "ScalingStats",
    "STATS",
    "scale_iterative",
    "scale_float_log",
    "scale_estimate",
    "estimate_k_fast",
    "estimate_k_float_log",
    "digit_length",
    "apply_estimate",
    "FIXUP_EPSILON",
]

#: Subtracted from logarithm estimates so they never overshoot the true
#: value (paper: "a small constant, chosen to be slightly greater than the
#: largest possible error").
FIXUP_EPSILON = 1e-10

ScaledState = Tuple[int, int, int, int, int]
Scaler = Callable[[ScaledValue, int, Flonum], ScaledState]


class ScalingStats:
    """Counters for the estimator-accuracy ablation (benchmarks/A1)."""

    __slots__ = ("calls", "fixup_bumps", "overshoot_drops")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.calls = 0
        self.fixup_bumps = 0
        self.overshoot_drops = 0


STATS = ScalingStats()


def digit_length(f: int, b: int) -> int:
    """Number of base-``b`` digits of the positive integer ``f``."""
    if b == 2:
        return f.bit_length()
    n = 0
    while f:
        f //= b
        n += 1
    return n


def _too_low(r: int, s: int, m_plus: int, high_ok: bool) -> bool:
    """Whether the candidate ``k`` is too small: ``high`` reaches ``B**k``."""
    if high_ok:
        return r + m_plus >= s
    return r + m_plus > s


def _too_high(r: int, s: int, m_plus: int, base: int, high_ok: bool) -> bool:
    """Whether ``k - 1`` would still satisfy the bound (so ``k`` is too big)."""
    if high_ok:
        return (r + m_plus) * base < s
    return (r + m_plus) * base <= s


def scale_iterative(sv: ScaledValue, base: int, v: Flonum) -> ScaledState:
    """Steele & White's iterative scaling (Figure 1's ``scale``).

    Starts at ``k = 0`` and multiplies one side of the fraction by ``B``
    until ``k`` is exact — linear in ``|log_B v|`` big-integer products,
    the cost the paper's estimator eliminates.
    """
    r, s, m_plus, m_minus = sv.r, sv.s, sv.m_plus, sv.m_minus
    k = 0
    while _too_low(r, s, m_plus, sv.high_ok):
        s *= base
        k += 1
    while _too_high(r, s, m_plus, base, sv.high_ok):
        r *= base
        m_plus *= base
        m_minus *= base
        k -= 1
    # Pre-multiply for the first digit extraction.
    return k, r * base, s, m_plus * base, m_minus * base


def estimate_k_float_log(v: Flonum, base: int) -> int:
    """``ceil(log_B v - eps)`` via the host logarithm (Figure 2).

    ``log v`` is computed from the components as ``log f + e * log b`` so
    that formats wider than binary64 cannot overflow the host double.
    """
    log_v = math.log(v.f) + v.e * math.log(v.fmt.radix)
    return math.ceil(log_v / math.log(base) - FIXUP_EPSILON)


def estimate_k_fast(v: Flonum, base: int) -> int:
    """The paper's two-operation estimate (Section 3.2).

    With ``s = floor(log_b v) = e + len_b(f) - 1`` the estimate is
    ``ceil(s * log_B b - eps)``: never more than the true ``ceil(log_B v)``
    and less by at most ``log_B b`` (< 0.631 for b=2, B>=3).
    """
    s_int = v.e + digit_length(v.f, v.fmt.radix) - 1
    return math.ceil(s_int * log_ratio(v.fmt.radix, base) - FIXUP_EPSILON)


def apply_estimate(sv: ScaledValue, base: int, est: int) -> ScaledState:
    """Rescale by ``B**est`` and fix up (Figure 3's ``scale``/``fixup``).

    When the estimate is low, bumping ``k`` *instead of* performing the
    digit loop's initial multiply-by-``B`` makes the off-by-one case free:
    the state for ``k = est + 1`` without pre-multiplication is exactly the
    state for ``k = est`` with it.
    """
    r, s, m_plus, m_minus = sv.r, sv.s, sv.m_plus, sv.m_minus
    if est >= 0:
        s = s * power(base, est)
    else:
        scale = power(base, -est)
        r *= scale
        m_plus *= scale
        m_minus *= scale

    STATS.calls += 1

    # The shipped estimators carry a subtracted epsilon and never
    # overshoot, so for them this loop is a no-op; it exists so that
    # arbitrary caller-provided estimates (robustness tests, exotic
    # radixes) are repaired rather than corrupting the output.
    while _too_high(r, s, m_plus, base, sv.high_ok):
        r *= base
        m_plus *= base
        m_minus *= base
        est -= 1
        STATS.overshoot_drops += 1

    k = est
    bumps = 0
    while _too_low(r, s * (power(base, bumps) if bumps else 1),
                   m_plus, sv.high_ok):
        bumps += 1
    k += bumps
    STATS.fixup_bumps += min(bumps, 1)
    if bumps == 0:
        return k, r * base, s, m_plus * base, m_minus * base
    # One bump is absorbed by skipping the pre-multiplication; further
    # bumps (never needed for b=2) scale the denominator.
    if bumps > 1:
        s *= power(base, bumps - 1)
    return k, r, s, m_plus, m_minus


def scale_float_log(sv: ScaledValue, base: int, v: Flonum) -> ScaledState:
    """Figure 2: host-logarithm estimate plus fixup."""
    return apply_estimate(sv, base, estimate_k_float_log(v, base))


def scale_estimate(sv: ScaledValue, base: int, v: Flonum) -> ScaledState:
    """Figure 3: the paper's fast estimator plus free fixup."""
    return apply_estimate(sv, base, estimate_k_fast(v, base))
