"""The digit-generation loop (paper Section 3.1, Figures 1 and 3).

State entering the loop: integers ``r``, ``s``, ``m+``, ``m-`` with

* ``v * B / B**k = r / s`` (the scaler already pre-multiplied by ``B``),
* ``(high - v) * B / B**k = m+ / s`` and ``(v - low) * B / B**k = m- / s``.

Each iteration extracts one digit with ``divmod`` and checks the two
termination conditions of Section 2.2 in their concise form:

* ``tc1``: the digits generated so far are already above ``low``
  (``r <= m-`` when the low endpoint reads back as ``v``, else ``r < m-``);
* ``tc2``: incrementing the last digit stays below ``high``
  (``r + m+ >= s`` when the high endpoint is attainable, else ``>``).

On termination the closer of the two candidates is chosen; equidistant
cases go to the tie-break strategy.  The paper proves the increment never
carries (Theorem 1), the result reads back as ``v`` (Theorem 3), is
correctly rounded (Theorem 4), and is of minimal length (Theorem 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Tuple

from repro.core.rounding import TieBreak

__all__ = ["DigitResult", "generate_digits", "GenerateState"]


@dataclass(frozen=True)
class DigitResult:
    """A digit string ``0.d1 d2 ... dn x B**k``.

    ``digits`` are integer digit values (not characters) in ``[0, B)``;
    ``k`` locates the radix point: the first digit has weight ``B**(k-1)``.
    """

    k: int
    digits: Tuple[int, ...]
    base: int = 10

    def to_fraction(self) -> Fraction:
        """The exact rational value of the digit string."""
        acc = 0
        for d in self.digits:
            acc = acc * self.base + d
        return Fraction(acc, 1) * Fraction(self.base) ** (self.k - len(self.digits))

    @property
    def ndigits(self) -> int:
        return len(self.digits)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        body = "".join("0123456789abcdefghijklmnopqrstuvwxyz"[d]
                       for d in self.digits)
        return f"0.{body}e{self.k}"


@dataclass
class GenerateState:
    """Loop state exposed so the fixed-format driver can resume padding."""

    r: int
    s: int
    m_plus: int
    m_minus: int
    #: Remainder state of the *chosen* output: equals ``r`` when the final
    #: digit was kept, ``r - s`` (negative) when it was incremented.  Used
    #: by the fixed-format significance test.
    chosen_r: int = 0
    incremented: bool = False


def generate_digits(r: int, s: int, m_plus: int, m_minus: int,
                    base: int,
                    low_ok: bool, high_ok: bool,
                    tie: TieBreak = TieBreak.UP,
                    ) -> Tuple[List[int], GenerateState]:
    """Run the digit loop to its natural termination (free format).

    Returns the digit list and the final loop state (for fixed-format
    resumption).  The caller assembles a :class:`DigitResult` with its own
    ``k``.
    """
    digits: List[int] = []
    while True:
        d, r = divmod(r, s)
        tc1 = (r <= m_minus) if low_ok else (r < m_minus)
        tc2 = (r + m_plus >= s) if high_ok else (r + m_plus > s)
        if tc1 or tc2:
            break
        digits.append(d)
        r *= base
        m_plus *= base
        m_minus *= base

    if tc1 and not tc2:
        chosen = d
    elif tc2 and not tc1:
        chosen = d + 1
    else:
        # Both hold: output whichever candidate is closer to v; the
        # remainder r measures v - (digits so far), so compare 2r with s.
        if 2 * r < s:
            chosen = d
        elif 2 * r > s:
            chosen = d + 1
        else:
            chosen = tie.choose(d)
    incremented = chosen == d + 1
    digits.append(chosen)
    state = GenerateState(
        r=r, s=s, m_plus=m_plus, m_minus=m_minus,
        chosen_r=r - s if incremented else r,
        incremented=incremented,
    )
    return digits, state
