"""String-level public API: print any value, both modes, all options.

These are the entry points a downstream user calls.  They accept Python
floats, ints, or :class:`Flonum` values; handle sign, zeros, infinities and
NaNs; and delegate the real work to the digit-level drivers
(:func:`repro.core.dragon.shortest_digits`,
:func:`repro.core.fixed.fixed_digits`) plus the rendering layer.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.dragon import shortest_digits
from repro.core.fixed import fixed_digits
from repro.core.rounding import ReaderMode, TieBreak
from repro.core.scaling import Scaler
from repro.errors import RangeError
from repro.floats.model import Flonum, to_flonum
from repro.format.notation import (
    DEFAULT_OPTIONS,
    NotationOptions,
    render_fixed,
    render_shortest,
    special_text,
)

__all__ = ["format_shortest", "format_fixed", "to_flonum"]

Number = Union[float, int, Flonum]

#: Sentinel: "route through the default tiered engine".  ``engine=None``
#: explicitly requests the exact-only path (ablations, tests).
_USE_DEFAULT = object()


def _special_string(v: Flonum, opts: NotationOptions) -> Optional[str]:
    if not v.is_finite:
        return special_text(v.is_nan, bool(v.sign), opts)
    return None


def format_shortest(x: Number, base: int = 10,
                    mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                    tie: TieBreak = TieBreak.UP,
                    scaler: Optional[Scaler] = None,
                    style: str = "auto",
                    options: Optional[NotationOptions] = None,
                    engine=_USE_DEFAULT) -> str:
    """The shortest string that reads back to ``x`` (free format).

    Example::

        >>> format_shortest(0.3)
        '0.3'
        >>> format_shortest(1e23)
        '1e23'
        >>> format_shortest(5e-324)
        '5e-324'

    Conversions route through the tiered engine
    (:mod:`repro.engine` — certified fast paths with exact fallback,
    byte-identical output) unless an explicit ``scaler`` is given or
    ``engine=None`` is passed; both select the pure exact algorithm.

    Args:
        x: A float, int, or :class:`Flonum` of any supported format.
        base: Output base (2..36).
        mode: The reader's rounding behaviour; NEAREST_EVEN matches IEEE
            (and CPython/strtod) readers and enables boundary outputs such
            as ``1e23``.
        tie: Final-digit tie strategy (the paper rounds up).
        scaler: Scaling algorithm override (benchmarks use this);
            forces the exact path.
        style: 'auto' (positional for moderate exponents), 'positional',
            or 'scientific'.
        options: Full :class:`NotationOptions`; overrides ``style``.
        engine: A :class:`repro.engine.Engine` to route through, the
            default sentinel (shared engine), or None (exact only).
    """
    opts = options or (DEFAULT_OPTIONS if style == "auto"
                       else NotationOptions(style=style))
    if scaler is None and engine is not None:
        if engine is _USE_DEFAULT:
            engine = _default_engine()
        return engine.format(x, base, mode, tie, opts)
    v = to_flonum(x)
    special = _special_string(v, opts)
    if special is not None:
        return special
    sign = "-" if v.is_negative else ""
    if v.is_zero:
        body = "0.0" if opts.python_repr else "0"
        return sign + body
    digits = shortest_digits(v.abs(), base=base,
                             mode=mode.mirrored() if v.is_negative else mode,
                             tie=tie, scaler=scaler)
    return sign + render_shortest(digits, opts)


def _default_engine():
    # Imported lazily: repro.engine imports from this package's siblings,
    # and the engine is only needed once the first conversion routes to it.
    from repro.engine import default_engine

    return default_engine()


def format_fixed(x: Number, position: Optional[int] = None,
                 ndigits: Optional[int] = None,
                 decimals: Optional[int] = None,
                 base: int = 10, tie: TieBreak = TieBreak.UP,
                 style: str = "positional",
                 options: Optional[NotationOptions] = None,
                 engine=_USE_DEFAULT) -> str:
    """Correctly rounded fixed-format output with ``#`` marks.

    Stop position, one of:
        position: absolute weight exponent of the last digit
            (``position=-2`` → hundredths);
        decimals: digits after the point (``decimals=2`` ≡ ``position=-2``);
        ndigits: total digit positions (relative mode).

    Digit generation routes through the tiered engine's counted fast
    path with exact fallback (byte-identical output) unless
    ``engine=None`` requests the pure exact algorithm.

    Example::

        >>> format_fixed(1/3, ndigits=10)
        '0.3333333333'
        >>> format_fixed(100.0, decimals=20)
        '100.000000000000000#####'
    """
    opts = options or NotationOptions(style=style)
    given = [p is not None for p in (position, ndigits, decimals)]
    if sum(given) != 1:
        raise RangeError("give exactly one of position=, ndigits=, decimals=")
    if decimals is not None:
        if decimals < 0:
            raise RangeError("decimals must be >= 0")
        position = -decimals
    v = to_flonum(x)
    special = _special_string(v, opts)
    if special is not None:
        return special
    sign = "-" if v.is_negative else ""
    if v.is_zero:
        return sign + _fixed_zero(position, ndigits, opts)
    if engine is not None:
        if engine is _USE_DEFAULT:
            engine = _default_engine()
        result = engine.fixed_digits(v.abs(), position=position,
                                     ndigits=ndigits, base=base, tie=tie,
                                     fmt=v.fmt)
    else:
        result = fixed_digits(v.abs(), position=position, ndigits=ndigits,
                              base=base, tie=tie)
    return sign + render_fixed(result, opts)


def _fixed_zero(position: Optional[int], ndigits: Optional[int],
                opts: NotationOptions) -> str:
    """Zero printed to a fixed precision: exact, so every zero is real."""
    if position is None:
        # Relative mode: one integer zero plus ndigits-1 fractional zeros.
        position = -(ndigits - 1)
    if opts.style == "scientific":
        return "0" + (f"{opts.exp_char}{position}" if not opts.python_repr
                      else f"{opts.exp_char}{'+' if position >= 0 else '-'}"
                           f"{abs(position):02d}")
    return "0" + ("." + "0" * (-position) if position < 0 else "")
