"""Reader rounding modes and printer tie-breaking (paper Sections 2.2, 3.1).

The free-format algorithm is parameterised by the behaviour of the *input*
routine that will eventually read the printed string back.  Two aspects
matter:

* which reals round to ``v`` — for round-to-nearest readers this is the
  interval between the neighbour midpoints; for directed-rounding readers it
  is the interval between ``v`` itself and one neighbour;
* whether the interval *endpoints* themselves read back as ``v`` (the
  paper's ``low-ok?`` / ``high-ok?`` flags).  E.g. under IEEE unbiased
  (round-to-even) reading, a printed string equal to a midpoint rounds to
  the neighbour with the even mantissa, so both endpoints are usable
  exactly when ``v``'s mantissa is even.

When the reader is unknown, the conservative assumption is a
round-to-nearest reader that never resolves ties our way (both flags
false) — any correct reader then recovers ``v``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from repro.errors import RangeError
from repro.floats.model import Flonum
from repro.floats.ulp import gap_high, gap_low

__all__ = ["ReaderMode", "TieBreak", "BoundaryInfo", "boundary_info"]


class ReaderMode(Enum):
    """How the input routine that reads our output rounds."""

    #: Round to nearest, unknown tie-breaking: assume neither endpoint is
    #: safe (the paper's default assumption in Section 2).
    NEAREST_UNKNOWN = "nearest-unknown"
    #: IEEE 754 round-to-nearest-even ("unbiased") reading.
    NEAREST_EVEN = "nearest-even"
    #: Round to nearest, ties away from zero.
    NEAREST_AWAY = "nearest-away"
    #: Round to nearest, ties toward zero.
    NEAREST_TO_ZERO = "nearest-to-zero"
    #: Directed: reader truncates toward zero.
    TOWARD_ZERO = "toward-zero"
    #: Directed: reader rounds toward +infinity.
    TOWARD_POSITIVE = "toward-positive"
    #: Directed: reader rounds toward -infinity.
    TOWARD_NEGATIVE = "toward-negative"

    def mirrored(self) -> "ReaderMode":
        """The mode seen by ``|v|`` when ``v`` is negative.

        Directed modes flip around zero; nearest modes are symmetric.
        """
        if self is ReaderMode.TOWARD_POSITIVE:
            return ReaderMode.TOWARD_NEGATIVE
        if self is ReaderMode.TOWARD_NEGATIVE:
            return ReaderMode.TOWARD_POSITIVE
        return self


class TieBreak(Enum):
    """Strategy when the generated number and its increment are equidistant
    from ``v`` (paper: "use some strategy to break the tie, e.g. round up")."""

    UP = "up"
    DOWN = "down"
    EVEN = "even"

    def choose(self, d: int) -> int:
        """Pick ``d`` or ``d + 1`` for a final-digit tie."""
        if self is TieBreak.UP:
            return d + 1
        if self is TieBreak.DOWN:
            return d
        return d if d % 2 == 0 else d + 1


@dataclass(frozen=True)
class BoundaryInfo:
    """The exact rounding range of a value under a reader mode.

    ``low``/``high`` bound the reals that read back as ``v``; ``low_ok`` /
    ``high_ok`` say whether the endpoints themselves do.
    """

    low: Fraction
    high: Fraction
    low_ok: bool
    high_ok: bool


def boundary_info(v: Flonum, mode: ReaderMode) -> BoundaryInfo:
    """Compute the rounding range of a positive finite ``v`` (Section 2.2).

    The caller is expected to have reduced to ``v > 0`` and to mirror
    directed modes for negative inputs via :meth:`ReaderMode.mirrored`.
    """
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("boundary_info requires a positive finite value")
    value = v.to_fraction()
    half_high = gap_high(v) / 2
    half_low = gap_low(v) / 2

    if mode is ReaderMode.NEAREST_UNKNOWN:
        return BoundaryInfo(value - half_low, value + half_high, False, False)
    if mode is ReaderMode.NEAREST_EVEN:
        even = v.f % 2 == 0
        return BoundaryInfo(value - half_low, value + half_high, even, even)
    if mode is ReaderMode.NEAREST_AWAY:
        # A midpoint rounds away from zero: the low midpoint rounds *up* to
        # v (safe), the high midpoint rounds up past v (unsafe).
        return BoundaryInfo(value - half_low, value + half_high, True, False)
    if mode is ReaderMode.NEAREST_TO_ZERO:
        return BoundaryInfo(value - half_low, value + half_high, False, True)
    if mode in (ReaderMode.TOWARD_ZERO, ReaderMode.TOWARD_NEGATIVE):
        # Reals in [v, v+) truncate to v.
        return BoundaryInfo(value, value + 2 * half_high, True, False)
    if mode is ReaderMode.TOWARD_POSITIVE:
        # Reals in (v-, v] round up to v.
        return BoundaryInfo(value - 2 * half_low, value, False, True)
    raise RangeError(f"unhandled reader mode {mode}")  # pragma: no cover
