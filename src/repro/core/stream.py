"""Incremental digit generation: free format with an optional width cap.

A :class:`DigitStream` exposes the digit loop one digit at a time, which
suits consumers that discover their width budget as they render (fixed
columns, tables, serializers).  Semantics:

* consumed to natural termination, the digits are exactly the
  free-format output (shortest, correctly rounded, round-trip);
* stopped early at ``n`` digits (:meth:`take`), the result is the
  *correctly rounded n-digit prefix* — the paper's output condition (2)
  still holds at the cut, but the round-trip guarantee needs the natural
  length (the stream tells you, via :attr:`complete`, which you got).

The carry case a capped cut can produce (``0.999…`` rounding to ``1.0``)
is handled by digit propagation, which the uncapped algorithm never
needs (Theorem 1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.boundaries import adjust_for_mode, initial_scaled_value
from repro.core.digits import DigitResult
from repro.core.rounding import ReaderMode, TieBreak
from repro.core.scaling import Scaler, scale_estimate
from repro.errors import RangeError
from repro.floats.model import Flonum

__all__ = ["DigitStream"]


class DigitStream:
    """Pull-based free-format digit generation."""

    def __init__(self, v: Flonum, base: int = 10,
                 mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                 tie: TieBreak = TieBreak.UP,
                 scaler: Optional[Scaler] = None):
        if base < 2 or base > 36:
            raise RangeError(f"output base must be in 2..36, got {base}")
        if not v.is_finite or v.sign or v.is_zero:
            raise RangeError("DigitStream requires a positive finite value")
        if scaler is None:
            scaler = scale_estimate
        self.base = base
        self.tie = tie
        sv_ = adjust_for_mode(v, *initial_scaled_value(v), mode)
        self._low_ok = sv_.low_ok
        self._high_ok = sv_.high_ok
        self.k, self._r, self._s, self._mp, self._mm = scaler(sv_, base, v)
        #: True once the natural (round-trip) termination was reached.
        self.complete = False
        self._emitted: List[int] = []

    # ------------------------------------------------------------------

    def next_digit(self) -> Tuple[int, bool]:
        """``(digit, done)``; after ``done`` the stream is exhausted.

        The digit returned with ``done=True`` is the final, rounded one.
        """
        if self.complete:
            raise RangeError("stream exhausted")
        d, r = divmod(self._r, self._s)
        tc1 = (r <= self._mm) if self._low_ok else (r < self._mm)
        tc2 = ((r + self._mp >= self._s) if self._high_ok
               else (r + self._mp > self._s))
        if not tc1 and not tc2:
            self._r = r * self.base
            self._mp *= self.base
            self._mm *= self.base
            self._emitted.append(d)
            return d, False
        if tc1 and not tc2:
            chosen = d
        elif tc2 and not tc1:
            chosen = d + 1
        elif 2 * r < self._s:
            chosen = d
        elif 2 * r > self._s:
            chosen = d + 1
        else:
            chosen = self.tie.choose(d)
        self.complete = True
        self._emitted.append(chosen)
        return chosen, True

    def __iter__(self) -> Iterator[int]:
        while not self.complete:
            digit, _done = self.next_digit()
            yield digit

    # ------------------------------------------------------------------

    def take(self, n: int) -> DigitResult:
        """At most ``n`` digits: natural output if it fits, else the
        correctly rounded ``n``-digit prefix (with carry propagation)."""
        if n < 1:
            raise RangeError("need at least one digit")
        if self._emitted:
            raise RangeError("take() requires a fresh stream")
        digits: List[int] = []
        k = self.k
        while len(digits) < n:
            d, done = self.next_digit()
            digits.append(d)
            if done:
                return DigitResult(k=k, digits=tuple(digits), base=self.base)
        # Capped: round the last kept digit on the remainder.
        r, s = self._r, self._s  # r is pre-multiplied for the next digit
        round_up = (2 * r > self.base * s
                    or (2 * r == self.base * s
                        and self.tie.choose(digits[-1]) != digits[-1]))
        if round_up:
            i = n - 1
            while i >= 0 and digits[i] == self.base - 1:
                digits[i] = 0
                i -= 1
            if i < 0:
                digits[0] = 1
                digits[1:] = [0] * (n - 1)
                k += 1
            else:
                digits[i] += 1
        return DigitResult(k=k, digits=tuple(digits), base=self.base)
