"""Section 4's fixed-format algorithm over exact rationals (the spec).

The paper presents fixed format in rational terms and notes the integer
conversion is "lengthy and has therefore been omitted".  Our
:mod:`repro.core.fixed` is that omitted integer implementation; this
module is the rational presentation, transliterated — expanded rounding
range, extended termination conditions, significant-zero padding and
``#`` marks — so the two can be property-tested against each other the
same way :mod:`repro.core.rational` specifies the free format.

Deliberately slow and obvious; never used by the production path.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.core.fixed import FixedResult
from repro.core.rounding import TieBreak
from repro.errors import RangeError
from repro.floats.model import Flonum
from repro.floats.ulp import midpoint_high, midpoint_low

__all__ = ["fixed_digits_rational"]


def fixed_digits_rational(v: Flonum, position: Optional[int] = None,
                          ndigits: Optional[int] = None, base: int = 10,
                          tie: TieBreak = TieBreak.UP) -> FixedResult:
    """Fixed-format digits by direct rational evaluation of Section 4."""
    if base < 2 or base > 36:
        raise RangeError(f"output base must be in 2..36, got {base}")
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("requires a positive finite value")
    if (position is None) == (ndigits is None):
        raise RangeError("give exactly one of position= or ndigits=")
    if position is not None:
        return _absolute(v, position, base, tie)
    if ndigits < 1:
        raise RangeError(f"ndigits must be >= 1, got {ndigits}")
    # Relative mode: estimate k without the expansion, then refine.
    k = _find_k(midpoint_high(v), Fraction(base), high_ok=False)
    for _ in range(3):
        result = _absolute(v, k - ndigits, base, tie)
        if result.k == k or result.is_zero:
            return result
        k = result.k
    raise AssertionError("relative refinement failed")  # pragma: no cover


def _find_k(high: Fraction, b: Fraction, high_ok: bool) -> int:
    k = 0
    bk = Fraction(1)
    ok = (lambda p: high < p) if high_ok else (lambda p: high <= p)
    if ok(bk):
        while ok(bk / b):
            bk /= b
            k -= 1
        return k
    while not ok(bk):
        bk *= b
        k += 1
    return k


def _absolute(v: Flonum, j: int, base: int, tie: TieBreak) -> FixedResult:
    B = Fraction(base)
    value = v.to_fraction()
    delta = B**j / 2

    # Step 1': conditionally expanded rounding range.
    low = min(midpoint_low(v), value - delta)
    high = max(midpoint_high(v), value + delta)
    low_ok = value - delta <= midpoint_low(v)
    high_ok = value + delta >= midpoint_high(v)

    # Step 2': scaling factor.
    k = _find_k(high, B, high_ok)
    if k <= j:
        return FixedResult(k=j, digits=(), hashes=0, position=j, base=base)

    # Step 3'/4': generate with extended termination conditions.
    q = value / B**k
    digits = []
    weight = B**k
    while True:
        q *= base
        d = int(q)
        q -= d
        weight /= base
        below = q * weight          # v - V
        above = (1 - q) * weight    # V[dn+1] - v
        tc1 = below <= value - low if low_ok else below < value - low
        tc2 = above <= high - value if high_ok else above < high - value
        if not tc1 and not tc2:
            digits.append(d)
            continue
        if tc1 and not tc2:
            digits.append(d)
            chosen_above = -below
        elif tc2 and not tc1:
            digits.append(d + 1)
            chosen_above = above
        elif below < above:
            digits.append(d)
            chosen_above = -below
        elif below > above:
            digits.append(d + 1)
            chosen_above = above
        else:
            chosen = tie.choose(d)
            digits.append(chosen)
            chosen_above = above if chosen == d + 1 else -below
        break

    if not any(digits):
        return FixedResult(k=j, digits=(), hashes=0, position=j, base=base)
    pos = k - len(digits)
    if pos == j:
        return FixedResult(k=k, digits=tuple(digits), hashes=0,
                           position=j, base=base)

    # Padding: significant zeros, then # marks.
    if low_ok and high_ok:
        digits.extend([0] * (pos - j))
        return FixedResult(k=k, digits=tuple(digits), hashes=0,
                           position=j, base=base)
    V = value + chosen_above  # the emitted value, exactly
    hashes = 0
    while pos > j:
        # Position pos-1 is insignificant iff V + B**pos stays <= high.
        bumped = V + B**pos
        insignificant = bumped <= high if high_ok else bumped < high
        if insignificant:
            hashes = pos - j
            break
        digits.append(0)
        pos -= 1
    return FixedResult(k=k, digits=tuple(digits), hashes=hashes,
                       position=j, base=base)
