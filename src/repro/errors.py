"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class FormatError(ReproError):
    """A floating-point format was constructed or used inconsistently."""


class DecodeError(ReproError):
    """A bit pattern or component tuple does not denote a valid value."""


class ParseError(ReproError):
    """A numeric string could not be parsed."""


class RangeError(ReproError):
    """A value falls outside the representable range of a format."""


class NotRepresentableError(ReproError):
    """An operation was asked to produce a value the format cannot hold
    exactly (e.g. converting a binary128 value to a Python float)."""
