"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class FormatError(ReproError):
    """A floating-point format was constructed or used inconsistently."""


class DecodeError(ReproError):
    """A bit pattern or component tuple does not denote a valid value."""


class ParseError(ReproError):
    """A numeric string could not be parsed."""


class RangeError(ReproError):
    """A value falls outside the representable range of a format."""


class NotRepresentableError(ReproError):
    """An operation was asked to produce a value the format cannot hold
    exactly (e.g. converting a binary128 value to a Python float)."""


class ShardError(ReproError):
    """A bulk-pool shard failed after exhausting its retry budget.

    Carries the failing shard's index, the number of attempts made,
    and the final cause (also chained as ``__cause__``) so callers can
    attribute the failure without parsing the message.
    """

    def __init__(self, shard: int, attempts: int, cause: BaseException):
        self.shard = shard
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"shard {shard} failed after {attempts} attempt"
            f"{'s' if attempts != 1 else ''}: {cause!r}")


class DeadlineExceededError(ReproError):
    """A shard missed its deadline, or a bulk call ran out of its
    overall time budget (``shard`` is None for the budget case)."""

    def __init__(self, message: str, shard=None, elapsed: float = 0.0,
                 limit: float = 0.0):
        self.shard = shard
        self.elapsed = elapsed
        self.limit = limit
        super().__init__(message)


class PoolBrokenError(ReproError):
    """A worker pool broke (e.g. a worker process died) and could not
    be rebuilt within the rebuild budget."""


class ProtocolError(ReproError):
    """A wire frame violates the serving protocol (bad magic, oversized
    or undersized length prefix, unknown opcode/format, malformed
    header).  ``recoverable`` says whether the byte stream is still
    framed after the offending frame: a parseable-but-invalid header is
    (the frame was consumed whole), a bad length prefix is not (the
    connection must close after the error response)."""

    def __init__(self, message: str, recoverable: bool = False):
        self.recoverable = recoverable
        super().__init__(message)


class ServeOverloadError(ReproError):
    """The serving daemon's admission control rejected a request —
    accepting it would exceed the configured in-flight byte/request
    budget, or the daemon is draining for shutdown.  Clients should
    back off and retry; in-flight requests are unaffected."""


class SnapshotError(ReproError):
    """A warm-start snapshot could not be used: missing or truncated
    file, checksum mismatch, unknown container version, or a payload
    written for a different format set / table build.  Consumers treat
    the snapshot as an optimization: the engine counts the fault in
    ``stats()`` and falls back to a cold build rather than propagate."""
