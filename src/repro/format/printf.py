"""Correctly rounded ``printf``-style formatting (``%e``, ``%f``, ``%g``).

Digit generation routes through the tiered engine's counted fast path
(:meth:`repro.engine.Engine.counted_digits`) with the exact
fixed-position converter
(:func:`repro.baselines.naive_fixed.exact_fixed_digits`) as fallback and
oracle, so — unlike the 1996 systems Table 3 audits — every output here
is correctly rounded.  ``engine=None`` selects the pure exact path
(ablations, differential tests).  Semantics follow C99: precision
defaults, ``%g`` trailing-zero stripping and style switching, the ``#``
(alternate form) flag, ``+``/space/``0`` flags and a minimum field
width.

(No locale support, and ``%a`` is out of scope; the paper's experiments
only exercise decimal output.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.naive_fixed import exact_fixed_digits
from repro.core.api import to_flonum
from repro.errors import ParseError
from repro.floats.model import Flonum

__all__ = ["format_printf", "fmt_e", "fmt_f", "fmt_g"]

#: Sentinel: "route through the default tiered engine".  ``engine=None``
#: explicitly requests the exact-only path.
_USE_DEFAULT = object()


def _counted(v: Flonum, engine, position: Optional[int] = None,
             ndigits: Optional[int] = None):
    """Counted digits of positive finite ``v`` through the chosen route."""
    if engine is not None:
        if engine is _USE_DEFAULT:
            from repro.engine import default_engine

            engine = default_engine()
        return engine.counted_digits(v, position=position, ndigits=ndigits,
                                     fmt=v.fmt)
    return exact_fixed_digits(v, position=position, ndigits=ndigits)


@dataclass(frozen=True)
class _Spec:
    flags: str
    width: int
    precision: int
    conversion: str


def _digit_str(digits) -> str:
    return "".join(str(d) for d in digits)


def _pad(body: str, sign: str, spec_flags: str, width: int) -> str:
    text = sign + body
    if len(text) >= width:
        return text
    if "-" in spec_flags:
        return text + " " * (width - len(text))
    if "0" in spec_flags:
        return sign + "0" * (width - len(text)) + body
    return " " * (width - len(text)) + text


def _sign_str(negative: bool, flags: str) -> str:
    if negative:
        return "-"
    if "+" in flags:
        return "+"
    if " " in flags:
        return " "
    return ""


def _special(v: Flonum, flags: str, width: int, upper: bool):
    if v.is_nan:
        body = "NAN" if upper else "nan"
        return _pad(body, _sign_str(False, flags), flags.replace("0", ""),
                    width)
    if v.is_infinite:
        body = "INF" if upper else "inf"
        return _pad(body, _sign_str(v.is_negative, flags),
                    flags.replace("0", ""), width)
    return None


def fmt_e(x, precision: int = 6, flags: str = "", width: int = 0,
          upper: bool = False, engine=_USE_DEFAULT) -> str:
    """C's ``%e``: one digit, a point, ``precision`` digits, exponent."""
    v = to_flonum(x)
    special = _special(v, flags, width, upper)
    if special is not None:
        return special
    sign = _sign_str(v.is_negative, flags)
    exp_char = "E" if upper else "e"
    if v.is_zero:
        frac = "." + "0" * precision if precision else ("." if "#" in flags
                                                        else "")
        return _pad(f"0{frac}{exp_char}+00", sign, flags, width)
    r = _counted(v.abs(), engine, ndigits=precision + 1)
    ds = _digit_str(r.digits)
    exp = r.k - 1
    frac = "." + ds[1:] if precision else ("." if "#" in flags else "")
    body = f"{ds[0]}{frac}{exp_char}{'+' if exp >= 0 else '-'}{abs(exp):02d}"
    return _pad(body, sign, flags, width)


def fmt_f(x, precision: int = 6, flags: str = "", width: int = 0,
          engine=_USE_DEFAULT) -> str:
    """C's ``%f``: fixed point with ``precision`` fractional digits."""
    v = to_flonum(x)
    special = _special(v, flags, width, False)
    if special is not None:
        return special
    sign = _sign_str(v.is_negative, flags)
    if v.is_zero:
        frac = "." + "0" * precision if precision else ("." if "#" in flags
                                                        else "")
        return _pad("0" + frac, sign, flags, width)
    r = _counted(v.abs(), engine, position=-precision)
    ds = _digit_str(r.digits)
    # r.k is the position just past the first digit; digits span
    # [k-1, -precision].
    if not ds:
        int_part, frac_part = "0", "0" * precision
    elif r.k <= 0:
        int_part = "0"
        frac_part = "0" * (-r.k) + ds
    else:
        int_part = ds[: r.k] if len(ds) >= r.k else ds + "0" * (r.k - len(ds))
        frac_part = ds[r.k:]
    frac_part = frac_part.ljust(precision, "0")
    body = int_part
    if precision:
        body += "." + frac_part
    elif "#" in flags:
        body += "."
    return _pad(body, sign, flags, width)


def fmt_g(x, precision: int = 6, flags: str = "", width: int = 0,
          upper: bool = False, engine=_USE_DEFAULT) -> str:
    """C's ``%g``: ``%e`` or ``%f`` by exponent, trailing zeros stripped."""
    v = to_flonum(x)
    special = _special(v, flags, width, upper)
    if special is not None:
        return special
    sign = _sign_str(v.is_negative, flags)
    p = max(precision, 1)
    if v.is_zero:
        body = "0"
        if "#" in flags:
            body = "0." + "0" * (p - 1)
        return _pad(body, sign, flags, width)
    r = _counted(v.abs(), engine, ndigits=p)
    exp = r.k - 1
    exp_char = "E" if upper else "e"
    if exp < -4 or exp >= p:
        ds = _digit_str(r.digits)
        mant_frac = ds[1:]
        if "#" not in flags:
            mant_frac = mant_frac.rstrip("0")
        mant = ds[0] + ("." + mant_frac if mant_frac else
                        ("." if "#" in flags else ""))
        body = (f"{mant}{exp_char}"
                f"{'+' if exp >= 0 else '-'}{abs(exp):02d}")
        return _pad(body, sign, flags, width)
    # %f style with precision p - 1 - exp fractional digits.
    ds = _digit_str(r.digits)
    if r.k <= 0:
        int_part = "0"
        frac_part = "0" * (-r.k) + ds
    elif len(ds) <= r.k:
        int_part = ds + "0" * (r.k - len(ds))
        frac_part = ""
    else:
        int_part, frac_part = ds[: r.k], ds[r.k:]
    if "#" not in flags:
        frac_part = frac_part.rstrip("0")
    body = int_part + ("." + frac_part if frac_part else
                       ("." if "#" in flags else ""))
    return _pad(body, sign, flags, width)


_SPEC_STATES = "+-# 0"


def format_printf(spec: str, x, engine=_USE_DEFAULT) -> str:
    """Apply a single C conversion spec (``"%.17e"``, ``"%+12.3f"``…)."""
    if not spec.startswith("%"):
        raise ParseError(f"spec must start with %: {spec!r}")
    i = 1
    flags = ""
    while i < len(spec) and spec[i] in _SPEC_STATES:
        flags += spec[i]
        i += 1
    width = 0
    while i < len(spec) and spec[i].isdigit():
        width = width * 10 + int(spec[i])
        i += 1
    precision = None
    if i < len(spec) and spec[i] == ".":
        i += 1
        precision = 0
        while i < len(spec) and spec[i].isdigit():
            precision = precision * 10 + int(spec[i])
            i += 1
    if i != len(spec) - 1:
        raise ParseError(f"malformed spec: {spec!r}")
    conv = spec[-1]
    if precision is None:
        precision = 6
    if conv in "eE":
        return fmt_e(x, precision, flags, width, upper=conv == "E",
                     engine=engine)
    if conv == "f":
        return fmt_f(x, precision, flags, width, engine=engine)
    if conv in "gG":
        return fmt_g(x, precision, flags, width, upper=conv == "G",
                     engine=engine)
    raise ParseError(f"unsupported conversion {conv!r}")
