"""Digit-string assembly: positional and scientific notation.

The core algorithms produce *digit results* — positioned digit vectors.
This module turns them into strings: placing the radix point, padding
zeros, choosing positional vs scientific form, and rendering the paper's
``#`` insignificance marks.

Digit values above 9 use lowercase letters (bases up to 36).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.digits import DigitResult
from repro.core.fixed import FixedResult
from repro.errors import RangeError

__all__ = [
    "DIGIT_CHARS",
    "NotationOptions",
    "render_shortest",
    "render_shortest_parts",
    "render_fixed",
    "scientific_string",
    "engineering_string",
    "positional_string",
    "special_text",
]

DIGIT_CHARS = "0123456789abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class NotationOptions:
    """Rendering knobs.

    ``exp_low``/``exp_high`` bound the exponents rendered positionally in
    ``style='auto'`` (Python repr uses the equivalent of (-4, 16]).
    ``python_repr`` switches to CPython's surface conventions: two-digit
    signed exponents (``e+23``, ``e-05``) and a trailing ``.0`` on
    positional integer values.
    """

    style: str = "auto"  # 'auto' | 'positional' | 'scientific' | 'engineering'
    exp_low: int = -4
    exp_high: int = 16
    exp_char: str = "e"
    hash_char: str = "#"
    python_repr: bool = False
    #: Digit-group separator for positional integer parts ("" = none).
    group_char: str = ""
    group_size: int = 3
    #: Spellings for the special values (C99 would use "NAN"/"INF",
    #: JSON-ish surfaces "NaN"/"Infinity"; CPython repr keeps the
    #: defaults).  Negative infinity takes a leading "-".
    nan_text: str = "nan"
    inf_text: str = "inf"

    def __post_init__(self) -> None:
        if self.style not in ("auto", "positional", "scientific",
                              "engineering"):
            raise RangeError(f"unknown style {self.style!r}")
        if self.group_size < 1:
            raise RangeError("group_size must be >= 1")


DEFAULT_OPTIONS = NotationOptions()


def special_text(is_nan: bool, negative: bool,
                 opts: NotationOptions = DEFAULT_OPTIONS) -> str:
    """Render NaN or a signed infinity under the options' spellings."""
    if is_nan:
        return opts.nan_text
    return "-" + opts.inf_text if negative else opts.inf_text


def _chars(digits) -> str:
    """Digit values to characters; strings pass through untouched.

    The engine's fast paths produce digit *strings* directly (``str`` of an
    accumulated integer — C-speed, no per-digit join), so every rendering
    function accepts either representation.
    """
    if type(digits) is str:
        return digits
    return "".join(DIGIT_CHARS[d] for d in digits)


def _exponent_str(exp: int, opts: NotationOptions) -> str:
    if not opts.python_repr:
        return f"{opts.exp_char}{exp}"
    return f"{opts.exp_char}{'+' if exp >= 0 else '-'}{abs(exp):02d}"


def scientific_string(digits, k: int, opts: NotationOptions = DEFAULT_OPTIONS,
                      hashes: int = 0) -> str:
    """``d.ddd…e<k-1>`` for digits ``0.d1…dn × B**k``."""
    body = _chars(digits) + opts.hash_char * hashes
    first, rest = body[0], body[1:]
    mantissa = f"{first}.{rest}" if rest else first
    return mantissa + _exponent_str(k - 1, opts)


def _group(int_part: str, opts: NotationOptions) -> str:
    """Insert group separators into an integer-part string."""
    if not opts.group_char or len(int_part) <= opts.group_size:
        return int_part
    size = opts.group_size
    first = len(int_part) % size or size
    chunks = [int_part[:first]]
    for i in range(first, len(int_part), size):
        chunks.append(int_part[i:i + size])
    return opts.group_char.join(chunks)


def positional_string(digits, k: int, opts: NotationOptions = DEFAULT_OPTIONS,
                      hashes: int = 0, min_position: int = 0) -> str:
    """Plain decimal-point form for digits ``0.d1…dn × B**k``.

    ``min_position`` is the weight exponent of the last rendered position
    (``FixedResult.position``); free-format callers leave it at 0 so
    integers render without a point.
    """
    body = _chars(digits) + opts.hash_char * hashes
    n = len(body)
    if k <= 0:
        return "0." + "0" * (-k) + body
    if n <= k:
        # All digits are integral.  A numeral always extends to position 0,
        # so positions below the body (and below a positive stop position)
        # get filler: zeros normally, # when the tail is insignificant.
        filler = opts.hash_char if hashes else "0"
        int_fill = filler * (k - n)
        frac = ""
        if min_position < 0:
            frac = "." + filler * (-min_position)
        return _group(body + int_fill, opts) + frac
    return _group(body[:k], opts) + "." + body[k:]


def engineering_string(digits, k: int,
                       opts: NotationOptions = DEFAULT_OPTIONS,
                       hashes: int = 0) -> str:
    """Engineering form: exponent a multiple of 3, mantissa in [1, 1000).

    ``0.d1…dn × B**k`` becomes ``ddd.ddd…e<3m>``; only meaningful for
    decimal output (the convention is about SI prefixes).
    """
    exp = k - 1
    shift = exp % 3  # 0, 1 or 2 extra integral digits
    eng_exp = exp - shift
    body = _chars(digits) + opts.hash_char * hashes
    int_len = shift + 1
    if len(body) < int_len:
        body += "0" * (int_len - len(body))
    mantissa = body[:int_len]
    frac = body[int_len:]
    if frac:
        mantissa += "." + frac
    return mantissa + _exponent_str(eng_exp, opts)


def render_shortest(result: DigitResult,
                    opts: NotationOptions = DEFAULT_OPTIONS) -> str:
    """Render a free-format result, choosing the form by exponent size."""
    return render_shortest_parts(result.digits, result.k, opts)


def render_shortest_parts(digits, k: int,
                          opts: NotationOptions = DEFAULT_OPTIONS) -> str:
    """Render free-format digits given as a sequence *or* a digit string.

    The body-string form is the engine's hot exit path; keeping one
    dispatcher here ensures every tier renders identically.
    """
    if opts.style == "engineering":
        return engineering_string(digits, k, opts)
    if opts.style == "scientific":
        return scientific_string(digits, k, opts)
    if opts.style == "positional":
        s = positional_string(digits, k, opts)
        return _maybe_point_zero(s, opts)
    if opts.exp_low < k <= opts.exp_high:
        s = positional_string(digits, k, opts)
        return _maybe_point_zero(s, opts)
    return scientific_string(digits, k, opts)


def _maybe_point_zero(s: str, opts: NotationOptions) -> str:
    if opts.python_repr and "." not in s:
        return s + ".0"
    return s


def render_fixed(result: FixedResult,
                 opts: NotationOptions = DEFAULT_OPTIONS) -> str:
    """Render a fixed-format result (positional unless asked otherwise).

    A rounded-to-zero result renders as ``0`` padded with zeros to the
    requested position — all of them significant (zero is exact).
    """
    j = result.position
    if result.is_zero:
        if opts.style == "scientific":
            return "0" + _exponent_str(j, opts)
        return "0" + ("." + "0" * (-j) if j < 0 else "")
    if opts.style == "scientific":
        return scientific_string(result.digits, result.k, opts,
                                 hashes=result.hashes)
    if opts.style == "engineering":
        return engineering_string(result.digits, result.k, opts,
                                  hashes=result.hashes)
    return positional_string(result.digits, result.k, opts,
                             hashes=result.hashes, min_position=j)
