"""Rendering: notation assembly, printf-style formatting, shortest repr."""

from repro.format.hexfloat import format_hex, parse_hex, python_hex

from repro.format.notation import (
    DIGIT_CHARS,
    NotationOptions,
    positional_string,
    render_fixed,
    render_shortest,
    render_shortest_parts,
    scientific_string,
)

__all__ = [
    "format_hex",
    "parse_hex",
    "python_hex",
    "DIGIT_CHARS",
    "NotationOptions",
    "positional_string",
    "render_fixed",
    "render_shortest",
    "render_shortest_parts",
    "scientific_string",
]
