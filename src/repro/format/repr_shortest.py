"""CPython-compatible shortest ``repr`` built on the paper's algorithm.

CPython's ``repr(float)`` (since 3.1) prints the shortest string that
round-trips under its correctly rounded reader — exactly the paper's
free-format problem with an IEEE nearest-even reader.  This module
reproduces CPython's surface syntax on top of our digits, which gives the
test suite a second, independent oracle: ``py_repr(x) == repr(x)`` must
hold for every finite double.
"""

from __future__ import annotations

from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode, TieBreak
from repro.floats.model import Flonum
from repro.format.notation import NotationOptions, render_shortest

__all__ = ["py_repr", "PY_REPR_OPTIONS"]

#: CPython renders positionally for decimal exponents in [-4, 16), uses a
#: two-digit signed exponent otherwise, and keeps a trailing ``.0``.
PY_REPR_OPTIONS = NotationOptions(style="auto", exp_low=-4, exp_high=16,
                                  python_repr=True)


def py_repr(x) -> str:
    """Exactly ``repr(x)`` for a Python float, via the paper's algorithm.

    CPython reads with round-to-nearest-even, so the reader mode is
    NEAREST_EVEN; its shortest-digit engine resolves an exactly-equidistant
    final digit to even, hence ``TieBreak.EVEN``.
    """
    if isinstance(x, float):
        v = Flonum.from_float(x)
    else:
        v = x
    if v.is_nan:
        return "nan"
    if v.is_infinite:
        return "-inf" if v.sign else "inf"
    sign = "-" if v.is_negative else ""
    if v.is_zero:
        return sign + "0.0"
    digits = shortest_digits(v.abs(), base=10, mode=ReaderMode.NEAREST_EVEN,
                             tie=TieBreak.EVEN)
    return sign + render_shortest(digits, PY_REPR_OPTIONS)
