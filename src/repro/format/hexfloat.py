"""C99 hexadecimal floating-point notation (``%a`` / ``float.hex``).

Hex-float is the exact interchange syntax: every finite binary float has
a finite hex representation and reading it back is lossless, which makes
it the natural debugging complement to the paper's decimal algorithms
(and a second, conversion-free round-trip oracle for the test suite).

Provides C's ``%a`` (trailing zeros trimmed, optional precision with
correct rounding), CPython's ``float.hex`` surface form, and a correctly
rounding parser for any binary format.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.rounding import ReaderMode
from repro.errors import FormatError, ParseError
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.reader.exact import round_rational

__all__ = ["format_hex", "python_hex", "parse_hex"]

_HEX_DIGITS = "0123456789abcdef"

_HEX_RE = re.compile(
    r"""^(?P<sign>[+-])?
        0[xX]
        (?P<int>[0-9a-fA-F]*)
        (?:\.(?P<frac>[0-9a-fA-F]*))?
        [pP](?P<exp>[+-]?[0-9]+)$""",
    re.VERBOSE,
)


def _split_hex_mantissa(v: Flonum):
    """``(lead, frac_hexits, p2)`` with |v| = lead.frac * 2**p2.

    Normals are normalized to a leading hexit of 1; denormals keep a
    leading 0 and the minimum normal exponent, as C and CPython print
    them.
    """
    fmt = v.fmt
    f, e = v.f, v.e
    if v.is_denormal:
        lead = 0
        p2 = fmt.emin
        frac_bits = fmt.precision - 1
    else:
        lead = 1
        p2 = e + fmt.precision - 1
        f -= fmt.hidden_limit
        frac_bits = fmt.precision - 1
    # Left-align the fraction to a whole number of hexits.
    pad = (-frac_bits) % 4
    frac = f << pad
    nhex = (frac_bits + pad) // 4
    hexits = [(frac >> (4 * (nhex - 1 - i))) & 0xF for i in range(nhex)]
    return lead, hexits, p2


def python_hex(x) -> str:
    """Exactly ``float.hex(x)`` via the Flonum model (binary64)."""
    v = x if isinstance(x, Flonum) else Flonum.from_float(x)
    if v.is_nan:
        return "nan"
    if v.is_infinite:
        return "-inf" if v.sign else "inf"
    sign = "-" if v.is_negative else ""
    if v.is_zero:
        return sign + "0x0.0p+0"
    lead, hexits, p2 = _split_hex_mantissa(v.abs())
    body = "".join(_HEX_DIGITS[h] for h in hexits)
    return f"{sign}0x{lead}.{body}p{'+' if p2 >= 0 else '-'}{abs(p2)}"


def format_hex(x, precision: Optional[int] = None, upper: bool = False,
               flags: str = "") -> str:
    """C's ``%a``: trimmed by default, correctly rounded to ``precision``
    hexits after the point when given."""
    v = x if isinstance(x, Flonum) else Flonum.from_float(x)
    if v.is_nan:
        return "NAN" if upper else "nan"
    if v.is_infinite:
        body = "INF" if upper else "inf"
        return ("-" if v.sign else "") + body
    sign = "-" if v.is_negative else ("+" if "+" in flags else "")
    if v.is_zero:
        frac = "." + "0" * precision if precision else (
            "." if "#" in flags else "")
        out = f"0x0{frac}p+0"
        return sign + (out.upper().replace("X", "x") if upper else out)
    lead, hexits, p2 = _split_hex_mantissa(v.abs())
    if precision is not None:
        lead, hexits, p2 = _round_hexits(lead, hexits, p2, precision)
    else:
        while hexits and hexits[-1] == 0:
            hexits.pop()
    body = "".join(_HEX_DIGITS[h] for h in hexits)
    frac = f".{body}" if body else ("." if "#" in flags else "")
    out = f"0x{lead}{frac}p{'+' if p2 >= 0 else '-'}{abs(p2)}"
    if upper:
        out = out.upper().replace("0X", "0X")
        out = "0X" + out[2:]
    return sign + out


def _round_hexits(lead: int, hexits, p2: int, precision: int):
    """Round ``lead.hexits`` to ``precision`` fractional hexits,
    nearest-even (the IEEE default C uses)."""
    if precision >= len(hexits):
        return lead, hexits + [0] * (precision - len(hexits)), p2
    kept = hexits[:precision]
    dropped = hexits[precision:]
    half = dropped[0] >= 8
    exact_half = dropped[0] == 8 and all(d == 0 for d in dropped[1:])
    last = kept[-1] if kept else lead
    round_up = half and not (exact_half and last % 2 == 0)
    if round_up:
        i = precision - 1
        while i >= 0 and kept[i] == 15:
            kept[i] = 0
            i -= 1
        if i >= 0:
            kept[i] += 1
        else:
            lead += 1
            if lead == 2 and precision == 0:
                pass  # 1.xxx -> 2.0 stays a valid leading hexit
            elif lead == 16:
                lead = 1
                p2 += 4
    return lead, kept, p2


def parse_hex(text: str, fmt: FloatFormat = BINARY64,
              mode: ReaderMode = ReaderMode.NEAREST_EVEN) -> Flonum:
    """Correctly rounded value of a C99 hex-float literal."""
    s = text.strip()
    low = s.lower()
    if low in ("inf", "+inf", "-inf", "infinity", "+infinity", "-infinity"):
        return Flonum.infinity(fmt, 1 if low.startswith("-") else 0)
    if low in ("nan", "+nan", "-nan"):
        return Flonum.nan(fmt)
    m = _HEX_RE.match(s)
    if m is None:
        raise ParseError(f"malformed hex float: {text!r}")
    if fmt.radix != 2:
        raise FormatError("hex floats describe radix-2 values")
    int_part = m.group("int") or ""
    frac_part = m.group("frac") or ""
    if not int_part and not frac_part:
        raise ParseError(f"no hexits in: {text!r}")
    mantissa = int(int_part + frac_part, 16) if (int_part + frac_part) else 0
    negative = m.group("sign") == "-"
    if mantissa == 0:
        return Flonum.zero(fmt, 1 if negative else 0)
    e2 = int(m.group("exp")) - 4 * len(frac_part)
    if e2 >= 0:
        return round_rational(mantissa * 2**e2, 1, fmt, mode,
                              negative=negative)
    return round_rational(mantissa, 2**-e2, fmt, mode, negative=negative)
