"""Scheme ``number->string`` / ``string->number`` semantics.

The paper closes: "the ANSI/IEEE Scheme standard requirement for
accurate, minimal-length numeric output and the desire to do so as
efficiently as possible in Chez Scheme motivated the work reported
here."  This module is that surface: R4RS/IEEE-1178 external
representations for inexact reals backed by the paper's algorithm.

Covered syntax: radix prefixes ``#b #o #d #x``, exactness prefixes
``#e #i``, decimal suffix exponents, and the guarantee that
``(string->number (number->string x))`` is exact for every flonum.
Radixes other than ten print/parse without exponent markers (R4RS only
defines decimal exponents).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Union

from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.errors import ParseError, RangeError
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.format.notation import DIGIT_CHARS, NotationOptions, render_shortest
from repro.reader.exact import read_fraction
from repro.reader.parse import parse_decimal

__all__ = ["number_to_string", "string_to_number"]

_RADIX_PREFIX = {"b": 2, "o": 8, "d": 10, "x": 16}
_PREFIX_FOR_RADIX = {2: "#b", 8: "#o", 10: "", 16: "#x"}

#: Scheme flonums always show a decimal point; exponents use ``e``.
_SCHEME_OPTS = NotationOptions(style="auto", exp_low=-4, exp_high=21)


def number_to_string(x: Union[float, Flonum], radix: int = 10) -> str:
    """R4RS ``number->string`` for an inexact real.

    The output is the shortest string that reads back to ``x`` — the
    standard's accuracy requirement, satisfied by construction.  Radix
    10 output may use exponential notation; other radixes are positional
    (R4RS gives them no exponent marker) and carry the radix prefix.
    """
    if radix not in (2, 8, 10, 16):
        raise RangeError(f"Scheme radix must be 2, 8, 10 or 16: {radix}")
    v = x if isinstance(x, Flonum) else Flonum.from_float(x)
    prefix = _PREFIX_FOR_RADIX[radix]
    if v.is_nan:
        return "+nan.0"
    if v.is_infinite:
        return "-inf.0" if v.sign else "+inf.0"
    sign = "-" if v.is_negative else ""
    if v.is_zero:
        return f"{prefix}{sign}0."
    digits = shortest_digits(v.abs(), base=radix,
                             mode=ReaderMode.NEAREST_EVEN)
    if radix == 10:
        body = render_shortest(digits, _SCHEME_OPTS)
        if "e" not in body and "." not in body:
            body += "."  # flonums are marked by the point
    else:
        body = render_shortest(
            digits, NotationOptions(style="positional"))
        # 'e' is a digit beyond base 10, so only the point marks a flonum.
        if "." not in body:
            body += "."
    return f"{prefix}{sign}{body}"


def _strip_prefixes(text: str):
    """Peel ``#`` prefixes: returns (radix, exactness, rest)."""
    radix: Optional[int] = None
    exactness: Optional[str] = None
    s = text
    while s[:1] == "#":
        if len(s) < 2:
            raise ParseError(f"dangling # prefix in {text!r}")
        tag = s[1].lower()
        if tag in _RADIX_PREFIX:
            if radix is not None:
                raise ParseError(f"duplicate radix prefix in {text!r}")
            radix = _RADIX_PREFIX[tag]
        elif tag in ("e", "i"):
            if exactness is not None:
                raise ParseError(f"duplicate exactness prefix in {text!r}")
            exactness = tag
        else:
            raise ParseError(f"unknown prefix #{s[1]} in {text!r}")
        s = s[2:]
    return radix or 10, exactness, s


def _parse_radix_real(body: str, radix: int) -> Fraction:
    """Positional real in an arbitrary radix: ``[+-]?digits[.digits]``."""
    sign = 1
    if body[:1] in ("+", "-"):
        if body[0] == "-":
            sign = -1
        body = body[1:]
    if "." in body:
        int_part, _, frac_part = body.partition(".")
    else:
        int_part, frac_part = body, ""
    if not int_part and not frac_part:
        raise ParseError(f"no digits in {body!r}")
    value = 0
    for ch in (int_part + frac_part).lower():
        d = DIGIT_CHARS.find(ch)
        if d < 0 or d >= radix:
            raise ParseError(f"invalid radix-{radix} digit {ch!r}")
        value = value * radix + d
    return sign * Fraction(value, radix ** len(frac_part))


def string_to_number(text: str, fmt: FloatFormat = BINARY64
                     ) -> Union[Flonum, Fraction, int]:
    """R4RS ``string->number`` for real numbers.

    Returns an ``int`` or :class:`Fraction` for exact syntax (no point,
    no exponent, or ``#e``), a :class:`Flonum` for inexact syntax
    (point/exponent or ``#i``), rounding nearest-even like an IEEE
    Scheme.  Raises :class:`ParseError` for malformed input (Scheme's
    ``#f`` result).
    """
    s = text.strip()
    if not s:
        raise ParseError("empty string")
    low = s.lower()
    if low in ("+inf.0", "-inf.0"):
        return Flonum.infinity(fmt, 1 if low[0] == "-" else 0)
    if low in ("+nan.0", "-nan.0"):
        return Flonum.nan(fmt)
    radix, exactness, body = _strip_prefixes(s)
    if not body:
        raise ParseError(f"no number after prefixes in {text!r}")

    if "/" in body:
        num_text, _, den_text = body.partition("/")
        value = Fraction(_parse_radix_real(num_text, radix),
                         _parse_radix_real(den_text, radix))
        inexact = exactness == "i"
        is_integer = False
    elif radix == 10:
        parsed = parse_decimal(body)
        if parsed.special is not None:
            raise ParseError(f"special not valid here: {text!r}")
        value = parsed.to_fraction()
        inexact = ("." in body or "e" in body.lower()
                   or parsed.insignificant > 0)
        is_integer = not inexact
        if exactness == "i":
            inexact = True
        elif exactness == "e":
            inexact = False
    else:
        value = _parse_radix_real(body, radix)
        inexact = "." in body
        is_integer = not inexact
        if exactness == "i":
            inexact = True
        elif exactness == "e":
            inexact = False

    if inexact:
        if value == 0:
            negative = body.lstrip().startswith("-")
            return Flonum.zero(fmt, 1 if negative else 0)
        return read_fraction(value, fmt, ReaderMode.NEAREST_EVEN)
    if is_integer and value.denominator == 1:
        return int(value)
    return value
