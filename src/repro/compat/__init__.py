"""Host-language compatibility surfaces built on the core algorithms."""

from repro.compat.scheme import number_to_string, string_to_number

__all__ = ["number_to_string", "string_to_number"]
