"""A tiny software float with configurable precision.

1996-era ``printf`` implementations converted via *hardware* floating
point: a chain of multiplications by cached powers of ten in double
(53-bit), x87-extended (64-bit) or VAX/Alpha (113-bit-ish) intermediates.
Each multiply rounds, and the accumulated error is exactly what made some
of Table 3's systems mis-round (and others, with wider intermediates or
exact fallbacks, not).

This module reproduces that arithmetic in software so the error behaviour
is host-independent: a :class:`SoftFloat` keeps a ``precision``-bit
significand and rounds every operation to nearest-even, like the FPUs
did.  It exists purely as a *substrate for the baseline*; the paper's own
algorithm never touches it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RangeError

__all__ = ["SoftFloat"]


@dataclass(frozen=True)
class SoftFloat:
    """A positive value ``m * 2**q`` with ``2**(p-1) <= m < 2**p``."""

    m: int
    q: int
    precision: int

    @staticmethod
    def from_ratio(num: int, den: int, precision: int) -> "SoftFloat":
        """Round ``num/den`` (positive) to ``precision`` bits, nearest-even."""
        if num <= 0 or den <= 0:
            raise RangeError("SoftFloat models positive values only")
        # Scale so the quotient has exactly `precision + 1` guard context:
        # shift num until num/den >= 2**precision, then one divmod.
        shift = precision - (num.bit_length() - den.bit_length()) + 1
        if shift >= 0:
            n, d = num << shift, den
        else:
            n, d = num, den << -shift
        f, rem = divmod(n, d)
        # f has precision+1 or precision+2 bits; normalize to precision.
        extra = f.bit_length() - precision
        q = -shift + extra
        if extra > 0:
            dropped = f & ((1 << extra) - 1)
            f >>= extra
            half = 1 << (extra - 1)
            if dropped > half or (dropped == half and (rem or f & 1)):
                f += 1
        elif rem:
            # Exactly precision bits but inexact: round on the remainder.
            if 2 * rem > d or (2 * rem == d and f & 1):
                f += 1
        if f == 1 << precision:
            f >>= 1
            q += 1
        return SoftFloat(f, q, precision)

    @staticmethod
    def from_int(n: int, precision: int) -> "SoftFloat":
        return SoftFloat.from_ratio(n, 1, precision)

    def mul(self, other: "SoftFloat") -> "SoftFloat":
        """Rounded product (the FPU operation the old printfs chained)."""
        if self.precision != other.precision:
            raise RangeError("mixed precisions")
        p = self.precision
        prod = self.m * other.m  # 2p-1 or 2p bits
        extra = prod.bit_length() - p
        dropped = prod & ((1 << extra) - 1)
        f = prod >> extra
        half = 1 << (extra - 1)
        if dropped > half or (dropped == half and f & 1):
            f += 1
            if f == 1 << p:
                f >>= 1
                extra += 1
        return SoftFloat(f, self.q + other.q + extra, p)

    def floor_and_fraction(self):
        """``(floor(value), fraction_numerator, fraction_denominator)``."""
        if self.q >= 0:
            return self.m << self.q, 0, 1
        if self.q <= -self.m.bit_length():
            return 0, self.m, 1 << -self.q
        ip = self.m >> -self.q
        frac = self.m & ((1 << -self.q) - 1)
        return ip, frac, 1 << -self.q

    def to_fraction(self):
        from fractions import Fraction

        return Fraction(self.m) * Fraction(2) ** self.q
