"""A model of 1996-era ``printf`` digit generation (Table 3's comparator).

Table 3 counts outputs "rounded incorrectly by printf": from 0 (systems
that had already adopted exact conversion) through a few hundred (x87-
style 64-bit extended intermediates) to 6,280 of 250,680 (straight
double-precision chains).  Those libcs scaled the value by a chain of
cached powers of ten in *hardware floating point* — every multiply
rounding — then peeled digits from the scaled result.

Modern libcs are exact (thanks in part to this very literature), so the
incorrect-count column is reproduced with a software model of the old
arithmetic: :class:`~repro.baselines.softfloat.SoftFloat` with a
configurable significand width.  ``precision=53`` models the bad 1996
systems, ``precision=64`` the x87 ones, ``precision=113`` the nearly
clean ones; the exact baseline (:mod:`repro.baselines.naive_fixed`)
represents the fixed systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.baselines.naive_fixed import exact_fixed_digits
from repro.baselines.softfloat import SoftFloat
from repro.core.rounding import TieBreak
from repro.errors import RangeError
from repro.floats.model import Flonum

__all__ = [
    "naive_printf_digits",
    "is_correctly_rounded",
    "PrintfAudit",
    "audit_naive_printf",
]

_POW_CACHE: Dict[Tuple[int, int], SoftFloat] = {}


def _soft_pow10(k: int, precision: int) -> SoftFloat:
    """``10**k`` rounded once to ``precision`` bits (the libc table entry)."""
    key = (k, precision)
    got = _POW_CACHE.get(key)
    if got is None:
        if k >= 0:
            got = SoftFloat.from_ratio(10**k, 1, precision)
        else:
            got = SoftFloat.from_ratio(1, 10**-k, precision)
        _POW_CACHE[key] = got
    return got


def _scale_by_pow10(x: SoftFloat, k: int, precision: int) -> SoftFloat:
    """Multiply by ``10**k`` via the classic binary-exponent factor chain.

    Each factor ``10**(2**i)`` is itself rounded, and every multiply
    rounds again — this chain is the error source the exact algorithms
    eliminated.
    """
    mag = abs(k)
    i = 0
    while mag:
        if mag & 1:
            x = x.mul(_soft_pow10((1 << i) if k > 0 else -(1 << i),
                                  precision))
        mag >>= 1
        i += 1
    return x


def naive_printf_digits(x, ndigits: int = 17, precision: int = 53):
    """``(k, digits)`` for positive finite ``x`` via rounded-chain scaling.

    ``precision`` is the significand width of the emulated intermediate
    arithmetic.  The digit extraction itself is exact (as in the real
    implementations, which peeled digits from an integer); all error comes
    from the scaling chain, matching the historical failure mode.
    """
    v = x if isinstance(x, Flonum) else Flonum.from_float(float(x))
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("naive_printf_digits requires a positive finite x")
    if ndigits < 1:
        raise RangeError("ndigits must be >= 1")
    b = v.fmt.radix
    if v.e >= 0:
        soft = SoftFloat.from_ratio(v.f * b**v.e, 1, precision)
    else:
        soft = SoftFloat.from_ratio(v.f, b**-v.e, precision)

    # Decimal position of the first digit, from the (possibly slightly
    # off) scaled value itself — as the originals did.
    k = _approx_k(soft)
    scaled = _scale_by_pow10(soft, ndigits - k, precision)
    n, frac_num, frac_den = scaled.floor_and_fraction()
    # Off-by-one in k shows up as n outside [10**(nd-1), 10**nd); the old
    # code rescaled by one more factor of ten.
    while n >= 10**ndigits:
        k += 1
        scaled = _scale_by_pow10(scaled, -1, precision)
        n, frac_num, frac_den = scaled.floor_and_fraction()
    while 0 < n < 10**(ndigits - 1):
        k -= 1
        scaled = _scale_by_pow10(scaled, 1, precision)
        n, frac_num, frac_den = scaled.floor_and_fraction()
    # Final rounding on the (inexact) fraction, half away from zero as the
    # classic implementations did.
    if 2 * frac_num >= frac_den:
        n += 1
        if n == 10**ndigits:
            n //= 10
            k += 1
    return k, tuple(int(c) for c in str(n).zfill(ndigits))


def _approx_k(soft: SoftFloat) -> int:
    """floor(log10) + 1 from the binary exponent (may be off by one)."""
    import math

    log10 = (soft.m.bit_length() + soft.q) * math.log10(2.0)
    return math.floor(log10) + 1


def is_correctly_rounded(x, k: int, digits, ndigits: int = 17) -> bool:
    """Whether ``(k, digits)`` matches the exact conversion.

    Accepts either tie choice when the exact value sits exactly on a
    half-digit boundary (both are correctly rounded then).
    """
    v = x if isinstance(x, Flonum) else Flonum.from_float(float(x))
    want_even = exact_fixed_digits(v, ndigits=ndigits, tie=TieBreak.EVEN)
    if (k, tuple(digits)) == (want_even.k, want_even.digits):
        return True
    want_up = exact_fixed_digits(v, ndigits=ndigits, tie=TieBreak.UP)
    want_down = exact_fixed_digits(v, ndigits=ndigits, tie=TieBreak.DOWN)
    if want_up.digits == want_down.digits:
        return False  # not a tie: only one correctly rounded answer
    return (k, tuple(digits)) in (
        (want_up.k, want_up.digits), (want_down.k, want_down.digits))


@dataclass
class PrintfAudit:
    """Aggregate result of running the naive printf over a corpus."""

    total: int = 0
    incorrect: int = 0
    precision: int = 53

    @property
    def rate(self) -> float:
        return self.incorrect / self.total if self.total else 0.0


def audit_naive_printf(values: Iterable, ndigits: int = 17,
                       precision: int = 53) -> PrintfAudit:
    """Count incorrectly rounded naive-printf outputs (Table 3's column)."""
    audit = PrintfAudit(precision=precision)
    for x in values:
        audit.total += 1
        k, digits = naive_printf_digits(x, ndigits, precision)
        if not is_correctly_rounded(x, k, digits, ndigits):
            audit.incorrect += 1
    return audit
