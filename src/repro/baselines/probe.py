"""The parse-probing baseline: shortest output without any new algorithm.

Before Steele–White-family algorithms were adopted, systems that wanted
shortest round-trip output faked it with the host's printf/strtod pair:
print at 1, 2, … 17 significant digits and return the first string that
parses back exactly.  Correct (both host primitives are correctly
rounded), widely deployed (early JavaScript engines, musl), and the
baseline that shows what the paper's algorithm actually buys: one pass
instead of up to 17 print+parse round trips, and digit-level control
(bases, formats, reader modes) the host primitives cannot offer.
"""

from __future__ import annotations

import math

from repro.core.digits import DigitResult
from repro.errors import RangeError

__all__ = ["probe_shortest", "probe_shortest_digits"]


def probe_shortest(x: float) -> str:
    """Shortest round-tripping string via printf/strtod probing."""
    if math.isnan(x) or math.isinf(x) or x == 0:
        raise RangeError("probe_shortest takes positive finite input")
    for ndigits in range(1, 18):
        text = f"{x:.{ndigits - 1}e}"
        if float(text) == x:
            return text
    return f"{x:.16e}"  # pragma: no cover - 17 digits always round-trip


def probe_shortest_digits(x: float) -> DigitResult:
    """The probed string as a :class:`DigitResult` (for comparison)."""
    text = probe_shortest(x)
    mantissa, _, exp = text.partition("e")
    digits_str = mantissa.replace(".", "").rstrip("0") or "0"
    return DigitResult(
        k=int(exp) + 1,
        digits=tuple(int(c) for c in digits_str),
        base=10,
    )
