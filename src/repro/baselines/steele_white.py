"""Steele & White's Dragon4 (reference [5] of the paper).

The 1990 algorithm the paper improves on.  Behavioural differences the
paper calls out, reproduced faithfully here:

* **Iterative scaling only** — ``O(|log v|)`` big-integer multiplications
  to find the scale factor, the cost that dominates for extreme exponents.
* **No reader-rounding awareness** — the loop always uses strict
  comparisons, so boundary outputs like ``1e23`` are never produced even
  for readers (IEEE nearest-even) that would read them back correctly;
  such values print one digit longer (``9.999999999999999e22``).
* **Fixed format via a simple mask** — digits stop at the requested
  position with a ``B**j / 2`` mask only; the representation's own gap is
  ignored, so there is no significant/insignificant distinction (no ``#``
  marks) and the rounding range is slightly off for values near the
  precision limit (the "slight inaccuracy" of Section 5).

The free-format output still satisfies the round-trip guarantee for any
correct round-to-nearest reader; it is the *optimizations* that are
missing, which is exactly what the Table 2/3 benches measure.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.boundaries import initial_scaled_value
from repro.core.digits import DigitResult
from repro.core.fixed import FixedResult
from repro.errors import RangeError
from repro.floats.model import Flonum

__all__ = ["dragon4_shortest", "dragon4_fixed"]


def _scale_iterative_strict(r: int, s: int, m_plus: int, m_minus: int,
                            base: int, inclusive_high: bool = False
                            ) -> Tuple[int, int, int, int, int]:
    """Steele & White's scale loop (no estimator).

    ``inclusive_high`` selects the fixed-format variant, whose digit loop
    terminates on ``r + mask >= s``; the bounds here must match or an
    exact-half remainder would never terminate.
    """
    k = 0
    if inclusive_high:
        while r + m_plus >= s:  # k too low
            s *= base
            k += 1
        while (r + m_plus) * base < s:  # k too high
            r *= base
            m_plus *= base
            m_minus *= base
            k -= 1
    else:
        while r + m_plus > s:  # k too low
            s *= base
            k += 1
        while (r + m_plus) * base <= s:  # k too high
            r *= base
            m_plus *= base
            m_minus *= base
            k -= 1
    return k, r, s, m_plus, m_minus


def dragon4_shortest(v: Flonum, base: int = 10) -> DigitResult:
    """Free-format Dragon4: shortest output under strict boundaries."""
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("dragon4_shortest requires a positive finite value")
    r, s, m_plus, m_minus = initial_scaled_value(v)
    k, r, s, m_plus, m_minus = _scale_iterative_strict(r, s, m_plus, m_minus,
                                                       base)
    digits: List[int] = []
    while True:
        r *= base
        m_plus *= base
        m_minus *= base
        d, r = divmod(r, s)
        low = r < m_minus
        high = r + m_plus > s
        if low or high:
            break
        digits.append(d)
    if low and not high:
        digits.append(d)
    elif high and not low:
        digits.append(d + 1)
    else:
        digits.append(d if 2 * r <= s else d + 1)
    return DigitResult(k=k, digits=tuple(digits), base=base)


def dragon4_fixed(v: Flonum, position: int, base: int = 10) -> FixedResult:
    """Steele & White's fixed-format variant (their FP³ shape).

    The stopping mask is ``B**position / 2`` alone; every emitted digit is
    treated as significant.  For values whose representation gap exceeds
    the mask this prints plausible-looking but uninformative digits — the
    behaviour the paper's ``#`` marks were designed to replace.
    """
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("dragon4_fixed requires a positive finite value")
    r, s, m_plus, m_minus = initial_scaled_value(v)
    # Replace both margins by the position mask (the S&W inaccuracy: the
    # gap information is discarded entirely).
    if position >= 0:
        mask = (s // 2) * base**position
    else:
        factor = base**-position
        r *= factor
        mask = s // 2
        s *= factor
    k, r, s, mask, _ = _scale_iterative_strict(r, s, mask, mask, base,
                                                inclusive_high=True)
    if k <= position:
        return FixedResult(k=position, digits=(), hashes=0,
                           position=position, base=base)
    digits: List[int] = []
    while True:
        r *= base
        mask *= base
        d, r = divmod(r, s)
        low = r < mask
        high = r + mask >= s
        if low or high:
            break
        digits.append(d)
    if low and not high:
        digits.append(d)
    elif high and not low:
        digits.append(d + 1)
    else:
        digits.append(d if 2 * r <= s else d + 1)
    pos = k - len(digits)
    if pos < position:  # pragma: no cover - mask termination prevents this
        raise AssertionError("generated past the requested position")
    digits.extend([0] * (pos - position))
    return FixedResult(k=k, digits=tuple(digits), hashes=0,
                       position=position, base=base)
