"""David Gay's scaling-factor estimator (the paper's Section 5 comparison).

Gay's correctly-rounded conversion work (AT&T Numerical Analysis
Manuscript 90-10; the ``dtoa.c`` family) estimates ``floor(log10 v)`` with
a first-degree Taylor expansion of ``log10`` around 1.5, evaluated on the
fraction returned by ``frexp``::

    v = x * 2**s,  1/2 <= x < 1
    log10 v ≈ (x - 1.5)·d(log10)/dx|_{1.5}·…  + log10(1.5) + s·log10(2)

Five floating-point operations versus our estimator's two.  Gay's
estimate is *more accurate* (it tracks the mantissa), which mattered for
his algorithm; Burger & Dybvig's fixup makes the extra accuracy
unnecessary — the ablation bench quantifies exactly this trade-off.

Constants below are the ones from ``dtoa.c``: ``0.289529654602168`` is
``1/(1.5·ln 10)``, ``0.1760912590558`` is ``log10(1.5)``, and
``0.301029995663981`` is ``log10(2)``.
"""

from __future__ import annotations

import math

from repro.floats.model import Flonum

__all__ = ["gay_estimate_log10", "gay_estimate_k"]

_INV_1_5_LN10 = 0.289529654602168
_LOG10_1_5 = 0.1760912590558
_LOG10_2 = 0.301029995663981


#: The tangent line to a concave function lies above it, so the Taylor
#: estimate only ever overshoots; the excess over [1, 2) peaks at
#: ``log10(1.5) - log10(1) - 0.5/(1.5 ln 10)`` ≈ 0.03133 at x = 1.
_OVERSHOOT_GUARD = 0.0314


def gay_estimate_log10(v: Flonum) -> float:
    """Gay's five-operation Taylor estimate of ``log10 v`` (binary v)."""
    # frexp-style split from the exact components: x in [1, 2), v = x * 2**s.
    bits = v.f.bit_length()
    s = v.e + bits - 1
    x = v.f / (1 << (bits - 1))
    return (x - 1.5) * _INV_1_5_LN10 + _LOG10_1_5 + s * _LOG10_2


def gay_estimate_k(v: Flonum) -> int:
    """``ceil(log10 v)`` estimate in the scaling-factor convention.

    Gay's papers estimate ``floor(log10 v)`` and track a "might be off"
    flag; for an apples-to-apples comparison with
    :func:`repro.core.scaling.estimate_k_fast` we take the same
    never-overshooting ceiling, guarding the tangent-line excess so the
    shared fixup (which only corrects undershoot cheaply) applies.
    """
    return math.ceil(gay_estimate_log10(v) - _OVERSHOOT_GUARD - 1e-10)
