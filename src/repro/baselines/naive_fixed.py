"""The "straightforward fixed-format algorithm" (Table 3's baseline).

Correctly rounded fixed-format conversion by direct exact arithmetic: one
big-integer division of ``f * 2**e`` by ``B**j`` (round half to even),
then digit extraction.  No shortest-output logic, no per-digit range
tests, no ``#`` marks — every requested digit of the exact binary value
is produced.  This is what the paper times free format *against* (the
1.66× geometric-mean row of Table 3), and it is also the conversion
engine behind our correct ``printf`` (:mod:`repro.format.printf`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bignum.pow_cache import power
from repro.core.digits import DigitResult
from repro.core.rounding import TieBreak
from repro.errors import RangeError
from repro.floats.model import Flonum
from repro.reader.exact import ilog

__all__ = ["exact_fixed_digits", "naive_fixed_17", "fixed_digits_loop"]


def _round_div(num: int, den: int, tie: TieBreak) -> int:
    """``round(num / den)`` with the given tie strategy."""
    q, rem = divmod(num, den)
    double_rem = 2 * rem
    if double_rem < den:
        return q
    if double_rem > den:
        return q + 1
    return tie.choose(q)


def exact_fixed_digits(v: Flonum, position: Optional[int] = None,
                       ndigits: Optional[int] = None, base: int = 10,
                       tie: TieBreak = TieBreak.EVEN) -> DigitResult:
    """Digits of the *exact* value of ``v``, correctly rounded at a position.

    Absolute mode rounds at weight ``base**position``; relative mode
    produces exactly ``ndigits`` significant digits (C's ``%e`` semantics,
    including the ``9.99… → 1.0…e+1`` carry).  Ties default to even,
    matching IEEE-mode ``printf``.
    """
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("exact_fixed_digits requires a positive finite value")
    if (position is None) == (ndigits is None):
        raise RangeError("give exactly one of position= or ndigits=")
    if position is not None:
        scaled = _scale_at_position(v, position, base)
        n = _round_div(*scaled, tie)
        if n == 0:
            return DigitResult(k=position, digits=(), base=base)
        digits = _int_digits(n, base)
        return DigitResult(k=position + len(digits), digits=tuple(digits),
                           base=base)
    if ndigits < 1:
        raise RangeError(f"ndigits must be >= 1, got {ndigits}")
    b = v.fmt.radix
    num, den = _as_ratio(v)
    k = ilog(num, den, base) + 1  # first digit sits at position k-1
    n = _round_div(*_scale_ratio(num, den, k - ndigits, base), tie)
    if n >= power(base, ndigits):
        # Carry past the first digit (9.99… rounds to 10.0…): drop the new
        # trailing zero and step the exponent.
        n //= base
        k += 1
    digits = _int_digits(n, base)
    if len(digits) < ndigits:  # pragma: no cover - leading digit nonzero
        raise AssertionError("short digit string")
    return DigitResult(k=k, digits=tuple(digits), base=base)


def _as_ratio(v: Flonum) -> Tuple[int, int]:
    b = v.fmt.radix
    if v.e >= 0:
        return v.f * b**v.e, 1
    return v.f, b**-v.e


def _scale_ratio(num: int, den: int, j: int, base: int) -> Tuple[int, int]:
    """``(num', den')`` with ``num'/den' = (num/den) / base**j``."""
    if j >= 0:
        return num, den * power(base, j)
    return num * power(base, -j), den


def _scale_at_position(v: Flonum, j: int, base: int) -> Tuple[int, int]:
    num, den = _as_ratio(v)
    return _scale_ratio(num, den, j, base)


def _int_digits(n: int, base: int):
    if base == 10:
        return [int(c) for c in str(n)]
    out = []
    while n:
        n, d = divmod(n, base)
        out.append(d)
    out.reverse()
    return out


def naive_fixed_17(v: Flonum) -> DigitResult:
    """Table 3's workload: 17 significant digits, "the minimum number
    guaranteed to distinguish among IEEE double-precision numbers"."""
    return exact_fixed_digits(v, ndigits=17)


def fixed_digits_loop(v: Flonum, ndigits: int = 17, base: int = 10,
                      tie: TieBreak = TieBreak.EVEN) -> DigitResult:
    """The straightforward *digit-loop* fixed-format printer.

    This is the implementation style Table 3 actually benches against:
    the same scaled-integer representation and estimator-based scaling as
    the free-format algorithm, but the digit loop runs a fixed count with
    no termination tests and no margin bookkeeping — one ``divmod`` per
    digit, one remainder comparison at the end.  Free format's extra cost
    over *this* is precisely what Table 3's first column measures.

    Produces the same digits as :func:`exact_fixed_digits` (a property
    test checks that); only the evaluation strategy differs.
    """
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("fixed_digits_loop requires a positive finite value")
    if ndigits < 1:
        raise RangeError(f"ndigits must be >= 1, got {ndigits}")
    from repro.core.boundaries import ScaledValue
    from repro.core.scaling import apply_estimate, estimate_k_fast

    r, s, m_plus, m_minus = _table1_r_s(v)
    # Margins zero, strict upper bound: k is the smallest integer with
    # v < B**k, so the first digit is always in [1, B).
    sv = ScaledValue(r, s, 0, 0, True, True)
    k, r, s, _, _ = apply_estimate(sv, base, estimate_k_fast(v, base))
    digits = []
    for _ in range(ndigits):
        d, r = divmod(r, s)
        digits.append(d)
        r *= base
    # One rounding decision on the remainder (r carries one extra factor
    # of base from the loop tail): round up iff remainder >= s/2.
    double_rem = 2 * r
    round_up = (double_rem > base * s
                or (double_rem == base * s and tie.choose(digits[-1])
                    != digits[-1]))
    if round_up:
        i = ndigits - 1
        while i >= 0 and digits[i] == base - 1:
            digits[i] = 0
            i -= 1
        if i < 0:
            digits[0] = 1
            digits[1:] = [0] * (ndigits - 1)
            k += 1
        else:
            digits[i] += 1
    return DigitResult(k=k, digits=tuple(digits), base=base)


def _table1_r_s(v: Flonum) -> Tuple[int, int, int, int]:
    """Plain r/s == v scaled state (no margins needed here)."""
    b = v.fmt.radix
    if v.e >= 0:
        return (v.f * b**v.e * 2, 2, 0, 0)
    return (v.f * 2, b**-v.e * 2, 0, 0)
