"""Comparison systems: Steele–White Dragon4, naive fixed/printf, Gay."""

from repro.baselines.gay_estimator import gay_estimate_k, gay_estimate_log10
from repro.baselines.naive_fixed import (
    exact_fixed_digits,
    fixed_digits_loop,
    naive_fixed_17,
)
from repro.baselines.probe import probe_shortest, probe_shortest_digits
from repro.baselines.naive_printf import (
    PrintfAudit,
    audit_naive_printf,
    is_correctly_rounded,
    naive_printf_digits,
)
from repro.baselines.steele_white import dragon4_fixed, dragon4_shortest

__all__ = [
    "gay_estimate_k",
    "gay_estimate_log10",
    "exact_fixed_digits",
    "fixed_digits_loop",
    "naive_fixed_17",
    "probe_shortest",
    "probe_shortest_digits",
    "PrintfAudit",
    "audit_naive_printf",
    "is_correctly_rounded",
    "naive_printf_digits",
    "dragon4_fixed",
    "dragon4_shortest",
]
