"""Clients for the serving daemon's framed protocol.

:class:`ServeClient` is the blocking socket client — one request, one
response, in order.  It is what the verify battery, the conformance
tests and the documentation example use.  :class:`AsyncServeClient` is
the pipelined asyncio client the open-loop load generator
(``tools/bench_serve.py``) drives: many requests in flight on one
connection, responses matched back in FIFO order.

Both speak byte planes, exactly like the daemon: ``format`` sends
packed native-order bit patterns and returns a delimited ASCII plane;
``read`` sends a delimited ASCII plane and returns packed bit
patterns.  Error responses re-raise client-side as the typed
:class:`~repro.errors.ReproError` subclass the daemon reported
(:func:`repro.serve.protocol.raise_error_payload`).
"""

from __future__ import annotations

import asyncio
import socket
from typing import List, Optional, Tuple, Union

import json

from repro.errors import ProtocolError
from repro.serve import protocol
from repro.serve.protocol import OP_FORMAT, OP_HEALTH, OP_PING, OP_READ

__all__ = ["ServeClient", "AsyncServeClient"]


class ServeClient:
    """A blocking client: strict request/response over one socket.

    A daemon restart between requests no longer surfaces as a bare
    ``ConnectionResetError``: idempotent operations (``format`` /
    ``read`` / ``ping`` / ``health`` — one request, one response, no
    state on the wire) transparently reconnect and retry **once**,
    counted in :attr:`reconnects`; a second failure, or any failure on
    the non-idempotent raw paths (``send_raw`` / ``pipeline``),
    surfaces as a typed :class:`~repro.errors.ProtocolError`.

    >>> with ServeClient("127.0.0.1", port) as client:
    ...     plane = client.format(packed, fmt="binary64")
    ...     bits = client.read(b"1.5\\n2.5\\n")
    """

    def __init__(self, host: str, port: int, *,
                 timeout: Optional[float] = 30.0,
                 max_frame: int = protocol.MAX_FRAME):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        #: Transparent reconnect-and-retry count (idempotent ops only).
        self.reconnects = 0
        self._buf = b""
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _reconnect(self) -> None:
        self.close()
        self._buf = b""  # a torn response must not poison the retry
        self._sock = self._connect()
        self.reconnects += 1

    # -- context management -------------------------------------------

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    # -- raw frame I/O (the fuzz tests drive these directly) ----------

    def send_raw(self, data: bytes) -> None:
        """Write arbitrary bytes — malformed frames included."""
        self._sock.sendall(data)

    def recv_body(self) -> Optional[bytes]:
        """One response body, or None on EOF at a frame boundary."""
        while True:
            got = protocol.frame_and_body(self._buf, self.max_frame)
            if got is not None:
                body, consumed = got
                self._buf = self._buf[consumed:]
                return body
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                if self._buf:
                    raise ProtocolError(
                        "connection closed mid-frame "
                        f"({len(self._buf)} bytes buffered)")
                return None
            self._buf += chunk

    def _response(self) -> bytes:
        body = self.recv_body()
        if body is None:
            raise ProtocolError("connection closed before the response")
        status, payload = protocol.parse_response(body)
        if status == protocol.STATUS_ERROR:
            protocol.raise_error_payload(payload)
        return payload

    def _request(self, op: int, payload: bytes, fmt: str,
                 delimiter: Union[bytes, str]) -> bytes:
        """One idempotent request with a single bounded
        reconnect-and-retry on connection loss.

        Only whole-connection failures (reset, broken pipe, EOF before
        any response byte) trigger the retry — a daemon restart between
        requests, exactly.  A failure mid-response, or on the retry
        itself, surfaces as :class:`ProtocolError`.
        """
        frame = protocol.encode_request(op, payload, fmt, delimiter)
        try:
            self.send_raw(frame)
            return self._response()
        except (ConnectionError, BrokenPipeError) as exc:
            cause = exc
        except ProtocolError as exc:
            # Clean EOF before the response, with nothing buffered:
            # the daemon went away between requests.
            if self._buf or "closed before the response" not in str(exc):
                raise
            cause = exc
        try:
            self._reconnect()
            self.send_raw(frame)
            return self._response()
        except (ConnectionError, BrokenPipeError, OSError) as exc:
            raise ProtocolError(
                f"reconnect failed after connection loss: {exc!r}"
            ) from cause

    # -- operations ---------------------------------------------------

    def format(self, packed: bytes, fmt: str = "binary64",
               delimiter: Union[bytes, str] = b"\n") -> bytes:
        """Packed bit patterns in, delimited ASCII plane out."""
        return self._request(OP_FORMAT, packed, fmt, delimiter)

    def read(self, plane: bytes, fmt: str = "binary64",
             delimiter: Union[bytes, str] = b"\n") -> bytes:
        """Delimited ASCII plane in, packed bit patterns out."""
        return self._request(OP_READ, plane, fmt, delimiter)

    def ping(self) -> bool:
        return self._request(OP_PING, b"", "binary64", b"\n") == b""

    def health(self) -> dict:
        """The daemon's control-plane summary: breaker states, the
        admission controller window and the traffic observer's corpus
        shape (the ``HEALTH`` opcode, JSON-decoded)."""
        payload = self._request(OP_HEALTH, b"", "binary64", b"\n")
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed health payload: {exc}") \
                from None

    def pipeline(self, frames: List[bytes]) -> List[Tuple[int, bytes]]:
        """Send pre-encoded request frames back to back, then collect
        one ``(status, payload)`` per frame — the conformance battery's
        pipelining probe."""
        self.send_raw(b"".join(frames))
        out = []
        for _ in frames:
            body = self.recv_body()
            if body is None:
                raise ProtocolError(
                    f"connection closed after {len(out)} of "
                    f"{len(frames)} pipelined responses")
            out.append(protocol.parse_response(body))
        return out


class AsyncServeClient:
    """A pipelined asyncio client: many requests in flight, FIFO match.

    Used from a coroutine::

        client = await AsyncServeClient.connect(host, port)
        plane = await client.format(packed, fmt="binary64")
        await client.close()

    A background reader task matches response frames to the oldest
    outstanding future; a connection loss fails every outstanding
    request with :class:`ProtocolError`.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame: int = protocol.MAX_FRAME):
        self._reader = reader
        self._writer = writer
        self.max_frame = max_frame
        self._pending: "asyncio.Queue[asyncio.Future]" = asyncio.Queue()
        self._closed = False
        self._task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int,
                      max_frame: int = protocol.MAX_FRAME
                      ) -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(reader, writer, max_frame)

    async def _read_loop(self) -> None:
        error: BaseException
        try:
            while True:
                body = await protocol.read_frame(self._reader,
                                                 self.max_frame)
                if body is None:
                    error = ProtocolError("server closed the connection")
                    break
                fut = self._pending.get_nowait()
                if not fut.done():
                    fut.set_result(body)
        except BaseException as exc:
            error = ProtocolError(f"connection lost: {exc!r}")
        # Fail whatever is still outstanding.
        while not self._pending.empty():
            fut = self._pending.get_nowait()
            if not fut.done():
                fut.set_exception(error)

    async def _request(self, op: int, payload: bytes, fmt: str,
                       delimiter: Union[bytes, str]) -> bytes:
        if self._closed:
            raise ProtocolError("client is closed")
        fut = asyncio.get_running_loop().create_future()
        self._pending.put_nowait(fut)
        self._writer.write(
            protocol.encode_request(op, payload, fmt, delimiter))
        await self._writer.drain()
        body = await fut
        status, resp = protocol.parse_response(body)
        if status == protocol.STATUS_ERROR:
            protocol.raise_error_payload(resp)
        return resp

    async def format(self, packed: bytes, fmt: str = "binary64",
                     delimiter: Union[bytes, str] = b"\n") -> bytes:
        return await self._request(OP_FORMAT, packed, fmt, delimiter)

    async def read(self, plane: bytes, fmt: str = "binary64",
                   delimiter: Union[bytes, str] = b"\n") -> bytes:
        return await self._request(OP_READ, plane, fmt, delimiter)

    async def ping(self) -> bool:
        return await self._request(OP_PING, b"", "binary64", b"\n") \
            == b""

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._task.cancel()
        try:
            await self._task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass
