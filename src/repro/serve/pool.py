"""Sharded multi-worker bulk pipelines over the tiered engines.

A :class:`BulkPool` chunks a column across ``concurrent.futures``
workers and merges the results in input order:

* ``kind="thread"`` shares one engine across a thread pool — right for
  memo-hot / fast-tier-dominated traffic, where conversions spend
  little time holding the engine lock and the batch APIs only take it
  twice per shard;
* ``kind="process"`` (the default) gives every worker its own engine
  in a forked interpreter — right for exact-fallback-heavy traffic,
  which is CPU-bound big-integer work the GIL would serialize.  The
  parent warms the per-format :class:`~repro.engine.tables.FormatTables`
  *before* the pool starts, so forked workers inherit the precomputed
  powers instead of rebuilding them, and each worker re-warms on init
  for spawn-style start methods.

Shard payloads cross the process boundary as packed native-order bit
patterns (one ``array.tobytes`` per shard), never as Python object
lists, and formats travel by *name* so workers resolve the canonical
:data:`~repro.floats.formats.STANDARD_FORMATS` instances — engine fast
paths key on format identity.

Results are merged by concatenating delimiter-terminated payloads;
:meth:`BulkPool.stats` sums the per-shard engine counter deltas.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from typing import Iterable, List, Optional, Union

from repro.core.rounding import ReaderMode, TieBreak
from repro.engine.bulk import (
    _bits_from_bytes,
    _itemsize,
    _split_rows,
    format_column,
    ingest_bits,
    pack_bits,
    read_column,
)
from repro.errors import RangeError
from repro.floats.formats import BINARY64, FloatFormat, STANDARD_FORMATS
from repro.floats.model import Flonum

__all__ = ["BulkPool"]

#: The worker-private engine for process pools (one per interpreter,
#: built by the initializer, reused across shards).
_WORKER_ENGINE = None


def _worker_engine():
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:
        from repro.engine.engine import Engine

        _WORKER_ENGINE = Engine()
    return _WORKER_ENGINE


def _init_worker(fmt_names) -> None:
    """Process-pool initializer: build the engine, warm the tables."""
    from repro.engine.tables import tables_for

    eng = _worker_engine()
    for name in fmt_names:
        tables_for(STANDARD_FORMATS[name], 10)
    del eng


def _format_shard(payload) -> tuple:
    """Format one packed shard: ``(delimited_ascii, stats_delta)``."""
    fmt_name, raw, mode, tie, dedup, delim = payload
    fmt = STANDARD_FORMATS[fmt_name]
    eng = _worker_engine()
    eng.reset_stats()
    texts = format_column(raw, fmt, engine=eng, mode=mode, tie=tie,
                          dedup=dedup)
    d = delim.decode("ascii")
    body = (d.join(texts) + d).encode("ascii") if texts else b""
    return body, eng.stats()


def _read_shard(payload) -> tuple:
    """Parse one delimited shard: ``(packed_bits, stats_delta)``."""
    fmt_name, raw, mode, dedup, delim = payload
    fmt = STANDARD_FORMATS[fmt_name]
    eng = _worker_engine()
    eng.reset_stats()
    values = read_column(raw, fmt, engine=eng, mode=mode,
                         delimiter=delim, dedup=dedup)
    bits = [v.to_bits() for v in values]
    return pack_bits(bits, fmt), eng.stats()


def _chunk_slices(n: int, shards: int) -> List[tuple]:
    """``shards`` near-equal ``(start, stop)`` spans covering ``n``."""
    shards = max(1, min(shards, n))
    base, extra = divmod(n, shards)
    spans = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


class BulkPool:
    """An order-preserving sharded format/read pipeline.

    Args:
        jobs: Worker count (default: ``os.cpu_count()``).
        kind: ``"process"`` (per-worker engines, fork-first) or
            ``"thread"`` (one shared engine).
        fmt: The column's float format — must be a standard
            byte-encoded format (it travels by name).
        mode / tie: Reader assumption and tie strategy for formatting.
        dedup: Intern duplicate values inside each shard.
        delimiter: Row terminator for bulk payloads.
        shards_per_job: Shards dispatched per worker (smaller shards
            smooth stragglers; each shard pays one transport).
    """

    def __init__(self, jobs: Optional[int] = None, kind: str = "process",
                 fmt: FloatFormat = BINARY64,
                 mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                 tie: TieBreak = TieBreak.UP, dedup: bool = True,
                 delimiter: Union[bytes, str] = b"\n",
                 shards_per_job: int = 2, engine=None):
        if kind not in ("process", "thread"):
            raise RangeError(f"kind must be 'process' or 'thread', "
                             f"got {kind!r}")
        if fmt.name not in STANDARD_FORMATS \
                or STANDARD_FORMATS[fmt.name] is not fmt:
            raise RangeError(
                f"BulkPool requires a standard format, got {fmt!r}")
        self.jobs = jobs if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise RangeError("jobs must be >= 1")
        self.kind = kind
        self.fmt = fmt
        self.mode = mode
        self.tie = tie
        self.dedup = dedup
        if isinstance(delimiter, str):
            delimiter = delimiter.encode("ascii")
        else:
            delimiter = bytes(delimiter)
        if not delimiter:
            raise RangeError("delimiter must be non-empty")
        self.delimiter = delimiter
        self.shards_per_job = max(1, shards_per_job)
        self._stats: dict = {}
        self._executor = None
        if kind == "thread":
            from repro.engine.engine import Engine

            self._engine = engine if engine is not None else Engine()
        else:
            self._engine = None
            # Warm the per-format tables before any fork so workers
            # inherit the precomputed powers copy-on-write.
            from repro.engine.tables import tables_for

            tables_for(fmt, 10)

    # ------------------------------------------------------------------
    # Executor management
    # ------------------------------------------------------------------

    def _pool(self):
        if self.jobs == 1:
            return None
        if self._executor is None:
            if self.kind == "thread":
                self._executor = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.jobs)
            else:
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX
                    ctx = multiprocessing.get_context()
                self._executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=ctx,
                    initializer=_init_worker, initargs=((self.fmt.name,),))
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "BulkPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pipelines
    # ------------------------------------------------------------------

    def _merge_stats(self, delta: dict) -> None:
        acc = self._stats
        for k, v in delta.items():
            acc[k] = acc.get(k, 0) + v

    def _run_shards(self, fn, payloads: List[tuple]) -> List[bytes]:
        pool = self._pool()
        if pool is None or len(payloads) == 1:
            results = [fn(p) for p in payloads]
        else:
            results = list(pool.map(fn, payloads))
        out = []
        for body, delta in results:
            self._merge_stats(delta)
            out.append(body)
        return out

    def format_bulk(self, data) -> bytes:
        """Serialize a column to delimiter-terminated ASCII bytes."""
        bits = ingest_bits(data, self.fmt)
        if not bits:
            return b""
        if self.kind == "thread":
            spans = _chunk_slices(len(bits),
                                  self.jobs * self.shards_per_job)
            eng, d = self._engine, self.delimiter.decode("ascii")

            def shard(span):
                texts = format_column(bits[span[0]:span[1]], self.fmt,
                                      engine=eng, mode=self.mode,
                                      tie=self.tie, dedup=self.dedup)
                return (d.join(texts) + d).encode("ascii"), {}

            pool = self._pool()
            if pool is None:
                parts = [shard(s)[0] for s in spans]
            else:
                parts = [body for body, _ in pool.map(shard, spans)]
            return b"".join(parts)
        spans = _chunk_slices(len(bits), self.jobs * self.shards_per_job)
        payloads = [(self.fmt.name,
                     pack_bits(bits[a:b], self.fmt),
                     self.mode, self.tie, self.dedup, self.delimiter)
                    for a, b in spans]
        return b"".join(self._run_shards(_format_shard, payloads))

    def format_column(self, data) -> List[str]:
        """Shortest strings for a column, in input order."""
        payload = self.format_bulk(data)
        return _split_rows(payload, self.delimiter)

    def read_bulk(self, data, out: str = "bits"):
        """Parse a delimited payload (or sequence of literals)."""
        if out not in ("bits", "flonums"):
            raise RangeError(f"out must be 'bits' or 'flonums', "
                             f"got {out!r}")
        if isinstance(data, (bytes, bytearray, memoryview, str)):
            texts = _split_rows(data, self.delimiter)
        elif isinstance(data, list):
            texts = data
        else:
            texts = list(data)
        if not texts:
            return []
        if self.kind == "thread":
            values = read_column(texts, self.fmt, engine=self._engine,
                                 mode=self.mode, dedup=self.dedup)
            if out == "flonums":
                return values
            return [v.to_bits() for v in values]
        d = self.delimiter.decode("ascii")
        spans = _chunk_slices(len(texts), self.jobs * self.shards_per_job)
        payloads = [(self.fmt.name,
                     (d.join(texts[a:b]) + d).encode("ascii"),
                     self.mode, self.dedup, self.delimiter)
                    for a, b in spans]
        itemsize = _itemsize(self.fmt)
        bits: List[int] = []
        for packed in self._run_shards(_read_shard, payloads):
            bits.extend(_bits_from_bytes(packed, itemsize))
        if out == "bits":
            return bits
        from_bits = Flonum.from_bits
        fmt = self.fmt
        return [from_bits(b, fmt) for b in bits]

    def stats(self) -> dict:
        """Merged engine counters across every shard so far.

        For process pools this sums the per-shard deltas the workers
        report (``cache_entries`` therefore totals entries across
        worker memos); for thread pools it is the shared engine's live
        :meth:`~repro.engine.engine.Engine.stats`.
        """
        if self.kind == "thread":
            return self._engine.stats()
        return dict(self._stats)
