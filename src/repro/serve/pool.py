"""Sharded multi-worker bulk pipelines over the tiered engines.

A :class:`BulkPool` chunks a column across ``concurrent.futures``
workers and merges the results in input order:

* ``kind="thread"`` shares one engine across a thread pool — right for
  memo-hot / fast-tier-dominated traffic, where conversions spend
  little time holding the engine lock and the batch APIs only take it
  twice per shard;
* ``kind="process"`` (the default) gives every worker its own engine
  in a forked interpreter — right for exact-fallback-heavy traffic,
  which is CPU-bound big-integer work the GIL would serialize.  The
  parent warms the per-format :class:`~repro.engine.tables.FormatTables`
  *before* the pool starts, so forked workers inherit the precomputed
  powers instead of rebuilding them, and each worker re-warms on init
  for spawn-style start methods.

Shard payloads cross the process boundary as flat bytes — packed
native-order bit patterns on the format side (one ``array.tobytes``
per shard), delimited byte-plane slices cut on token boundaries on the
read side — never as Python object lists, and formats travel by *name*
so workers resolve the canonical
:data:`~repro.floats.formats.STANDARD_FORMATS` instances — engine fast
paths key on format identity.

Fault tolerance
---------------

Workers die, shards stall, payloads get mangled in transit.  The pool
treats every such failure as an input with a defined outcome — either
the failure **heals invisibly** (the merged output is byte-identical to
a fault-free run) or it surfaces as a typed
:class:`~repro.errors.ReproError`; a silent partial result is never an
outcome.  The machinery, all of it exercised deterministically by
``python -m repro.verify --chaos``:

* **Integrity** — every shard result carries a CRC-32 taken where the
  bytes were produced; the parent re-checksums on receipt and treats a
  mismatch as a failed attempt (counted in ``corrupt_shards``).
* **Deadlines** — ``deadline`` bounds one shard attempt, ``budget``
  bounds the whole call.  A missed shard deadline abandons the attempt
  (stalled worker processes are terminated with the executor) and
  retries; an exhausted budget raises
  :class:`~repro.errors.DeadlineExceededError` — a stall can heal, but
  never by silently blowing the caller's latency envelope.
* **Bounded retries** — each shard gets ``retries`` extra attempts per
  ladder level, spaced by exponential backoff with deterministic
  jitter (seeded per round, so chaos runs replay exactly).
* **Broken-pool recovery** — a dead worker breaks the whole process
  pool; the parent detects it, terminates stragglers, rebuilds the
  executor (``pool_rebuilds``) and retries the unfinished shards, up
  to ``max_rebuilds`` per call.
* **Degradation ladder** — when a level keeps failing, the pool steps
  down ``process → thread → serial`` (``degradations``) and retries
  there with a fresh attempt budget; the serial rung runs in-process
  and cannot crash-loop.  ``on_error="raise"`` disables the ladder and
  surfaces the first exhausted shard instead:
  :class:`~repro.errors.DeadlineExceededError` for deadline causes,
  :class:`~repro.errors.ShardError` (shard index, attempt count, cause
  chain) for everything else.

Deterministic data errors are not faults: a shard raising a
:class:`~repro.errors.ReproError` (malformed literal, bad payload)
propagates immediately — retrying it cannot change the outcome.

Results are merged by concatenating delimiter-terminated payloads;
:meth:`BulkPool.stats` sums the per-shard engine counter deltas and
folds in the recovery counters (``shard_retries``, ``shard_failures``,
``deadline_hits``, ``pool_rebuilds``, ``degradations``,
``corrupt_shards``), every mutation under one lock so concurrent
callers read exact totals.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import random
import threading
import time
import zlib
from typing import List, Optional, Union

from repro import faults as _faults
from repro.core.rounding import ReaderMode, TieBreak
from repro.engine.buffer import format_buffer, parse_buffer, split_plane
from repro.engine.bulk import (
    _bits_from_bytes,
    _itemsize,
    _split_rows,
    ingest_bits,
    pack_bits,
)
from repro.errors import (
    DeadlineExceededError,
    PoolBrokenError,
    RangeError,
    ReproError,
    ShardError,
)
from repro.floats.formats import BINARY64, FloatFormat, STANDARD_FORMATS
from repro.floats.model import Flonum

__all__ = ["BulkPool", "FAULT_STAT_KEYS"]

#: Recovery counters :meth:`BulkPool.stats` always includes.
#: ``snapshot_faults`` also exists as an engine counter; the pool folds
#: the two additively (parent-side snapshot rejections plus any
#: worker-side ones), so the key never reports fewer faults than
#: happened.
FAULT_STAT_KEYS = ("shard_retries", "shard_failures", "deadline_hits",
                   "pool_rebuilds", "degradations", "corrupt_shards",
                   "snapshot_faults", "hedges", "hedge_wins")

#: The degradation ladder, most to least parallel.
_LADDER = ("process", "thread", "serial")

#: The worker-private engine for process pools (one per interpreter,
#: built by the initializer, reused across shards).
_WORKER_ENGINE = None

#: True only in a process-pool child (set by the initializer after the
#: fork/spawn).  Decides whether an injected ``crash`` may ``os._exit``
#: — the parent, and thread/serial execution, must never be killed.
_IS_POOL_WORKER = False

#: Warm-start directions shipped by the parent through the initializer:
#: ``{"snapshot": path-or-Snapshot, "plane_shm": name-or-None,
#: "plane_bytes": bytes-or-None}``, or None for a cold pool.
_WORKER_WARM = None

#: Tier-order directions shipped by the parent through the initializer:
#: a ``(write_order, read_order)`` pair (each a tuple of lane names or
#: None for the default), or None for default routing.
_WORKER_TIERS = None

#: Worker-side snapshot faults not yet reported to the parent (the
#: worker engine's counters are reset per shard, so construction-time
#: faults are carried here and folded into the next shard's delta).
_WORKER_WARM_FAULTS = 0

#: The attached shared-memory segment, pinned for the worker's
#: lifetime (the hot plane probes read straight from its buffer).
_WORKER_SHM = None


class _CorruptShard(Exception):
    """Parent-side checksum mismatch on a received shard payload.

    Deliberately not a :class:`ReproError`: corruption is transient
    infrastructure failure, so the pool retries it like a crash (and
    wraps it in :class:`ShardError` only once retries are exhausted).
    """


def _tier_kwargs(tiers) -> dict:
    """Engine constructor kwargs for a ``(write_order, read_order)``
    pair (or None: default routing)."""
    if tiers is None:
        return {}
    return {"tier_order": tiers[0], "read_tier_order": tiers[1]}


def _worker_engine():
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:
        from repro.engine.engine import Engine

        warm = _WORKER_WARM
        if warm is None:
            _WORKER_ENGINE = Engine(**_tier_kwargs(_WORKER_TIERS))
        else:
            _WORKER_ENGINE = _build_warm_engine(warm)
    return _WORKER_ENGINE


def _attach_shm(name):
    """Attach to an existing shared-memory segment without registering
    it with this process's resource tracker.

    The parent owns the segment's lifetime.  If every attaching worker
    also registered it, the tracker's bookkeeping would go unbalanced
    (two workers register the same name once — the set dedups — and the
    first unregister strands the second, which surfaces as a noisy
    ``KeyError`` at interpreter exit).  Python 3.13 grew ``track=False``
    for exactly this; on older interpreters the registration hook is
    suppressed around the attach instead.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # pre-3.13: no ``track`` parameter
        pass
    from multiprocessing import resource_tracker

    orig = resource_tracker.register

    def _no_track(res_name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            orig(res_name, rtype)

    resource_tracker.register = _no_track
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = orig


def _build_warm_engine(warm):
    """A worker engine warmed per the parent's directions.

    Every failure mode — unreadable/corrupt/stale snapshot, missing or
    torn shared-memory plane — degrades to a colder configuration and
    is tallied in :data:`_WORKER_WARM_FAULTS` (folded into the next
    shard's stats delta); the engine always comes up serving correct
    bytes.
    """
    global _WORKER_WARM_FAULTS, _WORKER_SHM
    from repro.engine.engine import Engine

    eng = Engine(snapshot=warm.get("snapshot"),
                 **_tier_kwargs(_WORKER_TIERS))
    faults = eng.stats()["snapshot_faults"]
    plane = None
    shm_name = warm.get("plane_shm")
    if shm_name is not None:
        try:
            shm = _attach_shm(shm_name)
            from repro.engine.snapshot import HotPlane

            plane = HotPlane(shm.buf)
            _WORKER_SHM = shm  # keep the mapping alive for probes
        except Exception:
            plane = None  # degrade to the serialized copy below
    if plane is None and warm.get("plane_bytes") is not None:
        try:
            from repro.engine.snapshot import HotPlane

            plane = HotPlane(warm["plane_bytes"])
        except Exception:
            plane = None
            faults += 1
    if plane is not None:
        try:
            eng.attach_hot_plane(plane)
        except Exception:
            faults += 1
    if faults:
        _WORKER_WARM_FAULTS += faults
        eng.reset_stats()
    return eng


def _consume_warm_faults() -> int:
    """Report-once accessor for worker-side warm-up faults."""
    global _WORKER_WARM_FAULTS
    n = _WORKER_WARM_FAULTS
    _WORKER_WARM_FAULTS = 0
    return n


def _init_worker(fmt_names, warm=None, tiers=None) -> None:
    """Process-pool initializer: build the engine, warm the tables
    (from the parent's snapshot and tier-order directions when
    given)."""
    global _IS_POOL_WORKER, _WORKER_WARM, _WORKER_TIERS
    from repro.engine.tables import tables_for

    _IS_POOL_WORKER = True
    _WORKER_WARM = warm
    _WORKER_TIERS = tiers
    eng = _worker_engine()
    for name in fmt_names:
        tables_for(STANDARD_FORMATS[name], 10)
    del eng


def _shard_engine(eng, tiers=None):
    """The engine one shard attempt converts with, plus whether its
    stats should be reported as a delta.

    ``eng`` travels in the payload for thread pools (shared engine,
    live stats — no delta).  Process workers use their per-interpreter
    engine (built with the initializer's tier-order directions);
    in-parent execution (serial rung, degraded process pools) builds a
    private engine — honoring the payload's ``tiers`` — so concurrent
    shards never tear each other's counter deltas.
    """
    if eng is not None:
        return eng, False
    if _IS_POOL_WORKER:
        eng = _worker_engine()
        eng.reset_stats()
        return eng, True
    from repro.engine.engine import Engine

    return Engine(**_tier_kwargs(tiers)), True


def _shard_delta(eng, delta: bool) -> dict:
    """The stats delta a shard reports to the parent: the per-shard
    engine counters plus any not-yet-reported worker warm-up faults
    (reported exactly once per worker)."""
    if not delta:
        return {}
    out = eng.stats()
    warm = _consume_warm_faults()
    if warm:
        out["snapshot_faults"] = out.get("snapshot_faults", 0) + warm
    return out


def _apply_pre_fault(fault) -> None:
    """Execute an injected fault tag before the shard's real work."""
    if fault is None:
        return
    kind, stall = fault
    if kind == "stall":
        time.sleep(stall)
    elif kind == "crash":
        if _IS_POOL_WORKER:
            os._exit(23)
        raise _faults.InjectedFault("injected worker crash (in-parent)")
    elif kind == "raise":
        raise _faults.InjectedFault("injected shard failure")


def _apply_post_fault(fault, body: bytes) -> bytes:
    """Mangle the payload *after* its checksum was taken — the transit
    corruption the parent's integrity check must catch."""
    if fault is not None and fault[0] == "corrupt" and body:
        return bytes([body[0] ^ 0xFF]) + body[1:]
    return body


def _format_shard(payload) -> tuple:
    """Format one shard: ``(delimited_ascii, stats_delta, crc32)``.

    The shard body is produced by the byte-plane pipeline
    (:func:`~repro.engine.buffer.format_buffer`): interned
    pre-terminated byte rows joined once — no per-row string list
    between the engine and the wire.
    """
    fmt_name, raw, mode, tie, dedup, delim, eng, tiers, fault = payload
    _apply_pre_fault(fault)
    fmt = STANDARD_FORMATS[fmt_name]
    eng, delta = _shard_engine(eng, tiers)
    body = format_buffer(raw, fmt, delimiter=delim, mode=mode, tie=tie,
                         engine=eng, dedup=dedup)
    crc = zlib.crc32(body)
    return _apply_post_fault(fault, body), _shard_delta(eng, delta), crc


def _read_shard(payload) -> tuple:
    """Parse one delimited shard: ``(packed_bits, stats_delta, crc32)``.

    ``raw`` arrives as a byte plane (a slice of the caller's payload
    cut on token boundaries) and is parsed by
    :func:`~repro.engine.buffer.parse_buffer` straight to bit patterns
    — no per-row ``str`` or ``Flonum`` is ever materialized in the
    worker.
    """
    fmt_name, raw, mode, dedup, delim, eng, tiers, fault = payload
    _apply_pre_fault(fault)
    fmt = STANDARD_FORMATS[fmt_name]
    eng, delta = _shard_engine(eng, tiers)
    bits = parse_buffer(raw, fmt, delimiter=delim, mode=mode,
                        engine=eng, dedup=dedup)
    body = pack_bits(bits, fmt)
    crc = zlib.crc32(body)
    return _apply_post_fault(fault, body), _shard_delta(eng, delta), crc


def _chunk_slices(n: int, shards: int) -> List[tuple]:
    """``shards`` near-equal ``(start, stop)`` spans covering ``n``."""
    shards = max(1, min(shards, n))
    base, extra = divmod(n, shards)
    spans = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


class BulkPool:
    """An order-preserving, fault-tolerant sharded format/read pipeline.

    Args:
        jobs: Worker count (default: ``os.cpu_count()``).
        kind: ``"process"`` (per-worker engines, fork-first) or
            ``"thread"`` (one shared engine).
        fmt: The column's float format — must be a standard
            byte-encoded format (it travels by name).
        mode / tie: Reader assumption and tie strategy for formatting.
        dedup: Intern duplicate values inside each shard.
        delimiter: Row terminator for bulk payloads.
        shards_per_job: Shards dispatched per worker (smaller shards
            smooth stragglers; each shard pays one transport).
        deadline: Seconds one shard attempt may take, measured from its
            dispatch round (None: unbounded).  A miss abandons the
            attempt and retries.
        budget: Wall-clock seconds one ``format_bulk``/``read_bulk``
            call may take across all retries and degradations; past it
            the call raises :class:`DeadlineExceededError` (None:
            unbounded).
        retries: Extra attempts per shard per ladder level.
        backoff: Base of the exponential retry backoff (seconds); the
            actual sleep is jittered deterministically per round.
        on_error: ``"degrade"`` (default) walks the ladder
            process → thread → serial when a level keeps failing;
            ``"raise"`` surfaces the first exhausted shard as a typed
            error instead.
        max_rebuilds: Broken-pool rebuilds tolerated per call before
            degrading (or raising :class:`PoolBrokenError`).
        snapshot: Optional warm-start source (path or
            :class:`repro.engine.snapshot.Snapshot`).  The parent
            validates it once, restores the tables pre-fork, publishes
            the hot plane to shared memory (with a per-process copy as
            the degradation path) and ships the snapshot to each worker
            so no process starts cold.  Rejected snapshots (corrupt,
            stale, torn mid-rewrite) count ``snapshot_faults`` in
            :meth:`stats` and the affected processes run cold — output
            bytes are identical either way.
        tiers: Optional ``(write_order, read_order)`` pair of engine
            lane orders (each a sequence of tier names or None for the
            default — see
            :data:`~repro.engine.engine.WRITE_TIER_NAMES` /
            :data:`~repro.engine.reader.READ_TIER_NAMES`).  Applied to
            the shared thread-pool engine, shipped to every process
            worker, and honored by the in-parent degradation rungs;
            ignored when an explicit ``engine`` is handed in.  Unknown
            names raise :class:`RangeError` at construction.
    """

    def __init__(self, jobs: Optional[int] = None, kind: str = "process",
                 fmt: FloatFormat = BINARY64,
                 mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                 tie: TieBreak = TieBreak.UP, dedup: bool = True,
                 delimiter: Union[bytes, str] = b"\n",
                 shards_per_job: int = 2, engine=None,
                 deadline: Optional[float] = None,
                 budget: Optional[float] = None,
                 retries: int = 2, backoff: float = 0.05,
                 on_error: str = "degrade", max_rebuilds: int = 2,
                 snapshot=None, tiers=None, hedge: bool = False,
                 hedge_min: float = 0.05, hedge_multiplier: float = 2.0,
                 hedge_with_faults: bool = False):
        if kind not in ("process", "thread"):
            raise RangeError(f"kind must be 'process' or 'thread', "
                             f"got {kind!r}")
        if on_error not in ("raise", "degrade"):
            raise RangeError(f"on_error must be 'raise' or 'degrade', "
                             f"got {on_error!r}")
        if fmt.name not in STANDARD_FORMATS \
                or STANDARD_FORMATS[fmt.name] is not fmt:
            raise RangeError(
                f"BulkPool requires a standard format, got {fmt!r}")
        self.jobs = jobs if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise RangeError("jobs must be >= 1")
        if retries < 0:
            raise RangeError("retries must be >= 0")
        for name, limit in (("deadline", deadline), ("budget", budget)):
            if limit is not None and limit <= 0:
                raise RangeError(f"{name} must be positive, got {limit}")
        self.kind = kind
        self.fmt = fmt
        self.mode = mode
        self.tie = tie
        self.dedup = dedup
        if isinstance(delimiter, str):
            delimiter = delimiter.encode("ascii")
        else:
            delimiter = bytes(delimiter)
        if not delimiter:
            raise RangeError("delimiter must be non-empty")
        self.delimiter = delimiter
        self.shards_per_job = max(1, shards_per_job)
        self.deadline = deadline
        self.budget = budget
        self.retries = retries
        self.backoff = backoff
        self.on_error = on_error
        self.max_rebuilds = max_rebuilds
        if hedge_min <= 0:
            raise RangeError(f"hedge_min must be positive, got {hedge_min}")
        #: Hedged dispatch: when a shard's wait exceeds a threshold
        #: derived from the rolling shard-latency distribution, its
        #: byte-plane payload is re-dispatched (untagged — hedge legs
        #: never consume injected-fault decisions) and the first
        #: CRC-valid answer wins.  Byte identity is guaranteed by the
        #: shard CRC contract: both legs compute the same pure function
        #: of the same payload.  Suppressed while a fault plan is armed
        #: unless ``hedge_with_faults`` opts in (the dedicated hedge
        #: verify/bench legs), so chaos determinism tests see exactly
        #: the dispatches their plans scripted.
        self.hedge = bool(hedge)
        self.hedge_min = float(hedge_min)
        self.hedge_multiplier = float(hedge_multiplier)
        self.hedge_with_faults = bool(hedge_with_faults)
        self._hedge_lat: List[float] = []  # recent shard latencies (s)
        self._stats: dict = {}
        self._fstats = dict.fromkeys(FAULT_STAT_KEYS, 0)
        self._executor = None
        #: Current ladder rung; sticky — once degraded, later calls
        #: stay at the working level rather than re-probing a broken
        #: one.
        self._level = kind
        #: Guards the executor handle, both counter dicts and the
        #: ladder level — calls may run concurrently from many threads.
        self._lock = threading.Lock()
        if tiers is not None:
            w, r = tiers
            tiers = (tuple(w) if w is not None else None,
                     tuple(r) if r is not None else None)
            # Validate eagerly so a bad lane name fails here, in the
            # parent, instead of inside every worker.
            from repro.engine.engine import Engine

            Engine(cache_size=0, **_tier_kwargs(tiers))
        self.tiers = tiers
        if kind == "thread":
            from repro.engine.engine import Engine

            self._engine = (engine if engine is not None
                            else Engine(**_tier_kwargs(tiers)))
        else:
            self._engine = None
            # Warm the per-format tables before any fork so workers
            # inherit the precomputed powers copy-on-write.
            from repro.engine.tables import tables_for

            tables_for(fmt, 10)
        #: Warm-start directions shipped to process workers (None for a
        #: cold pool or after a parent-side snapshot rejection).
        self._warm: Optional[dict] = None
        self._shm = None
        if snapshot is not None:
            self._setup_warm(snapshot)

    def _setup_warm(self, snapshot) -> None:
        """Validate the snapshot once in the parent and stage the warm
        fabric: tables restored pre-fork (inherited copy-on-write), the
        hot plane published to a shared-memory segment (with an
        in-initargs byte copy as the degradation path), and the
        snapshot itself shipped so each worker restores its own memo.

        A snapshot that fails validation counts one parent-side
        ``snapshot_faults`` and the whole pool runs cold — never an
        exception, never wrong bytes.
        """
        from repro.errors import SnapshotError
        from repro.engine import snapshot as _snapshot_mod

        try:
            snap = (snapshot
                    if isinstance(snapshot, _snapshot_mod.Snapshot)
                    else _snapshot_mod.load_snapshot(snapshot))
            _snapshot_mod.restore_tables(snap)
            plane_bytes = _snapshot_mod.HotPlane.from_snapshot(
                snap, self.fmt.name, self.mode, self.tie)
        except SnapshotError:
            with self._lock:
                self._fstats["snapshot_faults"] += 1
            return
        if self.kind == "thread":
            # One shared engine: warm it directly, no transport needed.
            try:
                _snapshot_mod.apply_snapshot(self._engine, snap)
                if plane_bytes is not None:
                    self._engine.attach_hot_plane(
                        _snapshot_mod.HotPlane(plane_bytes))
            except SnapshotError:
                with self._lock:
                    self._fstats["snapshot_faults"] += 1
            return
        warm = {"snapshot": snapshot, "plane_shm": None,
                "plane_bytes": plane_bytes}
        if plane_bytes is not None:
            try:
                from multiprocessing import shared_memory

                shm = shared_memory.SharedMemory(create=True,
                                                 size=len(plane_bytes))
                shm.buf[:len(plane_bytes)] = plane_bytes
                self._shm = shm
                warm["plane_shm"] = shm.name
            except Exception:
                # No shared memory on this host: workers fall back to
                # the per-process plane copy in the initargs.
                self._shm = None
        self._warm = warm

    # ------------------------------------------------------------------
    # Executor management
    # ------------------------------------------------------------------

    def _pool(self):
        """The live executor for the current ladder level (built
        lazily), or None for serial execution."""
        with self._lock:
            if self.jobs == 1 or self._level == "serial":
                return None
            if self._executor is None:
                if self._level == "thread":
                    self._executor = concurrent.futures.ThreadPoolExecutor(
                        max_workers=self.jobs)
                else:
                    try:
                        ctx = multiprocessing.get_context("fork")
                    except ValueError:  # pragma: no cover - non-POSIX
                        ctx = multiprocessing.get_context()
                    self._executor = concurrent.futures.ProcessPoolExecutor(
                        max_workers=self.jobs, mp_context=ctx,
                        initializer=_init_worker,
                        initargs=((self.fmt.name,), self._warm,
                                  self.tiers))
            return self._executor

    def _abandon_executor(self) -> None:
        """Drop the executor without waiting: terminate stalled or
        crashed worker processes (best effort) and shut down with
        futures cancelled.  The next :meth:`_pool` call rebuilds."""
        with self._lock:
            ex = self._executor
            self._executor = None
        if ex is None:
            return
        procs = getattr(ex, "_processes", None)
        if procs:
            for p in list(procs.values()):
                try:
                    p.terminate()
                except Exception:  # pragma: no cover - racing exits
                    pass
        try:
            ex.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - already broken
            pass

    def close(self) -> None:
        """Shut the worker pool down.  Idempotent: safe to call any
        number of times, from ``__exit__`` (error paths included) or
        directly, and the pool can keep serving afterwards — the next
        call simply builds a fresh executor.  The shared-memory hot
        plane (if any) is released here; workers built after a close
        warm from the per-process plane copy instead."""
        with self._lock:
            ex = self._executor
            self._executor = None
            shm = self._shm
            self._shm = None
            if shm is not None and self._warm is not None:
                self._warm = dict(self._warm, plane_shm=None)
        if ex is not None:
            try:
                ex.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - broken executor
                pass
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - already released
                pass

    def __enter__(self) -> "BulkPool":
        return self

    def __exit__(self, *exc) -> None:
        # Error path included: a shard failure mid-call must not leak
        # a live executor.
        self.close()

    # ------------------------------------------------------------------
    # Fault-tolerant shard execution
    # ------------------------------------------------------------------

    def _bump(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._fstats[key] += n

    def _merge_stats(self, delta: dict) -> None:
        with self._lock:
            acc = self._stats
            for k, v in delta.items():
                if isinstance(v, dict):
                    # Derived summaries (``bail_rate``) are ratios, not
                    # counts — summing them across shards is meaningless.
                    continue
                acc[k] = acc.get(k, 0) + v

    def _check_budget(self, start: float) -> None:
        if self.budget is not None:
            elapsed = time.monotonic() - start
            if elapsed > self.budget:
                raise DeadlineExceededError(
                    f"bulk call exceeded its {self.budget}s budget "
                    f"({elapsed:.3f}s elapsed)",
                    shard=None, elapsed=elapsed, limit=self.budget)

    def _tagged(self, payload: tuple, shard: int, attempt: int,
                site: str) -> tuple:
        """Payload with its injected-fault tag (usually None) filled in;
        the decision is made here, in the parent, so firing is
        deterministic and accounted for where recovery happens."""
        plan = _faults._PLAN
        if plan is None:
            return payload
        spec = plan.pool_action(site, shard, attempt, self._level)
        if spec is None:
            return payload
        return payload[:-1] + ((spec.kind, spec.stall),)

    def _degrade(self) -> None:
        self._abandon_executor()
        with self._lock:
            rung = _LADDER.index(self._level)
            if rung < len(_LADDER) - 1:
                self._level = _LADDER[rung + 1]
                self._fstats["degradations"] += 1

    def _give_up(self, shard: int, attempts: int, cause: BaseException):
        """Typed surfacing of an exhausted shard (``on_error="raise"``
        or the serial rung failing)."""
        if isinstance(cause, DeadlineExceededError):
            raise cause
        raise ShardError(shard, attempts, cause) from cause

    @staticmethod
    def _verify_crc(got: tuple, shard: int) -> tuple:
        body, delta, crc = got
        if zlib.crc32(body) != crc:
            raise _CorruptShard(
                f"shard {shard} payload failed its integrity check")
        return body, delta

    def _note_latency(self, seconds: float) -> None:
        with self._lock:
            self._hedge_lat.append(seconds)
            if len(self._hedge_lat) > 128:
                del self._hedge_lat[:len(self._hedge_lat) - 128]

    def _hedge_threshold(self) -> float:
        """Seconds a shard may lag before its hedge is dispatched:
        ``hedge_multiplier`` x the rolling ~p95 shard latency, floored
        at ``hedge_min`` (which also covers the cold start)."""
        with self._lock:
            xs = sorted(self._hedge_lat)
        if len(xs) >= 8:
            k = min(len(xs) - 1, int(round(0.95 * (len(xs) - 1))))
            return max(self.hedge_min, self.hedge_multiplier * xs[k])
        return self.hedge_min

    def _await_shard(self, pool, fn, payload: tuple, shard: int, fut,
                     timeout: Optional[float], dispatched: float) -> tuple:
        """One shard attempt's raw ``(body, delta, crc)`` result.

        With hedging enabled (and no armed fault plan, unless
        ``hedge_with_faults``), a shard that exceeds the hedge
        threshold gets a clean duplicate dispatch and the first
        CRC-valid answer wins — both legs are the same pure function of
        the same byte plane, so the winner's bytes are the loser's
        bytes.  Raises exactly what the plain wait would: the caller's
        timeout/broken-pool/corrupt classification stays unchanged.
        """
        hedging = (self.hedge
                   and (self.hedge_with_faults or _faults._PLAN is None))
        if not hedging:
            got = fut.result() if timeout is None \
                else fut.result(timeout=max(0.0, timeout))
            self._note_latency(time.monotonic() - dispatched)
            return got
        deadline_ts = None if timeout is None \
            else time.monotonic() + max(0.0, timeout)
        thr = self._hedge_threshold()
        first_wait = thr if timeout is None else min(thr, max(0.0, timeout))
        try:
            got = fut.result(timeout=first_wait)
            self._note_latency(time.monotonic() - dispatched)
            return got
        except concurrent.futures.TimeoutError:
            if deadline_ts is not None \
                    and time.monotonic() >= deadline_ts:
                raise  # the shard deadline itself expired, not the hedge
        try:
            # Untagged duplicate: a hedge leg never consumes a fault
            # plan's scripted decisions.
            hfut = pool.submit(fn, payload[:-1] + (None,))
        except Exception:
            # Executor refused (broken/shutting down): fall back to the
            # plain wait and let the caller classify the outcome.
            remaining = None if deadline_ts is None \
                else max(0.0, deadline_ts - time.monotonic())
            got = fut.result(timeout=remaining)
            self._note_latency(time.monotonic() - dispatched)
            return got
        self._bump("hedges")
        candidates = {fut: False, hfut: True}  # future -> is the hedge
        last_exc: BaseException = concurrent.futures.TimeoutError()
        while candidates:
            remaining = None if deadline_ts is None \
                else deadline_ts - time.monotonic()
            if remaining is not None and remaining <= 0:
                for other in candidates:
                    other.cancel()
                raise concurrent.futures.TimeoutError()
            done, _ = concurrent.futures.wait(
                list(candidates), timeout=remaining,
                return_when=concurrent.futures.FIRST_COMPLETED)
            if not done:
                for other in candidates:
                    other.cancel()
                raise concurrent.futures.TimeoutError()
            for d in done:
                is_hedge = candidates.pop(d)
                try:
                    got = d.result()
                    body, _delta, crc = got
                    if zlib.crc32(body) != crc:
                        raise _CorruptShard(
                            f"shard {shard} payload failed its "
                            f"integrity check")
                except concurrent.futures.CancelledError:
                    last_exc = concurrent.futures.TimeoutError()
                    continue
                except BaseException as exc:
                    if isinstance(exc, _CorruptShard) and candidates:
                        # The other leg may still deliver clean bytes;
                        # this one is accounted here since the caller
                        # only sees the final outcome.
                        self._bump("corrupt_shards")
                    last_exc = exc
                    continue
                for other in candidates:
                    other.cancel()
                if is_hedge:
                    self._bump("hedge_wins")
                self._note_latency(time.monotonic() - dispatched)
                return got
        raise last_exc

    def _run_serial(self, fn, payloads, site, results, pending, attempts,
                    start) -> List[tuple]:
        """One serial round over ``pending``: ``(shard, cause)`` failures."""
        failed = []
        for i in pending:
            self._check_budget(start)
            try:
                got = fn(self._tagged(payloads[i], i, attempts[i], site))
                results[i] = self._verify_crc(got, i)
            except ReproError:
                raise  # deterministic data error: retrying cannot help
            except _CorruptShard as exc:
                self._bump("corrupt_shards")
                failed.append((i, exc))
            except Exception as exc:
                failed.append((i, exc))
        return failed

    def _run_parallel(self, pool, fn, payloads, site, results, pending,
                      attempts, start) -> List[tuple]:
        """One executor round over ``pending``: ``(shard, cause)``
        failures.  Detects broken pools and missed deadlines; either
        abandons the executor so the next round starts clean."""
        futs = [(i, pool.submit(fn, self._tagged(payloads[i], i,
                                                 attempts[i], site)))
                for i in pending]
        dispatched = time.monotonic()
        failed = []
        abandon = False
        broken = None
        for i, fut in futs:
            if broken is not None:
                fut.cancel()
                failed.append((i, broken))
                continue
            timeout = None
            if self.deadline is not None:
                timeout = dispatched + self.deadline - time.monotonic()
            if self.budget is not None:
                remaining = self.budget - (time.monotonic() - start)
                timeout = remaining if timeout is None \
                    else min(timeout, remaining)
            try:
                got = self._await_shard(pool, fn, payloads[i], i, fut,
                                        timeout, dispatched)
                results[i] = self._verify_crc(got, i)
            except concurrent.futures.TimeoutError:
                fut.cancel()
                self._check_budget(start)  # budget exhaustion raises
                if self.deadline is None:
                    # Only the budget bounded this wait; charge it even
                    # if the clock says a few microseconds remain.
                    elapsed = time.monotonic() - start
                    raise DeadlineExceededError(
                        f"bulk call exceeded its {self.budget}s budget "
                        f"({elapsed:.3f}s elapsed)",
                        shard=None, elapsed=elapsed, limit=self.budget)
                self._bump("deadline_hits")
                elapsed = time.monotonic() - dispatched
                failed.append((i, DeadlineExceededError(
                    f"shard {i} missed its {self.deadline}s deadline "
                    f"({elapsed:.3f}s elapsed)",
                    shard=i, elapsed=elapsed, limit=self.deadline)))
                abandon = True  # a worker may still be wedged
            except concurrent.futures.BrokenExecutor as exc:
                broken = PoolBrokenError(f"worker pool broke: {exc!r}")
                broken.__cause__ = exc
                failed.append((i, broken))
                abandon = True
            except ReproError:
                for j, other in futs:
                    other.cancel()
                raise
            except _CorruptShard as exc:
                self._bump("corrupt_shards")
                failed.append((i, exc))
            except Exception as exc:
                failed.append((i, exc))
        if abandon:
            self._abandon_executor()
            self._bump("pool_rebuilds")
        return failed

    def _run_shards(self, fn, payloads: List[tuple],
                    site: str) -> List[bytes]:
        """Run every shard to completion (or a typed error), in order.

        The core recovery loop: rounds of dispatch at the current
        ladder level, per-shard retry budgets, deadline/budget
        enforcement, broken-pool rebuilds, and — under
        ``on_error="degrade"`` — ladder descent with a fresh attempt
        budget per level.  Returns the shard bodies in input order and
        merges their stats deltas; on any raise, no partial results
        escape (the exception is the only outcome).
        """
        n = len(payloads)
        results: List[Optional[tuple]] = [None] * n
        pending = list(range(n))
        attempts = [0] * n
        start = time.monotonic()
        rebuilds = 0
        round_no = 0
        while pending:
            self._check_budget(start)
            pool = self._pool() if n > 1 else None
            try:
                if pool is None:
                    failed = self._run_serial(fn, payloads, site, results,
                                              pending, attempts, start)
                else:
                    failed = self._run_parallel(pool, fn, payloads, site,
                                                results, pending, attempts,
                                                start)
            except ReproError:
                raise
            if not failed:
                break
            serial_now = pool is None
            rebuilt_now = any(isinstance(c, PoolBrokenError)
                              for _, c in failed)
            if rebuilt_now:
                rebuilds += 1
            with self._lock:
                self._fstats["shard_failures"] += len(failed)
            exhausted = None
            for i, cause in failed:
                attempts[i] += 1
                if attempts[i] > self.retries and exhausted is None:
                    exhausted = (i, cause)
            pending = [i for i, _ in failed]
            must_step_down = (exhausted is not None
                              or rebuilds > self.max_rebuilds)
            if must_step_down:
                if self.on_error == "raise" or serial_now:
                    if exhausted is not None:
                        self._give_up(exhausted[0],
                                      attempts[exhausted[0]], exhausted[1])
                    raise PoolBrokenError(
                        f"worker pool broke {rebuilds} times "
                        f"(max_rebuilds={self.max_rebuilds})")
                self._degrade()
                rebuilds = 0
                for i in pending:  # fresh retry budget on the new rung
                    attempts[i] = 0
            else:
                self._bump("shard_retries", len(pending))
                round_no += 1
                if self.backoff:
                    # Deterministic jitter: chaos replays sleep the
                    # same spans run after run.
                    jitter = random.Random(f"bulkpool:{round_no}").random()
                    time.sleep(self.backoff * (2 ** min(round_no - 1, 4))
                               * (0.5 + 0.5 * jitter))
        out = []
        for body, delta in results:  # type: ignore[misc]
            if delta:
                self._merge_stats(delta)
            out.append(body)
        return out

    # ------------------------------------------------------------------
    # Pipelines
    # ------------------------------------------------------------------

    def _payloads(self, spans, bits) -> List[tuple]:
        """Shard payloads for :func:`_format_shard`.  Thread pools pass
        bit-pattern slices and the shared engine by reference; process
        pools pack bytes and let workers use their own engines."""
        if self.kind == "thread":
            return [(self.fmt.name, bits[a:b], self.mode, self.tie,
                     self.dedup, self.delimiter, self._engine, self.tiers,
                     None)
                    for a, b in spans]
        return [(self.fmt.name, pack_bits(bits[a:b], self.fmt),
                 self.mode, self.tie, self.dedup, self.delimiter,
                 None, self.tiers, None)
                for a, b in spans]

    def format_bulk(self, data) -> bytes:
        """Serialize a column to delimiter-terminated ASCII bytes."""
        bits = ingest_bits(data, self.fmt)
        if not bits:
            return b""
        spans = _chunk_slices(len(bits), self.jobs * self.shards_per_job)
        payloads = self._payloads(spans, bits)
        return b"".join(self._run_shards(_format_shard, payloads,
                                         "pool.format_shard"))

    def format_column(self, data) -> List[str]:
        """Shortest strings for a column, in input order."""
        payload = self.format_bulk(data)
        return _split_rows(payload, self.delimiter)

    def read_bulk(self, data, out: str = "bits"):
        """Parse a delimited payload (or sequence of literals)."""
        if out not in ("bits", "flonums"):
            raise RangeError(f"out must be 'bits' or 'flonums', "
                             f"got {out!r}")
        eng = self._engine if self.kind == "thread" else None
        if isinstance(data, (bytes, bytearray, memoryview, str)):
            # Byte planes ship as byte planes: one offsets pass finds
            # the token boundaries, and each shard payload is a *slice*
            # of the original plane cut on a boundary — no row strings,
            # no re-join, no re-encode.
            plane, starts, _lengths = split_plane(data, self.delimiter)
            if not starts:
                return []
            spans = _chunk_slices(len(starts),
                                  self.jobs * self.shards_per_job)
            end = len(plane)
            payloads = [(self.fmt.name,
                         plane[starts[a]:(starts[b] if b < len(starts)
                                          else end)],
                         self.mode, self.dedup, self.delimiter, eng,
                         self.tiers, None)
                        for a, b in spans]
        else:
            texts = data if isinstance(data, list) else list(data)
            if not texts:
                return []
            d = self.delimiter.decode("ascii")
            spans = _chunk_slices(len(texts),
                                  self.jobs * self.shards_per_job)
            payloads = [(self.fmt.name,
                         (d.join(texts[a:b]) + d).encode("ascii"),
                         self.mode, self.dedup, self.delimiter, eng,
                         self.tiers, None)
                        for a, b in spans]
        itemsize = _itemsize(self.fmt)
        bits: List[int] = []
        for packed in self._run_shards(_read_shard, payloads,
                                       "pool.read_shard"):
            bits.extend(_bits_from_bytes(packed, itemsize))
        if out == "bits":
            return bits
        from_bits = Flonum.from_bits
        fmt = self.fmt
        return [from_bits(b, fmt) for b in bits]

    @property
    def level(self) -> str:
        """The current degradation-ladder rung (``"process"``,
        ``"thread"`` or ``"serial"``)."""
        with self._lock:
            return self._level

    def stats(self) -> dict:
        """Merged engine counters across every shard so far, plus the
        recovery counters (:data:`FAULT_STAT_KEYS`).

        For process pools this sums the per-shard deltas the workers
        report (``cache_entries`` therefore totals entries across
        worker memos); for thread pools it is the shared engine's live
        :meth:`~repro.engine.engine.Engine.stats`.  Every counter
        mutation happens under the pool lock, so totals are exact even
        with calls running concurrently.

        Recovery counters are folded *additively*: ``snapshot_faults``
        exists on both sides (engine-level rejections reported in shard
        deltas, parent-side rejections in the pool's own tally) and the
        merge must never let one overwrite the other.
        """
        if self.kind == "thread":
            out = dict(self._engine.stats())
            with self._lock:
                for k, v in self._fstats.items():
                    out[k] = out.get(k, 0) + v
                for k, v in self._stats.items():  # degraded-rung deltas
                    out[k] = out.get(k, 0) + v
            return out
        with self._lock:
            out = dict(self._stats)
            for k, v in self._fstats.items():
                out[k] = out.get(k, 0) + v
        return out
