"""Wire protocol of the serving daemon: length-prefixed binary frames.

The daemon (:mod:`repro.serve.daemon`) speaks a minimal framed protocol
designed so payloads are *byte planes* — the exact representation the
byte-plane pipeline (:mod:`repro.engine.buffer`) consumes and produces —
and never row-at-a-time strings.  A format request carries packed
native-order bit patterns and gets back a delimited ASCII plane; a read
request carries a delimited ASCII plane and gets back packed bit
patterns.  Both directions feed ``parse_buffer``/``format_buffer``
without any per-row re-encoding.

Request frame (all integers big-endian)::

    u32  body length N   (everything after these 4 bytes; <= max_frame)
    u8   magic 0xB5      (rejects plaintext/garbage streams early)
    u8   opcode          (1=format, 2=read, 3=ping, 4=health)
    u8   format-name length F
    F    format name     (ascii; a STANDARD_FORMATS key)
    u8   delimiter length D (1..8; ping/health: F == D == 0)
    D    delimiter bytes
    N-4-F-D  payload     (format: packed bits; read: delimited plane)

Response frame::

    u32  body length N
    u8   magic 0xB5
    u8   status          (0=ok, 1=error)
    ok:    N-2 payload bytes (format: delimited plane; read: packed bits)
    error: u8 type-name length T, T bytes of ReproError subclass name,
           N-3-T bytes of utf-8 message

Error discipline: every malformed frame yields a typed
:class:`~repro.errors.ProtocolError` *response* — never a hung or
crashed connection.  ``ProtocolError.recoverable`` distinguishes frames
that were consumed whole (bad opcode/format/delimiter: the stream is
still framed, the connection stays up) from framing damage (bad magic
or length prefix: the daemon responds, then closes).  Conversion-layer
failures travel back as whatever :class:`~repro.errors.ReproError`
subclass the engine raised, re-raised client-side by name
(:func:`raise_error_payload`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro import errors as _errors
from repro.errors import ProtocolError, ReproError
from repro.floats.formats import STANDARD_FORMATS

__all__ = [
    "OP_FORMAT", "OP_READ", "OP_PING", "OP_HEALTH", "MAGIC", "MAX_FRAME",
    "HEADER_MIN", "Request", "encode_request", "parse_request",
    "encode_response", "encode_error", "parse_response",
    "raise_error_payload", "frame_and_body", "read_frame",
]

#: Frame magic: the first body byte of every request and response.
MAGIC = 0xB5

OP_FORMAT = 1
OP_READ = 2
OP_PING = 3
OP_HEALTH = 4

_OPS = frozenset({OP_FORMAT, OP_READ, OP_PING, OP_HEALTH})

#: Header-only opcodes: no format name, delimiter or payload.
_BODYLESS_OPS = frozenset({OP_PING, OP_HEALTH})

#: Default cap on one frame body; a length prefix past the daemon's cap
#: is framing damage (the bytes that follow cannot be trusted).
MAX_FRAME = 64 * 1024 * 1024

#: Smallest well-formed request body: magic, opcode, two zero lengths.
HEADER_MIN = 4

_LEN = struct.Struct(">I")

STATUS_OK = 0
STATUS_ERROR = 1


@dataclass(frozen=True)
class Request:
    """One decoded request frame."""

    op: int
    fmt_name: str
    delimiter: bytes
    payload: bytes

    @property
    def fmt(self):
        return STANDARD_FORMATS[self.fmt_name]


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def encode_request(op: int, payload: bytes = b"",
                   fmt_name: str = "binary64",
                   delimiter: Union[bytes, str] = b"\n") -> bytes:
    """One request frame, length prefix included."""
    if op in _BODYLESS_OPS:
        body = bytes((MAGIC, op, 0, 0))
        return _LEN.pack(len(body)) + body
    name = fmt_name.encode("ascii")
    delim = delimiter.encode("ascii") if isinstance(delimiter, str) \
        else bytes(delimiter)
    if not 1 <= len(delim) <= 8:
        raise ProtocolError(
            f"delimiter must be 1..8 bytes, got {len(delim)}")
    body = (bytes((MAGIC, op, len(name))) + name
            + bytes((len(delim),)) + delim + payload)
    return _LEN.pack(len(body)) + body


def encode_response(payload: bytes) -> bytes:
    """One OK response frame, length prefix included."""
    return (_LEN.pack(len(payload) + 2)
            + bytes((MAGIC, STATUS_OK)) + payload)


def encode_error(exc: ReproError) -> bytes:
    """One error response frame carrying the error's type and message.

    Anything that is not a :class:`ReproError` is reported as the base
    class — the wire contract promises typed repro errors only.
    """
    name = type(exc).__name__ if isinstance(exc, ReproError) \
        else "ReproError"
    name_b = name.encode("ascii")
    msg = str(exc).encode("utf-8", "replace")
    body = bytes((MAGIC, STATUS_ERROR, len(name_b))) + name_b + msg
    return _LEN.pack(len(body)) + body


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------

def parse_request(body: bytes) -> Request:
    """Decode one request body (the bytes after the length prefix).

    Raises :class:`ProtocolError` — ``recoverable=True`` when the frame
    was consumed whole and only its header is invalid, ``False`` when
    the stream itself can no longer be trusted (bad magic).
    """
    if len(body) < HEADER_MIN:
        raise ProtocolError(
            f"request body of {len(body)} bytes is shorter than the "
            f"{HEADER_MIN}-byte minimal header", recoverable=True)
    if body[0] != MAGIC:
        raise ProtocolError(
            f"bad frame magic {body[0]:#04x} (expected {MAGIC:#04x})")
    op = body[1]
    if op not in _OPS:
        raise ProtocolError(f"unknown opcode {op}", recoverable=True)
    if op in _BODYLESS_OPS:
        return Request(op, "binary64", b"\n", b"")
    nlen = body[2]
    pos = 3 + nlen
    if pos >= len(body):
        raise ProtocolError("truncated header: format name overruns "
                            "the frame", recoverable=True)
    try:
        fmt_name = body[3:pos].decode("ascii")
    except UnicodeDecodeError:
        raise ProtocolError("format name is not ASCII",
                            recoverable=True) from None
    if fmt_name not in STANDARD_FORMATS:
        raise ProtocolError(f"unknown format {fmt_name!r}",
                            recoverable=True)
    dlen = body[pos]
    if not 1 <= dlen <= 8:
        raise ProtocolError(f"delimiter length {dlen} outside 1..8",
                            recoverable=True)
    if pos + 1 + dlen > len(body):
        raise ProtocolError("truncated header: delimiter overruns the "
                            "frame", recoverable=True)
    delim = body[pos + 1:pos + 1 + dlen]
    return Request(op, fmt_name, delim, body[pos + 1 + dlen:])


def parse_response(body: bytes) -> Tuple[int, bytes]:
    """``(status, payload)`` of one response body; the error payload is
    left encoded (see :func:`raise_error_payload`)."""
    if len(body) < 2:
        raise ProtocolError(
            f"response body of {len(body)} bytes is shorter than the "
            "2-byte minimal header")
    if body[0] != MAGIC:
        raise ProtocolError(
            f"bad frame magic {body[0]:#04x} (expected {MAGIC:#04x})")
    status = body[1]
    if status not in (STATUS_OK, STATUS_ERROR):
        raise ProtocolError(f"unknown response status {status}")
    return status, body[2:]


def raise_error_payload(payload: bytes) -> None:
    """Re-raise a daemon error payload as its original typed error.

    The type travels by *name* and is resolved against
    :mod:`repro.errors`; an unknown or non-ReproError name degrades to
    the :class:`ReproError` base class rather than trusting the wire to
    name an arbitrary class.
    """
    if not payload:
        raise ProtocolError("empty error payload")
    nlen = payload[0]
    if 1 + nlen > len(payload):
        raise ProtocolError("truncated error payload")
    name = payload[1:1 + nlen].decode("ascii", "replace")
    message = payload[1 + nlen:].decode("utf-8", "replace")
    cls = getattr(_errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    try:
        raise cls(message)
    except TypeError:  # subclass with a structured __init__ signature
        raise ReproError(f"{name}: {message}") from None


def frame_and_body(buf: bytes, max_frame: int = MAX_FRAME
                   ) -> Optional[Tuple[bytes, int]]:
    """Incremental decode over a byte buffer: ``(body, consumed)`` once
    a whole frame is buffered, None while more bytes are needed.

    The synchronous twin of :func:`read_frame` for tests and blocking
    clients.  Raises :class:`ProtocolError` on an untrustworthy length
    prefix (zero or past ``max_frame``).
    """
    if len(buf) < 4:
        return None
    (n,) = _LEN.unpack_from(buf)
    if n == 0 or n > max_frame:
        raise ProtocolError(
            f"frame length {n} outside 1..{max_frame}")
    if len(buf) < 4 + n:
        return None
    return bytes(buf[4:4 + n]), 4 + n


async def read_frame(reader, max_frame: int = MAX_FRAME
                     ) -> Optional[bytes]:
    """Read one frame body from an asyncio stream reader.

    Returns None on clean EOF at a frame boundary.  Raises
    :class:`ProtocolError` for an untrustworthy length prefix and lets
    ``asyncio.IncompleteReadError`` (mid-frame disconnect) propagate —
    the connection handler treats both as reasons to close.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise
    (n,) = _LEN.unpack(prefix)
    if n == 0 or n > max_frame:
        raise ProtocolError(f"frame length {n} outside 1..{max_frame}")
    return await reader.readexactly(n)
