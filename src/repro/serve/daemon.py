"""The asyncio serving daemon: the engine behind a wire.

:class:`ReproDaemon` fronts the bulk serving stack
(:class:`~repro.serve.pool.BulkPool` over
``format_buffer``/``parse_buffer``) with a loopback/TCP server speaking
the length-prefixed protocol of :mod:`repro.serve.protocol`.  Payloads
are byte planes end to end: a format request's packed bit patterns and
a read request's delimited ASCII plane go straight into the byte-plane
pipeline — the wire never materializes per-row strings.

Design:

* **Admission control** — accepting a request that would push the
  daemon past ``max_inflight_bytes`` or ``max_inflight_requests``
  (or that arrives while draining) yields a typed
  :class:`~repro.errors.ServeOverloadError` response immediately;
  in-flight requests are never affected.  Clients see a fast typed
  rejection instead of unbounded queueing — the latency SLO is
  protected by shedding, not by lying.
* **Request batching** — concurrent requests with the same
  ``(op, format, delimiter)`` key coalesce into one columnar bulk call
  (a micro-batch window of ``batch_window`` seconds, flushed early past
  ``batch_max_bytes``).  Responses are byte-identical to unbatched
  execution: format batches split on row counts, read batches on token
  counts, and a request that poisons a combined call (e.g. one garbage
  literal) falls back to per-request conversion so its neighbours still
  succeed.
* **Fault tolerance** — every conversion runs through a
  :class:`BulkPool` (one per ``(format, delimiter)``, built lazily), so
  PR 5's machinery applies on the wire: CRC'd shards, deadlines and
  budgets, bounded retries, broken-pool rebuilds and the
  process → thread → serial degradation ladder.  An unrecoverable
  failure surfaces as its typed :class:`~repro.errors.ReproError`
  response; an untyped escape is a protocol violation the chaos battery
  hunts for.
* **Graceful drain** — :meth:`close` stops accepting, flushes pending
  micro-batches, waits (bounded by ``drain_timeout``) for in-flight
  responses to be written, then tears down pools and executors.
  Idempotent, and safe to call from any thread via :func:`serving`.

The event loop owns every counter and queue; conversions run on a small
thread-pool executor so a big bulk call never blocks frame reads,
admission decisions or other connections.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import threading
from typing import Dict, List, Optional, Tuple

from repro.core.rounding import ReaderMode, TieBreak
from repro.engine.buffer import split_plane
from repro.engine.bulk import _itemsize, pack_bits
from repro.errors import (
    DecodeError,
    ProtocolError,
    RangeError,
    ReproError,
    ServeOverloadError,
)
from repro.floats.formats import STANDARD_FORMATS
from repro.serve import protocol
from repro.serve.pool import BulkPool
from repro.serve.protocol import OP_FORMAT, OP_PING, OP_READ

__all__ = ["ReproDaemon", "serving", "main", "SERVE_STAT_KEYS"]

#: Counters :meth:`ReproDaemon.stats` always includes.
SERVE_STAT_KEYS = (
    "connections", "requests", "responses", "format_requests",
    "read_requests", "pings", "batches", "batched_requests", "max_batch",
    "batch_fallbacks", "overloads", "protocol_errors", "error_responses",
    "bytes_in", "bytes_out", "drains",
)


def _failed(exc: ReproError, loop) -> asyncio.Future:
    fut = loop.create_future()
    fut.set_exception(exc)
    return fut


class _Batcher:
    """Coalesces same-keyed requests into one columnar bulk call.

    Requests accumulate for at most ``batch_window`` seconds (or until
    ``batch_max_bytes`` of payload are pending, whichever is first),
    then flush as a single conversion on the daemon's worker executor.
    A new batch opens the moment the old one is taken, so a slow
    conversion never blocks arrivals from forming the next batch.
    """

    def __init__(self, daemon: "ReproDaemon", op: int, fmt_name: str,
                 delimiter: bytes):
        self.daemon = daemon
        self.op = op
        self.fmt_name = fmt_name
        self.delimiter = delimiter
        self.pending: List[Tuple[bytes, asyncio.Future]] = []
        self.pending_bytes = 0
        self._wake = asyncio.Event()
        self._task: Optional[asyncio.Task] = None

    def add(self, payload: bytes, fut: asyncio.Future) -> None:
        self.pending.append((payload, fut))
        self.pending_bytes += len(payload)
        if self._task is None or self._task.done():
            self._task = asyncio.ensure_future(self._flush())
        elif self.pending_bytes >= self.daemon.batch_max_bytes:
            self._wake.set()

    def wake(self) -> None:
        """Flush without waiting out the window (drain path)."""
        self._wake.set()

    async def _flush(self) -> None:
        window = self.daemon.batch_window
        if window > 0:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._wake.wait(), window)
        else:
            await asyncio.sleep(0)  # one loop turn: same-burst coalescing
        self._wake.clear()
        batch, self.pending = self.pending, []
        self.pending_bytes = 0
        # A fresh batch opens here: arrivals during the conversion
        # below schedule their own flush instead of hanging on this one.
        self._task = None
        if not batch:
            return
        daemon = self.daemon
        daemon._note_batch(len(batch))
        payloads = [p for p, _ in batch]
        try:
            results = await asyncio.get_running_loop().run_in_executor(
                daemon._workers, daemon._convert, self.op, self.fmt_name,
                self.delimiter, payloads)
        except BaseException as exc:  # executor died: fail the batch
            results = [exc] * len(batch)
        for (payload, fut), res in zip(batch, results):
            daemon._release(len(payload))
            if fut.cancelled():
                continue
            if isinstance(res, BaseException):
                if not isinstance(res, ReproError):
                    res = ReproError(f"internal conversion failure: "
                                     f"{res!r}")
                fut.set_exception(res)
            else:
                fut.set_result(res)


class ReproDaemon:
    """An asyncio front-end serving format/read byte planes with SLOs.

    Args:
        host / port: Listen address (``port=0`` picks a free port,
            published as :attr:`port` after :meth:`start`).
        jobs / kind: The per-key :class:`BulkPool` geometry —
            ``kind="thread"`` shares one engine (memo-hot traffic),
            ``"process"`` forks per-worker engines (exact-heavy
            traffic, and the ladder's top rung for chaos runs).
        batch_window: Seconds a micro-batch waits for company before
            flushing (0: coalesce only requests arriving in the same
            loop turn).
        batch_max_bytes: Pending payload bytes that flush a batch
            early.
        max_inflight_bytes / max_inflight_requests: The admission
            budget; past either, requests are rejected with
            :class:`ServeOverloadError`.
        max_frame: Largest accepted frame body; a length prefix past it
            is framing damage (typed response, connection closed).
        idle_timeout: Seconds a connection may sit idle (or hold a
            partial frame) before the daemon closes it; None disables.
        deadline / budget / retries / on_error: Passed to every
            :class:`BulkPool` — shard deadline, whole-batch budget,
            retry count and ladder behaviour (see
            :mod:`repro.serve.pool`).
        mode / tie: Reader assumption and tie strategy for formatting.
        drain_timeout: Seconds :meth:`close` waits for in-flight
            responses before tearing down anyway.
        snapshot: Optional warm-start source (path or
            :class:`repro.engine.snapshot.Snapshot`).  ``kind="thread"``
            warms the shared engine once at construction;
            ``kind="process"`` ships it to every lazily built
            :class:`BulkPool` so workers fork warm (shared-memory hot
            plane included).  A rejected snapshot counts
            ``snapshot_faults`` in :meth:`pool_stats` and serving
            starts cold — response bytes are identical either way.
        tiers: Optional ``(write_order, read_order)`` pair of engine
            lane orders (see :func:`repro.engine.split_tier_names`);
            every conversion engine the daemon builds — the shared
            thread-kind engine and every pool worker — routes through
            these lanes.  Response bytes are identical for every order.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 jobs: int = 1, kind: str = "thread",
                 batch_window: float = 0.001,
                 batch_max_bytes: int = 1 << 20,
                 max_inflight_bytes: int = 16 << 20,
                 max_inflight_requests: int = 1024,
                 max_frame: int = protocol.MAX_FRAME,
                 idle_timeout: Optional[float] = None,
                 deadline: Optional[float] = None,
                 budget: Optional[float] = None,
                 retries: int = 2, on_error: str = "degrade",
                 mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                 tie: TieBreak = TieBreak.UP,
                 drain_timeout: float = 10.0, dedup: bool = True,
                 workers: int = 4, snapshot=None, tiers=None):
        if kind not in ("process", "thread"):
            raise RangeError(f"kind must be 'process' or 'thread', "
                             f"got {kind!r}")
        for name, v in (("jobs", jobs), ("workers", workers)):
            if v < 1:
                raise RangeError(f"{name} must be >= 1, got {v}")
        if batch_window < 0 or drain_timeout < 0:
            raise RangeError("batch_window/drain_timeout must be >= 0")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.kind = kind
        self.batch_window = batch_window
        self.batch_max_bytes = batch_max_bytes
        self.max_inflight_bytes = max_inflight_bytes
        self.max_inflight_requests = max_inflight_requests
        self.max_frame = max_frame
        self.idle_timeout = idle_timeout
        self.deadline = deadline
        self.budget = budget
        self.retries = retries
        self.on_error = on_error
        self.mode = mode
        self.tie = tie
        self.dedup = dedup
        self.drain_timeout = drain_timeout
        self._inflight_requests = 0
        self._inflight_bytes = 0
        self._unwritten = 0
        self._draining = False
        self._closed = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conns: set = set()
        self._batchers: Dict[Tuple[int, str, bytes], _Batcher] = {}
        self._pools: Dict[Tuple[str, bytes], BulkPool] = {}
        self._pools_lock = threading.Lock()
        self._workers = concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self.snapshot = snapshot
        if tiers is not None:
            tiers = (tuple(tiers[0]), tuple(tiers[1]))
        self.tiers = tiers
        self._engine = None
        if kind == "thread":
            from repro.engine.engine import Engine

            # Warm once at construction: every thread pool shares this
            # engine, so the snapshot is applied exactly once here
            # rather than per (format, delimiter) pool.
            kwargs = ({} if tiers is None
                      else {"tier_order": tiers[0],
                            "read_tier_order": tiers[1]})
            self._engine = Engine(snapshot=snapshot, **kwargs)
        self._stats: Dict[str, int] = dict.fromkeys(SERVE_STAT_KEYS, 0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ReproDaemon":
        """Bind and start accepting; publishes the chosen :attr:`port`."""
        if self._server is not None:
            return self
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled; drains gracefully on the way out."""
        await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.close()

    async def close(self) -> None:
        """Graceful drain: stop accepting, flush micro-batches, wait
        for in-flight responses (bounded by ``drain_timeout``), then
        tear down pools and executors.  Idempotent — any number of
        calls, from the serve loop's finally or directly."""
        if self._closed:
            return
        self._draining = True
        self._stats["drains"] += 1
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        for batcher in list(self._batchers.values()):
            batcher.wake()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        # Wait for every accepted response to be *written*, not merely
        # converted — a drained daemon owes the wire nothing.
        while (self._inflight_requests > 0 or self._unwritten > 0) \
                and loop.time() < deadline:
            await asyncio.sleep(0.005)
        self._closed = True
        for writer in list(self._conns):
            with contextlib.suppress(Exception):
                writer.close()
        with self._pools_lock:
            pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            await loop.run_in_executor(None, pool.close)
        self._workers.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._stats["connections"] += 1
        self._conns.add(writer)
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        pump = asyncio.ensure_future(self._pump(queue, writer))
        try:
            while True:
                try:
                    frame = protocol.read_frame(reader, self.max_frame)
                    if self.idle_timeout is not None:
                        body = await asyncio.wait_for(frame,
                                                      self.idle_timeout)
                    else:
                        body = await frame
                except ProtocolError as exc:
                    # Bad length prefix: respond, then close — the
                    # stream is no longer framed.
                    self._stats["protocol_errors"] += 1
                    self._unwritten += 1
                    await queue.put(_failed(exc, loop))
                    break
                except (asyncio.IncompleteReadError, ConnectionError,
                        asyncio.TimeoutError):
                    break  # mid-frame disconnect or idle cutoff
                if body is None:
                    break  # clean EOF
                self._stats["bytes_in"] += len(body) + 4
                try:
                    req = protocol.parse_request(body)
                except ProtocolError as exc:
                    self._stats["protocol_errors"] += 1
                    self._unwritten += 1
                    await queue.put(_failed(exc, loop))
                    if exc.recoverable:
                        continue  # frame fully consumed; stream intact
                    break
                self._unwritten += 1
                await queue.put(self._admit(req, loop))
        finally:
            await queue.put(None)
            with contextlib.suppress(Exception):
                await pump
            self._conns.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _pump(self, queue: asyncio.Queue,
                    writer: asyncio.StreamWriter) -> None:
        """Write responses in request order; one pump per connection.

        Pipelined requests resolve concurrently (they may share a
        micro-batch), but the wire contract is strict FIFO.  A client
        that disconnects early stops receiving, never the accounting —
        remaining futures are still awaited so in-flight counters
        drain.
        """
        alive = True
        while True:
            fut = await queue.get()
            if fut is None:
                return
            try:
                payload = await fut
            except ReproError as exc:
                data = protocol.encode_error(exc)
                self._stats["error_responses"] += 1
            except Exception as exc:  # pragma: no cover - defensive
                data = protocol.encode_error(
                    ReproError(f"internal error: {exc!r}"))
                self._stats["error_responses"] += 1
            else:
                data = protocol.encode_response(payload)
            try:
                if not alive:
                    continue
                try:
                    writer.write(data)
                    await writer.drain()
                    self._stats["responses"] += 1
                    self._stats["bytes_out"] += len(data)
                except (ConnectionError, RuntimeError, OSError):
                    alive = False
            finally:
                self._unwritten -= 1

    # ------------------------------------------------------------------
    # Admission control and batching
    # ------------------------------------------------------------------

    def _admit(self, req: protocol.Request,
               loop: asyncio.AbstractEventLoop) -> asyncio.Future:
        """The admission decision: a future that resolves to the
        response payload, already rejected when over budget."""
        self._stats["requests"] += 1
        if req.op == OP_PING:
            self._stats["pings"] += 1
            fut = loop.create_future()
            fut.set_result(b"")
            return fut
        if self._draining or self._closed:
            self._stats["overloads"] += 1
            return _failed(ServeOverloadError(
                "daemon is draining; connect elsewhere"), loop)
        if self._inflight_requests >= self.max_inflight_requests:
            self._stats["overloads"] += 1
            return _failed(ServeOverloadError(
                f"{self._inflight_requests} requests in flight "
                f"(limit {self.max_inflight_requests}); back off"), loop)
        if self._inflight_bytes + len(req.payload) \
                > self.max_inflight_bytes:
            self._stats["overloads"] += 1
            return _failed(ServeOverloadError(
                f"request of {len(req.payload)} bytes exceeds the "
                f"in-flight byte budget ({self._inflight_bytes}/"
                f"{self.max_inflight_bytes} used); back off"), loop)
        if req.op == OP_FORMAT:
            try:
                itemsize = _itemsize(req.fmt)
            except DecodeError as exc:
                return _failed(exc, loop)
            if len(req.payload) % itemsize:
                return _failed(DecodeError(
                    f"format payload of {len(req.payload)} bytes is not "
                    f"a multiple of the {itemsize}-byte {req.fmt_name} "
                    f"encoding"), loop)
            self._stats["format_requests"] += 1
        else:
            self._stats["read_requests"] += 1
        self._inflight_requests += 1
        self._inflight_bytes += len(req.payload)
        fut = loop.create_future()
        key = (req.op, req.fmt_name, req.delimiter)
        batcher = self._batchers.get(key)
        if batcher is None:
            batcher = self._batchers[key] = _Batcher(
                self, req.op, req.fmt_name, req.delimiter)
        batcher.add(req.payload, fut)
        return fut

    def _release(self, payload_bytes: int) -> None:
        self._inflight_requests -= 1
        self._inflight_bytes -= payload_bytes

    def _note_batch(self, size: int) -> None:
        self._stats["batches"] += 1
        self._stats["batched_requests"] += size
        if size > self._stats["max_batch"]:
            self._stats["max_batch"] = size

    # ------------------------------------------------------------------
    # Conversion (worker-executor side)
    # ------------------------------------------------------------------

    def _pool_for(self, fmt_name: str, delimiter: bytes) -> BulkPool:
        key = (fmt_name, delimiter)
        with self._pools_lock:
            pool = self._pools.get(key)
            if pool is None:
                pool = self._pools[key] = BulkPool(
                    jobs=self.jobs, kind=self.kind,
                    fmt=STANDARD_FORMATS[fmt_name], mode=self.mode,
                    tie=self.tie, dedup=self.dedup, delimiter=delimiter,
                    engine=self._engine, deadline=self.deadline,
                    budget=self.budget, retries=self.retries,
                    on_error=self.on_error,
                    snapshot=(self.snapshot if self.kind == "process"
                              else None),
                    tiers=self.tiers)
            return pool

    def _convert(self, op: int, fmt_name: str, delimiter: bytes,
                 payloads: List[bytes]) -> List[object]:
        """One combined bulk call for a whole micro-batch; per-request
        results (bytes) or typed errors, in batch order.

        Runs on the worker executor.  When the combined call raises a
        :class:`ReproError` (one request's data poisons the batch —
        e.g. a garbage literal), falls back to per-request conversion
        so the error lands only on the request that earned it.
        """
        pool = self._pool_for(fmt_name, delimiter)
        one = (self._format_one if op == OP_FORMAT else self._read_one)
        if len(payloads) == 1:
            try:
                return [one(pool, payloads[0])]
            except ReproError as exc:
                return [exc]
        combined = (self._format_combined if op == OP_FORMAT
                    else self._read_combined)
        try:
            return combined(pool, payloads)
        except ReproError:
            self._stats["batch_fallbacks"] += 1
            out: List[object] = []
            for p in payloads:
                try:
                    out.append(one(pool, p))
                except ReproError as exc:
                    out.append(exc)
            return out

    @staticmethod
    def _format_one(pool: BulkPool, payload: bytes) -> bytes:
        return pool.format_bulk(payload)

    @staticmethod
    def _read_one(pool: BulkPool, payload: bytes) -> bytes:
        return pack_bits(pool.read_bulk(payload), pool.fmt)

    def _format_combined(self, pool: BulkPool,
                         payloads: List[bytes]) -> List[bytes]:
        itemsize = _itemsize(pool.fmt)
        counts = [len(p) // itemsize for p in payloads]
        plane = pool.format_bulk(b"".join(payloads))
        _, starts, _ = split_plane(plane, pool.delimiter)
        out: List[bytes] = []
        idx = 0
        for c in counts:
            if c == 0:
                out.append(b"")
                continue
            end = starts[idx + c] if idx + c < len(starts) else len(plane)
            out.append(plane[starts[idx]:end])
            idx += c
        return out

    def _read_combined(self, pool: BulkPool,
                       payloads: List[bytes]) -> List[bytes]:
        delim = pool.delimiter
        counts: List[int] = []
        segments: List[bytes] = []
        for p in payloads:
            _, starts, _ = split_plane(p, delim)
            counts.append(len(starts))
            # Terminate an unterminated tail so request boundaries
            # survive concatenation (an unterminated trailing token is
            # one row either way).
            if p and not p.endswith(delim):
                p = p + delim
            segments.append(p)
        bits = pool.read_bulk(b"".join(segments))
        out: List[bytes] = []
        idx = 0
        for c in counts:
            out.append(pack_bits(bits[idx:idx + c], pool.fmt))
            idx += c
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> Tuple[int, int]:
        """(requests, payload bytes) currently admitted."""
        return self._inflight_requests, self._inflight_bytes

    def stats(self) -> Dict[str, int]:
        """Serving counters (:data:`SERVE_STAT_KEYS`), always complete."""
        return dict(self._stats)

    def pool_stats(self) -> Dict[str, int]:
        """Engine + recovery counters summed across every live pool."""
        out: Dict[str, int] = {}
        with self._pools_lock:
            pools = list(self._pools.values())
        for pool in pools:
            for k, v in pool.stats().items():
                if isinstance(v, dict):
                    # Derived ratios (``bail_rate``) don't sum; consumers
                    # recompute them from the merged counters.
                    continue
                out[k] = out.get(k, 0) + v
        return out


# ----------------------------------------------------------------------
# Synchronous harness: run the daemon on a background loop thread
# ----------------------------------------------------------------------

@contextlib.contextmanager
def serving(**kwargs):
    """Run a :class:`ReproDaemon` on a background event-loop thread.

    Yields the started daemon (``daemon.host``/``daemon.port`` are
    live); drains and tears the loop down on exit.  The harness tests,
    the ``--serve`` verify battery and ``tools/bench_serve.py`` all
    serve through this.
    """
    daemon = ReproDaemon(**kwargs)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever,
                              name="repro-serve-loop", daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(
            daemon.start(), loop).result(timeout=30)
        yield daemon
    finally:
        with contextlib.suppress(Exception):
            asyncio.run_coroutine_threadsafe(
                daemon.close(), loop).result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        with contextlib.suppress(Exception):
            loop.close()


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.serve`` / ``repro-print --serve``: run the
    daemon until interrupted, draining gracefully on the way out."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve format/read byte planes over the framed "
                    "protocol (see docs/serving.md).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0: pick a free one, printed "
                             "on startup)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="BulkPool workers per (format, delimiter)")
    parser.add_argument("--kind", default="thread",
                        choices=["thread", "process"],
                        help="worker pool kind (see docs/robustness.md)")
    parser.add_argument("--batch-window", type=float, default=0.001,
                        metavar="SECONDS",
                        help="micro-batch coalescing window")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS", help="per-shard deadline")
    parser.add_argument("--budget", type=float, default=None,
                        metavar="SECONDS",
                        help="whole-batch conversion budget")
    parser.add_argument("--max-inflight-mb", type=float, default=16.0,
                        help="admission budget: in-flight payload MiB")
    parser.add_argument("--max-inflight-requests", type=int,
                        default=1024,
                        help="admission budget: in-flight requests")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="warm-start snapshot (built by "
                             "tools/warm_snapshot.py); a rejected file "
                             "degrades to a cold start")
    parser.add_argument("--tiers", default=None, metavar="LANES",
                        help="comma-separated engine lane order (write "
                             "lanes tier0/grisu3/schubfach, read lanes "
                             "tier0/window/lemire); response bytes are "
                             "identical for every order")
    args = parser.parse_args(argv)

    tiers = None
    if args.tiers is not None:
        from repro.engine import split_tier_names

        try:
            tiers = split_tier_names(args.tiers.split(","))
        except ReproError as exc:
            parser.error(str(exc))

    daemon = ReproDaemon(
        host=args.host, port=args.port, jobs=args.jobs, kind=args.kind,
        batch_window=args.batch_window, deadline=args.deadline,
        budget=args.budget,
        max_inflight_bytes=int(args.max_inflight_mb * (1 << 20)),
        max_inflight_requests=args.max_inflight_requests,
        snapshot=args.snapshot, tiers=tiers)

    async def _run() -> None:
        await daemon.start()
        print(f"repro-serve listening on {daemon.host}:{daemon.port}",
              flush=True)
        try:
            await daemon._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await daemon.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0
