"""The asyncio serving daemon: the engine behind a wire.

:class:`ReproDaemon` fronts the bulk serving stack
(:class:`~repro.serve.pool.BulkPool` over
``format_buffer``/``parse_buffer``) with a loopback/TCP server speaking
the length-prefixed protocol of :mod:`repro.serve.protocol`.  Payloads
are byte planes end to end: a format request's packed bit patterns and
a read request's delimited ASCII plane go straight into the byte-plane
pipeline — the wire never materializes per-row strings.

Design:

* **Admission control** — accepting a request that would push the
  daemon past ``max_inflight_bytes`` or ``max_inflight_requests``
  (or that arrives while draining) yields a typed
  :class:`~repro.errors.ServeOverloadError` response immediately;
  in-flight requests are never affected.  Clients see a fast typed
  rejection instead of unbounded queueing — the latency SLO is
  protected by shedding, not by lying.
* **Request batching** — concurrent requests with the same
  ``(op, format, delimiter)`` key coalesce into one columnar bulk call
  (a micro-batch window of ``batch_window`` seconds, flushed early past
  ``batch_max_bytes``).  Responses are byte-identical to unbatched
  execution: format batches split on row counts, read batches on token
  counts, and a request that poisons a combined call (e.g. one garbage
  literal) falls back to per-request conversion so its neighbours still
  succeed.
* **Fault tolerance** — every conversion runs through a
  :class:`BulkPool` (one per ``(format, delimiter)``, built lazily), so
  PR 5's machinery applies on the wire: CRC'd shards, deadlines and
  budgets, bounded retries, broken-pool rebuilds and the
  process → thread → serial degradation ladder.  An unrecoverable
  failure surfaces as its typed :class:`~repro.errors.ReproError`
  response; an untyped escape is a protocol violation the chaos battery
  hunts for.
* **Graceful drain** — :meth:`close` stops accepting, flushes pending
  micro-batches, waits (bounded by ``drain_timeout``) for in-flight
  responses to be written, then tears down pools and executors.
  Idempotent, and safe to call from any thread via :func:`serving`.

The event loop owns every counter and queue; conversions run on a small
thread-pool executor so a big bulk call never blocks frame reads,
admission decisions or other connections.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import threading
from typing import Dict, List, Optional, Tuple

from repro.core.rounding import ReaderMode, TieBreak
from repro.engine.buffer import split_plane
from repro.engine.bulk import _itemsize, pack_bits
from repro.errors import (
    DecodeError,
    ProtocolError,
    RangeError,
    ReproError,
    ServeOverloadError,
)
from repro.floats.formats import STANDARD_FORMATS
from repro.serve import protocol
from repro.serve.control import (
    CANARY,
    SHED,
    AdmissionController,
    CircuitBreaker,
    TrafficObserver,
)
from repro.serve.pool import BulkPool
from repro.serve.protocol import OP_FORMAT, OP_HEALTH, OP_PING, OP_READ

__all__ = ["ReproDaemon", "serving", "main", "SERVE_STAT_KEYS"]

#: Counters :meth:`ReproDaemon.stats` always includes.  The control
#: plane's ``breaker_*`` / ``admission_increases`` / ``admission_
#: decreases`` / ``observed_requests`` entries are folded live from the
#: breaker, controller and observer state in :meth:`ReproDaemon.stats`;
#: the rest are incremented where the event happens.
SERVE_STAT_KEYS = (
    "connections", "requests", "responses", "format_requests",
    "read_requests", "pings", "batches", "batched_requests", "max_batch",
    "batch_fallbacks", "overloads", "protocol_errors", "error_responses",
    "bytes_in", "bytes_out", "drains",
    "health_requests", "breaker_trips", "breaker_sheds", "breaker_closes",
    "breaker_reopens", "breaker_canaries", "admission_sheds",
    "admission_increases", "admission_decreases", "observed_requests",
    "snapshot_rotations",
)


def _failed(exc: ReproError, loop) -> asyncio.Future:
    fut = loop.create_future()
    fut.set_exception(exc)
    return fut


class _Batcher:
    """Coalesces same-keyed requests into one columnar bulk call.

    Requests accumulate for at most ``batch_window`` seconds (or until
    ``batch_max_bytes`` of payload are pending, whichever is first),
    then flush as a single conversion on the daemon's worker executor.
    A new batch opens the moment the old one is taken, so a slow
    conversion never blocks arrivals from forming the next batch.
    """

    def __init__(self, daemon: "ReproDaemon", op: int, fmt_name: str,
                 delimiter: bytes):
        self.daemon = daemon
        self.op = op
        self.fmt_name = fmt_name
        self.delimiter = delimiter
        self.pending: List[Tuple[bytes, asyncio.Future]] = []
        self.pending_bytes = 0
        self._wake = asyncio.Event()
        self._task: Optional[asyncio.Task] = None

    def add(self, payload: bytes, fut: asyncio.Future) -> None:
        self.pending.append((payload, fut))
        self.pending_bytes += len(payload)
        if self._task is None or self._task.done():
            self._task = asyncio.ensure_future(self._flush())
        if self.daemon._draining \
                or self.pending_bytes >= self.daemon.batch_max_bytes:
            # Draining: a request admitted before the drain flag was
            # set must not wait out the batch window (its flush task
            # may have been created after close()'s one-shot wake) —
            # flush now so drain accounting is deterministic: admitted
            # requests are always *served*, never dropped.
            self._wake.set()

    def wake(self) -> None:
        """Flush without waiting out the window (drain path)."""
        self._wake.set()

    async def _flush(self) -> None:
        window = self.daemon.batch_window
        if window > 0:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._wake.wait(), window)
        else:
            await asyncio.sleep(0)  # one loop turn: same-burst coalescing
        self._wake.clear()
        batch, self.pending = self.pending, []
        self.pending_bytes = 0
        # A fresh batch opens here: arrivals during the conversion
        # below schedule their own flush instead of hanging on this one.
        self._task = None
        if not batch:
            return
        daemon = self.daemon
        daemon._note_batch(len(batch))
        payloads = [p for p, _ in batch]
        try:
            results = await asyncio.get_running_loop().run_in_executor(
                daemon._workers, daemon._convert, self.op, self.fmt_name,
                self.delimiter, payloads)
        except BaseException as exc:  # executor died: fail the batch
            results = [exc] * len(batch)
        for (payload, fut), res in zip(batch, results):
            daemon._release(len(payload))
            if fut.cancelled():
                continue
            if isinstance(res, BaseException):
                if not isinstance(res, ReproError):
                    res = ReproError(f"internal conversion failure: "
                                     f"{res!r}")
                fut.set_exception(res)
            else:
                fut.set_result(res)


class ReproDaemon:
    """An asyncio front-end serving format/read byte planes with SLOs.

    Args:
        host / port: Listen address (``port=0`` picks a free port,
            published as :attr:`port` after :meth:`start`).
        jobs / kind: The per-key :class:`BulkPool` geometry —
            ``kind="thread"`` shares one engine (memo-hot traffic),
            ``"process"`` forks per-worker engines (exact-heavy
            traffic, and the ladder's top rung for chaos runs).
        batch_window: Seconds a micro-batch waits for company before
            flushing (0: coalesce only requests arriving in the same
            loop turn).
        batch_max_bytes: Pending payload bytes that flush a batch
            early.
        max_inflight_bytes / max_inflight_requests: The admission
            budget; past either, requests are rejected with
            :class:`ServeOverloadError`.
        max_frame: Largest accepted frame body; a length prefix past it
            is framing damage (typed response, connection closed).
        idle_timeout: Seconds a connection may sit idle (or hold a
            partial frame) before the daemon closes it; None disables.
        deadline / budget / retries / on_error: Passed to every
            :class:`BulkPool` — shard deadline, whole-batch budget,
            retry count and ladder behaviour (see
            :mod:`repro.serve.pool`).
        mode / tie: Reader assumption and tie strategy for formatting.
        drain_timeout: Seconds :meth:`close` waits for in-flight
            responses before tearing down anyway.
        snapshot: Optional warm-start source (path or
            :class:`repro.engine.snapshot.Snapshot`).  ``kind="thread"``
            warms the shared engine once at construction;
            ``kind="process"`` ships it to every lazily built
            :class:`BulkPool` so workers fork warm (shared-memory hot
            plane included).  A rejected snapshot counts
            ``snapshot_faults`` in :meth:`pool_stats` and serving
            starts cold — response bytes are identical either way.
        tiers: Optional ``(write_order, read_order)`` pair of engine
            lane orders (see :func:`repro.engine.split_tier_names`);
            every conversion engine the daemon builds — the shared
            thread-kind engine and every pool worker — routes through
            these lanes.  Response bytes are identical for every order.
        breaker_threshold: Consecutive infrastructure failures
            (``ShardError``/``PoolBrokenError``/deadline) that trip a
            per-pool circuit breaker (0: breakers disabled).  While
            open, requests for that pool shed immediately with
            :class:`ServeOverloadError`; after ``breaker_reset``
            seconds one canary probes, closing on success and
            re-opening with exponential backoff on failure.
        slo_target_ms: p99 latency target driving AIMD admission
            (None: static caps only).  The adaptive window can only
            shrink below ``max_inflight_bytes``, never grow past it.
        adaptive_tiers: Let the traffic observer pick the
            bench-arbitrated engine tier ordering for the observed
            corpus when building new pools (byte-identical by the
            contender gates; ignored when explicit ``tiers`` are
            given).
        rotate_snapshot / rotate_every: Rebuild the warm-start
            snapshot at ``rotate_snapshot`` from live hot keys after
            every ``rotate_every`` observed rows (0: disabled).  The
            save is atomic (temp + rename) and rotation only pre-seeds
            caches — output bytes never change.
        observe_stride: Sample every Nth request's corpus shape
            (0: observer off; forced to 1 when adaptation or rotation
            needs samples).
        hedge / hedge_min / hedge_under_faults: Hedged shard dispatch
            in every pool (see :class:`BulkPool`); ``hedge_under_faults``
            lets hedges race scripted fault plans (dedicated chaos
            legs only — determinism tests leave it off).
        clock: Injectable monotonic clock shared by the breakers
            (tests drive state machines without sleeping).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 jobs: int = 1, kind: str = "thread",
                 batch_window: float = 0.001,
                 batch_max_bytes: int = 1 << 20,
                 max_inflight_bytes: int = 16 << 20,
                 max_inflight_requests: int = 1024,
                 max_frame: int = protocol.MAX_FRAME,
                 idle_timeout: Optional[float] = None,
                 deadline: Optional[float] = None,
                 budget: Optional[float] = None,
                 retries: int = 2, on_error: str = "degrade",
                 mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                 tie: TieBreak = TieBreak.UP,
                 drain_timeout: float = 10.0, dedup: bool = True,
                 workers: int = 4, snapshot=None, tiers=None,
                 breaker_threshold: int = 0, breaker_reset: float = 1.0,
                 slo_target_ms: Optional[float] = None,
                 adaptive_tiers: bool = False,
                 rotate_snapshot=None, rotate_every: int = 0,
                 observe_stride: int = 16,
                 hedge: bool = False, hedge_min: float = 0.05,
                 hedge_under_faults: bool = False, clock=None):
        if kind not in ("process", "thread"):
            raise RangeError(f"kind must be 'process' or 'thread', "
                             f"got {kind!r}")
        for name, v in (("jobs", jobs), ("workers", workers)):
            if v < 1:
                raise RangeError(f"{name} must be >= 1, got {v}")
        if batch_window < 0 or drain_timeout < 0:
            raise RangeError("batch_window/drain_timeout must be >= 0")
        if breaker_threshold < 0 or rotate_every < 0 or observe_stride < 0:
            raise RangeError("breaker_threshold/rotate_every/"
                             "observe_stride must be >= 0")
        if slo_target_ms is not None and slo_target_ms <= 0:
            raise RangeError(
                f"slo_target_ms must be positive, got {slo_target_ms}")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.kind = kind
        self.batch_window = batch_window
        self.batch_max_bytes = batch_max_bytes
        self.max_inflight_bytes = max_inflight_bytes
        self.max_inflight_requests = max_inflight_requests
        self.max_frame = max_frame
        self.idle_timeout = idle_timeout
        self.deadline = deadline
        self.budget = budget
        self.retries = retries
        self.on_error = on_error
        self.mode = mode
        self.tie = tie
        self.dedup = dedup
        self.drain_timeout = drain_timeout
        self._inflight_requests = 0
        self._inflight_bytes = 0
        self._unwritten = 0
        self._draining = False
        self._closed = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conns: set = set()
        self._batchers: Dict[Tuple[int, str, bytes], _Batcher] = {}
        self._pools: Dict[Tuple[str, bytes], BulkPool] = {}
        self._pools_lock = threading.Lock()
        self._workers = concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self.snapshot = snapshot
        if tiers is not None:
            tiers = (tuple(tiers[0]), tuple(tiers[1]))
        self.tiers = tiers
        # --- control plane ------------------------------------------
        self.breaker_threshold = int(breaker_threshold)  # 0: disabled
        self.breaker_reset = float(breaker_reset)
        self._clock = clock  # injectable; breakers default to monotonic
        self._breakers: Dict[Tuple[str, bytes], CircuitBreaker] = {}
        self.slo_target_ms = slo_target_ms
        self._controller = None if slo_target_ms is None else \
            AdmissionController(target_p99_ms=slo_target_ms,
                                ceiling_bytes=max_inflight_bytes)
        self.adaptive_tiers = bool(adaptive_tiers)
        self.rotate_snapshot = rotate_snapshot
        self.rotate_every = int(rotate_every)
        self.observe_stride = int(observe_stride)
        if (adaptive_tiers or rotate_every) and not self.observe_stride:
            self.observe_stride = 1  # adaptation needs samples
        self._observer = TrafficObserver()
        self._rotating = False
        self.hedge = bool(hedge)
        self.hedge_min = float(hedge_min)
        self.hedge_under_faults = bool(hedge_under_faults)
        self._engine = None
        if kind == "thread":
            from repro.engine.engine import Engine

            # Warm once at construction: every thread pool shares this
            # engine, so the snapshot is applied exactly once here
            # rather than per (format, delimiter) pool.
            kwargs = ({} if tiers is None
                      else {"tier_order": tiers[0],
                            "read_tier_order": tiers[1]})
            self._engine = Engine(snapshot=snapshot, **kwargs)
        self._stats: Dict[str, int] = dict.fromkeys(SERVE_STAT_KEYS, 0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ReproDaemon":
        """Bind and start accepting; publishes the chosen :attr:`port`."""
        if self._server is not None:
            return self
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled; drains gracefully on the way out."""
        await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.close()

    async def close(self) -> None:
        """Graceful drain: stop accepting, flush micro-batches, wait
        for in-flight responses (bounded by ``drain_timeout``), then
        tear down pools and executors.  Idempotent — any number of
        calls, from the serve loop's finally or directly."""
        if self._closed:
            return
        self._draining = True
        self._stats["drains"] += 1
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        for batcher in list(self._batchers.values()):
            batcher.wake()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        # Wait for every accepted response to be *written*, not merely
        # converted — a drained daemon owes the wire nothing.  Batchers
        # are re-woken each turn: a flush task created between the
        # one-shot wake above and the drain flag landing would
        # otherwise sleep out its whole window (or forever at
        # batch_window=0 with nothing to coalesce against).
        while (self._inflight_requests > 0 or self._unwritten > 0) \
                and loop.time() < deadline:
            for batcher in list(self._batchers.values()):
                batcher.wake()
            await asyncio.sleep(0.005)
        self._closed = True
        for writer in list(self._conns):
            with contextlib.suppress(Exception):
                writer.close()
        with self._pools_lock:
            pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            await loop.run_in_executor(None, pool.close)
        self._workers.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._stats["connections"] += 1
        self._conns.add(writer)
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        pump = asyncio.ensure_future(self._pump(queue, writer))
        try:
            while True:
                try:
                    frame = protocol.read_frame(reader, self.max_frame)
                    if self.idle_timeout is not None:
                        body = await asyncio.wait_for(frame,
                                                      self.idle_timeout)
                    else:
                        body = await frame
                except ProtocolError as exc:
                    # Bad length prefix: respond, then close — the
                    # stream is no longer framed.
                    self._stats["protocol_errors"] += 1
                    self._unwritten += 1
                    await queue.put(_failed(exc, loop))
                    break
                except (asyncio.IncompleteReadError, ConnectionError,
                        asyncio.TimeoutError):
                    break  # mid-frame disconnect or idle cutoff
                if body is None:
                    break  # clean EOF
                self._stats["bytes_in"] += len(body) + 4
                try:
                    req = protocol.parse_request(body)
                except ProtocolError as exc:
                    self._stats["protocol_errors"] += 1
                    self._unwritten += 1
                    await queue.put(_failed(exc, loop))
                    if exc.recoverable:
                        continue  # frame fully consumed; stream intact
                    break
                self._unwritten += 1
                await queue.put(self._admit(req, loop))
        finally:
            await queue.put(None)
            with contextlib.suppress(Exception):
                await pump
            self._conns.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _pump(self, queue: asyncio.Queue,
                    writer: asyncio.StreamWriter) -> None:
        """Write responses in request order; one pump per connection.

        Pipelined requests resolve concurrently (they may share a
        micro-batch), but the wire contract is strict FIFO.  A client
        that disconnects early stops receiving, never the accounting —
        remaining futures are still awaited so in-flight counters
        drain.
        """
        alive = True
        while True:
            fut = await queue.get()
            if fut is None:
                return
            try:
                payload = await fut
            except ReproError as exc:
                data = protocol.encode_error(exc)
                self._stats["error_responses"] += 1
            except Exception as exc:  # pragma: no cover - defensive
                data = protocol.encode_error(
                    ReproError(f"internal error: {exc!r}"))
                self._stats["error_responses"] += 1
            else:
                data = protocol.encode_response(payload)
            try:
                if not alive:
                    continue
                try:
                    writer.write(data)
                    await writer.drain()
                    self._stats["responses"] += 1
                    self._stats["bytes_out"] += len(data)
                except (ConnectionError, RuntimeError, OSError):
                    alive = False
            finally:
                self._unwritten -= 1

    # ------------------------------------------------------------------
    # Admission control and batching
    # ------------------------------------------------------------------

    def _admit(self, req: protocol.Request,
               loop: asyncio.AbstractEventLoop) -> asyncio.Future:
        """The admission decision: a future that resolves to the
        response payload, already rejected when over budget."""
        self._stats["requests"] += 1
        if req.op == OP_PING:
            self._stats["pings"] += 1
            fut = loop.create_future()
            fut.set_result(b"")
            return fut
        if req.op == OP_HEALTH:
            # Introspection bypasses admission: HEALTH must answer
            # exactly when the daemon is shedding everything else.
            self._stats["health_requests"] += 1
            fut = loop.create_future()
            try:
                fut.set_result(
                    json.dumps(self.health(), sort_keys=True,
                               default=str).encode("utf-8"))
            except Exception as exc:  # pragma: no cover - defensive
                fut.set_exception(
                    ReproError(f"health summary failed: {exc!r}"))
            return fut
        if self._draining or self._closed:
            self._stats["overloads"] += 1
            return _failed(ServeOverloadError(
                "daemon is draining; connect elsewhere"), loop)
        brk = None
        canary = False
        if self.breaker_threshold > 0:
            brk = self._breaker_for((req.fmt_name, req.delimiter))
            decision = brk.admit()
            if decision == SHED:
                # The pool behind this key is (believed) broken: shed
                # immediately instead of queueing into it.
                self._stats["overloads"] += 1
                return _failed(brk.shed_error(req.fmt_name), loop)
            canary = decision == CANARY
        if self._inflight_requests >= self.max_inflight_requests:
            self._stats["overloads"] += 1
            return _failed(ServeOverloadError(
                f"{self._inflight_requests} requests in flight "
                f"(limit {self.max_inflight_requests}); back off"), loop)
        if self._inflight_bytes + len(req.payload) \
                > self.max_inflight_bytes:
            self._stats["overloads"] += 1
            return _failed(ServeOverloadError(
                f"request of {len(req.payload)} bytes exceeds the "
                f"in-flight byte budget ({self._inflight_bytes}/"
                f"{self.max_inflight_bytes} used); back off"), loop)
        if self._controller is not None \
                and self._inflight_bytes + len(req.payload) \
                > self._controller.limit_bytes:
            # The AIMD window has shrunk below the static cap: latency
            # is past the SLO target, so shed early rather than queue.
            self._stats["overloads"] += 1
            self._stats["admission_sheds"] += 1
            return _failed(self._controller.shed_error(
                self._inflight_bytes, len(req.payload)), loop)
        if req.op == OP_FORMAT:
            try:
                itemsize = _itemsize(req.fmt)
            except DecodeError as exc:
                return _failed(exc, loop)
            if len(req.payload) % itemsize:
                return _failed(DecodeError(
                    f"format payload of {len(req.payload)} bytes is not "
                    f"a multiple of the {itemsize}-byte {req.fmt_name} "
                    f"encoding"), loop)
            self._stats["format_requests"] += 1
        else:
            self._stats["read_requests"] += 1
        if self.observe_stride and (self._stats["requests"]
                                    % self.observe_stride == 0):
            self._observe(req)
        self._inflight_requests += 1
        self._inflight_bytes += len(req.payload)
        fut = loop.create_future()
        key = (req.op, req.fmt_name, req.delimiter)
        batcher = self._batchers.get(key)
        if batcher is None:
            batcher = self._batchers[key] = _Batcher(
                self, req.op, req.fmt_name, req.delimiter)
        batcher.add(req.payload, fut)
        if brk is not None or self._controller is not None:
            t0 = loop.time()
            fut.add_done_callback(
                lambda f, brk=brk, canary=canary, t0=t0:
                self._settle(f, brk, canary, t0, loop))
        return fut

    def _breaker_for(self, key: Tuple[str, bytes]) -> CircuitBreaker:
        brk = self._breakers.get(key)
        if brk is None:
            kwargs = {} if self._clock is None else {"clock": self._clock}
            brk = self._breakers[key] = CircuitBreaker(
                threshold=self.breaker_threshold,
                reset_timeout=self.breaker_reset, **kwargs)
        return brk

    def _settle(self, fut: asyncio.Future, brk: Optional[CircuitBreaker],
                canary: bool, t0: float,
                loop: asyncio.AbstractEventLoop) -> None:
        """Outcome bookkeeping for one admitted request: feed the
        latency reservoir and the breaker state machine.  Data errors
        (bad literals, misaligned payloads) are the request's fault and
        count as successes; only infrastructure failures open a
        breaker."""
        if fut.cancelled():
            if brk is not None and canary:
                brk.record(False, canary=True)
            return
        exc = fut.exception()
        if self._controller is not None:
            self._controller.observe(loop.time() - t0)
        if brk is not None:
            brk.record(not CircuitBreaker.is_failure(exc), canary=canary)

    def _observe(self, req: protocol.Request) -> None:
        """Sample corpus shape; trigger a snapshot rotation when due."""
        try:
            if req.op == OP_FORMAT:
                self._observer.observe_format(req.fmt_name, req.fmt,
                                              req.payload)
            else:
                self._observer.observe_read(req.payload, req.delimiter)
        except Exception:  # pragma: no cover - sampling is best-effort
            return
        if (self.rotate_every and self.rotate_snapshot is not None
                and not self._rotating and not self._draining
                and self._observer.rows_since_rotation
                >= self.rotate_every):
            self._rotating = True
            self._workers.submit(self._rotate_now)

    def _rotate_now(self) -> None:
        """Rebuild the warm-start snapshot from live hot keys (worker
        thread).  Rotation may only skip work, never change bytes: the
        snapshot pre-seeds caches whose entries the verify battery
        byte-compares against cold computation, and the save is the
        torn-write-safe ``save_snapshot`` (temp file + rename)."""
        try:
            from repro.engine.snapshot import (build_snapshot, hot_entries,
                                               save_snapshot)

            values = self._observer.hot_values()
            formats = self._observer.observed_formats() or ["binary64"]
            hot = hot_entries(values, engine=self._engine, mode=self.mode,
                              tie=self.tie) if values else []
            snap = build_snapshot(formats=formats, engine=self._engine,
                                  hot=hot,
                                  meta={"source": "live-rotation",
                                        "requests":
                                        self._observer.requests})
            save_snapshot(snap, self.rotate_snapshot)
            # Pools and engines built from here on warm from the
            # rotated file; existing ones keep their caches (a cache
            # can only be warmer, never different).
            self.snapshot = self.rotate_snapshot
            self._stats["snapshot_rotations"] += 1
        except Exception:  # pragma: no cover - rotation is best-effort
            pass
        finally:
            self._observer.rotation_done()
            self._rotating = False

    def health(self) -> dict:
        """Breaker states + controller window + observer summary — the
        payload of the ``HEALTH`` opcode, JSON-serializable."""
        breakers = {}
        for (fmt_name, delim), brk in list(self._breakers.items()):
            label = f"{fmt_name}:{delim.decode('ascii', 'replace')!r}"
            breakers[label] = brk.snapshot()
        return {
            "breakers": breakers,
            "admission": None if self._controller is None
            else self._controller.snapshot(),
            "observer": self._observer.summary(),
            "inflight": {"requests": self._inflight_requests,
                         "bytes": self._inflight_bytes},
            "draining": self._draining,
            "stats": self.stats(),
        }

    def _release(self, payload_bytes: int) -> None:
        self._inflight_requests -= 1
        self._inflight_bytes -= payload_bytes

    def _note_batch(self, size: int) -> None:
        self._stats["batches"] += 1
        self._stats["batched_requests"] += size
        if size > self._stats["max_batch"]:
            self._stats["max_batch"] = size

    # ------------------------------------------------------------------
    # Conversion (worker-executor side)
    # ------------------------------------------------------------------

    def _pool_for(self, fmt_name: str, delimiter: bytes) -> BulkPool:
        key = (fmt_name, delimiter)
        with self._pools_lock:
            pool = self._pools.get(key)
            if pool is None:
                tiers = self.tiers
                engine = self._engine
                if self.adaptive_tiers and self.tiers is None:
                    # Bench-arbitrated ordering for the observed corpus
                    # (docs/contenders.md).  Every ordering is
                    # byte-identical, so adaptation only skips work.
                    tiers = self._observer.tier_orders()
                    if self.kind == "thread":
                        from repro.engine.engine import Engine

                        engine = Engine(snapshot=self.snapshot,
                                        tier_order=tiers[0],
                                        read_tier_order=tiers[1])
                pool = self._pools[key] = BulkPool(
                    jobs=self.jobs, kind=self.kind,
                    fmt=STANDARD_FORMATS[fmt_name], mode=self.mode,
                    tie=self.tie, dedup=self.dedup, delimiter=delimiter,
                    engine=engine, deadline=self.deadline,
                    budget=self.budget, retries=self.retries,
                    on_error=self.on_error,
                    snapshot=(self.snapshot if self.kind == "process"
                              else None),
                    tiers=tiers, hedge=self.hedge,
                    hedge_min=self.hedge_min,
                    hedge_with_faults=self.hedge_under_faults)
            return pool

    def _convert(self, op: int, fmt_name: str, delimiter: bytes,
                 payloads: List[bytes]) -> List[object]:
        """One combined bulk call for a whole micro-batch; per-request
        results (bytes) or typed errors, in batch order.

        Runs on the worker executor.  When the combined call raises a
        :class:`ReproError` (one request's data poisons the batch —
        e.g. a garbage literal), falls back to per-request conversion
        so the error lands only on the request that earned it.
        """
        pool = self._pool_for(fmt_name, delimiter)
        one = (self._format_one if op == OP_FORMAT else self._read_one)
        if len(payloads) == 1:
            try:
                return [one(pool, payloads[0])]
            except ReproError as exc:
                return [exc]
        combined = (self._format_combined if op == OP_FORMAT
                    else self._read_combined)
        try:
            return combined(pool, payloads)
        except ReproError:
            self._stats["batch_fallbacks"] += 1
            out: List[object] = []
            for p in payloads:
                try:
                    out.append(one(pool, p))
                except ReproError as exc:
                    out.append(exc)
            return out

    @staticmethod
    def _format_one(pool: BulkPool, payload: bytes) -> bytes:
        return pool.format_bulk(payload)

    @staticmethod
    def _read_one(pool: BulkPool, payload: bytes) -> bytes:
        return pack_bits(pool.read_bulk(payload), pool.fmt)

    def _format_combined(self, pool: BulkPool,
                         payloads: List[bytes]) -> List[bytes]:
        itemsize = _itemsize(pool.fmt)
        counts = [len(p) // itemsize for p in payloads]
        plane = pool.format_bulk(b"".join(payloads))
        _, starts, _ = split_plane(plane, pool.delimiter)
        out: List[bytes] = []
        idx = 0
        for c in counts:
            if c == 0:
                out.append(b"")
                continue
            end = starts[idx + c] if idx + c < len(starts) else len(plane)
            out.append(plane[starts[idx]:end])
            idx += c
        return out

    def _read_combined(self, pool: BulkPool,
                       payloads: List[bytes]) -> List[bytes]:
        delim = pool.delimiter
        counts: List[int] = []
        segments: List[bytes] = []
        for p in payloads:
            _, starts, _ = split_plane(p, delim)
            counts.append(len(starts))
            # Terminate an unterminated tail so request boundaries
            # survive concatenation (an unterminated trailing token is
            # one row either way).
            if p and not p.endswith(delim):
                p = p + delim
            segments.append(p)
        bits = pool.read_bulk(b"".join(segments))
        out: List[bytes] = []
        idx = 0
        for c in counts:
            out.append(pack_bits(bits[idx:idx + c], pool.fmt))
            idx += c
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> Tuple[int, int]:
        """(requests, payload bytes) currently admitted."""
        return self._inflight_requests, self._inflight_bytes

    def stats(self) -> Dict[str, int]:
        """Serving counters (:data:`SERVE_STAT_KEYS`), always complete.

        Control-plane counters are folded live: breaker transitions
        from every breaker, AIMD adjustments from the controller,
        sampled requests from the observer — so every shed, trip,
        close and rotation is accounted here.
        """
        out = dict(self._stats)
        for brk in list(self._breakers.values()):
            snap = brk.snapshot()
            out["breaker_trips"] += snap["trips"]
            out["breaker_sheds"] += snap["sheds"]
            out["breaker_closes"] += snap["closes"]
            out["breaker_reopens"] += snap["reopens"]
            out["breaker_canaries"] += snap["canaries"]
        if self._controller is not None:
            out["admission_increases"] += self._controller.increases
            out["admission_decreases"] += self._controller.decreases
        out["observed_requests"] += self._observer.requests
        return out

    def pool_stats(self) -> Dict[str, int]:
        """Engine + recovery counters summed across every live pool."""
        out: Dict[str, int] = {}
        with self._pools_lock:
            pools = list(self._pools.values())
        for pool in pools:
            for k, v in pool.stats().items():
                if isinstance(v, dict):
                    # Derived ratios (``bail_rate``) don't sum; consumers
                    # recompute them from the merged counters.
                    continue
                out[k] = out.get(k, 0) + v
        return out


# ----------------------------------------------------------------------
# Synchronous harness: run the daemon on a background loop thread
# ----------------------------------------------------------------------

@contextlib.contextmanager
def serving(**kwargs):
    """Run a :class:`ReproDaemon` on a background event-loop thread.

    Yields the started daemon (``daemon.host``/``daemon.port`` are
    live); drains and tears the loop down on exit.  The harness tests,
    the ``--serve`` verify battery and ``tools/bench_serve.py`` all
    serve through this.
    """
    daemon = ReproDaemon(**kwargs)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever,
                              name="repro-serve-loop", daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(
            daemon.start(), loop).result(timeout=30)
        yield daemon
    finally:
        with contextlib.suppress(Exception):
            asyncio.run_coroutine_threadsafe(
                daemon.close(), loop).result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        with contextlib.suppress(Exception):
            loop.close()


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.serve`` / ``repro-print --serve``: run the
    daemon until interrupted, draining gracefully on the way out."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve format/read byte planes over the framed "
                    "protocol (see docs/serving.md).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0: pick a free one, printed "
                             "on startup)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="BulkPool workers per (format, delimiter)")
    parser.add_argument("--kind", default="thread",
                        choices=["thread", "process"],
                        help="worker pool kind (see docs/robustness.md)")
    parser.add_argument("--batch-window", type=float, default=0.001,
                        metavar="SECONDS",
                        help="micro-batch coalescing window")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS", help="per-shard deadline")
    parser.add_argument("--budget", type=float, default=None,
                        metavar="SECONDS",
                        help="whole-batch conversion budget")
    parser.add_argument("--max-inflight-mb", type=float, default=16.0,
                        help="admission budget: in-flight payload MiB")
    parser.add_argument("--max-inflight-requests", type=int,
                        default=1024,
                        help="admission budget: in-flight requests")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="warm-start snapshot (built by "
                             "tools/warm_snapshot.py); a rejected file "
                             "degrades to a cold start")
    parser.add_argument("--tiers", default=None, metavar="LANES",
                        help="comma-separated engine lane order (write "
                             "lanes tier0/grisu3/schubfach, read lanes "
                             "tier0/window/lemire); response bytes are "
                             "identical for every order")
    parser.add_argument("--breaker-threshold", type=int, default=0,
                        metavar="N",
                        help="consecutive pool failures that trip a "
                             "circuit breaker (0: disabled)")
    parser.add_argument("--breaker-reset", type=float, default=1.0,
                        metavar="SECONDS",
                        help="open-state backoff before the half-open "
                             "canary probe")
    parser.add_argument("--slo-target-ms", type=float, default=None,
                        metavar="MS",
                        help="p99 target for AIMD adaptive admission "
                             "(unset: static caps only)")
    parser.add_argument("--adaptive-tiers", action="store_true",
                        help="select the bench-arbitrated engine tier "
                             "ordering for the observed corpus "
                             "(byte-identical)")
    parser.add_argument("--rotate-snapshot", default=None, metavar="PATH",
                        help="rebuild the warm-start snapshot here from "
                             "live hot keys")
    parser.add_argument("--rotate-every", type=int, default=0,
                        metavar="ROWS",
                        help="observed rows between snapshot rotations "
                             "(0: disabled)")
    parser.add_argument("--observe-stride", type=int, default=16,
                        metavar="N",
                        help="sample every Nth request's corpus shape "
                             "(0: observer off)")
    parser.add_argument("--hedge", action="store_true",
                        help="hedge straggling shards onto a spare "
                             "worker (first CRC-valid answer wins)")
    args = parser.parse_args(argv)

    tiers = None
    if args.tiers is not None:
        from repro.engine import split_tier_names

        try:
            tiers = split_tier_names(args.tiers.split(","))
        except ReproError as exc:
            parser.error(str(exc))

    daemon = ReproDaemon(
        host=args.host, port=args.port, jobs=args.jobs, kind=args.kind,
        batch_window=args.batch_window, deadline=args.deadline,
        budget=args.budget,
        max_inflight_bytes=int(args.max_inflight_mb * (1 << 20)),
        max_inflight_requests=args.max_inflight_requests,
        snapshot=args.snapshot, tiers=tiers,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        slo_target_ms=args.slo_target_ms,
        adaptive_tiers=args.adaptive_tiers,
        rotate_snapshot=args.rotate_snapshot,
        rotate_every=args.rotate_every,
        observe_stride=args.observe_stride, hedge=args.hedge)

    async def _run() -> None:
        await daemon.start()
        print(f"repro-serve listening on {daemon.host}:{daemon.port}",
              flush=True)
        try:
            await daemon._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await daemon.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0
