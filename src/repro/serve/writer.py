"""A reusable delimiter-terminated byte buffer for bulk emission.

Serving loops format the same columns over and over; reusing one
``bytearray`` across batches avoids re-growing the buffer each time
(``clear()`` keeps the allocation).  Rows are ASCII — everything the
engines emit is — and every row is *terminated* (not separated) by the
delimiter, so concatenating shard payloads is associative, which is
what lets :class:`repro.serve.BulkPool` merge worker output with a
plain join.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.errors import RangeError

__all__ = ["DelimitedWriter"]


class DelimitedWriter:
    """Accumulate delimiter-terminated ASCII rows in one buffer.

    Args:
        delimiter: Row terminator (``bytes`` or ``str``), non-empty.
            The default ``b"\\n"`` gives JSON-lines/CSV-column shaped
            output.
    """

    __slots__ = ("_buf", "_delim", "_delim_str")

    def __init__(self, delimiter: Union[bytes, str] = b"\n"):
        if isinstance(delimiter, str):
            delim = delimiter.encode("ascii")
        else:
            delim = bytes(delimiter)
        if not delim:
            raise RangeError("delimiter must be non-empty")
        self._delim = delim
        self._delim_str = delim.decode("ascii")
        self._buf = bytearray()

    @property
    def delimiter(self) -> bytes:
        return self._delim

    def write(self, text: str) -> "DelimitedWriter":
        """Append one row (terminated)."""
        self._buf += text.encode("ascii")
        self._buf += self._delim
        return self

    def extend(self, texts: Iterable[str]) -> "DelimitedWriter":
        """Append many rows: one join + one buffer append for the batch.

        The whole batch costs one ``str.join``, one ``encode`` and two
        ``bytearray`` appends — never a per-item :meth:`write` call, and
        never a ``joined + delim`` concatenation (which would copy the
        entire payload once more just to add the final terminator).
        Micro-benchmark (50k rows of shortest binary64 output, best of
        5): per-item ``write`` 6.4ms, join with the ``+ delim``
        concatenation 1.8ms, this form 1.5ms — the join is the ~4x
        lever, skipping the full-payload copy another ~15%.
        """
        if not isinstance(texts, (list, tuple)):
            texts = list(texts)
        if texts:
            self._buf += self._delim_str.join(texts).encode("ascii")
            self._buf += self._delim
        return self

    def write_bytes(self, payload: bytes) -> "DelimitedWriter":
        """Append an already-terminated payload (e.g. a shard's output)."""
        self._buf += payload
        return self

    def getvalue(self) -> bytes:
        """The accumulated payload as immutable bytes (a copy)."""
        return bytes(self._buf)

    def view(self) -> memoryview:
        """Zero-copy view of the buffer — invalidated by further writes."""
        return memoryview(self._buf)

    def clear(self) -> "DelimitedWriter":
        """Drop the contents, keep the allocation."""
        self._buf.clear()
        return self

    def __len__(self) -> int:
        return len(self._buf)

    def __bytes__(self) -> bytes:
        return bytes(self._buf)
