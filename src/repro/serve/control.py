"""Self-healing control plane for the serving daemon.

Three cooperating pieces, all deterministic and clock-injectable so the
state machines are testable without sleeping:

``CircuitBreaker``
    One per daemon pool key.  Counts *consecutive* infrastructure
    failures (``ShardError`` / ``PoolBrokenError`` /
    ``DeadlineExceededError`` — data errors such as ``DecodeError`` are
    successes from the breaker's point of view) and trips
    closed → open after ``threshold`` of them.  While open every
    request is shed immediately with a typed
    :class:`~repro.errors.ServeOverloadError` instead of queueing into
    a broken pool.  After ``reset_timeout`` the breaker admits exactly
    one canary request (half-open); the canary's outcome decides
    between closing (healthy again, backoff reset) and re-opening with
    exponential backoff.  Concurrent requests during half-open are
    shed, never queued behind the canary.

``AdmissionController``
    AIMD on the admitted-inflight-bytes window.  A rolling latency
    reservoir yields a p99 estimate; every ``adjust_every`` completed
    requests the byte limit is halved (multiplicative decrease, with a
    floor) when p99 exceeds the SLO target and grown by one additive
    step (with a ceiling) otherwise.  The daemon's static caps remain
    hard ceilings — the controller can only shrink the window below
    them, so overload sheds early instead of queueing into SLO
    violation.

``TrafficObserver``
    Samples request corpus shape on the admission path: bit-pattern
    duplication factor, specials fraction, digit-length histogram for
    read planes.  Two consumers: (a) tier-ordering selection — the
    observed corpus class maps to the bench-arbitrated winner from the
    contender races (see ``docs/contenders.md``); (b) live snapshot
    rotation — the hottest observed bit patterns are rebuilt into a
    warm-start snapshot via :mod:`repro.engine.snapshot`'s torn-write
    safe save.  Both consumers may only *skip work, never change
    bytes*: every tier ordering is byte-identical by the contender
    gates, and a rotated snapshot only pre-seeds caches.

Everything here is pure bookkeeping — no I/O, no threads of its own —
so the daemon stays the single owner of sockets and executors.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import (DeadlineExceededError, PoolBrokenError,
                          ServeOverloadError, ShardError)

__all__ = [
    "CircuitBreaker", "AdmissionController", "TrafficObserver",
    "BREAKER_FAILURES", "CLOSED", "OPEN", "HALF_OPEN",
    "ADMIT", "SHED", "CANARY",
]

#: Exception types that count as infrastructure failures for breakers.
#: Data errors (DecodeError, ParseError, ...) are the *request's* fault
#: and must never open a breaker.
BREAKER_FAILURES = (ShardError, PoolBrokenError, DeadlineExceededError)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: ``CircuitBreaker.admit()`` decisions.
ADMIT = "admit"
SHED = "shed"
CANARY = "canary"


class CircuitBreaker:
    """Closed → open → half-open circuit breaker with injectable clock.

    All transitions happen inside ``admit``/``record`` under a lock;
    there are no timers — the open → half-open edge is evaluated
    lazily against ``clock()`` when the next request arrives, which
    makes the whole machine deterministic under a fake clock.
    """

    def __init__(self, *, threshold: int = 5, reset_timeout: float = 1.0,
                 backoff_factor: float = 2.0,
                 max_reset_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("breaker reset_timeout must be > 0")
        self.threshold = int(threshold)
        self.reset_timeout = float(reset_timeout)
        self.backoff_factor = float(backoff_factor)
        self.max_reset_timeout = float(max_reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive = 0
        self._open_until = 0.0
        self._timeout = self.reset_timeout  # current (backed-off) timeout
        self._canary_inflight = False
        self.trips = 0      # closed -> open
        self.reopens = 0    # half-open canary failed -> open again
        self.closes = 0     # half-open canary succeeded -> closed
        self.sheds = 0      # requests rejected while open/half-open
        self.canaries = 0   # probe requests admitted in half-open

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def admit(self) -> str:
        """Decide one request: ``ADMIT``, ``SHED`` or ``CANARY``.

        A ``CANARY`` admission must be answered by ``record(ok,
        canary=True)`` — it is the single probe the half-open state
        allows; everything else arriving before its verdict is shed.
        """
        with self._lock:
            if self._state == CLOSED:
                return ADMIT
            if self._state == OPEN and self._clock() >= self._open_until:
                self._state = HALF_OPEN
                self._canary_inflight = True
                self.canaries += 1
                return CANARY
            # Open (timer still running) or half-open with the canary
            # outstanding: shed, never queue.
            self.sheds += 1
            return SHED

    def record(self, ok: bool, *, canary: bool = False) -> None:
        """Report the outcome of an admitted request."""
        with self._lock:
            if canary:
                self._canary_inflight = False
                if ok:
                    self._state = CLOSED
                    self._consecutive = 0
                    self._timeout = self.reset_timeout  # backoff resets
                    self.closes += 1
                else:
                    # Full (exponential) backoff: the next probe waits
                    # the whole doubled window, not the remainder.
                    self._timeout = min(self._timeout * self.backoff_factor,
                                        self.max_reset_timeout)
                    self._state = OPEN
                    self._open_until = self._clock() + self._timeout
                    self.reopens += 1
                return
            if self._state != CLOSED:
                # A request admitted before the trip finishing late;
                # its outcome must not perturb the open/half-open
                # machine (the canary alone decides).
                return
            if ok:
                self._consecutive = 0
                return
            self._consecutive += 1
            if self._consecutive >= self.threshold:
                self._state = OPEN
                self._open_until = self._clock() + self._timeout
                self._consecutive = 0
                self.trips += 1

    @staticmethod
    def is_failure(exc: Optional[BaseException]) -> bool:
        """Does this outcome count against the breaker?"""
        return isinstance(exc, BREAKER_FAILURES)

    def shed_error(self, key: str = "") -> ServeOverloadError:
        suffix = f" for {key}" if key else ""
        return ServeOverloadError(
            f"circuit breaker open{suffix}; retry after backoff")

    def snapshot(self) -> dict:
        """State + counters for the HEALTH opcode."""
        with self._lock:
            now = self._clock()
            retry_in = max(0.0, self._open_until - now) \
                if self._state == OPEN else 0.0
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive,
                "threshold": self.threshold,
                "reset_timeout": self._timeout,
                "retry_in": retry_in,
                "trips": self.trips,
                "reopens": self.reopens,
                "closes": self.closes,
                "sheds": self.sheds,
                "canaries": self.canaries,
            }


def _p99(samples: List[float]) -> float:
    """Nearest-rank p99 of a non-empty sample list (milliseconds in,
    milliseconds out)."""
    xs = sorted(samples)
    k = max(0, min(len(xs) - 1, int(round(0.99 * (len(xs) - 1)))))
    return xs[k]


class AdmissionController:
    """AIMD controller over the admitted-inflight-bytes window.

    ``observe(latency_s)`` feeds one completed request.  Every
    ``adjust_every`` observations the rolling p99 is compared against
    ``target_p99_ms``: above → multiplicative decrease (×``decrease``,
    floored at ``floor_bytes``); at/below → additive increase
    (+``step_bytes``, capped at ``ceiling_bytes``).  The daemon applies
    ``limit_bytes`` *in addition to* its static byte cap, so the
    controller can only tighten admission, never loosen past the
    configured ceilings.
    """

    def __init__(self, *, target_p99_ms: float,
                 ceiling_bytes: int = 16 << 20,
                 floor_bytes: int = 64 << 10,
                 step_bytes: int = 256 << 10,
                 decrease: float = 0.5,
                 window: int = 512,
                 adjust_every: int = 32) -> None:
        if target_p99_ms <= 0:
            raise ValueError("target_p99_ms must be > 0")
        if not 0 < decrease < 1:
            raise ValueError("decrease must be in (0, 1)")
        if floor_bytes < 1 or floor_bytes > ceiling_bytes:
            raise ValueError("need 1 <= floor_bytes <= ceiling_bytes")
        self.target_p99_ms = float(target_p99_ms)
        self.ceiling_bytes = int(ceiling_bytes)
        self.floor_bytes = int(floor_bytes)
        self.step_bytes = int(step_bytes)
        self.decrease = float(decrease)
        self.window = int(window)
        self.adjust_every = int(adjust_every)
        self._lock = threading.Lock()
        self._samples: List[float] = []  # ring buffer of latency ms
        self._next = 0
        self._since_adjust = 0
        self.limit_bytes = self.ceiling_bytes
        self.increases = 0
        self.decreases = 0
        self.observed = 0

    def observe(self, latency_s: float) -> None:
        """Feed one completed request's wall latency (seconds)."""
        ms = latency_s * 1e3
        with self._lock:
            self.observed += 1
            if len(self._samples) < self.window:
                self._samples.append(ms)
            else:
                self._samples[self._next] = ms
                self._next = (self._next + 1) % self.window
            self._since_adjust += 1
            if self._since_adjust < self.adjust_every:
                return
            self._since_adjust = 0
            p99 = _p99(self._samples)
            if p99 > self.target_p99_ms:
                shrunk = max(self.floor_bytes,
                             int(self.limit_bytes * self.decrease))
                if shrunk < self.limit_bytes:
                    self.limit_bytes = shrunk
                    self.decreases += 1
            else:
                grown = min(self.ceiling_bytes,
                            self.limit_bytes + self.step_bytes)
                if grown > self.limit_bytes:
                    self.limit_bytes = grown
                    self.increases += 1

    def p99_ms(self) -> Optional[float]:
        with self._lock:
            return _p99(self._samples) if self._samples else None

    def shed_error(self, inflight: int, want: int) -> ServeOverloadError:
        return ServeOverloadError(
            f"admission window full: {inflight} inflight + {want} "
            f"requested > adaptive limit {self.limit_bytes} bytes")

    def snapshot(self) -> dict:
        with self._lock:
            p99 = _p99(self._samples) if self._samples else None
            return {
                "limit_bytes": self.limit_bytes,
                "floor_bytes": self.floor_bytes,
                "ceiling_bytes": self.ceiling_bytes,
                "target_p99_ms": self.target_p99_ms,
                "p99_ms": p99,
                "samples": len(self._samples),
                "observed": self.observed,
                "increases": self.increases,
                "decreases": self.decreases,
            }


# Bench-arbitrated per-corpus winners from the contender races (PR 9,
# ``BENCH_engine.json`` ``contenders`` section / docs/contenders.md).
# Every ordering is byte-identical by the contender gates, so selection
# is purely a latency decision.
_WRITE_ORDER_BY_CORPUS: Dict[str, Tuple[str, ...]] = {
    "flat": ("schubfach",),             # schubfach_only wins flat
    "zipf": ("tier0", "grisu3"),        # grisu3_first wins dup-heavy
    "specials": ("tier0", "schubfach"),  # schubfach_first wins specials
}
#: lemire_only won the certified-read race; tier0 stays in front on
#: dup-heavy corpora where the memo hit rate pays for the probe.
_READ_ORDER_BY_CORPUS: Dict[str, Tuple[str, ...]] = {
    "flat": ("lemire",),
    "zipf": ("tier0", "lemire"),
    "specials": ("tier0", "lemire"),
}


class TrafficObserver:
    """Samples corpus shape from the admission path.

    ``observe`` is called with raw request payloads and must stay
    cheap: it decodes at most ``sample_rows`` items per request and
    keeps a bounded counter of bit patterns.  All state is
    lock-protected — the daemon observes on the event loop and rotates
    snapshots on a worker thread.
    """

    def __init__(self, *, sample_rows: int = 128, max_keys: int = 8192,
                 zipf_dup_factor: float = 3.0,
                 specials_fraction: float = 0.02,
                 min_rows: int = 256) -> None:
        self.sample_rows = int(sample_rows)
        self.max_keys = int(max_keys)
        self.zipf_dup_factor = float(zipf_dup_factor)
        self.specials_fraction = float(specials_fraction)
        self.min_rows = int(min_rows)
        self._lock = threading.Lock()
        self._counts: Dict[str, Dict[int, int]] = {}  # fmt -> bits -> n
        self._rows = 0
        self._specials = 0
        self._digit_hist: Dict[int, int] = {}  # read token length -> n
        self.requests = 0
        self._rows_since_rotation = 0

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def observe_format(self, fmt_name: str, fmt, payload: bytes) -> None:
        """Sample a format request's packed-bits payload."""
        from repro.engine.bulk import _itemsize

        itemsize = _itemsize(fmt)
        n = len(payload) // itemsize if itemsize else 0
        if not n:
            return
        take = min(n, self.sample_rows)
        mant_bits = fmt.mantissa_field_width
        exp_mask = fmt.max_biased_exponent
        with self._lock:
            counts = self._counts.setdefault(fmt_name, {})
            for i in range(take):
                bits = int.from_bytes(
                    payload[i * itemsize:(i + 1) * itemsize], "little")
                self._rows += 1
                if (bits >> mant_bits) & exp_mask == exp_mask:
                    self._specials += 1  # inf or nan
                if bits in counts:
                    counts[bits] += 1
                elif len(counts) < self.max_keys:
                    counts[bits] = 1
            self.requests += 1
            self._rows_since_rotation += take

    def observe_read(self, payload: bytes, delimiter: bytes) -> None:
        """Sample a read request's delimited ASCII plane."""
        head = payload[:64 * self.sample_rows]
        tokens = head.split(delimiter)[:self.sample_rows]
        with self._lock:
            for tok in tokens:
                if not tok:
                    continue
                self._rows += 1
                n = len(tok)
                self._digit_hist[n] = self._digit_hist.get(n, 0) + 1
            self.requests += 1
            self._rows_since_rotation += len(tokens)

    # ------------------------------------------------------------------
    # Classification and tier selection
    # ------------------------------------------------------------------

    def classify(self) -> str:
        """``"flat"``, ``"zipf"`` or ``"specials"`` — or ``"flat"``
        while fewer than ``min_rows`` rows have been sampled."""
        with self._lock:
            return self._classify_locked()

    def _classify_locked(self) -> str:
        if self._rows < self.min_rows:
            return "flat"
        if self._specials / self._rows > self.specials_fraction:
            return "specials"
        distinct = sum(len(c) for c in self._counts.values())
        if distinct and self._bit_rows_locked() / distinct \
                >= self.zipf_dup_factor:
            return "zipf"
        return "flat"

    def _bit_rows_locked(self) -> int:
        return sum(n for c in self._counts.values() for n in c.values())

    def tier_orders(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """``(write_order, read_order)`` for the observed corpus —
        the bench-arbitrated winner, byte-identical by construction."""
        corpus = self.classify()
        return (_WRITE_ORDER_BY_CORPUS[corpus],
                _READ_ORDER_BY_CORPUS[corpus])

    # ------------------------------------------------------------------
    # Hot keys for snapshot rotation
    # ------------------------------------------------------------------

    @property
    def rows_since_rotation(self) -> int:
        with self._lock:
            return self._rows_since_rotation

    def rotation_done(self) -> None:
        with self._lock:
            self._rows_since_rotation = 0

    def hot_values(self, limit: int = 512) -> List:
        """The hottest observed finite non-zero values as Flonums,
        most frequent first, across all observed formats."""
        from repro.floats.formats import STANDARD_FORMATS
        from repro.floats.model import Flonum

        with self._lock:
            ranked = []
            for fmt_name, counts in self._counts.items():
                fmt = STANDARD_FORMATS[fmt_name]
                for bits, n in counts.items():
                    ranked.append((n, fmt_name, bits, fmt))
        ranked.sort(key=lambda t: (-t[0], t[1], t[2]))
        out = []
        for n, _fmt_name, bits, fmt in ranked:
            v = Flonum.from_bits(bits, fmt)
            if v.is_finite and not v.is_zero:
                out.append(v)
                if len(out) >= limit:
                    break
        return out

    def observed_formats(self) -> List[str]:
        with self._lock:
            return sorted(self._counts)

    def summary(self) -> dict:
        """Shape summary for the HEALTH opcode."""
        with self._lock:
            distinct = sum(len(c) for c in self._counts.values())
            bit_rows = self._bit_rows_locked()
            hist = dict(sorted(self._digit_hist.items())[:32])
            return {
                "requests": self.requests,
                "rows": self._rows,
                "distinct": distinct,
                "dup_factor": (bit_rows / distinct) if distinct else None,
                "specials_fraction": (self._specials / self._rows)
                if self._rows else None,
                "digit_len_hist": hist,
                "corpus": self._classify_locked(),
            }
