"""``python -m repro.serve``: run the serving daemon."""

import sys

from repro.serve.daemon import main

if __name__ == "__main__":
    sys.exit(main())
