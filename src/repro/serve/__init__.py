"""The bulk serving layer: columnar ingestion, batch emission, and
sharded multi-worker pipelines over the tiered engines.

This package depends on :mod:`repro.engine.bulk` (which holds the
ingestion/dedup kernels), never the reverse.
"""

from repro.engine.buffer import (
    format_buffer,
    parse_buffer,
    split_plane,
    split_rows,
)
from repro.engine.bulk import (
    bits_from_buffer,
    floats_from_bits64,
    format_bulk,
    format_column,
    ingest_bits,
    pack_bits,
    read_bulk,
    read_column,
)
from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.control import (
    AdmissionController,
    CircuitBreaker,
    TrafficObserver,
)
from repro.serve.daemon import ReproDaemon, main, serving
from repro.serve.pool import BulkPool
from repro.serve.writer import DelimitedWriter

__all__ = [
    "AdmissionController",
    "AsyncServeClient",
    "BulkPool",
    "CircuitBreaker",
    "DelimitedWriter",
    "ReproDaemon",
    "ServeClient",
    "TrafficObserver",
    "main",
    "serving",
    "bits_from_buffer",
    "floats_from_bits64",
    "format_buffer",
    "format_bulk",
    "format_column",
    "ingest_bits",
    "pack_bits",
    "parse_buffer",
    "read_bulk",
    "read_column",
    "split_plane",
    "split_rows",
]
