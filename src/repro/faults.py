"""Deterministic, seeded fault injection for the serving stack.

The paper's guarantee is correctness; the engines and the bulk pool
wrap that guarantee in fast tiers and worker processes, none of which
may trade it away when something breaks.  This module makes failure a
first-class, *reproducible* input: a :class:`FaultPlan` names exactly
which injection sites misbehave, when, and how, so the chaos battery
(``python -m repro.verify --chaos``) can replay the same faults under
the same seed and assert the output never changes by a byte.

Injection sites
---------------

Two families of sites exist, distinguished by who evaluates them:

**Call sites** fire in the process that armed the plan, counted per
call in arrival order.  They model a fast tier raising mid-
certification; the engines' guard rails must heal them invisibly (or
re-raise under ``strict=True``):

========================  ============================================
site                      fires inside
========================  ============================================
``engine.tier0``          :class:`~repro.engine.engine.Engine` exact-
                          decimal fast path
``engine.tier1``          the Grisu3 fast path
``engine.counted``        the counted/fixed fast path
``reader.tier0``          the read engine's exact-power window
``reader.tier1``          the read engine's interval certification
========================  ============================================

**Pool sites** are *decided in the parent* when a
:class:`~repro.serve.pool.BulkPool` dispatches a shard attempt — the
decision travels to the worker as a payload tag, so firing is
deterministic for any start method and every injected fault is
accounted for where the recovery happens:

========================  ============================================
site                      dispatch of
========================  ============================================
``pool.format_shard``     one format shard attempt
``pool.read_shard``       one read shard attempt
========================  ============================================

Pool faults support four kinds: ``crash`` (the worker process dies via
``os._exit``; in-parent execution raises instead — the plan never
kills the process that armed it), ``stall`` (the worker sleeps past
the shard deadline), ``corrupt`` (the shard payload is mangled after
its checksum is taken, simulating transit corruption) and ``raise``
(the shard attempt raises :class:`InjectedFault`).  Call sites support
``raise`` only.

Arming
------

No plan is armed by default, and every site compiles down to a single
module-global ``is None`` test on the hot path — the disarmed cost is
one load per conversion, which the bulk bench gates confirm is noise::

    plan = FaultPlan([FaultSpec("pool.format_shard", "crash", shard=1)])
    with faults.armed(plan):
        payload = pool.format_bulk(column)   # heals via rebuild+retry
    assert plan.fired["pool.format_shard"] == 1

Forked pool workers inherit the armed plan, so call-site specs keep
firing inside worker engines too; their healings come back in the
per-shard ``tier_faults`` stats deltas (the plan's own ``fired``
counters only track decisions made in the arming process).
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["FaultPlan", "FaultSpec", "InjectedFault", "arm", "disarm",
           "armed", "active", "smoke_plan", "CALL_SITES", "POOL_SITES"]

#: Call sites: evaluated in-process, ``raise`` kind only.
CALL_SITES = frozenset({
    "engine.tier0", "engine.tier1", "engine.counted",
    "reader.tier0", "reader.tier1",
})

#: Pool sites: decided in the dispatching parent, executed in workers.
POOL_SITES = frozenset({"pool.format_shard", "pool.read_shard"})

_POOL_KINDS = frozenset({"crash", "stall", "corrupt", "raise"})


class InjectedFault(Exception):
    """An artificial failure fired by an armed :class:`FaultPlan`.

    Deliberately **not** a :class:`~repro.errors.ReproError`: the guard
    rails must treat it exactly like an unforeseen bug — catch it at a
    tier boundary and fall back, or retry the shard — and a strict
    engine must re-raise it unchanged.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic misbehaviour at one named injection site.

    Args:
        site: A :data:`CALL_SITES` or :data:`POOL_SITES` name.
        kind: ``raise`` (call and pool sites), or ``crash`` / ``stall``
            / ``corrupt`` (pool sites only).
        shard: Pool sites — match only this shard index (None: any).
        attempt: Pool sites — match only this 0-based attempt
            (None: every attempt; default 0, so one retry heals).
        level: Pool sites — match only this ladder level
            (``"process"`` / ``"thread"`` / ``"serial"``; None: any).
        at: Call sites — fire on these 0-based call indices.
        rate: Per-call (or per-dispatch) firing probability, decided by
            a seeded RNG keyed on the plan seed, site and call index —
            the same plan fires at the same calls in any run.
        stall: Seconds a ``stall`` fault sleeps.
        limit: Cap on total firings of this spec (None: unbounded).
            With neither ``at`` nor ``rate`` given, the spec fires on
            every match until the limit is spent.
    """

    site: str
    kind: str = "raise"
    shard: Optional[int] = None
    attempt: Optional[int] = 0
    level: Optional[str] = None
    at: Optional[Tuple[int, ...]] = None
    rate: float = 0.0
    stall: float = 0.25
    limit: Optional[int] = 1

    def __post_init__(self):
        if self.site in CALL_SITES:
            if self.kind != "raise":
                raise ValueError(
                    f"call site {self.site!r} only supports kind='raise', "
                    f"got {self.kind!r}")
        elif self.site in POOL_SITES:
            if self.kind not in _POOL_KINDS:
                raise ValueError(f"unknown pool fault kind {self.kind!r}")
        else:
            raise ValueError(f"unknown injection site {self.site!r}")
        if self.at is not None:
            object.__setattr__(self, "at", tuple(self.at))


class FaultPlan:
    """A seeded set of :class:`FaultSpec` with exact firing accounting.

    Instances are reusable but stateful: :attr:`fired` counts firings
    per site and per-spec limits are consumed as they fire, so a fresh
    comparison run should build a fresh plan.  All bookkeeping is
    lock-protected — pools dispatch shards from multiple threads.
    """

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0):
        self.seed = int(seed)
        self.specs: List[FaultSpec] = list(specs)
        self._by_site: Dict[str, List[Tuple[int, FaultSpec]]] = {}
        for j, spec in enumerate(self.specs):
            self._by_site.setdefault(spec.site, []).append((j, spec))
        self._spec_fired = [0] * len(self.specs)
        self._calls: Dict[str, int] = {}
        #: site -> number of faults this plan has fired (in this
        #: process; forked workers count on their own copies).
        self.fired: Dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def _roll(self, spec_key: str, rate: float) -> bool:
        # String seeding hashes with SHA-512 under seed version 2 —
        # stable across processes and PYTHONHASHSEED values.
        return random.Random(f"{self.seed}:{spec_key}").random() < rate

    def _spec_matches_budget(self, j: int, spec: FaultSpec) -> bool:
        return spec.limit is None or self._spec_fired[j] < spec.limit

    def fire(self, site: str) -> None:
        """Evaluate one call site; raises :class:`InjectedFault` when a
        spec fires.  Engines call this inside their guard-railed tier
        regions, so a firing exercises the fallback path."""
        with self._lock:
            idx = self._calls.get(site, 0)
            self._calls[site] = idx + 1
            for j, spec in self._by_site.get(site, ()):
                if not self._spec_matches_budget(j, spec):
                    continue
                if spec.at is not None:
                    hit = idx in spec.at
                elif spec.rate:
                    hit = self._roll(f"{site}:{idx}", spec.rate)
                else:
                    hit = True
                if hit:
                    self._spec_fired[j] += 1
                    self.fired[site] = self.fired.get(site, 0) + 1
                    raise InjectedFault(
                        f"injected raise at {site} (call {idx})")

    def pool_action(self, site: str, shard: int, attempt: int,
                    level: str) -> Optional[FaultSpec]:
        """Decide whether this shard dispatch misbehaves.

        Called by the pool parent before submitting shard ``shard`` on
        attempt ``attempt`` at ladder level ``level``; the returned
        spec (or None) is deterministic for a given plan state.
        """
        with self._lock:
            for j, spec in self._by_site.get(site, ()):
                if not self._spec_matches_budget(j, spec):
                    continue
                if spec.shard is not None and spec.shard != shard:
                    continue
                if spec.attempt is not None and spec.attempt != attempt:
                    continue
                if spec.level is not None and spec.level != level:
                    continue
                if spec.rate and not self._roll(
                        f"{site}:{shard}:{attempt}", spec.rate):
                    continue
                self._spec_fired[j] += 1
                self.fired[site] = self.fired.get(site, 0) + 1
                return spec
        return None

    def total_fired(self) -> int:
        """Faults fired so far, across every site (this process)."""
        with self._lock:
            return sum(self.fired.values())


# ----------------------------------------------------------------------
# Arming (module-global so disarmed sites cost one load + None test)
# ----------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide (replacing any armed plan)."""
    global _PLAN
    _PLAN = plan
    return plan


def disarm() -> None:
    """Return every injection site to its no-op state."""
    global _PLAN
    _PLAN = None


def active() -> Optional[FaultPlan]:
    """The armed plan, or None."""
    return _PLAN


@contextmanager
def armed(plan: FaultPlan):
    """Arm ``plan`` for the duration of a with-block (restores the
    previously armed plan, if any, on the way out)."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def smoke_plan(seed: int = 0) -> FaultPlan:
    """A small mixed plan for ops smoke tests (``repro-print --bulk
    --chaos-seed N``): one worker crash, one corrupted shard, and
    low-rate fast-tier raises on both engine sides.  Every fault must
    heal invisibly — the CLI output stays byte-identical."""
    return FaultPlan([
        FaultSpec("pool.format_shard", "crash", shard=1),
        FaultSpec("pool.read_shard", "corrupt", shard=0),
        FaultSpec("engine.tier1", "raise", rate=0.02, limit=32),
        FaultSpec("reader.tier1", "raise", rate=0.02, limit=32),
    ], seed=seed)
