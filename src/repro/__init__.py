"""Reproduction of Burger & Dybvig, *Printing Floating-Point Numbers
Quickly and Accurately* (PLDI 1996).

Public surface, in one import::

    from repro import format_shortest, format_fixed, read_decimal, Flonum

* :func:`format_shortest` — the shortest correctly rounded string that
  reads back to the value (free format, reader-rounding aware).
* :func:`format_fixed` — correctly rounded to an absolute/relative digit
  position, ``#``-marking insignificant positions.
* :func:`read_decimal` — the accurate reader the guarantee is stated
  against (any rounding mode).
* :func:`read` / :func:`read_many` — the same semantics through the
  shared tiered :class:`ReadEngine` (typically much faster).
* :func:`format_bulk` / :func:`read_bulk` — the bulk serving layer:
  zero-copy columnar ingestion, dedup interning and sharded
  multi-worker pipelines with deadlines, retries and graceful
  degradation (see :mod:`repro.serve` and ``docs/robustness.md``).
* :func:`parse_buffer` / :func:`format_buffer` — the byte-plane
  pipeline underneath it: whole delimited byte buffers in and out,
  throughput measured in MB/s, never a per-row string (see
  :mod:`repro.engine.buffer` and ``docs/benchmarks.md``).
* :class:`FaultPlan` / :func:`armed` — deterministic fault injection
  for chaos testing the serving layer (see :mod:`repro.faults`).
* :class:`Flonum` / :class:`FloatFormat` — exact value model for binary16
  through binary128, x87-80 and arbitrary toy formats.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
table-by-table reproduction of the paper's evaluation.
"""

from repro.core.api import format_fixed, format_shortest, to_flonum
from repro.core.digits import DigitResult
from repro.engine import (
    Engine,
    HotPlane,
    ReadEngine,
    ReadResult,
    Snapshot,
    build_snapshot,
    default_engine,
    default_read_engine,
    format_many,
    hot_entries,
    load_snapshot,
    save_snapshot,
)
from repro.core.dragon import shortest_digits
from repro.core.fixed import FixedResult, fixed_digits
from repro.core.fixed_rational import fixed_digits_rational
from repro.core.rational import shortest_digits_rational
from repro.core.rounding import ReaderMode, TieBreak
from repro.core.stream import DigitStream
from repro.compat.scheme import number_to_string, string_to_number
from repro.core.scaling import (
    scale_estimate,
    scale_float_log,
    scale_iterative,
)
from repro.errors import (
    DeadlineExceededError,
    DecodeError,
    FormatError,
    NotRepresentableError,
    ParseError,
    PoolBrokenError,
    ProtocolError,
    RangeError,
    ReproError,
    ServeOverloadError,
    ShardError,
    SnapshotError,
)
from repro.faults import FaultPlan, FaultSpec, InjectedFault, armed
from repro.floats.formats import (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    STANDARD_FORMATS,
    X87_80,
    FloatFormat,
)
from repro.floats.model import Flonum, FlonumKind
from repro.format.notation import NotationOptions
from repro.format.hexfloat import format_hex, parse_hex, python_hex
from repro.format.printf import fmt_e, fmt_f, fmt_g, format_printf
from repro.format.repr_shortest import py_repr
from repro.reader import read, read_many
from repro.reader.exact import read_decimal, read_fraction
from repro.serve import (
    AsyncServeClient,
    BulkPool,
    DelimitedWriter,
    ReproDaemon,
    ServeClient,
    bits_from_buffer,
    format_buffer,
    format_bulk,
    format_column,
    ingest_bits,
    pack_bits,
    parse_buffer,
    read_bulk,
    read_column,
    serving,
    split_plane,
    split_rows,
)
from repro.verify import (
    VerificationReport,
    verify_chaos,
    verify_format,
    verify_serve,
    verify_warm,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "format_shortest",
    "format_fixed",
    "format_many",
    "Engine",
    "default_engine",
    "ReadEngine",
    "ReadResult",
    "default_read_engine",
    "AsyncServeClient",
    "BulkPool",
    "DelimitedWriter",
    "ReproDaemon",
    "ServeClient",
    "serving",
    "bits_from_buffer",
    "format_buffer",
    "format_bulk",
    "format_column",
    "ingest_bits",
    "pack_bits",
    "parse_buffer",
    "read_bulk",
    "read_column",
    "split_plane",
    "split_rows",
    "to_flonum",
    "shortest_digits",
    "shortest_digits_rational",
    "fixed_digits",
    "fixed_digits_rational",
    "DigitResult",
    "FixedResult",
    "ReaderMode",
    "TieBreak",
    "scale_estimate",
    "scale_float_log",
    "scale_iterative",
    "FloatFormat",
    "Flonum",
    "FlonumKind",
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "BINARY128",
    "X87_80",
    "STANDARD_FORMATS",
    "NotationOptions",
    "format_printf",
    "format_hex",
    "parse_hex",
    "python_hex",
    "fmt_e",
    "fmt_f",
    "fmt_g",
    "py_repr",
    "read",
    "read_many",
    "read_decimal",
    "read_fraction",
    "DigitStream",
    "number_to_string",
    "string_to_number",
    "VerificationReport",
    "verify_format",
    "verify_chaos",
    "verify_serve",
    "verify_warm",
    "Snapshot",
    "build_snapshot",
    "load_snapshot",
    "save_snapshot",
    "hot_entries",
    "HotPlane",
    "ReproError",
    "FormatError",
    "DecodeError",
    "ParseError",
    "RangeError",
    "NotRepresentableError",
    "ShardError",
    "SnapshotError",
    "DeadlineExceededError",
    "PoolBrokenError",
    "ProtocolError",
    "ServeOverloadError",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "armed",
]
