"""Correctly rounded Flonum arithmetic.

Exact-rational evaluation followed by one correctly rounded conversion
into the result format — the textbook definition of IEEE operations,
executable for every format and rounding mode this package models.  The
printing algorithms never need this module; it exists because a float
*model* without arithmetic is only half a substrate: the test suite
cross-checks it against the host FPU (binary64), and examples use it to
build format-agnostic numerics.

NaN propagation is simplified (any NaN in → NaN out, no payloads);
signed-zero results follow IEEE 754 §6.3.
"""

from __future__ import annotations

from fractions import Fraction
from math import isqrt

from repro.core.rounding import ReaderMode
from repro.errors import RangeError
from repro.floats.model import Flonum
from repro.reader.exact import ilog, round_rational

__all__ = ["add", "sub", "mul", "div", "sqrt", "fma"]


def _round_signed(value: Fraction, fmt, mode: ReaderMode,
                  negative_zero: bool) -> Flonum:
    """Round an exact rational into ``fmt``; pick the zero sign per IEEE."""
    if value == 0:
        return Flonum.zero(fmt, 1 if negative_zero else 0)
    negative = value < 0
    mag = -value if negative else value
    return round_rational(mag.numerator, mag.denominator, fmt, mode,
                          negative=negative)


def _binary_common(a: Flonum, b: Flonum) -> None:
    if a.fmt != b.fmt:
        raise RangeError("operands must share a format")


def add(a: Flonum, b: Flonum, mode: ReaderMode = ReaderMode.NEAREST_EVEN
        ) -> Flonum:
    """IEEE addition: exact sum, one rounding."""
    _binary_common(a, b)
    if a.is_nan or b.is_nan:
        return Flonum.nan(a.fmt)
    if a.is_infinite or b.is_infinite:
        if a.is_infinite and b.is_infinite and a.sign != b.sign:
            return Flonum.nan(a.fmt)
        inf = a if a.is_infinite else b
        return Flonum.infinity(a.fmt, inf.sign)
    total = a.to_fraction() + b.to_fraction()
    # IEEE 754 §6.3: an exact zero sum of opposite-signed operands is
    # +0 except under roundTowardNegative; x + x keeps x's sign.
    if total == 0:
        if a.is_zero and b.is_zero and a.sign == b.sign:
            neg_zero = bool(a.sign)
        else:
            neg_zero = mode is ReaderMode.TOWARD_NEGATIVE
        return Flonum.zero(a.fmt, 1 if neg_zero else 0)
    return _round_signed(total, a.fmt, mode, False)


def sub(a: Flonum, b: Flonum, mode: ReaderMode = ReaderMode.NEAREST_EVEN
        ) -> Flonum:
    """IEEE subtraction: ``a + (-b)``."""
    return add(a, b.negate() if not b.is_nan else b, mode)


def mul(a: Flonum, b: Flonum, mode: ReaderMode = ReaderMode.NEAREST_EVEN
        ) -> Flonum:
    """IEEE multiplication: exact product, one rounding."""
    _binary_common(a, b)
    if a.is_nan or b.is_nan:
        return Flonum.nan(a.fmt)
    sign = a.sign ^ b.sign
    if a.is_infinite or b.is_infinite:
        if a.is_zero or b.is_zero:
            return Flonum.nan(a.fmt)
        return Flonum.infinity(a.fmt, sign)
    if a.is_zero or b.is_zero:
        return Flonum.zero(a.fmt, sign)
    product = a.to_fraction() * b.to_fraction()
    return _round_signed(product, a.fmt, mode, bool(sign))


def div(a: Flonum, b: Flonum, mode: ReaderMode = ReaderMode.NEAREST_EVEN
        ) -> Flonum:
    """IEEE division: exact quotient, one rounding."""
    _binary_common(a, b)
    if a.is_nan or b.is_nan:
        return Flonum.nan(a.fmt)
    sign = a.sign ^ b.sign
    if a.is_infinite:
        if b.is_infinite:
            return Flonum.nan(a.fmt)
        return Flonum.infinity(a.fmt, sign)
    if b.is_infinite:
        return Flonum.zero(a.fmt, sign)
    if b.is_zero:
        if a.is_zero:
            return Flonum.nan(a.fmt)
        return Flonum.infinity(a.fmt, sign)
    if a.is_zero:
        return Flonum.zero(a.fmt, sign)
    quotient = a.to_fraction() / b.to_fraction()
    return _round_signed(quotient, a.fmt, mode, bool(sign))


def fma(a: Flonum, b: Flonum, c: Flonum,
        mode: ReaderMode = ReaderMode.NEAREST_EVEN) -> Flonum:
    """Fused multiply-add: ``a*b + c`` with a single rounding."""
    _binary_common(a, b)
    _binary_common(a, c)
    if a.is_nan or b.is_nan or c.is_nan:
        return Flonum.nan(a.fmt)
    if a.is_infinite or b.is_infinite:
        prod = mul(a, b, mode)  # handles inf*0 -> NaN
        return add(prod, c, mode)
    if c.is_infinite:
        return Flonum.infinity(a.fmt, c.sign)
    total = a.to_fraction() * b.to_fraction() + c.to_fraction()
    if total == 0:
        # Exact cancellation: sign rules mirror addition's, with the
        # product's sign standing in for an operand's.
        prod_sign = a.sign ^ b.sign
        if (a.is_zero or b.is_zero) and c.is_zero and prod_sign == c.sign:
            neg_zero = bool(c.sign)
        else:
            neg_zero = mode is ReaderMode.TOWARD_NEGATIVE
        return Flonum.zero(a.fmt, 1 if neg_zero else 0)
    return _round_signed(total, a.fmt, mode, False)


def sqrt(a: Flonum, mode: ReaderMode = ReaderMode.NEAREST_EVEN) -> Flonum:
    """IEEE square root, correctly rounded via integer ``isqrt``.

    The significand is computed as the floor square root of the scaled
    exact value; the rounding decision compares ``v`` against the exact
    square of the candidate midpoint, so no irrational value is ever
    approximated.
    """
    fmt = a.fmt
    if a.is_nan:
        return a
    if a.is_zero:
        return a  # sqrt(±0) = ±0
    if a.is_negative:
        return Flonum.nan(fmt)
    if a.is_infinite:
        return a
    b = fmt.radix
    value = a.to_fraction()
    # Exponent window: result in [b**(p-1), b**p) * b**t.
    e2 = ilog(value.numerator, value.denominator, b)  # b**e2 <= v < b**(e2+1)
    t = e2 // 2 - (fmt.precision - 1)
    if t < fmt.min_e:
        t = fmt.min_e
    # m = floor(sqrt(v / b**(2t))), exact.
    scaled = value / Fraction(b) ** (2 * t)
    m = isqrt(scaled.numerator // scaled.denominator)
    # floor(sqrt(floor(x))) == floor(sqrt(x)) needs exact x when x < 1 is
    # impossible here; for fractional scaled, refine by comparison.
    while Fraction((m + 1) ** 2) <= scaled:
        m += 1
    while Fraction(m**2) > scaled:
        m -= 1
    # Rounding decision: compare v/b^(2t) with the exact squares of the
    # candidate (m) and the midpoint (m + 1/2) — no irrational appears.
    exact = Fraction(m * m) == scaled
    if mode is ReaderMode.TOWARD_POSITIVE:
        chosen = m if exact else m + 1
    elif mode in (ReaderMode.TOWARD_ZERO, ReaderMode.TOWARD_NEGATIVE):
        chosen = m
    else:  # nearest family
        midpoint_sq = Fraction((2 * m + 1) ** 2, 4)
        if scaled > midpoint_sq:
            chosen = m + 1
        elif scaled < midpoint_sq:
            chosen = m
        elif mode is ReaderMode.NEAREST_AWAY:
            chosen = m + 1
        elif mode is ReaderMode.NEAREST_TO_ZERO:
            chosen = m
        else:
            chosen = m if m % 2 == 0 else m + 1
    if chosen >= fmt.mantissa_limit:
        chosen //= b
        t += 1
    if t > fmt.max_e:  # pragma: no cover - sqrt cannot overflow a format
        return Flonum.infinity(fmt, 0)
    if chosen == 0:
        return Flonum.zero(fmt)
    return Flonum.finite(0, chosen, t, fmt)
