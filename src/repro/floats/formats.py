"""Floating-point format descriptions.

A :class:`FloatFormat` captures everything the algorithms in this package
need to know about a floating-point representation:

* the radix ``b`` (2 for every IEEE interchange format),
* the precision ``p`` — the number of radix-``b`` digits in the mantissa,
  *including* the hidden bit when the encoding has one,
* the exponent range, expressed in the paper's convention ``v = f * b**e``
  with ``f`` an integer satisfying ``0 <= f < b**p``.

The paper (Section 2.1) works with mantissa/exponent pairs in exactly this
integer convention, so we adopt it throughout: for IEEE double precision a
normal number has ``2**52 <= f < 2**53`` and ``min_e <= e <= max_e`` with
``min_e = -1074``; denormals have ``f < 2**52`` and ``e == min_e``.

Encodings (bit layouts) only exist for radix-2 formats; the algorithm-level
code works for any radix, which lets the test suite exhaustively check tiny
custom formats.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormatError

__all__ = [
    "FloatFormat",
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "BINARY128",
    "X87_80",
    "DECIMAL32",
    "DECIMAL64",
    "DECIMAL128",
    "STANDARD_FORMATS",
]


@dataclass(frozen=True)
class FloatFormat:
    """Description of a floating-point representation.

    Parameters mirror IEEE 754-2019 interchange formats but permit arbitrary
    toy formats for exhaustive testing.

    Attributes:
        name: Human-readable identifier (e.g. ``"binary64"``).
        radix: The base ``b`` of the representation (2 for IEEE formats).
        precision: ``p``, the mantissa length in radix digits, counting the
            hidden bit if the encoding has one.
        exponent_width: Width in bits of the biased exponent field.  Only
            meaningful for radix-2 formats with a bit-level encoding; ``0``
            for pure algorithm-level formats.
        emin: Minimum *normalized* exponent in the ``v = m * b**q`` sense
            with ``1 <= m < b`` (IEEE convention).  For binary64 this is
            ``-1022``.
        emax: Maximum normalized exponent (``1023`` for binary64).
        explicit_leading_bit: True for formats (x87 80-bit) that store the
            leading mantissa bit explicitly instead of hiding it.
    """

    name: str
    radix: int
    precision: int
    exponent_width: int
    emin: int
    emax: int
    explicit_leading_bit: bool = False

    def __post_init__(self) -> None:
        if self.radix < 2:
            raise FormatError(f"radix must be >= 2, got {self.radix}")
        if self.precision < 1:
            raise FormatError(f"precision must be >= 1, got {self.precision}")
        if self.emin > self.emax:
            raise FormatError(
                f"emin ({self.emin}) must not exceed emax ({self.emax})"
            )
        if self.exponent_width and self.radix != 2:
            raise FormatError("bit-level encodings require radix 2")

    # ------------------------------------------------------------------
    # Derived quantities, all in the paper's integer-mantissa convention.
    # ------------------------------------------------------------------

    @property
    def min_e(self) -> int:
        """Minimum exponent ``e`` with ``v = f * b**e`` and integer ``f``.

        This is the exponent shared by all denormalized numbers; the paper
        calls it the minimum exponent.  ``min_e = emin - (p - 1)``.
        """
        return self.emin - (self.precision - 1)

    @property
    def max_e(self) -> int:
        """Maximum exponent ``e`` in the integer-mantissa convention."""
        return self.emax - (self.precision - 1)

    @property
    def mantissa_limit(self) -> int:
        """``b**p`` — exclusive upper bound on the integer mantissa."""
        return self.radix**self.precision

    @property
    def hidden_limit(self) -> int:
        """``b**(p-1)`` — mantissas at or above this are normalized."""
        return self.radix ** (self.precision - 1)

    @property
    def bias(self) -> int:
        """Exponent bias of the bit-level encoding."""
        self._require_encoding()
        return (1 << (self.exponent_width - 1)) - 1

    @property
    def mantissa_field_width(self) -> int:
        """Width in bits of the stored mantissa field."""
        self._require_encoding()
        if self.explicit_leading_bit:
            return self.precision
        return self.precision - 1

    @property
    def total_bits(self) -> int:
        """Total encoding width: sign + exponent + stored mantissa."""
        self._require_encoding()
        return 1 + self.exponent_width + self.mantissa_field_width

    @property
    def max_biased_exponent(self) -> int:
        """The all-ones exponent field value, reserved for inf/NaN."""
        self._require_encoding()
        return (1 << self.exponent_width) - 1

    @property
    def has_encoding(self) -> bool:
        """Whether this format defines a bit-level layout."""
        return self.exponent_width > 0 and self.radix == 2

    def _require_encoding(self) -> None:
        if not self.has_encoding:
            raise FormatError(
                f"format {self.name!r} has no bit-level encoding"
            )

    # ------------------------------------------------------------------
    # Range helpers.
    # ------------------------------------------------------------------

    @property
    def largest_finite(self) -> tuple[int, int]:
        """``(f, e)`` of the largest finite value."""
        return (self.mantissa_limit - 1, self.max_e)

    @property
    def smallest_positive(self) -> tuple[int, int]:
        """``(f, e)`` of the smallest positive (denormal) value."""
        return (1, self.min_e)

    @property
    def smallest_normal(self) -> tuple[int, int]:
        """``(f, e)`` of the smallest positive normal value."""
        return (self.hidden_limit, self.min_e)

    def valid_finite(self, f: int, e: int) -> bool:
        """Whether ``(f, e)`` is a canonically representable finite value.

        Canonical means ``0 <= f < b**p`` with either a normalized mantissa
        (``f >= b**(p-1)``) or the minimum exponent, matching the unique
        encodable form.  Zero is canonical only as ``(0, min_e)``.
        """
        if not 0 <= f < self.mantissa_limit:
            return False
        if not self.min_e <= e <= self.max_e:
            return False
        if f < self.hidden_limit and e != self.min_e:
            return False
        return True

    def decimal_digits_to_distinguish(self) -> int:
        """Digits guaranteed to distinguish any two values of this format.

        The classic bound ``ceil(p * log10(b)) + 1`` (17 for binary64),
        computed exactly with integer arithmetic: the smallest ``n`` with
        ``10**(n-1) > b**p``.
        """
        n = 1
        power = 10
        limit = self.mantissa_limit
        while power <= limit:
            power *= 10
            n += 1
        return n + 1 if self.radix != 10 else n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FloatFormat({self.name!r}, b={self.radix}, p={self.precision}, "
            f"e=[{self.emin}, {self.emax}])"
        )

    # ------------------------------------------------------------------
    # Constructors for ad-hoc formats.
    # ------------------------------------------------------------------

    @staticmethod
    def toy(precision: int, emin: int, emax: int, radix: int = 2,
            name: str = "") -> "FloatFormat":
        """Build an algorithm-level format with no bit encoding.

        Used by the exhaustive test suites: a precision-5, radix-2 format has
        few enough members to verify shortest-output over all of them.
        """
        return FloatFormat(
            name=name or f"toy(b={radix},p={precision})",
            radix=radix,
            precision=precision,
            exponent_width=0,
            emin=emin,
            emax=emax,
        )

    @staticmethod
    def ieee(exponent_width: int, precision: int,
             name: str = "", explicit_leading_bit: bool = False
             ) -> "FloatFormat":
        """Build a radix-2 IEEE-style format from its field widths."""
        bias = (1 << (exponent_width - 1)) - 1
        return FloatFormat(
            name=name or f"ieee(w={exponent_width},p={precision})",
            radix=2,
            precision=precision,
            exponent_width=exponent_width,
            emin=1 - bias,
            emax=bias,
            explicit_leading_bit=explicit_leading_bit,
        )


def _decimal_ieee(precision: int, emax: int, name: str) -> "FloatFormat":
    """IEEE 754-2008 decimal interchange parameters, algorithm-level.

    Decimal formats carry unnormalized cohorts in their encodings; the
    Flonum model canonicalizes to the normalized member, which preserves
    values (and therefore everything the printing algorithms consume)
    while ignoring cohort identity.  No bit-level layout is modeled (the
    DPD/BID encodings are out of scope).
    """
    return FloatFormat(
        name=name,
        radix=10,
        precision=precision,
        exponent_width=0,
        emin=1 - emax,
        emax=emax,
    )


BINARY16 = FloatFormat.ieee(5, 11, name="binary16")
BINARY32 = FloatFormat.ieee(8, 24, name="binary32")
BINARY64 = FloatFormat.ieee(11, 53, name="binary64")
BINARY128 = FloatFormat.ieee(15, 113, name="binary128")
X87_80 = FloatFormat.ieee(15, 64, name="x87_80", explicit_leading_bit=True)
DECIMAL32 = _decimal_ieee(7, 96, "decimal32")
DECIMAL64 = _decimal_ieee(16, 384, "decimal64")
DECIMAL128 = _decimal_ieee(34, 6144, "decimal128")

STANDARD_FORMATS = {
    fmt.name: fmt for fmt in (BINARY16, BINARY32, BINARY64, BINARY128,
                              X87_80, DECIMAL32, DECIMAL64, DECIMAL128)
}
