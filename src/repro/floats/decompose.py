"""Bit-level encode/decode between IEEE bit patterns and components.

The functions here translate between three representations:

* raw encodings (``int`` bit patterns of ``fmt.total_bits`` bits),
* field tuples ``(sign, biased_exponent, mantissa_field)``,
* the paper's value components ``(sign, f, e)`` with ``v = ±f * 2**e``.

Python ``float`` objects are bridged through the binary64 (and, for
completeness, binary32) layouts using :mod:`struct`.
"""

from __future__ import annotations

import struct
from enum import Enum
from typing import Tuple

from repro.errors import DecodeError, FormatError, RangeError
from repro.floats.formats import BINARY32, BINARY64, FloatFormat

__all__ = [
    "FloatClass",
    "split_bits",
    "join_bits",
    "classify_fields",
    "decode_fields",
    "encode_components",
    "float_to_bits",
    "bits_to_float",
    "float32_to_bits",
    "bits_to_float32",
    "decompose_float",
]


class FloatClass(Enum):
    """Classification of an encoded floating-point datum."""

    ZERO = "zero"
    DENORMAL = "denormal"
    NORMAL = "normal"
    INFINITE = "infinite"
    NAN = "nan"


def split_bits(bits: int, fmt: FloatFormat) -> Tuple[int, int, int]:
    """Split a raw encoding into ``(sign, biased_exponent, mantissa_field)``."""
    total = fmt.total_bits
    if not 0 <= bits < (1 << total):
        raise DecodeError(
            f"bit pattern {bits:#x} does not fit in {total} bits"
        )
    mwidth = fmt.mantissa_field_width
    mantissa = bits & ((1 << mwidth) - 1)
    biased = (bits >> mwidth) & ((1 << fmt.exponent_width) - 1)
    sign = bits >> (mwidth + fmt.exponent_width)
    return sign, biased, mantissa


def join_bits(sign: int, biased: int, mantissa: int,
              fmt: FloatFormat) -> int:
    """Assemble a raw encoding from its fields (inverse of split_bits)."""
    mwidth = fmt.mantissa_field_width
    if sign not in (0, 1):
        raise DecodeError(f"sign must be 0 or 1, got {sign}")
    if not 0 <= biased <= fmt.max_biased_exponent:
        raise DecodeError(f"biased exponent {biased} out of range")
    if not 0 <= mantissa < (1 << mwidth):
        raise DecodeError(f"mantissa field {mantissa} out of range")
    return (sign << (mwidth + fmt.exponent_width)) | (biased << mwidth) | mantissa


def classify_fields(biased: int, mantissa: int,
                    fmt: FloatFormat) -> FloatClass:
    """Classify a field pair per the IEEE encoding rules (Section 2.1)."""
    if fmt.explicit_leading_bit:
        # x87: the integer bit is part of the mantissa field.
        integer_bit = mantissa >> (fmt.precision - 1)
        fraction = mantissa & (fmt.hidden_limit - 1)
        if biased == fmt.max_biased_exponent:
            return FloatClass.NAN if fraction else FloatClass.INFINITE
        if biased == 0:
            return FloatClass.DENORMAL if mantissa else FloatClass.ZERO
        if not integer_bit:
            # "Unnormal" x87 values; we treat them as invalid encodings.
            raise DecodeError("unnormal x87 encoding (integer bit clear)")
        return FloatClass.NORMAL
    if biased == fmt.max_biased_exponent:
        return FloatClass.NAN if mantissa else FloatClass.INFINITE
    if biased == 0:
        return FloatClass.DENORMAL if mantissa else FloatClass.ZERO
    return FloatClass.NORMAL


def decode_fields(sign: int, biased: int, mantissa: int,
                  fmt: FloatFormat) -> Tuple[FloatClass, int, int, int]:
    """Decode fields to ``(class, sign, f, e)`` with ``v = ±f * 2**e``.

    For IEEE double precision this realizes the paper's decoding: a normal
    number with biased exponent ``be`` and mantissa field ``m`` has value
    ``±(2**52 + m) * 2**(be - 1075)``; a denormal has ``±m * 2**-1074``.
    """
    cls = classify_fields(biased, mantissa, fmt)
    if cls in (FloatClass.INFINITE, FloatClass.NAN):
        return cls, sign, 0, 0
    if cls is FloatClass.ZERO:
        return cls, sign, 0, fmt.min_e
    if cls is FloatClass.DENORMAL:
        return cls, sign, mantissa, fmt.min_e
    # Normal.
    if fmt.explicit_leading_bit:
        f = mantissa  # integer bit is stored
    else:
        f = fmt.hidden_limit + mantissa
    e = biased - fmt.bias - (fmt.precision - 1)
    return cls, sign, f, e


def encode_components(sign: int, f: int, e: int, fmt: FloatFormat) -> int:
    """Encode ``±f * 2**e`` (canonical finite components) to a bit pattern."""
    if not fmt.valid_finite(f, e):
        raise RangeError(
            f"(f={f}, e={e}) is not canonical for {fmt.name}"
        )
    if f == 0:
        return join_bits(sign, 0, 0, fmt)
    if f < fmt.hidden_limit:
        # Denormal: biased exponent 0, mantissa stored as-is.
        return join_bits(sign, 0, f, fmt)
    biased = e + fmt.bias + (fmt.precision - 1)
    if fmt.explicit_leading_bit:
        mantissa = f
    else:
        mantissa = f - fmt.hidden_limit
    if biased >= fmt.max_biased_exponent:
        raise RangeError(f"exponent {e} overflows {fmt.name}")
    return join_bits(sign, biased, mantissa, fmt)


# ----------------------------------------------------------------------
# Python float bridging.
# ----------------------------------------------------------------------


def float_to_bits(x: float) -> int:
    """Raw binary64 bit pattern of a Python float."""
    return struct.unpack(">Q", struct.pack(">d", x))[0]


def bits_to_float(bits: int) -> float:
    """Python float from a raw binary64 bit pattern."""
    return struct.unpack(">d", struct.pack(">Q", bits))[0]


def float32_to_bits(x: float) -> int:
    """Raw binary32 bit pattern of a Python float (rounded to single)."""
    return struct.unpack(">I", struct.pack(">f", x))[0]


def bits_to_float32(bits: int) -> float:
    """Python float holding the exact value of a binary32 bit pattern."""
    return struct.unpack(">f", struct.pack(">I", bits))[0]


def decompose_float(x: float, fmt: FloatFormat = BINARY64
                    ) -> Tuple[FloatClass, int, int, int]:
    """Decompose a Python float into ``(class, sign, f, e)``.

    ``fmt`` must be binary64 or binary32; for binary32 the float is packed
    (i.e. rounded) to single precision first.
    """
    if fmt is BINARY64 or fmt == BINARY64:
        bits = float_to_bits(x)
    elif fmt is BINARY32 or fmt == BINARY32:
        bits = float32_to_bits(x)
    else:
        raise FormatError(
            f"cannot decompose a Python float as {fmt.name}; "
            "construct a Flonum from bits or components instead"
        )
    return decode_fields(*split_bits(bits, fmt), fmt)
