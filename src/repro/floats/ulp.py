"""Successor/predecessor and gap arithmetic (paper Section 2.1).

The free-format algorithm is driven entirely by the *gaps* between adjacent
floating-point numbers: every real strictly between the midpoints
``(v- + v)/2`` and ``(v + v+)/2`` rounds to ``v``.  This module computes
``v+``, ``v-`` and the gap half-widths exactly.

All helpers operate on positive finite values; the printing drivers reduce
the general case to this one by handling sign and specials up front.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple

from repro.errors import RangeError
from repro.floats.model import Flonum

__all__ = [
    "successor",
    "predecessor",
    "ulp_exponent",
    "ulp",
    "gap_high",
    "gap_low",
    "midpoint_high",
    "midpoint_low",
    "rounding_interval",
]


def successor(v: Flonum) -> Flonum:
    """``v+``, the next larger floating-point number.

    Implements the paper's case analysis for ``f > 0``: normally
    ``v+ = (f + 1) * b**e``; when ``f + 1`` no longer fits the mantissa
    (``f + 1 == b**p``) the successor is ``b**(p-1) * b**(e+1)``; at the
    maximum exponent that overflows to ``+inf``.
    """
    fmt = v.fmt
    if not v.is_finite or v.sign or v.f == 0:
        raise RangeError("successor is defined for positive finite values")
    f, e = v.f, v.e
    if f + 1 < fmt.mantissa_limit:
        return Flonum.finite(0, f + 1, e, fmt)
    if e == fmt.max_e:
        return Flonum.infinity(fmt, 0)
    return Flonum.finite(0, fmt.hidden_limit, e + 1, fmt)


def predecessor(v: Flonum) -> Flonum:
    """``v-``, the next smaller floating-point number.

    For most ``v`` this is ``(f - 1) * b**e``; when ``f == b**(p-1)`` and
    ``e`` exceeds the minimum exponent the gap below is narrower:
    ``v- = (b**p - 1) * b**(e-1)``.  The predecessor of the smallest
    positive denormal is zero.
    """
    fmt = v.fmt
    if not v.is_finite or v.sign or v.f == 0:
        raise RangeError("predecessor is defined for positive finite values")
    f, e = v.f, v.e
    if f != fmt.hidden_limit or e == fmt.min_e:
        if f - 1 == 0 and e == fmt.min_e:
            return Flonum.zero(fmt)
        if f - 1 < fmt.hidden_limit and e != fmt.min_e:
            # Unreachable for canonical inputs: f == hidden_limit is the
            # only canonical mantissa whose decrement denormalizes.
            raise RangeError("non-canonical input")
        return Flonum.finite(0, f - 1, e, fmt)
    return Flonum.finite(0, fmt.mantissa_limit - 1, e - 1, fmt)


def ulp_exponent(v: Flonum) -> int:
    """The exponent ``e`` such that one unit in the last place is ``b**e``."""
    if not v.is_finite:
        raise RangeError("ulp is defined for finite values")
    return v.e


def ulp(v: Flonum) -> Fraction:
    """One unit in the last place of ``v`` as an exact rational."""
    return Fraction(v.fmt.radix) ** ulp_exponent(v)


def gap_high(v: Flonum) -> Fraction:
    """``v+ - v`` exactly (``+inf`` successor would raise)."""
    succ = successor(v)
    if succ.is_infinite:
        # The gap above the largest finite value: one ulp, by convention
        # the same width as between its neighbours.
        return ulp(v)
    return succ.to_fraction() - v.to_fraction()


def gap_low(v: Flonum) -> Fraction:
    """``v - v-`` exactly."""
    return v.to_fraction() - predecessor(v).to_fraction()


def midpoint_high(v: Flonum) -> Fraction:
    """``(v + v+)/2`` — the upper edge of the rounding range of ``v``."""
    return v.to_fraction() + gap_high(v) / 2


def midpoint_low(v: Flonum) -> Fraction:
    """``(v- + v)/2`` — the lower edge of the rounding range of ``v``."""
    return v.to_fraction() - gap_low(v) / 2


def rounding_interval(v: Flonum) -> Tuple[Fraction, Fraction]:
    """``(low, high)``: all reals strictly between them read back as ``v``."""
    return midpoint_low(v), midpoint_high(v)
