"""Exact models of IEEE-754 (and toy) floating-point representations.

This package is the representation substrate of the reproduction: it decodes
bit patterns, models values exactly over Python integers/rationals, and
provides the successor/predecessor gap arithmetic the printing algorithm is
built on (paper Section 2.1).
"""

from repro.floats.arith import add, div, fma, mul, sqrt, sub
from repro.floats.decompose import (
    FloatClass,
    bits_to_float,
    bits_to_float32,
    classify_fields,
    decode_fields,
    decompose_float,
    encode_components,
    float32_to_bits,
    float_to_bits,
    join_bits,
    split_bits,
)
from repro.floats.formats import (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    DECIMAL32,
    DECIMAL64,
    DECIMAL128,
    STANDARD_FORMATS,
    X87_80,
    FloatFormat,
)
from repro.floats.model import Flonum, FlonumKind, to_flonum
from repro.floats.ulp import (
    gap_high,
    gap_low,
    midpoint_high,
    midpoint_low,
    predecessor,
    rounding_interval,
    successor,
    ulp,
    ulp_exponent,
)

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "sqrt",
    "fma",
    "FloatClass",
    "FloatFormat",
    "Flonum",
    "FlonumKind",
    "to_flonum",
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "BINARY128",
    "X87_80",
    "DECIMAL32",
    "DECIMAL64",
    "DECIMAL128",
    "STANDARD_FORMATS",
    "bits_to_float",
    "bits_to_float32",
    "classify_fields",
    "decode_fields",
    "decompose_float",
    "encode_components",
    "float32_to_bits",
    "float_to_bits",
    "join_bits",
    "split_bits",
    "successor",
    "predecessor",
    "ulp",
    "ulp_exponent",
    "gap_high",
    "gap_low",
    "midpoint_high",
    "midpoint_low",
    "rounding_interval",
]
