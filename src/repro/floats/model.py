"""The :class:`Flonum` value type.

A ``Flonum`` is an exact, immutable model of one floating-point datum: a
(sign, mantissa, exponent) triple over Python integers tagged with its
:class:`~repro.floats.formats.FloatFormat`, or one of the special values
(±0.0, ±inf, NaN).  All algorithms in :mod:`repro.core` consume Flonums, so
they work identically for binary16 through binary128, x87 80-bit, and toy
formats — no host floating point is involved in any exact computation.
"""

from __future__ import annotations

from enum import Enum
from fractions import Fraction
from typing import Iterator, Tuple

from repro.errors import DecodeError, FormatError, NotRepresentableError, RangeError
from repro.floats.decompose import (
    FloatClass,
    bits_to_float,
    decode_fields,
    decompose_float,
    encode_components,
    join_bits,
    split_bits,
)
from repro.floats.formats import BINARY64, FloatFormat

__all__ = ["Flonum", "FlonumKind", "to_flonum"]


class FlonumKind(Enum):
    """Top-level kind of a Flonum."""

    FINITE = "finite"
    INFINITE = "infinite"
    NAN = "nan"


def to_flonum(x, fmt: FloatFormat = BINARY64) -> "Flonum":
    """Coerce a float/int/Flonum input to a :class:`Flonum`.

    Lives here (rather than the string API) so the conversion engine and
    :mod:`repro.core.api` share one coercion without an import cycle.
    """
    if isinstance(x, Flonum):
        return x
    if isinstance(x, bool):
        raise RangeError("booleans are not numbers here")
    if isinstance(x, int):
        # Exact or error: silently rounding 2**53 + 1 would defeat the
        # whole point of an accurate printer.
        return Flonum.from_int(x, fmt)
    if isinstance(x, float):
        return Flonum.from_float(x, fmt)
    raise RangeError(f"cannot print a {type(x).__name__}")


class Flonum:
    """One floating-point value of a given format, held exactly.

    Finite values satisfy ``v = (-1)**sign * f * b**e`` with ``f`` and ``e``
    integers in the canonical range of the format (see
    :meth:`FloatFormat.valid_finite`).
    """

    __slots__ = ("kind", "sign", "f", "e", "fmt")

    def __init__(self, kind: FlonumKind, sign: int, f: int, e: int,
                 fmt: FloatFormat):
        if sign not in (0, 1):
            raise DecodeError(f"sign must be 0 or 1, got {sign}")
        if kind is FlonumKind.FINITE and not fmt.valid_finite(f, e):
            raise DecodeError(
                f"(f={f}, e={e}) is not a canonical finite value of {fmt.name}"
            )
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "sign", sign)
        object.__setattr__(self, "f", f if kind is FlonumKind.FINITE else 0)
        object.__setattr__(self, "e", e if kind is FlonumKind.FINITE else 0)
        object.__setattr__(self, "fmt", fmt)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Flonum instances are immutable")

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------

    @classmethod
    def finite(cls, sign: int, f: int, e: int, fmt: FloatFormat) -> "Flonum":
        """A finite value from canonical components."""
        return cls(FlonumKind.FINITE, sign, f, e, fmt)

    @classmethod
    def _finite_trusted(cls, sign: int, f: int, e: int,
                        fmt: FloatFormat) -> "Flonum":
        """A finite value from components already proven canonical.

        Validation-free twin of :meth:`finite` for the conversion
        engine's hot paths, where the rounding routines clamp ``(f, e)``
        into the canonical range by construction and the validating
        constructor would dominate the conversion cost.  Every other
        caller should use :meth:`finite`.
        """
        self = _new_flonum(cls)
        _set_kind(self, FlonumKind.FINITE)
        _set_sign(self, sign)
        _set_f(self, f)
        _set_e(self, e)
        _set_fmt(self, fmt)
        return self

    @classmethod
    def from_raw(cls, sign: int, f: int, e: int, fmt: FloatFormat) -> "Flonum":
        """A finite value from *non-canonical* components.

        Normalizes ``f * b**e``: shifts the mantissa into the canonical
        range, adjusting the exponent.  Raises :class:`RangeError` if the
        value is not representable exactly (it would need rounding) or
        overflows the exponent range.
        """
        b = fmt.radix
        if f < 0:
            raise DecodeError("mantissa must be non-negative; use sign")
        if f == 0:
            return cls.zero(fmt, sign)
        # Grow small mantissas, shrink large ones.
        while f < fmt.hidden_limit and e > fmt.min_e:
            f *= b
            e -= 1
        while f >= fmt.mantissa_limit:
            if f % b:
                raise RangeError(
                    "value requires rounding; use the reader for inexact input"
                )
            f //= b
            e += 1
        if e > fmt.max_e:
            raise RangeError(f"exponent {e} overflows {fmt.name}")
        if e < fmt.min_e:
            # Only exact if the mantissa can absorb the difference.
            shift = fmt.min_e - e
            scale = b**shift
            if f % scale:
                raise RangeError(
                    "value underflows; use the reader for inexact input"
                )
            f //= scale
            e = fmt.min_e
        return cls.finite(sign, f, e, fmt)

    @classmethod
    def zero(cls, fmt: FloatFormat = BINARY64, sign: int = 0) -> "Flonum":
        return cls(FlonumKind.FINITE, sign, 0, fmt.min_e, fmt)

    @classmethod
    def infinity(cls, fmt: FloatFormat = BINARY64, sign: int = 0) -> "Flonum":
        return cls(FlonumKind.INFINITE, sign, 0, 0, fmt)

    @classmethod
    def nan(cls, fmt: FloatFormat = BINARY64) -> "Flonum":
        return cls(FlonumKind.NAN, 0, 0, 0, fmt)

    @classmethod
    def from_float(cls, x: float, fmt: FloatFormat = BINARY64) -> "Flonum":
        """Model a Python float exactly (binary64) or rounded (binary32)."""
        fcls, sign, f, e = decompose_float(x, fmt)
        if fcls is FloatClass.NAN:
            return cls.nan(fmt)
        if fcls is FloatClass.INFINITE:
            return cls.infinity(fmt, sign)
        return cls.finite(sign, f, e, fmt)

    @classmethod
    def from_bits(cls, bits: int, fmt: FloatFormat) -> "Flonum":
        """Decode a raw bit pattern of the format."""
        fcls, sign, f, e = decode_fields(*split_bits(bits, fmt), fmt)
        if fcls is FloatClass.NAN:
            return cls.nan(fmt)
        if fcls is FloatClass.INFINITE:
            return cls.infinity(fmt, sign)
        return cls.finite(sign, f, e, fmt)

    @classmethod
    def from_int(cls, n: int, fmt: FloatFormat = BINARY64) -> "Flonum":
        """An integer, exactly; raises if rounding would be needed."""
        return cls.from_raw(1 if n < 0 else 0, abs(n), 0, fmt)

    # ------------------------------------------------------------------
    # Predicates.
    # ------------------------------------------------------------------

    @property
    def is_finite(self) -> bool:
        return self.kind is FlonumKind.FINITE

    @property
    def is_nan(self) -> bool:
        return self.kind is FlonumKind.NAN

    @property
    def is_infinite(self) -> bool:
        return self.kind is FlonumKind.INFINITE

    @property
    def is_zero(self) -> bool:
        return self.is_finite and self.f == 0

    @property
    def is_negative(self) -> bool:
        return self.sign == 1

    @property
    def is_denormal(self) -> bool:
        """Denormalized: non-zero with an un-normalizable mantissa."""
        return (self.is_finite and self.f != 0
                and self.f < self.fmt.hidden_limit)

    @property
    def is_normal(self) -> bool:
        return self.is_finite and self.f >= self.fmt.hidden_limit

    # ------------------------------------------------------------------
    # Exact value access.
    # ------------------------------------------------------------------

    def to_fraction(self) -> Fraction:
        """The exact value as a rational number (finite values only)."""
        if not self.is_finite:
            raise NotRepresentableError(f"{self} has no rational value")
        mag = Fraction(self.f) * Fraction(self.fmt.radix) ** self.e
        return -mag if self.sign else mag

    def magnitude_fraction(self) -> Fraction:
        """``|v|`` as a rational number."""
        if not self.is_finite:
            raise NotRepresentableError(f"{self} has no rational value")
        return Fraction(self.f) * Fraction(self.fmt.radix) ** self.e

    def to_float(self) -> float:
        """The value as a Python float, exactly; raises if inexact.

        binary64/32/16 values convert exactly; larger formats raise unless
        the particular value happens to fit binary64.
        """
        if self.is_nan:
            return float("nan")
        if self.is_infinite:
            return float("-inf") if self.sign else float("inf")
        try:
            mirrored = Flonum.from_raw(self.sign, self.f, self.e, BINARY64)
        except RangeError as exc:
            raise NotRepresentableError(
                f"{self} is not exactly representable as binary64"
            ) from exc
        return bits_to_float(mirrored.to_bits())

    def to_bits(self) -> int:
        """Encode to the raw bit pattern of the format."""
        fmt = self.fmt
        if self.is_nan:
            # Canonical quiet NaN: exponent all ones, top mantissa bit set.
            quiet = 1 << (fmt.mantissa_field_width - 1)
            if fmt.explicit_leading_bit:
                quiet |= 1 << (fmt.precision - 1)
            return join_bits(0, fmt.max_biased_exponent, quiet, fmt)
        if self.is_infinite:
            mant = 0
            if fmt.explicit_leading_bit:
                mant = 1 << (fmt.precision - 1)
            return join_bits(self.sign, fmt.max_biased_exponent, mant, fmt)
        return encode_components(self.sign, self.f, self.e, fmt)

    # ------------------------------------------------------------------
    # Ordering and equality (IEEE semantics for NaN are *not* used here:
    # Flonums are value objects, so NaN == NaN and equality is structural
    # up to the usual -0.0 == +0.0 identification of magnitudes).
    # ------------------------------------------------------------------

    def _cmp_key(self):
        if self.is_nan:
            raise NotRepresentableError("NaN is unordered")
        if self.is_infinite:
            mag: object = Fraction(0)
            tier = 1
        else:
            mag = self.magnitude_fraction()
            tier = 0
        signed_tier = -tier if self.sign else tier
        return (signed_tier, -mag if self.sign else mag)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Flonum):
            return NotImplemented
        if self.is_nan or other.is_nan:
            return self.is_nan and other.is_nan
        if self.is_infinite or other.is_infinite:
            return (self.kind, self.sign) == (other.kind, other.sign)
        if self.is_zero and other.is_zero:
            return True  # -0.0 compares equal to +0.0, as IEEE orders them
        return (self.sign == other.sign
                and self.magnitude_fraction() == other.magnitude_fraction())

    def __lt__(self, other: "Flonum") -> bool:
        return self._cmp_key() < other._cmp_key()

    def __le__(self, other: "Flonum") -> bool:
        return self == other or self < other

    def __gt__(self, other: "Flonum") -> bool:
        return other < self

    def __ge__(self, other: "Flonum") -> bool:
        return self == other or other < self

    def __hash__(self) -> int:
        if self.is_finite:
            return hash(("flonum", self.sign if not self.is_zero else 0,
                          self.magnitude_fraction()))
        return hash(("flonum", self.kind, self.sign))

    def __bool__(self) -> bool:
        return not self.is_zero

    # ------------------------------------------------------------------
    # Structure helpers.
    # ------------------------------------------------------------------

    def components(self) -> Tuple[int, int, int]:
        """``(sign, f, e)`` of a finite value."""
        if not self.is_finite:
            raise NotRepresentableError(f"{self} has no finite components")
        return (self.sign, self.f, self.e)

    def abs(self) -> "Flonum":
        """The magnitude (sign cleared)."""
        return Flonum(self.kind, 0, self.f, self.e, self.fmt)

    def negate(self) -> "Flonum":
        if self.is_nan:
            return self
        return Flonum(self.kind, 1 - self.sign, self.f, self.e, self.fmt)

    def with_format(self, fmt: FloatFormat) -> "Flonum":
        """Re-tag the value in another format, exactly (raises if inexact)."""
        if self.is_nan:
            return Flonum.nan(fmt)
        if self.is_infinite:
            return Flonum.infinity(fmt, self.sign)
        if self.fmt.radix != fmt.radix and self.f != 0:
            raise FormatError("cannot exactly retarget across radices")
        return Flonum.from_raw(self.sign, self.f, self.e, fmt)

    def __repr__(self) -> str:
        if self.is_nan:
            return f"Flonum.nan({self.fmt.name})"
        if self.is_infinite:
            return f"Flonum({'-' if self.sign else '+'}inf, {self.fmt.name})"
        sign = "-" if self.sign else "+"
        return (f"Flonum({sign}{self.f} * {self.fmt.radix}**{self.e}, "
                f"{self.fmt.name})")

    # ------------------------------------------------------------------
    # Enumeration (used by exhaustive tests over toy formats).
    # ------------------------------------------------------------------

    @classmethod
    def enumerate_positive(cls, fmt: FloatFormat,
                           include_denormals: bool = True
                           ) -> Iterator["Flonum"]:
        """Yield every positive finite value of the format in increasing order."""
        if include_denormals:
            for f in range(1, fmt.hidden_limit):
                yield cls.finite(0, f, fmt.min_e, fmt)
        for e in range(fmt.min_e, fmt.max_e + 1):
            for f in range(fmt.hidden_limit, fmt.mantissa_limit):
                yield cls.finite(0, f, e, fmt)


#: Bound slot descriptors for :meth:`Flonum._finite_trusted` — writing
#: through them skips the ``object.__setattr__`` lookup machinery, which
#: is measurable at the conversion engine's per-read budget.
_new_flonum = object.__new__
_set_kind = Flonum.kind.__set__  # type: ignore[attr-defined]
_set_sign = Flonum.sign.__set__  # type: ignore[attr-defined]
_set_f = Flonum.f.__set__  # type: ignore[attr-defined]
_set_e = Flonum.e.__set__  # type: ignore[attr-defined]
_set_fmt = Flonum.fmt.__set__  # type: ignore[attr-defined]
