"""Command-line interface: ``repro-print`` / ``python -m repro``.

Self-hosted end to end: input strings are parsed with the package's own
accurate reader and printed with the paper's algorithms — the host's
float parsing/printing is never consulted.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.api import _USE_DEFAULT, format_fixed, format_shortest
from repro.core.rounding import ReaderMode, TieBreak
from repro.core.scaling import scale_estimate, scale_float_log, scale_iterative
from repro.floats.formats import STANDARD_FORMATS
from repro.format.hexfloat import format_hex, parse_hex
from repro.format.notation import NotationOptions
from repro.reader.exact import read_decimal

_SCALERS = {
    "estimate": scale_estimate,
    "float-log": scale_float_log,
    "iterative": scale_iterative,
}

_MODES = {m.value: m for m in ReaderMode}
_TIES = {t.value: t for t in TieBreak}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-print",
        description="Print floating-point numbers quickly and accurately "
                    "(Burger & Dybvig, PLDI 1996).",
    )
    parser.add_argument("values", nargs="*",
                        help="decimal literals to convert (read with the "
                             "package's accurate reader); with no values, "
                             "literals are read from stdin, one per line")
    parser.add_argument("--format", default="binary64",
                        choices=sorted(STANDARD_FORMATS),
                        help="floating-point format to round the input to")
    parser.add_argument("--base", type=int, default=10,
                        help="output base, 2..36 (default 10)")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--digits", type=int, metavar="N",
                       help="fixed format: N significant digit positions")
    group.add_argument("--decimals", type=int, metavar="N",
                       help="fixed format: N digits after the point")
    group.add_argument("--position", type=int, metavar="J",
                       help="fixed format: stop at weight base**J")
    parser.add_argument("--reader-mode", default="nearest-even",
                        choices=sorted(_MODES),
                        help="rounding behaviour assumed of whoever reads "
                             "the output (free format only)")
    parser.add_argument("--tie", default="up", choices=sorted(_TIES),
                        help="printer-side tie strategy")
    parser.add_argument("--scaler", default=None,
                        choices=sorted(_SCALERS),
                        help="scaling algorithm (free format only); "
                             "selecting one forces the exact path, the "
                             "default routes through the tiered engine")
    parser.add_argument("--no-engine", action="store_true",
                        help="disable the tiered engine on both sides: "
                             "inputs are read with the exact one-shot "
                             "reader and free/fixed output always runs "
                             "the exact algorithm (with the estimate "
                             "scaler unless --scaler says otherwise)")
    parser.add_argument("--read", action="store_true",
                        help="report the value each literal reads to "
                             "(sign, significand, exponent) and which "
                             "reader tier resolved it, instead of "
                             "printing the value")
    parser.add_argument("--engine-stats", action="store_true",
                        help="after printing, report tier/cache counters "
                             "of the conversion engine on stderr")
    parser.add_argument("--style", default="auto",
                        choices=["auto", "positional", "scientific",
                                 "engineering"],
                        help="notation style")
    parser.add_argument("--python-repr", action="store_true",
                        help="render with CPython repr surface syntax")
    parser.add_argument("--group", metavar="CHAR", default="",
                        help="digit-group separator for positional output")
    parser.add_argument("--hex", action="store_true",
                        help="print C99 hex-float notation instead")
    parser.add_argument("--fast", action="store_true",
                        help="use the Grisu3/counted fast paths with exact "
                             "fallback (free/relative fixed format only)")
    parser.add_argument("--bulk", action="store_true",
                        help="columnar pipeline: read every literal, then "
                             "format the whole column through the bulk "
                             "serving layer (dedup interning, batch emit); "
                             "output is byte-identical to the scalar path")
    parser.add_argument("--buffer", action="store_true",
                        help="byte-plane pipeline: treat stdin (or the "
                             "joined values) as one delimited byte "
                             "buffer, round-trip it through "
                             "parse_buffer/format_buffer without ever "
                             "materializing per-row strings; output is "
                             "byte-identical to --bulk")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="with --bulk/--buffer: shard the column "
                             "across N worker processes (default 1, "
                             "in-process)")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        metavar="SEED",
                        help="with --bulk: arm the deterministic smoke "
                             "fault plan with SEED while the pipeline "
                             "runs; output must still be byte-identical")
    parser.add_argument("--serve", action="store_true",
                        help="run the serving daemon instead of "
                             "converting: listen on --host/--port and "
                             "serve format/read byte planes over the "
                             "framed protocol (see docs/serving.md); "
                             "--jobs sizes each pool")
    parser.add_argument("--host", default="127.0.0.1",
                        help="with --serve: listen address")
    parser.add_argument("--port", type=int, default=0,
                        help="with --serve: listen port (0 picks a free "
                             "one, printed on startup)")
    parser.add_argument("--tiers", default=None, metavar="LANES",
                        help="comma-separated engine lane order, e.g. "
                             "'tier0,schubfach' or 'lemire'; write lanes "
                             "(tier0, grisu3, schubfach) and read lanes "
                             "(tier0, window, lemire) may be mixed in one "
                             "list and are split by direction; output "
                             "bytes are identical for every order")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="with --bulk/--buffer/--serve: warm-start "
                             "snapshot built by tools/warm_snapshot.py "
                             "(precomputed tables + memo + hot "
                             "dictionary); a corrupt or stale file "
                             "degrades to a cold start, output bytes "
                             "are identical either way")
    return parser


def _reject_scalar_flags(args, parser: argparse.ArgumentParser,
                         pipeline: str) -> None:
    """Columnar pipelines only do shortest-decimal round trips."""
    for flag, name in ((args.digits is not None, "--digits"),
                       (args.decimals is not None, "--decimals"),
                       (args.position is not None, "--position"),
                       (args.hex, "--hex"), (args.fast, "--fast"),
                       (args.read, "--read"),
                       (args.no_engine, "--no-engine"),
                       (args.scaler is not None, "--scaler"),
                       (args.base != 10, "--base"),
                       (args.style != "auto", "--style"),
                       (args.python_repr, "--python-repr"),
                       (args.group != "", "--group")):
        if flag:
            parser.error(f"{pipeline} is the shortest-decimal columnar "
                         f"pipeline; {name} is not supported with it")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")


def _run_buffer(args, parser: argparse.ArgumentParser, fmt, out,
                tiers) -> int:
    """The ``--buffer`` pipeline: one delimited byte plane, round-
    tripped through ``parse_buffer``/``format_buffer`` — per-row
    strings are never materialized on either side."""
    _reject_scalar_flags(args, parser, "--buffer")
    from repro.errors import ReproError
    from repro.serve import format_bulk, read_bulk

    if args.values:
        plane = "\n".join(args.values) + "\n"
    else:
        plane = sys.stdin.buffer.read()
    if not plane:
        return 0
    mode = _MODES[args.reader_mode]
    try:
        # read_bulk routes byte/str planes through parse_buffer, and
        # format_bulk emits through format_buffer.
        bits = read_bulk(plane, fmt, out="bits", jobs=args.jobs,
                         mode=mode, snapshot=args.snapshot, tiers=tiers)
        payload = format_bulk(bits, fmt, jobs=args.jobs, mode=mode,
                              tie=_TIES[args.tie],
                              snapshot=args.snapshot, tiers=tiers)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=out)
        return 1
    out.write(payload.decode("ascii"))
    if args.engine_stats:
        from repro.engine import default_engine

        for name, count in default_engine().stats().items():
            print(f"{name}: {count}", file=sys.stderr)
    return 0


def _run_bulk(args, parser: argparse.ArgumentParser, fmt, out,
              tiers) -> int:
    """The ``--bulk`` pipeline: literals → bits → delimited payload."""
    _reject_scalar_flags(args, parser, "--bulk")
    import contextlib

    from repro.errors import ReproError
    from repro.serve import format_bulk, read_bulk

    texts = list(args.values)
    if not texts:
        texts = [line.strip() for line in sys.stdin if line.strip()]
    if not texts:
        return 0
    mode = _MODES[args.reader_mode]
    if args.chaos_seed is not None:
        from repro import faults

        arming = faults.armed(faults.smoke_plan(args.chaos_seed))
    else:
        arming = contextlib.nullcontext()
    try:
        with arming:
            bits = read_bulk(texts, fmt, out="bits", jobs=args.jobs,
                             mode=mode, snapshot=args.snapshot,
                             tiers=tiers)
            payload = format_bulk(bits, fmt, jobs=args.jobs, mode=mode,
                                  tie=_TIES[args.tie],
                                  snapshot=args.snapshot, tiers=tiers)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=out)
        return 1
    out.write(payload.decode("ascii"))
    if args.engine_stats:
        from repro.engine import default_engine

        for name, count in default_engine().stats().items():
            print(f"{name}: {count}", file=sys.stderr)
    return 0


def _read_description(value, tier: str) -> str:
    """One-line ``--read`` report: the flonum's components + the tier."""
    if value.is_nan:
        return f"nan tier={tier}"
    if value.is_infinite:
        return f"sign={value.sign} inf tier={tier}"
    if value.is_zero:
        return f"sign={value.sign} zero tier={tier}"
    return f"sign={value.sign} f={value.f} e={value.e} tier={tier}"


def run(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    fmt = STANDARD_FORMATS[args.format]
    tiers = None
    if args.tiers is not None:
        if args.no_engine:
            parser.error("--tiers orders the tiered engine's lanes; "
                         "it conflicts with --no-engine")
        from repro.engine import split_tier_names
        from repro.errors import ReproError

        try:
            tiers = split_tier_names(args.tiers.split(","))
        except ReproError as exc:
            parser.error(str(exc))
    if args.serve:
        if args.bulk or args.buffer or args.values:
            parser.error("--serve runs the daemon; it takes no values "
                         "and no columnar pipeline flags")
        from repro.serve.daemon import main as serve_main

        serve_args = ["--host", args.host, "--port", str(args.port),
                      "--jobs", str(args.jobs)]
        if args.snapshot is not None:
            serve_args += ["--snapshot", args.snapshot]
        if args.tiers is not None:
            serve_args += ["--tiers", args.tiers]
        return serve_main(serve_args)
    if args.chaos_seed is not None and not args.bulk:
        parser.error("--chaos-seed only applies to the --bulk pipeline")
    if args.snapshot is not None and not (args.bulk or args.buffer):
        parser.error("--snapshot warm-starts the columnar/serving "
                     "paths; it requires --bulk, --buffer or --serve")
    if args.bulk and args.buffer:
        parser.error("--bulk and --buffer are alternative columnar "
                     "pipelines; pick one")
    if args.buffer:
        return _run_buffer(args, parser, fmt, out, tiers)
    if args.bulk:
        return _run_bulk(args, parser, fmt, out, tiers)
    if tiers is not None:
        from repro.engine import Engine

        scalar_engine = Engine(tier_order=tiers[0],
                               read_tier_order=tiers[1])
    else:
        scalar_engine = None
    opts = NotationOptions(style=args.style, python_repr=args.python_repr,
                           group_char=args.group)
    fixed = any(a is not None
                for a in (args.digits, args.decimals, args.position))
    status = 0
    values = args.values
    if not values:
        values = (line.strip() for line in sys.stdin if line.strip())
    for text in values:
        try:
            if text.lower().startswith(("0x", "-0x", "+0x")):
                value = parse_hex(text, fmt, _MODES[args.reader_mode])
                tier = "hex"
            elif args.no_engine:
                value = read_decimal(text, fmt, _MODES[args.reader_mode])
                tier = "exact"
            elif scalar_engine is not None:
                result = scalar_engine.reader.read_result(
                    text, fmt, _MODES[args.reader_mode])
                value, tier = result.value, result.tier
            else:
                from repro.engine.reader import default_read_engine

                result = default_read_engine().read_result(
                    text, fmt, _MODES[args.reader_mode])
                value, tier = result.value, result.tier
            if args.read:
                rendered = _read_description(value, tier)
            elif args.hex:
                rendered = format_hex(value)
            elif args.fast and not fixed:
                from repro.fastpath import shortest_fast

                from repro.format.notation import render_shortest

                if value.is_nan or value.is_infinite or value.is_zero:
                    rendered = format_shortest(value, options=opts)
                else:
                    digits = shortest_fast(value.abs(), base=args.base)
                    rendered = (("-" if value.is_negative else "")
                                + render_shortest(digits, opts))
            elif args.fast and args.digits is not None:
                from repro.fastpath import fixed_fast

                from repro.format.notation import render_shortest

                if value.is_nan or value.is_infinite or value.is_zero:
                    rendered = format_fixed(
                        value, ndigits=args.digits, options=opts)
                else:
                    digits = fixed_fast(value.abs(), args.digits, args.base)
                    rendered = (("-" if value.is_negative else "")
                                + render_shortest(digits, opts))
            elif fixed:
                if args.no_engine:
                    fixed_engine = None
                elif scalar_engine is not None:
                    fixed_engine = scalar_engine
                else:
                    fixed_engine = _USE_DEFAULT
                rendered = format_fixed(
                    value, position=args.position, ndigits=args.digits,
                    decimals=args.decimals, base=args.base,
                    tie=_TIES[args.tie], options=opts,
                    engine=fixed_engine)
            else:
                scaler = _SCALERS[args.scaler] if args.scaler else None
                if args.no_engine and scaler is None:
                    scaler = scale_estimate
                rendered = format_shortest(
                    value, base=args.base, mode=_MODES[args.reader_mode],
                    tie=_TIES[args.tie], scaler=scaler,
                    options=opts,
                    engine=(_USE_DEFAULT if scalar_engine is None
                            else scalar_engine))
            print(rendered, file=out)
        except Exception as exc:  # surface per-value errors, keep going
            print(f"error: {text!r}: {exc}", file=out)
            status = 1
    if args.engine_stats:
        if scalar_engine is not None:
            stats_engine = scalar_engine
        else:
            from repro.engine import default_engine

            stats_engine = default_engine()
        for name, count in stats_engine.stats().items():
            print(f"{name}: {count}", file=sys.stderr)
    return status


def main() -> None:  # pragma: no cover - direct console entry
    raise SystemExit(run())
