"""Workload generators: the Schryer set and curated edge corpora."""

from repro.workloads.corpus import (
    all_positive_finite,
    boundary_neighbourhood,
    decimal_ties,
    denormals,
    power_boundaries,
    torture_floats,
)
from repro.workloads.schryer import (
    PAPER_CORPUS_SIZE,
    corpus,
    exponent_sweep,
    mantissa_patterns,
    paper_corpus,
)

__all__ = [
    "all_positive_finite",
    "boundary_neighbourhood",
    "decimal_ties",
    "denormals",
    "power_boundaries",
    "torture_floats",
    "PAPER_CORPUS_SIZE",
    "corpus",
    "exponent_sweep",
    "mantissa_patterns",
    "paper_corpus",
]
