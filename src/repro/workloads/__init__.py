"""Workload generators: the Schryer set and curated edge corpora."""

from repro.workloads.corpus import (
    all_positive_finite,
    boundary_neighbourhood,
    decimal_ties,
    denormals,
    duplicated_random,
    power_boundaries,
    torture_floats,
    uniform_random,
    zipf_random,
)
from repro.workloads.schryer import (
    PAPER_CORPUS_SIZE,
    corpus,
    exponent_sweep,
    mantissa_patterns,
    paper_corpus,
)

__all__ = [
    "all_positive_finite",
    "boundary_neighbourhood",
    "decimal_ties",
    "denormals",
    "duplicated_random",
    "power_boundaries",
    "torture_floats",
    "uniform_random",
    "zipf_random",
    "PAPER_CORPUS_SIZE",
    "corpus",
    "exponent_sweep",
    "mantissa_patterns",
    "paper_corpus",
]
