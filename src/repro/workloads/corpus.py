"""Hand-curated edge-case corpora for tests and examples.

Where the Schryer set stresses representation structure statistically,
these corpora name the individually interesting values: denormals, power
boundaries, decimal-tie midpoints (the paper's ``1e23``), repr-torture
classics, and the exhaustive enumeration used with toy formats.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.errors import ReproError
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.floats.ulp import predecessor, successor

__all__ = [
    "power_boundaries",
    "denormals",
    "decimal_ties",
    "torture_floats",
    "uniform_random",
    "duplicated_random",
    "zipf_random",
    "all_positive_finite",
    "boundary_neighbourhood",
]


def uniform_random(n: int, fmt: FloatFormat = BINARY64, seed: int = 2024,
                   signed: bool = False) -> List[Flonum]:
    """``n`` uniform random finite non-zero bit patterns of the format.

    The standard corpus of the fast-path literature (Grisu, Ryu, ...):
    every finite value equally likely, which spreads exponents across the
    full range and digit counts toward the 17-digit worst case.
    Deterministic for a given ``seed``.
    """
    rng = random.Random(seed)
    bits_total = fmt.total_bits
    sign_mask = (1 << (bits_total - 1)) - 1
    out: List[Flonum] = []
    while len(out) < n:
        bits = rng.getrandbits(bits_total)
        if not signed:
            bits &= sign_mask
        try:
            v = Flonum.from_bits(bits, fmt)
        except ReproError:  # non-canonical encodings (x87 pseudo-values)
            continue
        if v.is_finite and not v.is_zero:
            out.append(v)
    return out


def duplicated_random(n: int, distinct: int, fmt: FloatFormat = BINARY64,
                      seed: int = 2024, signed: bool = False,
                      skew: float = 0.0) -> List[Flonum]:
    """``n`` draws *with replacement* from a ``distinct``-element
    uniform-random universe — the duplicate-bearing corpus real
    telemetry looks like (sensor streams, column dumps, log replays).

    ``skew = 0`` draws every universe element with equal probability
    (average duplication factor ``n / distinct``); ``skew > 0`` weights
    rank ``k`` by ``1 / (k + 1)**skew``, the Zipf-like head-heavy shape
    where a few values dominate the stream.  Deterministic for a given
    ``seed``; the universe is exactly ``uniform_random(distinct, fmt,
    seed, signed)``.
    """
    if distinct < 1:
        raise ReproError("distinct must be >= 1")
    universe = uniform_random(distinct, fmt, seed, signed)
    rng = random.Random(seed ^ 0x5DEECE66D)
    if skew:
        weights = [1.0 / (k + 1) ** skew for k in range(len(universe))]
        return rng.choices(universe, weights=weights, k=n)
    return rng.choices(universe, k=n)


def zipf_random(n: int, distinct: int, s: float = 1.3,
                fmt: FloatFormat = BINARY64, seed: int = 2024,
                signed: bool = False) -> List[Flonum]:
    """Zipf-distributed draws over a random universe:
    :func:`duplicated_random` with rank weights ``1/(k+1)**s``."""
    return duplicated_random(n, distinct, fmt, seed, signed, skew=s)


def power_boundaries(fmt: FloatFormat = BINARY64, lo: int = -40,
                     hi: int = 40) -> List[Flonum]:
    """Values at and adjacent to radix powers (the uneven-gap cases)."""
    out: List[Flonum] = []
    b = fmt.radix
    for e in range(max(lo, fmt.min_e), min(hi, fmt.max_e) + 1):
        v = Flonum.finite(0, fmt.hidden_limit, e, fmt)
        out.append(v)
        out.append(successor(v))
        pred = predecessor(v)
        if not pred.is_zero:
            out.append(pred)
    return out


def denormals(fmt: FloatFormat = BINARY64, count: int = 64) -> List[Flonum]:
    """The smallest denormals plus the largest, and a spread between."""
    limit = fmt.hidden_limit - 1
    if limit <= 0:
        return []
    picks = sorted({1, 2, 3, limit, limit - 1, limit // 2, limit // 3}
                   | {max(1, limit // count * i) for i in range(1, count)})
    return [Flonum.finite(0, f, fmt.min_e, fmt)
            for f in picks if 1 <= f <= limit]


def decimal_ties(fmt: FloatFormat = BINARY64) -> List[Flonum]:
    """Doubles whose rounding boundary is exactly a short decimal.

    The flagship case is the pair around ``1e23`` (paper Section 3.1):
    the midpoint between them is exactly ``10**23``, so only a reader-
    rounding-aware printer produces the one-digit output.  We search a
    band of decimal powers for the same structure.
    """
    from repro.reader.exact import round_rational

    out: List[Flonum] = []
    for t in range(1, 60):
        below = round_rational(10**t, 1, fmt, negative=False)
        for v in (below, successor(below) if not below.is_infinite else below):
            if v.is_finite and not v.is_zero:
                out.append(v)
    return out


def torture_floats(fmt: FloatFormat = BINARY64) -> List[Flonum]:
    """Classic hard cases from the float-printing literature."""
    values: List[Flonum] = []
    floats = [
        5e-324, 2.2250738585072014e-308, 2.2250738585072011e-308,
        1.7976931348623157e308, 4.9406564584124654e-324,
        9.007199254740992e15, 9.007199254740993e15,  # 2**53 boundary
        0.1, 0.2, 0.3, 1 / 3, 2 / 3, 1e22, 1e23, 8.98846567431158e307,
        3.141592653589793, 2.718281828459045,
        5.764607523034235e39, 1.152921504606847e18,  # Steele-White hards
        0.6822871999174, 7.8459735791271921e65,  # Loitsch Grisu hards
        3.5844466002796428e298, 1.1534338559399817e-308,
    ]
    if fmt is BINARY64 or fmt == BINARY64:
        for x in floats:
            values.append(Flonum.from_float(x))
    else:
        # Retarget the structurally interesting ones where exact.
        for x in floats:
            try:
                values.append(Flonum.from_float(x).with_format(fmt))
            except Exception:
                continue
    return values


def all_positive_finite(fmt: FloatFormat,
                        include_denormals: bool = True) -> Iterator[Flonum]:
    """Every positive finite value — exhaustive testing on toy formats."""
    return Flonum.enumerate_positive(fmt, include_denormals)


def boundary_neighbourhood(v: Flonum, radius: int = 3) -> List[Flonum]:
    """``v`` and its ``radius`` neighbours on each side (clipped)."""
    out = [v]
    cur = v
    for _ in range(radius):
        if cur.is_zero:
            break
        cur = predecessor(cur)
        if cur.is_zero:
            break
        out.insert(0, cur)
    cur = v
    for _ in range(radius):
        cur = successor(cur)
        if cur.is_infinite:
            break
        out.append(cur)
    return out
