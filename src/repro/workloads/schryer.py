"""Schryer-style floating-point test vectors (the paper's reference [4]).

The paper's measurements run over "a set of 250,680 positive normalized
IEEE double-precision floating-point numbers … generated according to the
forms Schryer developed for testing floating-point units".  Schryer's
forms stress the boundary structure of the representation: mantissas that
are all ones, a single one, alternating patterns, values adjacent to
powers of the radix — crossed with exponents spanning the full range.

We reproduce the *construction*, deterministically: a pattern set of
mantissas crossed with an exponent sweep, padded with seeded pseudo-random
mantissas.  ``paper_corpus`` yields exactly 250,680 values for binary64;
``corpus`` scales the same construction to any size for CI-friendly runs.
"""

from __future__ import annotations

import random
from typing import List

from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum

__all__ = [
    "mantissa_patterns",
    "exponent_sweep",
    "corpus",
    "paper_corpus",
    "PAPER_CORPUS_SIZE",
]

#: Size of the test set used throughout the paper's Tables 2 and 3.
PAPER_CORPUS_SIZE = 250_680


def mantissa_patterns(fmt: FloatFormat = BINARY64) -> List[int]:
    """Schryer's mantissa forms for a radix-2 format, normalized.

    Includes: the extremes ``2**(p-1)`` and ``2**p - 1`` and their
    neighbours, single-bit patterns ``2**(p-1) + 2**i``, all-ones runs
    ``2**p - 2**i``, and alternating bit fills.
    """
    p = fmt.precision
    lo = fmt.hidden_limit
    hi = fmt.mantissa_limit - 1
    patterns = {lo, lo + 1, lo + 2, hi, hi - 1, hi - 2}
    for i in range(p - 1):
        patterns.add(lo + (1 << i))  # single extra bit
        patterns.add(hi - ((1 << i) - 1))  # trailing-ones stripped
        patterns.add(lo + ((1 << i) - 1))  # trailing-ones run
    # Alternating fills 1010… and 1100… below the hidden bit.
    alt1 = int("10" * ((p + 1) // 2), 2)
    alt2 = int("1100" * ((p + 3) // 4), 2)
    for pat in (alt1, alt2, ~alt1, ~alt2):
        patterns.add(lo | (pat & (lo - 1)))
    return sorted(x for x in patterns if lo <= x <= hi)


def exponent_sweep(fmt: FloatFormat = BINARY64, count: int = 0) -> List[int]:
    """``count`` exponents spread evenly over the normal range (all if 0)."""
    lo, hi = fmt.min_e, fmt.max_e
    total = hi - lo + 1
    if count <= 0 or count >= total:
        return list(range(lo, hi + 1))
    step = total / count
    return [lo + int(i * step) for i in range(count)]


def _random_mantissas(fmt: FloatFormat, n: int, seed: int) -> List[int]:
    rng = random.Random(seed)
    lo, hi = fmt.hidden_limit, fmt.mantissa_limit - 1
    return [rng.randrange(lo, hi + 1) for _ in range(n)]


def corpus(n: int, fmt: FloatFormat = BINARY64, seed: int = 19960501
           ) -> List[Flonum]:
    """A deterministic Schryer-style corpus of ``n`` positive normals.

    Pattern mantissas are crossed with an exponent sweep first; any
    remainder is filled with seeded random normal values so every size
    keeps the boundary-heavy character of the original test set.
    """
    if n <= 0:
        return []
    pats = mantissa_patterns(fmt)
    exps = exponent_sweep(fmt)
    out: List[Flonum] = []
    # Walk the full pattern x exponent product space with a stride
    # coprime to its size: any prefix then covers both axes densely and
    # without the aliasing a nested loop would introduce (a fixed
    # exponent stride can systematically miss the log-fraction bands the
    # estimator experiments measure).
    total = len(pats) * len(exps)
    stride = _coprime_stride(total)
    idx = 0
    for _ in range(min(n, total)):
        f = pats[idx // len(exps)]
        e = exps[idx % len(exps)]
        out.append(Flonum.finite(0, f, e, fmt))
        idx = (idx + stride) % total
    rng = random.Random(seed)
    lo, hi = fmt.hidden_limit, fmt.mantissa_limit - 1
    while len(out) < n:
        f = rng.randrange(lo, hi + 1)
        e = rng.randrange(fmt.min_e, fmt.max_e + 1)
        out.append(Flonum.finite(0, f, e, fmt))
    return out


def _coprime_stride(total: int) -> int:
    """A golden-ratio-sized stride coprime to ``total``."""
    import math

    stride = max(1, int(total * 0.6180339887498949))
    while math.gcd(stride, total) != 1:
        stride += 1
    return stride


def paper_corpus(fmt: FloatFormat = BINARY64) -> List[Flonum]:
    """The full 250,680-value corpus used for Tables 2 and 3."""
    return corpus(PAPER_CORPUS_SIZE, fmt)
