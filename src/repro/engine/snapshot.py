"""Warm-start snapshots: persisted tables, memo contents and hot values.

Production fleets don't start cold.  A snapshot captures the three
things a fresh process would otherwise re-derive before its first fast
conversion:

* the expensive portion of the per-format :class:`FormatTables` (the
  per-binary-exponent Grisu power list — one correctly rounded 64-bit
  power of ten per normalized exponent, ~2100 entries for binary64);
* selected LRU memo contents from a donor engine (both directions:
  ``(f, e) -> (k, digits)`` shortest results and ``text -> Flonum``
  read results), re-keyed on *stable* identities — format name, base,
  reader-mode value, tie value — never on process-local ``id()``s or
  arrival-order context ints;
* a **hot-values dictionary**: precomputed shortest-repr results for
  the top-N keys of a zipf corpus, consulted after the memo and before
  tier 0, never evicted (built offline by ``tools/warm_snapshot.py``).

Container format (little-endian)::

    magic    8 bytes   b"RPRSNAP\\x00"
    version  u16       SNAPSHOT_VERSION
    reserved u16       0
    length   u32       payload byte count
    crc      u32       zlib.crc32 of the payload
    payload  length    zlib-compressed JSON

Robustness contract: any defect — missing file, short read, flipped
CRC bit, unknown version, a payload naming formats this build does not
know or whose parameters differ — raises :class:`SnapshotError`, and
every consumer (``Engine``, ``ReadEngine``, ``BulkPool``) treats that
as *fall back to cold build and count the fault*, never as wrong bytes
and never as a crash.

The shared-memory hot plane (:class:`HotPlane`) is the cross-process
face of the hot dictionary: one read-only open-addressed hash table in
a ``multiprocessing.shared_memory`` segment, written once by the pool
parent and probed lock-free by every worker.  Keys are the exact bit
patterns of the format (never ambiguous across formats — a binary32
pattern cannot satisfy a binary64 probe because the plane carries its
format name and each engine context gets its own plane); a CRC over
the whole plane is validated once at attach, so a worker that maps a
segment mid-rewrite rejects it instead of serving torn entries.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.rounding import ReaderMode, TieBreak
from repro.errors import ReproError, SnapshotError
from repro.floats.formats import STANDARD_FORMATS, FloatFormat
from repro.floats.model import Flonum
from repro.engine.tables import (
    GRISU_MAX_PRECISION,
    FormatTables,
    install_tables,
    tables_for,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "Snapshot",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "save_snapshot",
    "load_snapshot",
    "build_snapshot",
    "apply_snapshot",
    "apply_read_snapshot",
    "HotPlane",
    "bits_encoder",
]

SNAPSHOT_VERSION = 1

_MAGIC = b"RPRSNAP\x00"
_HEADER = struct.Struct("<8sHHII")

#: Finite flonum kinds as stored in the read-memo section.
_KIND_FINITE, _KIND_INF, _KIND_NAN = "f", "i", "n"


def _fingerprint(fmt: FloatFormat) -> dict:
    """Stable identity of a format *and* of the table build that
    depends on it — two builds agreeing on this produce identical
    tables, so a snapshot matching it can never be stale."""
    return {
        "radix": fmt.radix,
        "precision": fmt.precision,
        "exponent_width": fmt.exponent_width,
        "emin": fmt.emin,
        "emax": fmt.emax,
        "explicit_leading_bit": fmt.explicit_leading_bit,
        "grisu_max_precision": GRISU_MAX_PRECISION,
    }


class Snapshot:
    """In-memory form of one warm-start snapshot (plain data).

    Attributes:
        base: Output base the tables and memo entries were built for.
        formats: Format names covered, in order.
        tables: ``{name: {"fingerprint", "grisu_e_min", "grisu_powers"}}``.
        write_memo: ``[name, mode, tie, f, e, k, body]`` rows (shortest
            results; recency order, oldest first).
        read_memo: ``[name, mode, text, kind, sign, f, e, tier]`` rows.
        hot: same row shape as ``write_memo`` — the never-evicted
            hot-values dictionary.
        meta: free-form provenance (corpus parameters, counts).
    """

    __slots__ = ("base", "formats", "tables", "write_memo", "read_memo",
                 "hot", "meta")

    def __init__(self, base: int = 10,
                 formats: Optional[List[str]] = None,
                 tables: Optional[dict] = None,
                 write_memo: Optional[list] = None,
                 read_memo: Optional[list] = None,
                 hot: Optional[list] = None,
                 meta: Optional[dict] = None):
        self.base = base
        self.formats = list(formats or [])
        self.tables = dict(tables or {})
        self.write_memo = list(write_memo or [])
        self.read_memo = list(read_memo or [])
        self.hot = list(hot or [])
        self.meta = dict(meta or {})

    def payload(self) -> dict:
        return {
            "base": self.base,
            "formats": self.formats,
            "tables": self.tables,
            "write_memo": self.write_memo,
            "read_memo": self.read_memo,
            "hot": self.hot,
            "meta": self.meta,
        }


# ----------------------------------------------------------------------
# Container encode / decode.
# ----------------------------------------------------------------------


def snapshot_to_bytes(snap: Snapshot) -> bytes:
    """Serialize to the versioned, CRC-checksummed container."""
    payload = zlib.compress(
        json.dumps(snap.payload(), separators=(",", ":")).encode("ascii"))
    header = _HEADER.pack(_MAGIC, SNAPSHOT_VERSION, 0, len(payload),
                          zlib.crc32(payload))
    return header + payload


def snapshot_from_bytes(data: bytes) -> Snapshot:
    """Parse and validate a container; :class:`SnapshotError` on any
    defect (truncation, bad magic, unknown version, CRC mismatch,
    malformed payload)."""
    if len(data) < _HEADER.size:
        raise SnapshotError(
            f"snapshot truncated: {len(data)} bytes < {_HEADER.size}-byte"
            f" header")
    magic, version, _reserved, length, crc = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise SnapshotError(f"bad snapshot magic {magic!r}")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version} != supported {SNAPSHOT_VERSION}")
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise SnapshotError(
            f"snapshot truncated: payload {len(payload)} bytes, header"
            f" says {length}")
    if zlib.crc32(payload) != crc:
        raise SnapshotError("snapshot CRC mismatch (corrupt or torn write)")
    try:
        doc = json.loads(zlib.decompress(payload))
        snap = Snapshot(base=int(doc["base"]),
                        formats=list(doc["formats"]),
                        tables=dict(doc["tables"]),
                        write_memo=list(doc["write_memo"]),
                        read_memo=list(doc["read_memo"]),
                        hot=list(doc["hot"]),
                        meta=dict(doc.get("meta", {})))
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(f"malformed snapshot payload: {exc!r}") from exc
    return snap


def save_snapshot(snap: Snapshot, path: "os.PathLike") -> int:
    """Write atomically (temp file + rename, so a reader never sees a
    half-written snapshot at the final path); returns the byte count."""
    data = snapshot_to_bytes(snap)
    path = os.fspath(path)
    tmp = path + ".tmp." + str(os.getpid())
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return len(data)


def load_snapshot(path: "os.PathLike") -> Snapshot:
    """Read and validate a snapshot file; :class:`SnapshotError` if it
    is missing, unreadable or fails validation."""
    try:
        with open(os.fspath(path), "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot: {exc}") from exc
    return snapshot_from_bytes(data)


# ----------------------------------------------------------------------
# Building snapshots.
# ----------------------------------------------------------------------


def _resolve_format(name: str) -> FloatFormat:
    fmt = STANDARD_FORMATS.get(name)
    if fmt is None:
        raise SnapshotError(f"snapshot names unknown format {name!r}"
                            f" (different format set)")
    return fmt


def _check_fingerprint(name: str, stored: dict) -> FloatFormat:
    fmt = _resolve_format(name)
    want = _fingerprint(fmt)
    if stored != want:
        raise SnapshotError(
            f"snapshot tables for {name!r} were built by a different"
            f" format set: {stored} != {want}")
    return fmt


def hot_entries(values: Iterable[Flonum], engine=None,
                mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                tie: TieBreak = TieBreak.UP, base: int = 10) -> list:
    """Precompute hot-dictionary rows for finite non-zero values.

    Magnitude-level, like the memo itself: signs are dropped (nearest
    modes are mirror-symmetric, so one entry serves both signs) and
    duplicates keep the first occurrence.  Rows are the ``write_memo``
    shape: ``[fmt_name, mode, tie, f, e, k, body]``.
    """
    if engine is None:
        from repro.engine.engine import Engine
        engine = Engine()
    rows: list = []
    seen = set()
    for v in values:
        if not v.is_finite or v.is_zero:
            continue
        fmt = v.fmt
        if fmt.name not in STANDARD_FORMATS \
                or STANDARD_FORMATS[fmt.name] is not fmt:
            continue
        dedup = (fmt.name, v.f, v.e)
        if dedup in seen:
            continue
        seen.add(dedup)
        k, body = engine._body_fe(v.f, v.e, fmt, base, mode, tie)
        rows.append([fmt.name, mode.value, tie.value, v.f, v.e, k, body])
    return rows


def build_snapshot(formats: Iterable[str] = ("binary64",), base: int = 10,
                   engine=None, hot: Optional[list] = None,
                   meta: Optional[dict] = None) -> Snapshot:
    """Capture a snapshot of the named formats' tables plus, when a
    donor ``engine`` is given, its current memo contents (write and
    read directions, standard formats only), plus prebuilt ``hot``
    rows from :func:`hot_entries`."""
    names = [str(n) for n in formats]
    tables: dict = {}
    for name in names:
        fmt = _resolve_format(name)
        t = tables_for(fmt, base)
        e_min, powers = t.grisu_state()
        tables[name] = {
            "fingerprint": _fingerprint(fmt),
            "grisu_e_min": e_min,
            "grisu_powers": [list(p) for p in powers],
        }
    write_memo: list = []
    read_memo: list = []
    if engine is not None:
        write_memo, read_memo = _capture_memo(engine, names, base)
    return Snapshot(base=base, formats=names, tables=tables,
                    write_memo=write_memo, read_memo=read_memo,
                    hot=list(hot or []), meta=meta)


def _capture_memo(engine, names: List[str], base: int
                  ) -> Tuple[list, list]:
    """Export a donor engine's memo on stable keys.

    The in-memory memo keys on interned context ints derived from
    ``id(fmt)`` — process-local and meaningless on disk — so every
    exported row is re-keyed on ``(format name, mode value, tie
    value)``.  Only shortest-conversion entries of standard formats in
    the requested set survive; fixed-format entries (4-tuple keys with
    kind-string contexts) and read entries of other formats are
    skipped.  Iteration order is the memo's recency order, preserved so
    a restore reproduces the donor's LRU state.
    """
    wanted = set(names)
    with engine._lock:
        ctx_rev: Dict[int, tuple] = {}
        for (fmt_id, b, mode, tie), ctx in engine._ctx_ids.items():
            if b != base or not isinstance(mode, ReaderMode):
                continue
            ctx_rev[ctx] = (fmt_id, mode, tie)
        fmt_names = {id(STANDARD_FORMATS[n]): n for n in wanted}
        write_rows: list = []
        read_rows: list = []
        reader = engine._reader
        read_rev: Dict[int, tuple] = {}
        if reader is not None:
            for (fmt_id, mode), (ctx_id, tabs) in reader._contexts.items():
                name = fmt_names.get(id(tabs.fmt))
                if name is not None:
                    read_rev[ctx_id] = (name, mode)
        for key, val in engine._cache.items():
            if len(key) == 2 and isinstance(key[0], str):
                # Read entry: (text, read_ctx) -> (Flonum, tier).
                text, ctx = key
                got = read_rev.get(ctx)
                if got is None:
                    continue
                name, mode = got
                flonum, tier = val
                if flonum.is_nan:
                    kind, sign, f, e = _KIND_NAN, 0, 0, 0
                elif flonum.is_infinite:
                    kind, sign, f, e = _KIND_INF, flonum.sign, 0, 0
                else:
                    kind, sign, f, e = (_KIND_FINITE, flonum.sign,
                                        flonum.f, flonum.e)
                read_rows.append([name, mode.value, text, kind, sign,
                                  f, e, tier])
                continue
            if len(key) != 3:
                continue  # fixed-format entries (4-tuple keys)
            f, e, ctx = key
            got = ctx_rev.get(ctx)
            if got is None:
                continue
            fmt_id, mode, tie = got
            name = fmt_names.get(fmt_id)
            if name is None:
                continue
            k, body = val
            write_rows.append([name, mode.value, tie.value, f, e,
                               k, body])
    return write_rows, read_rows


# ----------------------------------------------------------------------
# Applying snapshots.
# ----------------------------------------------------------------------


def restore_tables(snap: Snapshot) -> Dict[str, FormatTables]:
    """Validate and publish every table set in the snapshot.

    All-or-nothing: every fingerprint and state is validated before the
    first install, so a stale snapshot cannot leave a half-warm table
    cache behind.  Returns the restored tables by format name (whether
    freshly installed or already present).
    """
    restored: Dict[str, FormatTables] = {}
    for name in snap.formats:
        entry = snap.tables.get(name)
        if entry is None:
            raise SnapshotError(f"snapshot missing tables for {name!r}")
        fmt = _check_fingerprint(name, entry.get("fingerprint"))
        try:
            tabs = FormatTables.from_grisu_state(
                fmt, snap.base, int(entry["grisu_e_min"]),
                [tuple(p) for p in entry["grisu_powers"]])
        except ReproError as exc:
            raise SnapshotError(
                f"snapshot tables for {name!r} are stale: {exc}") from exc
        except Exception as exc:
            raise SnapshotError(
                f"snapshot tables for {name!r} are malformed:"
                f" {exc!r}") from exc
        restored[name] = tabs
    for tabs in restored.values():
        install_tables(tabs)
    return restored


def _decode_mode(value) -> ReaderMode:
    try:
        return ReaderMode(value)
    except ValueError as exc:
        raise SnapshotError(f"unknown reader mode {value!r}") from exc


def _decode_tie(value) -> TieBreak:
    try:
        return TieBreak(value)
    except ValueError as exc:
        raise SnapshotError(f"unknown tie strategy {value!r}") from exc


def _decode_flonum(kind: str, sign: int, f: int, e: int,
                   fmt: FloatFormat) -> Flonum:
    if kind == _KIND_NAN:
        return Flonum.nan(fmt)
    if kind == _KIND_INF:
        return Flonum.infinity(fmt, sign)
    if kind == _KIND_FINITE:
        if f == 0:
            return Flonum.zero(fmt, sign)
        return Flonum.finite(sign, int(f), int(e), fmt)
    raise SnapshotError(f"unknown flonum kind {kind!r} in read memo")


def apply_snapshot(engine, snap: Snapshot) -> dict:
    """Warm an :class:`~repro.engine.engine.Engine` from a snapshot.

    Restores tables, installs write-memo rows into the LRU (newest
    last, capped at the engine's ``cache_size``), fills the hot
    dictionary, and — when the snapshot has read rows — builds the read
    engine and installs those too.  Returns restore counts.  Raises
    :class:`SnapshotError` without touching the engine if validation
    fails (the engine's constructor translates that into a counted
    fault and a cold build).
    """
    restore_tables(snap)
    # Rows cluster on a handful of (format, mode, tie) triples, so the
    # enum/format decode — and later the context interning — is
    # memoized per triple rather than paid per row (restore speed is
    # the whole point of a warm start).
    triples: dict = {}

    def _triple(name, mode, tie):
        tri = triples.get((name, mode, tie))
        if tri is None:
            tri = triples[(name, mode, tie)] = (
                _resolve_format(name), _decode_mode(mode),
                _decode_tie(tie))
        return tri

    def _decode_write_rows(rows, what):
        out = []
        for row in rows:
            try:
                name, mode, tie, f, e, k, body = row
                fmt, m, t = _triple(name, mode, tie)
                out.append((fmt, m, t, f + 0, e + 0, (k + 0, str(body))))
            except SnapshotError:
                raise
            except Exception as exc:
                raise SnapshotError(
                    f"malformed {what} row: {row!r}") from exc
        return out

    decoded_w = _decode_write_rows(snap.write_memo, "write-memo")
    decoded_h = _decode_write_rows(snap.hot, "hot")
    decoded_r = []
    for row in snap.read_memo:
        try:
            name, mode, text, kind, sign, f, e, tier = row
        except Exception as exc:
            raise SnapshotError(f"malformed read-memo row: {row!r}") from exc
        fmt = _resolve_format(name)
        value = _decode_flonum(kind, int(sign), f, e, fmt)
        decoded_r.append((fmt, _decode_mode(mode), str(text),
                          (value, str(tier))))
    counts = {"formats": len(snap.formats), "write": 0, "read": 0, "hot": 0}
    ctxs: dict = {}

    def _ctx(fmt, mode, tie):
        c = ctxs.get((fmt.name, mode, tie))
        if c is None:
            c = ctxs[(fmt.name, mode, tie)] = engine._ctx_id(
                fmt, snap.base, mode, tie)
        return c

    if decoded_w and engine.cache_size:
        rows = decoded_w[-engine.cache_size:]
        keyed = [((f, e, _ctx(fmt, mode, tie)), kb)
                 for fmt, mode, tie, f, e, kb in rows]
        with engine._lock:
            cache = engine._cache
            for key, kb in keyed:
                cache[key] = kb
            while len(cache) > engine.cache_size:
                del cache[next(iter(cache))]
        counts["write"] = len(keyed)
    hot = engine._hot
    for fmt, mode, tie, f, e, kb in decoded_h:
        hot[(f, e, _ctx(fmt, mode, tie))] = kb
    counts["hot"] = len(decoded_h)
    if decoded_r and engine.cache_size:
        reader = engine.reader
        counts["read"] = _install_read_rows(reader, decoded_r)
    return counts


def apply_read_snapshot(reader, snap: Snapshot) -> dict:
    """Warm a standalone :class:`~repro.engine.reader.ReadEngine`:
    tables plus the read-memo rows (the write/hot sections do not apply
    to the read direction)."""
    restore_tables(snap)
    decoded = []
    for row in snap.read_memo:
        try:
            name, mode, text, kind, sign, f, e, tier = row
        except Exception as exc:
            raise SnapshotError(f"malformed read-memo row: {row!r}") from exc
        fmt = _resolve_format(name)
        value = _decode_flonum(kind, int(sign), f, e, fmt)
        decoded.append((fmt, _decode_mode(mode), str(text),
                        (value, str(tier))))
    count = _install_read_rows(reader, decoded) if reader.cache_size else 0
    return {"formats": len(snap.formats), "write": 0, "read": count,
            "hot": 0}


def _install_read_rows(reader, decoded: list) -> int:
    rows = decoded[-reader.cache_size:]
    ctxs: dict = {}

    def _ctx(fmt, mode):
        c = ctxs.get((fmt.name, mode))
        if c is None:
            c = ctxs[(fmt.name, mode)] = reader._context(fmt, mode)[0]
        return c

    keyed = [((text, _ctx(fmt, mode)), val)
             for fmt, mode, text, val in rows]
    with reader._lock:
        cache = reader._cache
        for key, val in keyed:
            cache[key] = val
        while len(cache) > reader.cache_size:
            del cache[next(iter(cache))]
    return len(keyed)


# ----------------------------------------------------------------------
# The shared-memory hot plane.
# ----------------------------------------------------------------------

_PLANE_MAGIC = b"RPRHOTP\x00"
#: magic, crc, nslots, base, fmt_name, mode, tie, values_len
_PLANE_HEADER = struct.Struct("<8sIII32s16s8sI")
_SLOT = struct.Struct("<QII")
_VAL_K = struct.Struct("<i")


def bits_encoder(fmt: FloatFormat):
    """Closure mapping canonical positive finite ``(f, e)`` to the
    format's bit pattern — the plane's key function, inlined for the
    probe path (must agree with
    :func:`repro.floats.decompose.encode_components`)."""
    hidden = fmt.hidden_limit
    shift = fmt.mantissa_field_width
    boff = fmt.bias + fmt.precision - 1
    explicit = fmt.explicit_leading_bit
    if explicit:
        def to_bits(f: int, e: int) -> int:
            if f >= hidden:
                return ((e + boff) << shift) | f
            return f
    else:
        def to_bits(f: int, e: int) -> int:
            if f >= hidden:
                return ((e + boff) << shift) | (f - hidden)
            return f
    return to_bits


def _mix(bits: int) -> int:
    """Fibonacci hash: spread nearby bit patterns across the table."""
    return (bits * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF


class HotPlane:
    """A read-only open-addressed hot-values table over a flat buffer.

    Layout: the header above, ``nslots`` 16-byte slots (key ``u64``,
    value offset ``u32``, value length ``u32``; key 0 = empty — bit
    pattern 0 is +0.0, which never reaches digit generation), then the
    packed values (``i32`` k + ASCII digit body).  The CRC covers
    everything after the magic+crc prefix and is verified once in the
    constructor: a reader attaching mid-rewrite sees a checksum
    mismatch, not torn entries.  Probes are lock-free reads.
    """

    __slots__ = ("_buf", "_mask", "_shift", "_slots_off", "_values_off",
                 "fmt_name", "mode", "tie", "base", "nslots")

    def __init__(self, buf):
        if len(buf) < _PLANE_HEADER.size:
            raise SnapshotError(
                f"hot plane truncated: {len(buf)} bytes")
        (magic, crc, nslots, base, fmt_name, mode, tie,
         values_len) = _PLANE_HEADER.unpack_from(buf, 0)
        if magic != _PLANE_MAGIC:
            raise SnapshotError(f"bad hot-plane magic {magic!r}")
        slots_off = _PLANE_HEADER.size
        total = slots_off + nslots * _SLOT.size + values_len
        if nslots == 0 or nslots & (nslots - 1):
            raise SnapshotError(f"hot-plane slot count {nslots} not a"
                                f" power of two")
        if len(buf) < total:
            raise SnapshotError(
                f"hot plane truncated: {len(buf)} bytes < {total}")
        if zlib.crc32(bytes(buf[12:total])) != crc:
            raise SnapshotError("hot-plane CRC mismatch (torn write?)")
        self._buf = buf
        self.nslots = nslots
        self._mask = nslots - 1
        self._shift = 64 - nslots.bit_length() + 1
        self._slots_off = slots_off
        self._values_off = slots_off + nslots * _SLOT.size
        self.fmt_name = fmt_name.rstrip(b"\x00").decode("ascii")
        self.mode = mode.rstrip(b"\x00").decode("ascii")
        self.tie = tie.rstrip(b"\x00").decode("ascii")
        self.base = base

    @staticmethod
    def build(entries: Iterable[Tuple[int, int, str]], fmt_name: str,
              mode: str, tie: str, base: int = 10) -> bytes:
        """Serialize ``(bits, k, body)`` entries into a plane buffer."""
        items = [(b, k, body) for b, k, body in entries if b != 0]
        nslots = 8
        while nslots * 3 < len(items) * 5:  # load factor <= 0.6
            nslots *= 2
        shift = 64 - nslots.bit_length() + 1
        mask = nslots - 1
        slots = [(0, 0, 0)] * nslots
        values = bytearray()
        for bits, k, body in items:
            payload = _VAL_K.pack(k) + body.encode("ascii")
            idx = _mix(bits) >> shift
            while slots[idx][0] != 0:
                if slots[idx][0] == bits:
                    break  # duplicate key: first entry wins
                idx = (idx + 1) & mask
            else:
                slots[idx] = (bits, len(values), len(payload))
                values += payload
        body_bytes = b"".join(_SLOT.pack(*s) for s in slots) + bytes(values)
        header_tail = struct.pack(
            "<II32s16s8sI", nslots, base, fmt_name.encode("ascii"),
            mode.encode("ascii"), tie.encode("ascii"), len(values))
        crc = zlib.crc32(header_tail + body_bytes)
        return _PLANE_MAGIC + struct.pack("<I", crc) + header_tail \
            + body_bytes

    @staticmethod
    def from_snapshot(snap: Snapshot, fmt_name: str,
                      mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                      tie: TieBreak = TieBreak.UP) -> Optional[bytes]:
        """Plane bytes for one format's hot rows, or None if the
        snapshot has none for that ``(format, mode, tie)`` or the
        format has no bit-level encoding."""
        fmt = STANDARD_FORMATS.get(fmt_name)
        if fmt is None or not fmt.has_encoding:
            return None
        to_bits = bits_encoder(fmt)
        entries = [(to_bits(int(f), int(e)), int(k), str(body))
                   for name, m, t, f, e, k, body in snap.hot
                   if name == fmt_name and m == mode.value
                   and t == tie.value]
        if not entries:
            return None
        return HotPlane.build(entries, fmt_name, mode.value, tie.value,
                              snap.base)

    def get(self, bits: int) -> Optional[Tuple[int, str]]:
        """``(k, body)`` for an exact bit pattern, or None."""
        buf = self._buf
        mask = self._mask
        idx = _mix(bits) >> self._shift
        slots_off = self._slots_off
        while True:
            key, off, length = _SLOT.unpack_from(buf,
                                                 slots_off + idx * 16)
            if key == bits:
                start = self._values_off + off
                k, = _VAL_K.unpack_from(buf, start)
                body = bytes(buf[start + 4:start + length]).decode("ascii")
                return k, body
            if key == 0:
                return None
            idx = (idx + 1) & mask
