"""Tier 0: values that *are* short decimals, printed without any search.

A large share of real printing traffic is integers and tidy decimals —
loop counters, prices, ratios of small powers of two.  For a radix-2
value ``v = f * 2**e`` two easy cases cover them:

* ``e < 0`` with ``2**-e`` dividing ``f``: ``v`` is an integer whose
  rounding gap is smaller than 1, so no other decimal of *any* length
  lies in the rounding interval — the integer's own digits are the
  unique shortest output.
* ``e >= 0`` (an integer with a gap ``>= 1``) or a short exact decimal
  (``f * 5**-e`` small): the digits of the exact decimal expansion are
  correct *unless* a shorter decimal lies inside the rounding interval.
  Shorter candidates are exactly the multiples of ``10**(z+1)`` (``z`` =
  trailing zeros of the expansion), so checking the two nearest ones —
  with the same margins and endpoint-inclusion rules the exact algorithm
  uses (Table 1 + ``adjust_for_mode``) — certifies minimality with a few
  machine-word operations.

Every acceptance is provably byte-identical to the exact Burger–Dybvig
output for the same reader mode: the value printed is ``v`` itself
(distance zero, so correct rounding and ties are vacuous) and the
candidate check re-states the paper's minimal-length condition.  When in
doubt the tier *declines* and the router falls through.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.rounding import ReaderMode

__all__ = ["tier0_digits"]

#: Integers above this many bits are never short decimals worth testing
#: (their gap admits a shorter scientific form, which Tier 1 finds).
_MAX_INT_BITS = 64

#: Bound on ``-e`` for the exact-decimal case.  Canonical mantissas are
#: full-width, so everyday fractions like 0.5 carry ``e = -53`` (and
#: small dyadics like ``1/2**20`` reach ``-76``) with a heap of trailing
#: zero bits; the profitability pre-check below rejects ineligible
#: values before any wide multiply, so the bound only needs to keep
#: ``5**t`` in the precomputed table.
_MAX_NEG_E = 76


def tier0_digits(f: int, e: int, hidden_limit: int, min_e: int,
                 mantissa_limit: int, max_e: int,
                 mode: ReaderMode) -> Optional[Tuple[int, int, int]]:
    """Shortest digits of ``f * 2**e`` if it is a certifiably short decimal.

    Returns ``(acc, ndigits, k)`` — the digit string is ``str(acc)``
    (``ndigits`` long, trailing zeros stripped) with the radix point at
    ``k`` — or None when this tier cannot certify the output.
    """
    if e >= 0:
        if f.bit_length() + e > _MAX_INT_BITS:
            return None
        if f == mantissa_limit - 1 and e == max_e:
            return None  # gap above the largest finite value is special
        n = f << e
        # Margins (doubled to stay integral): gap_high = 2**e always;
        # gap_low halves on the power-boundary case.
        gh2 = 2 << e
        gl2 = (1 << e) if (f == hidden_limit and e > min_e) else gh2
        return _certify(n, 0, gl2, gh2, f, mode)
    t = -e
    low_bits = f & ((1 << t) - 1)
    if low_bits == 0:
        # Integer with gap < 1: always the unique shortest decimal.
        n = f >> t
        s = str(n)
        nd = len(s)
        z = nd - len(s.rstrip("0"))
        return (n // _pow10(z), nd - z, nd)
    if t > _MAX_NEG_E:
        return None
    # v = (f * 5**t) * 10**-t exactly.  Profitable only when the decimal
    # expansion has few significant digits, i.e. f has nearly t trailing
    # zero bits; reject cheaply before forming the product.
    v2 = (low_bits & -low_bits).bit_length() - 1  # trailing zeros of f
    if 10 * v2 < 7 * t - 13:
        return None
    n = f * _POW5[t]
    # Scaled margins: gap * 10**t = 2**e * 5**t * 2**t * 2**-t... i.e.
    # gap_high scaled = 5**t; doubled: 2 * 5**t.
    gh2 = 2 * _POW5[t]
    gl2 = _POW5[t] if (f == hidden_limit and e > min_e) else gh2
    return _certify(n, -t, gl2, gh2, f, mode)


def _certify(n: int, dec_exp: int, gl2: int, gh2: int, f: int,
             mode: ReaderMode) -> Optional[Tuple[int, int, int]]:
    """Strip ``n``'s trailing zeros and prove no shorter decimal reads back.

    ``gl2``/``gh2`` are twice the low/high gaps in the scaled-integer
    domain where ``v`` equals ``n``.  The margins and endpoint-inclusion
    flags reproduce :func:`repro.core.boundaries.adjust_for_mode`:
    nearest modes use half-gaps, directed modes collapse one side and
    double the other.
    """
    s = str(n)
    nd = len(s)
    stripped = s.rstrip("0")
    z = nd - len(stripped)
    if len(stripped) == 1:
        # One significant digit: nothing shorter can exist.
        return (n // _pow10(z), nd - z, nd + dec_exp)
    # Margins x4 (both gl2/gh2 carry one factor of 2 already).
    if mode in _NEAREST:
        ml4, mh4 = gl2, gh2
        if mode is ReaderMode.NEAREST_EVEN:
            ok = f % 2 == 0
            low_ok = high_ok = ok
        elif mode is ReaderMode.NEAREST_UNKNOWN:
            low_ok = high_ok = False
        elif mode is ReaderMode.NEAREST_AWAY:
            low_ok, high_ok = True, False
        else:  # NEAREST_TO_ZERO
            low_ok, high_ok = False, True
    elif mode is ReaderMode.TOWARD_POSITIVE:
        ml4, mh4 = 2 * gl2, 0
        low_ok, high_ok = False, True
    else:  # TOWARD_ZERO / TOWARD_NEGATIVE (positive magnitudes here)
        ml4, mh4 = 0, 2 * gh2
        low_ok, high_ok = True, False
    step = _pow10(z + 1)
    lo_cand = (n // step) * step
    hi_cand = lo_cand + step
    # Candidate inside the rounding interval => a shorter string exists
    # => this tier must decline (the exact path will find that string).
    d4 = 4 * (n - lo_cand)
    if d4 < ml4 or (low_ok and d4 == ml4):
        return None
    d4 = 4 * (hi_cand - n)
    if d4 < mh4 or (high_ok and d4 == mh4):
        return None
    return (n // _pow10(z), nd - z, nd + dec_exp)


_NEAREST = (ReaderMode.NEAREST_EVEN, ReaderMode.NEAREST_UNKNOWN,
            ReaderMode.NEAREST_AWAY, ReaderMode.NEAREST_TO_ZERO)

_POW10 = [10**i for i in range(40)]
_POW5 = [5**i for i in range(_MAX_NEG_E + 1)]


def _pow10(z: int) -> int:
    return _POW10[z] if z < 40 else 10**z
